// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// flat_convert: migrate a v1 stream-format index file to the v2 mmap-native
// flat layout (DESIGN.md, "On-disk layout v2").
//
//   $ flat_convert <corpus-file> <v1-index-file> <v2-output-file>
//
// The family and dimensionality are read from the v1 header (magic "KWO1" /
// "KWS1" / "KWN1" plus a uint32 dim), the index is loaded through the
// family's v1 Load (which validates it against the corpus), re-written with
// SaveFlat, and the produced container is validated before the tool reports
// success — a file this tool emits always passes the flat-layout audit.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/flat_arena.h"
#include "core/nn_linf.h"
#include "core/orp_kw.h"
#include "core/sp_kw_box.h"
#include "text/corpus.h"

namespace kwsc {
namespace {

struct V1Header {
  char magic[5] = {0};
  uint32_t version = 0;
  uint32_t dim = 0;
};

bool PeekHeader(const std::string& path, V1Header* header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.read(header->magic, 4);
  in.read(reinterpret_cast<char*>(&header->version), sizeof(uint32_t));
  in.read(reinterpret_cast<char*>(&header->dim), sizeof(uint32_t));
  return in.good();
}

template <typename Index>
int Convert(const Corpus& corpus, const std::string& in_path,
            const std::string& out_path) {
  std::ifstream in(in_path, std::ios::binary);
  const Index index = Index::Load(&in, &corpus);
  {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "flat_convert: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    index.SaveFlat(&out);
  }
  const std::shared_ptr<const MmapFile> file = MmapFile::Open(out_path);
  bool clean = true;
  const FlatErrorSink sink = [&clean](const std::string& message) {
    clean = false;
    std::fprintf(stderr, "flat_convert: produced container invalid: %s\n",
                 message.c_str());
  };
  if (!Index::ValidateFlat(*file, /*offset=*/0, Index::kFlatFamilyTag, sink) ||
      !clean) {
    return 1;
  }
  std::printf("flat_convert: %s -> %s (%llu bytes, %s)\n", in_path.c_str(),
              out_path.c_str(), static_cast<unsigned long long>(file->size()),
              file->used_mmap() ? "mmap-validated" : "heap-validated");
  return 0;
}

int Run(const std::string& corpus_path, const std::string& in_path,
        const std::string& out_path) {
  V1Header header;
  if (!PeekHeader(in_path, &header)) {
    std::fprintf(stderr, "flat_convert: cannot read v1 header from %s\n",
                 in_path.c_str());
    return 1;
  }
  if (header.version != 1) {
    std::fprintf(stderr, "flat_convert: unsupported version %u\n",
                 header.version);
    return 1;
  }
  std::ifstream corpus_in(corpus_path, std::ios::binary);
  if (!corpus_in) {
    std::fprintf(stderr, "flat_convert: cannot read corpus %s\n",
                 corpus_path.c_str());
    return 1;
  }
  const Corpus corpus = Corpus::Load(&corpus_in);

  const std::string magic(header.magic);
  if (magic == "KWO1") {
    if (header.dim == 1) return Convert<OrpKwIndex<1>>(corpus, in_path, out_path);
    if (header.dim == 2) return Convert<OrpKwIndex<2>>(corpus, in_path, out_path);
  } else if (magic == "KWS1") {
    if (header.dim == 2) return Convert<SpKwBoxIndex<2>>(corpus, in_path, out_path);
    if (header.dim == 3) return Convert<SpKwBoxIndex<3>>(corpus, in_path, out_path);
  } else if (magic == "KWN1") {
    if (header.dim == 1) return Convert<LinfNnIndex<1>>(corpus, in_path, out_path);
    if (header.dim == 2) return Convert<LinfNnIndex<2>>(corpus, in_path, out_path);
  }
  std::fprintf(stderr,
               "flat_convert: unsupported family %.4s dim %u (supported: "
               "KWO1 d=1,2; KWS1 d=2,3; KWN1 d=1,2)\n",
               header.magic, header.dim);
  return 1;
}

}  // namespace
}  // namespace kwsc

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file> <v1-index-file> <v2-output-file>\n",
                 argv[0]);
    return 2;
  }
  return kwsc::Run(argv[1], argv[2], argv[3]);
}
