#!/usr/bin/env bash
# Validates BENCH_*.json files against the kwsc-bench schema
# (obs::JsonExporter, schema_version 1; field reference in EXPERIMENTS.md).
# Usage: tools/check_bench_json.sh BENCH_foo.json [BENCH_bar.json ...]
# Exits nonzero on the first file that fails validation. Requires python3
# (stdlib only); warns and skips when python3 is absent, mirroring
# run_tidy.sh / check_format.sh.
set -u

if [ "$#" -lt 1 ]; then
  echo "usage: $0 BENCH_<name>.json [...]" >&2
  exit 2
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "check_bench_json: python3 not found; skipping schema validation" >&2
  exit 0
fi

status=0
for file in "$@"; do
  if ! python3 - "$file" <<'PYEOF'
import json
import sys

path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"{path}: not readable as JSON: {e}")

def fail(msg):
    sys.exit(f"{path}: {msg}")

# Envelope.
if doc.get("schema") != "kwsc-bench":
    fail(f'schema must be "kwsc-bench", got {doc.get("schema")!r}')
if doc.get("schema_version") != 1:
    fail(f"schema_version must be 1, got {doc.get('schema_version')!r}")
if not isinstance(doc.get("name"), str) or not doc["name"]:
    fail("name must be a non-empty string")
for key, kind in (("points", list), ("exponents", list),
                  ("counters", dict), ("gauges", dict),
                  ("histograms", list)):
    if not isinstance(doc.get(key), kind):
        fail(f"{key} must be a {kind.__name__}")

# Points: flat string->number|null rows.
for i, point in enumerate(doc["points"]):
    if not isinstance(point, dict):
        fail(f"points[{i}] must be an object")
    for k, v in point.items():
        if v is not None and not isinstance(v, (int, float)):
            fail(f"points[{i}].{k} must be a number or null")

# Exponents.
for i, exp in enumerate(doc["exponents"]):
    for field in ("label", "measured", "expected"):
        if field not in exp:
            fail(f"exponents[{i}] missing {field}")

# Counters are non-negative integers.
for k, v in doc["counters"].items():
    if not isinstance(v, int) or v < 0:
        fail(f"counter {k} must be a non-negative integer, got {v!r}")

# Histograms: summary stats + quantiles + consistent buckets.
for i, h in enumerate(doc["histograms"]):
    where = f"histograms[{i}]"
    for field in ("name", "unit", "count", "sum", "min", "max", "mean",
                  "p50", "p90", "p99", "buckets"):
        if field not in h:
            fail(f"{where} missing {field}")
    if h["count"] < 0:
        fail(f"{where}.count negative")
    if sum(b["n"] for b in h["buckets"]) != h["count"]:
        fail(f"{where}: bucket counts do not sum to count")
    if h["count"] > 0:
        if not h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]:
            fail(f"{where}: quantiles not monotone "
                 f"(min={h['min']} p50={h['p50']} p90={h['p90']} "
                 f"p99={h['p99']} max={h['max']})")
    for j, b in enumerate(h["buckets"]):
        if not (isinstance(b.get("n"), int) and b["n"] > 0):
            fail(f"{where}.buckets[{j}]: empty or malformed bucket emitted")
        if not b["lo"] <= b["hi"]:
            fail(f"{where}.buckets[{j}]: lo > hi")

# bench_load reports (name == "load") carry the mmap-vs-stream comparison;
# enforce the fields the space<->latency curve and the CI speedup gate read.
if doc["name"] == "load":
    required = ("N", "stream_load_ms", "mmap_load_ms", "speedup",
                "stream_rss_bytes", "mmap_rss_bytes", "flat_file_bytes",
                "built_query_us", "flat_query_us")
    if not doc["points"]:
        fail("load report has no sweep points")
    for i, point in enumerate(doc["points"]):
        for field in required:
            if field not in point:
                fail(f"points[{i}] missing {field}")
        if point["N"] is None or point["N"] <= 0:
            fail(f"points[{i}].N must be positive")
        if point["speedup"] is None or point["speedup"] <= 0:
            fail(f"points[{i}].speedup must be positive")
        if point["flat_file_bytes"] is None or point["flat_file_bytes"] <= 0:
            fail(f"points[{i}].flat_file_bytes must be positive")
    for gauge in ("flat.bytes_mapped", "flat.load_micros", "flat.used_mmap",
                  "load_speedup"):
        if gauge not in doc["gauges"]:
            fail(f"load report missing gauge {gauge}")

# bench_shard reports (name == "shard") carry the shared-nothing scaling
# sweep; enforce the determinism flag, the scaling fields, and the
# selection-vs-naive byte comparison the merge protocol claims.
if doc["name"] == "shard":
    scaling = [p for p in doc["points"] if "qps_model" in p]
    if not scaling:
        fail("shard report has no S-scaling points")
    required = ("N", "S", "model_us", "qps_model", "speedup_model",
                "top_t", "bytes_naive", "bytes_selection", "identical")
    for i, point in enumerate(scaling):
        for field in required:
            if field not in point:
                fail(f"scaling point {i} missing {field}")
        if point["S"] is None or point["S"] < 1:
            fail(f"scaling point {i}.S must be >= 1")
        if point["identical"] != 1:
            fail(f"scaling point {i} (S={point['S']}): sharded rows "
                 "diverged from the unsharded engine")
        if point["speedup_model"] is None or point["speedup_model"] <= 0:
            fail(f"scaling point {i}.speedup_model must be positive")
        if not point["bytes_selection"] < point["bytes_naive"]:
            fail(f"scaling point {i} (S={point['S']}): selection merge "
                 f"shipped {point['bytes_selection']} bytes, not strictly "
                 f"fewer than naive {point['bytes_naive']}")
    for counter in ("serve.bytes_shipped", "serve.bytes_naive",
                    "serve.shard_fanout", "serve.queries"):
        if counter not in doc["counters"]:
            fail(f"shard report missing counter {counter}")
    if "speedup_s4" not in doc["gauges"]:
        fail("shard report missing gauge speedup_s4")

# bench_update reports (name == "update") carry the batch-dynamic update
# path; enforce the rebuild-baseline comparison, the exactness flag, and the
# during-merge latency fields the p99-inflation claim reads.
if doc["name"] == "update":
    throughput = [p for p in doc["points"] if "speedup_vs_rebuild" in p]
    if not throughput:
        fail("update report has no throughput point")
    required = ("N", "batch", "inserts", "deletes", "queries", "dynamic_us",
                "rebuild_us", "dynamic_ops_per_s", "rebuild_ops_per_s",
                "speedup_vs_rebuild", "identical")
    for i, point in enumerate(throughput):
        for field in required:
            if field not in point:
                fail(f"throughput point {i} missing {field}")
        if point["identical"] != 1:
            fail(f"throughput point {i}: dynamic rows diverged from the "
                 "rebuild-from-scratch baseline")
        if point["speedup_vs_rebuild"] is None or \
                point["speedup_vs_rebuild"] <= 1:
            fail(f"throughput point {i}: mixed throughput did not beat the "
                 f"rebuild baseline "
                 f"(speedup={point['speedup_vs_rebuild']!r})")
    latency = [p for p in doc["points"] if "p99_ratio" in p]
    if not latency:
        fail("update report has no merge-latency point")
    for i, point in enumerate(latency):
        for field in ("merge_samples", "p99_quiescent_us", "p99_merge_us",
                      "p99_ratio"):
            if field not in point:
                fail(f"merge-latency point {i} missing {field}")
        if point["merge_samples"] is None or point["merge_samples"] < 1:
            fail(f"merge-latency point {i}: no query completed during a "
                 "background merge")
        if point["p99_ratio"] is None or not 0 < point["p99_ratio"] <= 64:
            fail(f"merge-latency point {i}: during-merge p99 inflation "
                 f"unbounded (ratio={point['p99_ratio']!r})")
    hist_names = {h["name"] for h in doc["histograms"]}
    for hist in ("update.query.quiescent", "update.query.during_merge"):
        if hist not in hist_names:
            fail(f"update report missing histogram {hist}")
    for counter in ("update.inserts", "update.deletes", "update.queries"):
        if counter not in doc["counters"]:
            fail(f"update report missing counter {counter}")
    for gauge in ("speedup_vs_rebuild", "p99_merge_ratio"):
        if gauge not in doc["gauges"]:
            fail(f"update report missing gauge {gauge}")

print(f"{path}: OK "
      f"({len(doc['points'])} points, {len(doc['histograms'])} histograms, "
      f"{len(doc['counters'])} counters)")
PYEOF
  then
    status=1
  fi
done
exit "$status"
