// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// kwsc-abi driver. Three subcommands cover the manifest lifecycle:
//
//   kwsc_abi emit-probe <repo_root> <out.cc>
//       Scans src/ and writes the probe translation unit (only when its
//       content changed, so CMake does not rebuild the probe needlessly).
//       Exit 2 on model errors (coverage gaps, unresolved registrations).
//
//   kwsc_abi manifest <repo_root> --probe <probe_binary> [-o <out>]
//       Scans src/, runs the compiled probe, and renders the canonical
//       manifest to <out> (default stdout). Exit 2 on any model or probe
//       error — a manifest is all-or-nothing.
//
//   kwsc_abi diff <old_manifest> <new_manifest>
//       The drift gate. Prints changes; exit 1 when a change violates the
//       versioning contract (content drift without a bump, removed format,
//       version decrease), exit 0 otherwise.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "abi.h"

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
      << "  kwsc_abi emit-probe <repo_root> <out.cc>\n"
      << "  kwsc_abi manifest <repo_root> --probe <probe_binary> [-o <out>]\n"
      << "  kwsc_abi diff <old_manifest> <new_manifest>\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream contents;
  contents << in.rdbuf();
  *out = contents.str();
  return true;
}

bool WriteFileIfChanged(const std::string& path, const std::string& contents) {
  std::string existing;
  if (ReadFile(path, &existing) && existing == contents) return true;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  return out.good();
}

int ReportErrors(const std::vector<std::string>& errors) {
  for (const std::string& error : errors) {
    std::cerr << "kwsc-abi: " << error << "\n";
  }
  std::cerr << "kwsc-abi: " << errors.size() << " error(s); no manifest\n";
  return 2;
}

int EmitProbe(const std::string& repo_root, const std::string& out_path) {
  const kwsc::abi::Model model =
      kwsc::abi::BuildModel(kwsc::abi::LoadTree(repo_root));
  if (!model.errors.empty()) return ReportErrors(model.errors);
  if (!WriteFileIfChanged(out_path, kwsc::abi::EmitProbeSource(model))) {
    std::cerr << "kwsc-abi: cannot write " << out_path << "\n";
    return 2;
  }
  return 0;
}

int Manifest(const std::string& repo_root, const std::string& probe_path,
             const std::string& out_path) {
  const kwsc::abi::Model model =
      kwsc::abi::BuildModel(kwsc::abi::LoadTree(repo_root));
  if (!model.errors.empty()) return ReportErrors(model.errors);

  FILE* pipe = popen(probe_path.c_str(), "r");
  if (pipe == nullptr) {
    std::cerr << "kwsc-abi: cannot run probe " << probe_path << "\n";
    return 2;
  }
  std::string probe_output;
  char buffer[4096];
  size_t got;
  while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    probe_output.append(buffer, got);
  }
  if (pclose(pipe) != 0) {
    std::cerr << "kwsc-abi: probe " << probe_path << " failed\n";
    return 2;
  }

  std::vector<std::string> errors;
  const kwsc::abi::ProbeLayout layout =
      kwsc::abi::ParseProbeOutput(probe_output, &errors);
  const std::string manifest =
      kwsc::abi::RenderManifest(model, layout, &errors);
  if (!errors.empty()) return ReportErrors(errors);

  if (out_path.empty()) {
    std::cout << manifest;
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << manifest;
  if (!out.good()) {
    std::cerr << "kwsc-abi: cannot write " << out_path << "\n";
    return 2;
  }
  return 0;
}

int Diff(const std::string& old_path, const std::string& new_path) {
  std::string old_text, new_text;
  if (!ReadFile(old_path, &old_text)) {
    std::cerr << "kwsc-abi: cannot read " << old_path << "\n";
    return 2;
  }
  if (!ReadFile(new_path, &new_text)) {
    std::cerr << "kwsc-abi: cannot read " << new_path << "\n";
    return 2;
  }
  const kwsc::abi::DiffResult result =
      kwsc::abi::DiffManifests(old_text, new_text);
  for (const std::string& change : result.changes) {
    std::cout << "kwsc-abi: change: " << change << "\n";
  }
  for (const std::string& violation : result.violations) {
    std::cout << "kwsc-abi: VIOLATION: " << violation << "\n";
  }
  if (!result.violations.empty()) {
    std::cout << "kwsc-abi: " << result.violations.size()
              << " format-contract violation(s)\n";
    return 1;
  }
  std::cout << (result.changes.empty()
                    ? "kwsc-abi: manifests identical\n"
                    : "kwsc-abi: changes are contract-clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string& command = args[0];
  if (command == "emit-probe" && args.size() == 3) {
    return EmitProbe(args[1], args[2]);
  }
  if (command == "manifest") {
    std::string repo_root, probe, out;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--probe" && i + 1 < args.size()) {
        probe = args[++i];
      } else if (args[i] == "-o" && i + 1 < args.size()) {
        out = args[++i];
      } else if (repo_root.empty()) {
        repo_root = args[i];
      } else {
        return Usage();
      }
    }
    if (repo_root.empty() || probe.empty()) return Usage();
    return Manifest(repo_root, probe, out);
  }
  if (command == "diff" && args.size() == 3) {
    return Diff(args[1], args[2]);
  }
  return Usage();
}
