// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "abi.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace kwsc {
namespace abi {

using lint::MatchingClose;
using lint::Scan;
using lint::StartsWith;
using lint::Token;
using lint::Tokenize;

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Joins tokens into a compact canonical spelling: a space only where two
/// identifier-ish tokens would otherwise fuse ("unsigned int" stays two
/// words, "std::array<Scalar, D>" collapses to "std::array<Scalar,D>").
std::string CompactSpelling(const std::vector<Token>& toks, size_t begin,
                            size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t.empty()) continue;
    if (!out.empty() && IsIdentChar(out.back()) && IsIdentChar(t.front())) {
      out += ' ';
    }
    out += t;
  }
  return out;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

/// Parses the `kwsc-abi: format` annotations and their version constants
/// from core/format_versions.h's raw lines (the annotations live in
/// comments, which the tokenizer strips).
void ParseFormats(const SourceFile& file, const std::vector<std::string>& lines,
                  Model* model) {
  static constexpr std::string_view kTag = "kwsc-abi: format ";
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t pos = lines[i].find(kTag);
    if (pos == std::string::npos) continue;
    // The doc block spells the grammar with <...> placeholders; only real
    // annotations (no angle brackets) declare formats.
    if (lines[i].find('<') != std::string::npos) continue;
    FormatSpec spec;
    spec.line = static_cast<int>(i + 1);
    std::istringstream fields(lines[i].substr(pos + kTag.size()));
    std::string word;
    fields >> spec.key;
    while (fields >> word) {
      if (StartsWith(word, "tags=")) {
        spec.tags = SplitCommas(word.substr(5));
      } else if (StartsWith(word, "files=")) {
        spec.files = SplitCommas(word.substr(6));
      } else {
        model->errors.push_back(file.path + ":" + std::to_string(i + 1) +
                                ": unknown format annotation field '" + word +
                                "'");
      }
    }
    // The annotated constant follows on the next non-comment line:
    // `inline constexpr uint32_t kXFormatVersion = N;`.
    bool found = false;
    for (size_t j = i + 1; j < lines.size() && j <= i + 3; ++j) {
      const std::string& decl = lines[j];
      const size_t kpos = decl.find("constexpr uint32_t ");
      if (kpos == std::string::npos) continue;
      const size_t name_begin = kpos + 19;
      size_t name_end = name_begin;
      while (name_end < decl.size() && IsIdentChar(decl[name_end])) ++name_end;
      const size_t eq = decl.find('=', name_end);
      if (eq == std::string::npos) break;
      spec.constant = decl.substr(name_begin, name_end - name_begin);
      spec.version =
          static_cast<uint32_t>(std::strtoul(decl.c_str() + eq + 1, nullptr, 10));
      found = true;
      break;
    }
    if (!found || spec.key.empty() || spec.files.empty()) {
      model->errors.push_back(
          file.path + ":" + std::to_string(spec.line) +
          ": malformed format annotation (need key, files=, and a "
          "constexpr uint32_t constant on the following line)");
      continue;
    }
    model->formats.push_back(std::move(spec));
  }
}

/// A struct definition found in some file, with its extracted field list.
struct DefSite {
  std::string file;
  int line = 0;
  std::vector<Field> fields;
};

/// Extracts the field declarations of a struct body [body_open+1,
/// body_close). Field-declaration granular: member functions (any decl with
/// a top-level '('; bodies skipped whole), static members, aliases, nested
/// types, and access labels are not layout.
std::vector<Field> ExtractFields(const std::vector<Token>& toks,
                                 size_t body_open, size_t body_close) {
  static const std::set<std::string> kNotFields = {
      "static", "using",  "friend", "template", "typedef",
      "struct", "class",  "enum",   "public",   "private",
      "protected"};
  std::vector<Field> fields;
  size_t decl_begin = body_open + 1;
  bool function_like = false;
  int depth = 0;
  for (size_t j = body_open + 1; j < body_close && j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    // Access labels end with ':' not ';' — restart the decl after them.
    if (j == decl_begin && kNotFields.count(t) > 0 && j + 1 < body_close &&
        toks[j + 1].text == ":") {
      decl_begin = j + 2;
      ++j;
      continue;
    }
    if (t == "(" || t == "[") ++depth;
    if (t == ")" || t == "]") --depth;
    if (t == "(") function_like = true;
    if (t == "{" && depth == 0) {
      if (function_like) {
        j = MatchingClose(toks, j);
        decl_begin = j + 1;
        function_like = false;
        continue;
      }
      ++depth;  // Brace initializer or nested definition: part of the decl.
      continue;
    }
    if (t == "}" && depth > 0) {
      --depth;
      continue;
    }
    if (t != ";" || depth != 0) continue;
    // One declaration in [decl_begin, j).
    if (!function_like && decl_begin < j &&
        kNotFields.count(toks[decl_begin].text) == 0) {
      // Strip a trailing initializer: the first top-level '=' or '{'.
      size_t cut = j;
      int d2 = 0;
      for (size_t k = decl_begin; k < j; ++k) {
        const std::string& u = toks[k].text;
        if (u == "(" || u == "[" || u == "<") ++d2;
        if (u == ")" || u == "]" || u == ">") --d2;
        if (d2 == 0 && (u == "=" || u == "{")) {
          cut = k;
          break;
        }
      }
      // Peel array suffixes: declarator is `name [a] [b] ...`.
      size_t name_end = cut;
      while (name_end > decl_begin && toks[name_end - 1].text == "]") {
        int brackets = 0;
        size_t k = name_end;
        while (k > decl_begin) {
          --k;
          if (toks[k].text == "]") ++brackets;
          if (toks[k].text == "[" && --brackets == 0) break;
        }
        name_end = k;
      }
      if (name_end > decl_begin + 1 &&
          toks[name_end - 1].kind == Token::kIdent) {
        Field field;
        field.name = toks[name_end - 1].text;
        field.type = CompactSpelling(toks, decl_begin, name_end - 1);
        field.array = CompactSpelling(toks, name_end, cut);
        field.line = toks[name_end - 1].line;
        fields.push_back(std::move(field));
      }
    }
    decl_begin = j + 1;
    function_like = false;
  }
  return fields;
}

/// The struct a registered type resolves to: the last identifier at angle
/// depth 0 of its spelling ("OrpKwIndex<2>::FlatRoot" -> "FlatRoot",
/// "FlatNodeRec<Box<2, int64_t>>" -> "FlatNodeRec").
std::string BaseName(const std::vector<Token>& toks, size_t begin,
                     size_t end) {
  std::string base;
  int depth = 0;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">") --depth;
    if (depth == 0 && toks[i].kind == Token::kIdent) base = t;
  }
  return base;
}

/// Statement bounds around token `at`: (first token after the previous
/// ';'/'{'/'}', the next ';' at or after `at`).
std::pair<size_t, size_t> StatementBounds(const std::vector<Token>& toks,
                                          size_t at, size_t lo, size_t hi) {
  size_t begin = lo;
  for (size_t k = at; k > lo; --k) {
    const std::string& t = toks[k - 1].text;
    if (t == ";" || t == "{" || t == "}") {
      begin = k;
      break;
    }
  }
  size_t end = hi;
  for (size_t k = at; k < hi; ++k) {
    if (toks[k].text == ";") {
      end = k;
      break;
    }
  }
  return {begin, end};
}

/// Ordered format ops of a function body: v1 archive ops (Magic/Pod/Vec),
/// v2 slab ops (Slab/Root — the Ok validation variants read the same
/// layouts and are deliberately not part of the locked sequence), and
/// nested Save*/Load* calls.
std::vector<FormatOp> ExtractFormatOps(const std::vector<Token>& toks,
                                       size_t begin, size_t end) {
  std::vector<FormatOp> ops;
  for (size_t j = begin; j < end; ++j) {
    if (toks[j].kind != Token::kIdent || j + 1 >= end) continue;
    const std::string& name = toks[j].text;
    if (name == "Magic" && toks[j + 1].text == "(") {
      std::string tag;
      if (j + 2 < end && toks[j + 2].kind == Token::kString) {
        tag = toks[j + 2].text;
      }
      ops.push_back({"Magic", tag, toks[j].line});
    } else if (name == "Pod" || name == "Vec") {
      if (toks[j + 1].text == "<") {
        const size_t targs_close = MatchingClose(toks, j + 1);
        if (targs_close < end && targs_close + 1 < toks.size() &&
            toks[targs_close + 1].text == "(") {
          ops.push_back(
              {name, CompactSpelling(toks, j + 2, targs_close), toks[j].line});
        }
      } else if (toks[j + 1].text == "(") {
        ops.push_back({name, "", toks[j].line});
      }
    } else if (name == "Slab" || name == "Root") {
      // Only member-access spellings (writer.Slab, reader->Slab,
      // reader.template Root<...>) are arena ops; a qualified Root(...)
      // elsewhere is just a name collision.
      const bool member_access =
          j > 0 && (toks[j - 1].text == "." || toks[j - 1].text == "->" ||
                    toks[j - 1].text == "template");
      const bool call = toks[j + 1].text == "(" ||
                        (toks[j + 1].text == "<" &&
                         MatchingClose(toks, j + 1) + 1 < toks.size() &&
                         toks[MatchingClose(toks, j + 1) + 1].text == "(");
      if (member_access && call) {
        // The whole statement is the locked spelling: it captures the
        // element type, the source expression, and the root/ref field the
        // slab lands in.
        const auto [s, e] = StatementBounds(toks, j, begin, end);
        ops.push_back({name, CompactSpelling(toks, s, e), toks[j].line});
      }
    } else if ((StartsWith(name, "Save") || StartsWith(name, "Load")) &&
               toks[j + 1].text == "(") {
      ops.push_back({"Sub", name, toks[j].line});
    }
  }
  return ops;
}

}  // namespace

const FormatSpec* FormatForPath(const Model& model, const std::string& path,
                                std::vector<std::string>* errors) {
  const FormatSpec* match = nullptr;
  for (const FormatSpec& spec : model.formats) {
    for (const std::string& substr : spec.files) {
      if (path.find(substr) == std::string::npos) continue;
      if (match != nullptr && match != &spec) {
        errors->push_back(path + ": covered by two formats ('" + match->key +
                          "' and '" + spec.key +
                          "'); file substrings in core/format_versions.h "
                          "must partition the tree");
        return nullptr;
      }
      match = &spec;
    }
  }
  if (match == nullptr) {
    errors->push_back(
        path +
        ": contributes format-manifest content but no `kwsc-abi: format` "
        "annotation in core/format_versions.h covers it; add the file to a "
        "format's files= list (or create a format for it)");
  }
  return match;
}

Model BuildModel(const std::vector<SourceFile>& sources) {
  Model model;
  std::map<std::string, std::vector<DefSite>> defs;  // struct name -> sites

  for (const SourceFile& file : sources) {
    const bool is_versions_header =
        file.path.find("core/format_versions.h") != std::string::npos;
    const bool is_abi_header =
        file.path.find("common/abi.h") != std::string::npos;
    const Scan scan = Tokenize(file.contents);
    const std::vector<Token>& toks = scan.tokens;
    if (is_versions_header) {
      ParseFormats(file, scan.lines, &model);
      continue;  // The table declares formats; it contributes no content.
    }

    // --- registrations + struct definitions + tag uses ---------------------
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != Token::kIdent) continue;

      if (!is_abi_header && StartsWith(tok.text, "KWSC_ABI_STRUCT") &&
          i + 1 < toks.size() && toks[i + 1].text == "(") {
        const size_t close = MatchingClose(toks, i + 1);
        StructInfo info;
        info.file = file.path;
        info.line = tok.line;
        info.padded = tok.text == "KWSC_ABI_STRUCT_PADDED_AS";
        const bool has_alias = tok.text != "KWSC_ABI_STRUCT";
        if (has_alias) {
          // KWSC_ABI_STRUCT_AS(alias, Type...): alias is the single token
          // before the first depth-0 comma.
          size_t comma = close;
          int depth = 0;
          for (size_t j = i + 2; j < close; ++j) {
            const std::string& t = toks[j].text;
            if (t == "(" || t == "<" || t == "[" || t == "{") ++depth;
            if (t == ")" || t == ">" || t == "]" || t == "}") --depth;
            if (depth == 0 && t == ",") {
              comma = j;
              break;
            }
          }
          if (comma == close || comma != i + 3 ||
              toks[i + 2].kind != Token::kIdent) {
            model.errors.push_back(file.path + ":" + std::to_string(tok.line) +
                                   ": malformed " + tok.text +
                                   " (want (alias, type))");
            i = close;
            continue;
          }
          info.alias = toks[i + 2].text;
          info.type = CompactSpelling(toks, comma + 1, close);
          info.def_file = BaseName(toks, comma + 1, close);  // temp: base name
        } else {
          if (close != i + 3 || toks[i + 2].kind != Token::kIdent) {
            model.errors.push_back(file.path + ":" + std::to_string(tok.line) +
                                   ": malformed KWSC_ABI_STRUCT (want a "
                                   "single type name)");
            i = close;
            continue;
          }
          info.alias = toks[i + 2].text;
          info.type = toks[i + 2].text;
          info.def_file = info.type;  // temp: base name
        }
        model.structs.push_back(std::move(info));
        i = close;
        continue;
      }

      if (tok.text == "struct" && i + 2 < toks.size() &&
          (i == 0 || (toks[i - 1].text != "enum" && toks[i - 1].text != "<" &&
                      toks[i - 1].text != ",")) &&
          toks[i + 1].kind == Token::kIdent && toks[i + 2].text == "{") {
        const size_t close = MatchingClose(toks, i + 2);
        defs[toks[i + 1].text].push_back(
            {file.path, toks[i + 1].line, ExtractFields(toks, i + 2, close)});
        continue;
      }

      if (tok.text == "FlatFamilyTag" && i + 8 < toks.size() &&
          toks[i + 1].text == "(" && toks[i + 2].kind == Token::kChar) {
        // FlatFamilyTag('K', 'W', 'O', '2') — the four char literals.
        std::string tag;
        for (size_t j = i + 2; j < toks.size() && tag.size() < 4; ++j) {
          if (toks[j].kind == Token::kChar && toks[j].text.size() == 3) {
            tag += toks[j].text[1];
          } else if (toks[j].text != ",") {
            break;
          }
        }
        if (tag.size() == 4) {
          model.tags.push_back({tag, file.path, tok.line});
        }
        continue;
      }
    }

    // 4-char "KW.." string literals are tag spellings (Magic() framing,
    // header memcmp checks).
    for (const Token& tok : toks) {
      if (tok.kind != Token::kString || tok.text.size() != 6) continue;
      const std::string inner = tok.text.substr(1, 4);
      if (inner[0] != 'K' || inner[1] != 'W') continue;
      bool tag_like = true;
      for (char c : inner) {
        if (std::isupper(static_cast<unsigned char>(c)) == 0 &&
            std::isdigit(static_cast<unsigned char>(c)) == 0) {
          tag_like = false;
        }
      }
      if (tag_like) model.tags.push_back({inner, file.path, tok.line});
    }

    // --- Save/Load op-sequence sections ------------------------------------
    // The same function-definition walk kwsc-lint's archive-symmetry pass
    // uses: class-context stack, keyword screen, body detection.
    std::vector<std::pair<std::string, size_t>> class_stack;
    std::string pending_class;
    static const std::set<std::string> kNotFunctions = {
        "if",     "for",           "while",    "switch",  "return",
        "sizeof", "static_assert", "decltype", "alignof", "catch",
        "requires"};
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind == Token::kIdent &&
          (tok.text == "class" || tok.text == "struct") &&
          (i == 0 || (toks[i - 1].text != "enum" && toks[i - 1].text != "<" &&
                      toks[i - 1].text != ",")) &&
          i + 1 < toks.size() && toks[i + 1].kind == Token::kIdent) {
        pending_class = toks[i + 1].text;
        continue;
      }
      if (tok.text == ";") {
        pending_class.clear();
        continue;
      }
      if (tok.text == "{") {
        if (!pending_class.empty()) {
          class_stack.emplace_back(pending_class, MatchingClose(toks, i));
          pending_class.clear();
        }
        continue;
      }
      while (!class_stack.empty() && i >= class_stack.back().second) {
        class_stack.pop_back();
      }
      if (tok.kind != Token::kIdent || i + 1 >= toks.size() ||
          toks[i + 1].text != "(" || kNotFunctions.count(tok.text) > 0) {
        continue;
      }
      const size_t params_close = MatchingClose(toks, i + 1);
      if (params_close >= toks.size()) continue;
      size_t j = params_close + 1;
      bool is_definition = false;
      while (j < toks.size()) {
        const std::string& t = toks[j].text;
        if (t == "const" || t == "noexcept" || t == "override" ||
            t == "final" || t == "mutable") {
          ++j;
          continue;
        }
        if (t == "requires") {
          ++j;
          if (j < toks.size() && toks[j].text == "(") {
            j = MatchingClose(toks, j) + 1;
          }
          continue;
        }
        is_definition = t == "{";
        break;
      }
      if (!is_definition) continue;
      const size_t body_open = j;
      const size_t body_close = MatchingClose(toks, body_open);

      std::vector<FormatOp> ops =
          ExtractFormatOps(toks, body_open + 1, body_close);
      // Keep the section when the body issues a direct layout op, or when a
      // Save*/Load* function delegates to nested serializers (its call
      // order is the format).
      const bool save_load_named =
          StartsWith(tok.text, "Save") || StartsWith(tok.text, "Load");
      const bool direct = std::any_of(
          ops.begin(), ops.end(),
          [](const FormatOp& op) { return op.kind != "Sub"; });
      if (!ops.empty() && (direct || save_load_named)) {
        std::string owner;
        if (i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].kind == Token::kIdent) {
          owner = toks[i - 2].text;
        } else if (!class_stack.empty()) {
          owner = class_stack.back().first;
        }
        OpSection section;
        section.file = file.path;
        section.function =
            owner.empty() ? tok.text : owner + "::" + tok.text;
        section.line = tok.line;
        section.ops = std::move(ops);
        model.sections.push_back(std::move(section));
      }
      i = body_close;
    }
  }

  // --- resolve registrations against struct definitions --------------------
  std::set<std::string> aliases;
  for (StructInfo& info : model.structs) {
    if (!aliases.insert(info.alias).second) {
      model.errors.push_back(info.file + ":" + std::to_string(info.line) +
                             ": duplicate ABI registration alias '" +
                             info.alias + "'");
    }
    const std::string base = info.def_file;  // stashed base name
    info.def_file.clear();
    auto it = defs.find(base);
    if (it == defs.end() || it->second.empty()) {
      model.errors.push_back(info.file + ":" + std::to_string(info.line) +
                             ": registered type '" + info.type +
                             "' has no struct definition named '" + base +
                             "' anywhere under src/");
      continue;
    }
    // Prefer a definition in the registering file; otherwise the name must
    // be globally unique.
    std::vector<const DefSite*> candidates;
    for (const DefSite& site : it->second) {
      if (site.file == info.file) candidates.push_back(&site);
    }
    if (candidates.empty()) {
      for (const DefSite& site : it->second) candidates.push_back(&site);
    }
    if (candidates.size() != 1) {
      model.errors.push_back(
          info.file + ":" + std::to_string(info.line) + ": struct name '" +
          base + "' for registration '" + info.alias + "' is ambiguous (" +
          std::to_string(candidates.size()) +
          " definitions, none in the registering file)");
      continue;
    }
    info.def_file = candidates[0]->file;
    info.def_line = candidates[0]->line;
    info.fields = candidates[0]->fields;
    if (info.fields.empty()) {
      model.errors.push_back(info.file + ":" + std::to_string(info.line) +
                             ": registered struct '" + info.alias +
                             "' has no extractable fields");
    }
  }

  // --- coverage + tag cross-checks ------------------------------------------
  std::set<std::string> contributing;
  for (const StructInfo& s : model.structs) contributing.insert(s.file);
  for (const OpSection& s : model.sections) contributing.insert(s.file);
  for (const TagUse& t : model.tags) contributing.insert(t.file);
  std::map<std::string, const FormatSpec*> file_format;
  for (const std::string& path : contributing) {
    file_format[path] = FormatForPath(model, path, &model.errors);
  }
  std::map<std::string, std::set<std::string>> tags_seen;  // format -> tags
  for (const TagUse& use : model.tags) {
    const FormatSpec* spec = file_format[use.file];
    if (spec == nullptr) continue;
    tags_seen[spec->key].insert(use.tag);
    if (std::find(spec->tags.begin(), spec->tags.end(), use.tag) ==
        spec->tags.end()) {
      model.errors.push_back(use.file + ":" + std::to_string(use.line) +
                             ": tag '" + use.tag +
                             "' is not declared in format '" + spec->key +
                             "' (tags= in core/format_versions.h)");
    }
  }
  for (const FormatSpec& spec : model.formats) {
    for (const std::string& tag : spec.tags) {
      if (tags_seen[spec.key].count(tag) == 0) {
        model.errors.push_back(
            "core/format_versions.h:" + std::to_string(spec.line) +
            ": format '" + spec.key + "' declares tag '" + tag +
            "' but no covered file spells it");
      }
    }
  }

  // Canonical order for rendering and determinism.
  std::sort(model.structs.begin(), model.structs.end(),
            [](const StructInfo& a, const StructInfo& b) {
              return a.alias < b.alias;
            });
  std::sort(model.sections.begin(), model.sections.end(),
            [](const OpSection& a, const OpSection& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  std::sort(model.errors.begin(), model.errors.end());
  model.errors.erase(std::unique(model.errors.begin(), model.errors.end()),
                     model.errors.end());
  return model;
}

std::string EmitProbeSource(const Model& model) {
  std::ostringstream out;
  out << "// Generated by kwsc-abi emit-probe. Do not edit.\n"
      << "//\n"
      << "// Measures the real layout of every KWSC_ABI_STRUCT* "
         "registration\n"
      << "// (sizeof / alignof / offsetof per field) and static_asserts the\n"
      << "// portability contract: trivially copyable, standard layout,\n"
      << "// little-endian host, and — for non-PADDED registrations — zero\n"
      << "// padding (field sizes sum to sizeof).\n"
      << "#include <bit>\n"
      << "#include <cstddef>\n"
      << "#include <cstdio>\n"
      << "#include <type_traits>\n\n";
  std::set<std::string> includes;
  for (const StructInfo& info : model.structs) {
    std::string path = info.file;
    if (StartsWith(path, "src/")) path = path.substr(4);
    includes.insert(path);
  }
  for (const std::string& path : includes) {
    out << "#include \"" << path << "\"\n";
  }
  out << "\nstatic_assert(std::endian::native == std::endian::little,\n"
      << "              \"kwsc on-disk formats are little-endian\");\n\n"
      << "int main() {\n";
  for (const StructInfo& info : model.structs) {
    out << "  {\n"
        << "    using T = kwsc::KwscAbi_" << info.alias << ";\n"
        << "    static_assert(std::is_trivially_copyable_v<T>);\n"
        << "    static_assert(std::is_standard_layout_v<T>);\n";
    if (!info.padded && !info.fields.empty()) {
      out << "    static_assert(";
      for (size_t i = 0; i < info.fields.size(); ++i) {
        if (i > 0) out << " + ";
        out << "sizeof(T::" << info.fields[i].name << ")";
      }
      out << " == sizeof(T),\n                  \"" << info.alias
          << ": padding crept into a non-PADDED ABI struct\");\n";
    }
    out << "    std::printf(\"struct " << info.alias
        << " size %zu align %zu\\n\", sizeof(T), alignof(T));\n";
    for (const Field& field : info.fields) {
      out << "    std::printf(\"field " << info.alias << " " << field.name
          << " offset %zu size %zu\\n\", offsetof(T, " << field.name
          << "), sizeof(T::" << field.name << "));\n";
    }
    out << "  }\n";
  }
  out << "  return 0;\n"
      << "}\n";
  return out.str();
}

ProbeLayout ParseProbeOutput(const std::string& text,
                             std::vector<std::string>* errors) {
  ProbeLayout layout;
  std::istringstream stream(text);
  std::string line;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "struct") {
      std::string alias, size_kw, align_kw;
      uint64_t size = 0, align = 0;
      fields >> alias >> size_kw >> size >> align_kw >> align;
      if (fields.fail() || size_kw != "size" || align_kw != "align") {
        errors->push_back("probe output line " + std::to_string(lineno) +
                          ": malformed struct line: " + line);
        continue;
      }
      layout[alias].size = size;
      layout[alias].align = align;
    } else if (kind == "field") {
      std::string alias, name, off_kw, size_kw;
      uint64_t offset = 0, size = 0;
      fields >> alias >> name >> off_kw >> offset >> size_kw >> size;
      if (fields.fail() || off_kw != "offset" || size_kw != "size") {
        errors->push_back("probe output line " + std::to_string(lineno) +
                          ": malformed field line: " + line);
        continue;
      }
      layout[alias].fields[name] = {offset, size};
    } else {
      errors->push_back("probe output line " + std::to_string(lineno) +
                        ": unrecognized: " + line);
    }
  }
  return layout;
}

std::string RenderManifest(const Model& model, const ProbeLayout& layout,
                           std::vector<std::string>* errors) {
  if (!model.errors.empty()) {
    errors->insert(errors->end(), model.errors.begin(), model.errors.end());
    return "";
  }
  // Bucket content under its owning format.
  std::vector<std::string> scratch;
  std::map<std::string, std::vector<const StructInfo*>> structs_by_format;
  std::map<std::string, std::vector<const OpSection*>> sections_by_format;
  std::map<std::string, std::set<std::string>> tags_by_format;
  for (const StructInfo& info : model.structs) {
    const FormatSpec* spec = FormatForPath(model, info.file, &scratch);
    if (spec != nullptr) structs_by_format[spec->key].push_back(&info);
  }
  for (const OpSection& section : model.sections) {
    const FormatSpec* spec = FormatForPath(model, section.file, &scratch);
    if (spec != nullptr) sections_by_format[spec->key].push_back(&section);
  }
  for (const TagUse& use : model.tags) {
    const FormatSpec* spec = FormatForPath(model, use.file, &scratch);
    if (spec != nullptr) tags_by_format[spec->key].insert(use.tag);
  }

  std::ostringstream out;
  out << "# FORMATS.lock — the canonical format/ABI manifest.\n"
      << "#\n"
      << "# Generated by kwsc-abi from the sources under src/; do not edit "
         "by hand.\n"
      << "# Regenerate: tools/run_abi.sh --update   (or: cmake --build "
         "build --target abi)\n"
      << "#\n"
      << "# Any diff under a `format` block must land together with a bump "
         "of that\n"
      << "# format's version constant in src/core/format_versions.h — the "
         "abi-gate\n"
      << "# (tools/run_abi.sh, CI job abi-gate) enforces both halves.\n";

  std::vector<const FormatSpec*> formats;
  for (const FormatSpec& spec : model.formats) formats.push_back(&spec);
  std::sort(formats.begin(), formats.end(),
            [](const FormatSpec* a, const FormatSpec* b) {
              return a->key < b->key;
            });
  for (const FormatSpec* spec : formats) {
    out << "\nformat " << spec->key << " version " << spec->version
        << " constant " << spec->constant << "\n";
    for (const std::string& tag : tags_by_format[spec->key]) {
      out << "  tag " << tag << "\n";
    }
    for (const StructInfo* info : structs_by_format[spec->key]) {
      auto it = layout.find(info->alias);
      if (it == layout.end()) {
        errors->push_back("registration '" + info->alias +
                          "' has no probe measurement (stale probe binary?)");
        continue;
      }
      const ProbeStruct& probe = it->second;
      out << "  struct " << info->alias << " type " << info->type << " size "
          << probe.size << " align " << probe.align << "\n";
      uint64_t cursor = 0;
      bool offsets_ok = true;
      for (const Field& field : info->fields) {
        auto fit = probe.fields.find(field.name);
        if (fit == probe.fields.end()) {
          errors->push_back("field '" + info->alias + "." + field.name +
                            "' has no probe measurement");
          offsets_ok = false;
          continue;
        }
        out << "    field " << field.name << " " << field.type << field.array
            << " offset " << fit->second.offset << " size " << fit->second.size
            << "\n";
        // Record padding gaps so a moved gap diffs even when offsets of the
        // surviving fields do not.
        if (fit->second.offset > cursor) {
          out << "    padding offset " << cursor << " len "
              << (fit->second.offset - cursor) << "\n";
        }
        cursor = std::max(cursor, fit->second.offset + fit->second.size);
      }
      if (offsets_ok && cursor < probe.size) {
        out << "    padding offset " << cursor << " len "
            << (probe.size - cursor) << "\n";
      }
    }
    for (const OpSection* section : sections_by_format[spec->key]) {
      out << "  section " << section->file << " " << section->function << "\n";
      for (const FormatOp& op : section->ops) {
        out << "    op " << op.kind;
        if (!op.detail.empty()) out << " " << op.detail;
        out << "\n";
      }
    }
  }
  if (!errors->empty()) return "";
  return out.str();
}

namespace {

struct FormatBlock {
  uint32_t version = 0;
  std::string constant;
  std::vector<std::string> body;
};

std::map<std::string, FormatBlock> ParseManifest(const std::string& text) {
  std::map<std::string, FormatBlock> blocks;
  std::istringstream stream(text);
  std::string line;
  std::string current;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (StartsWith(line, "format ")) {
      std::istringstream fields(line);
      std::string kw, key, version_kw, constant_kw;
      uint32_t version = 0;
      FormatBlock block;
      fields >> kw >> key >> version_kw >> version >> constant_kw >>
          block.constant;
      block.version = version;
      current = key;
      blocks[current] = std::move(block);
      continue;
    }
    if (!current.empty()) blocks[current].body.push_back(line);
  }
  return blocks;
}

}  // namespace

DiffResult DiffManifests(const std::string& old_text,
                         const std::string& new_text) {
  DiffResult result;
  const auto old_blocks = ParseManifest(old_text);
  const auto new_blocks = ParseManifest(new_text);
  std::set<std::string> keys;
  for (const auto& [key, block] : old_blocks) keys.insert(key);
  for (const auto& [key, block] : new_blocks) keys.insert(key);
  for (const std::string& key : keys) {
    const auto old_it = old_blocks.find(key);
    const auto new_it = new_blocks.find(key);
    if (new_it == new_blocks.end()) {
      result.violations.push_back(
          "format '" + key +
          "' was removed from the manifest; formats may gain versions but "
          "never vanish (readers of old files need the contract on record)");
      continue;
    }
    if (old_it == old_blocks.end()) {
      result.changes.push_back("format '" + key + "' added (version " +
                               std::to_string(new_it->second.version) + ")");
      continue;
    }
    const FormatBlock& old_block = old_it->second;
    const FormatBlock& new_block = new_it->second;
    if (new_block.version < old_block.version) {
      result.violations.push_back(
          "format '" + key + "': version went backwards (" +
          std::to_string(old_block.version) + " -> " +
          std::to_string(new_block.version) + "); versions only grow");
    }
    if (old_block.body == new_block.body) continue;
    // Trim the common prefix/suffix to show just the drift.
    const auto& a = old_block.body;
    const auto& b = new_block.body;
    size_t prefix = 0;
    while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
      ++prefix;
    }
    size_t suffix = 0;
    while (suffix < a.size() - prefix && suffix < b.size() - prefix &&
           a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
      ++suffix;
    }
    std::string detail = "format '" + key + "' changed:";
    constexpr size_t kMaxShown = 20;
    size_t shown = 0;
    for (size_t i = prefix; i < a.size() - suffix && shown < kMaxShown;
         ++i, ++shown) {
      detail += "\n  -" + a[i];
    }
    for (size_t i = prefix; i < b.size() - suffix && shown < 2 * kMaxShown;
         ++i, ++shown) {
      detail += "\n  +" + b[i];
    }
    result.changes.push_back(detail);
    if (new_block.version <= old_block.version) {
      result.violations.push_back(
          "format '" + key + "': locked content changed but version stayed " +
          std::to_string(old_block.version) + "; bump " + new_block.constant +
          " in src/core/format_versions.h in the same change");
    }
  }
  return result;
}

std::vector<SourceFile> LoadTree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> sources;
  const fs::path src = fs::path(repo_root) / "src";
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    sources.push_back({fs::relative(entry.path(), fs::path(repo_root))
                           .generic_string(),
                       contents.str()});
  }
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return sources;
}

}  // namespace abi
}  // namespace kwsc
