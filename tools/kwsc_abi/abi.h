// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// kwsc-abi: the format-contract extractor behind FORMATS.lock.
//
// Everything kwsc persists or ships — v1 stream archives, v2 mmap flat
// containers, the serve wire model — is defined by C++ constructs scattered
// across src/: structs reinterpreted from mapped bytes, Magic(tag, version)
// framing, ordered Pod/Vec op sequences, slab-write sequences. This tool
// extracts all of them into one canonical committed manifest (FORMATS.lock)
// so that any layout drift shows up as a reviewable text diff, and the
// abi-gate can demand that the diff lands together with a bump of the
// owning format's version constant (core/format_versions.h).
//
// The extraction reuses kwsc-lint's lexical scanner (tools/kwsc_lint/
// scanner.h): same token stream, same declaration heuristics, so a
// construct kwsc-lint can check is a construct kwsc-abi can lock. What the
// scanner cannot know — real offsets, sizes, alignment, padding — comes
// from a *generated probe translation unit* (EmitProbeSource): a tiny
// program that includes the registering headers, static_asserts
// trivial-copyability / standard layout / little-endian host / absence of
// padding (for non-PADDED registrations), and prints offsetof/sizeof for
// every registered field. The driver compiles nothing itself; CMake builds
// the probe and the driver runs it (see tools/kwsc_abi/CMakeLists.txt).
//
// Pipeline:
//   LoadTree        -> the sources under <repo>/src, sorted
//   BuildModel      -> registrations, struct defs + fields, Save/Load op
//                      sequences, tag uses, format table, coverage checks
//   EmitProbeSource -> abi_probe.gen.cc (compiled by CMake)
//   ParseProbeOutput-> alias -> {size, align, field offsets/sizes}
//   RenderManifest  -> canonical FORMATS.lock text
//   DiffManifests   -> drift gate: content changes require version bumps

#ifndef KWSC_TOOLS_KWSC_ABI_ABI_H_
#define KWSC_TOOLS_KWSC_ABI_ABI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "scanner.h"

namespace kwsc {
namespace abi {

struct SourceFile {
  std::string path;  // repo-relative, e.g. "src/core/orp_kw.h"
  std::string contents;
};

/// One `kwsc-abi: format` annotation from core/format_versions.h.
struct FormatSpec {
  std::string key;       // manifest name, e.g. "orp-kw"
  std::string constant;  // e.g. "kOrpKwFormatVersion"
  uint32_t version = 0;
  std::vector<std::string> tags;   // 4-char magic/family tags, e.g. "KWO1"
  std::vector<std::string> files;  // path substrings assigning files
  int line = 0;
};

/// One field of a registered struct, as spelled in the source definition.
struct Field {
  std::string name;
  std::string type;   // canonical one-space token spelling
  std::string array;  // declarator suffix, e.g. "[ 2 ]"; empty if scalar
  int line = 0;
};

/// One KWSC_ABI_STRUCT* registration resolved against its definition.
struct StructInfo {
  std::string alias;  // manifest key; the probe names it KwscAbi_<alias>
  std::string type;   // registered type spelling
  std::string file;   // registration site
  int line = 0;
  bool padded = false;  // KWSC_ABI_STRUCT_PADDED_AS: gaps allowed, recorded
  std::string def_file;  // where the struct body was found
  int def_line = 0;
  std::vector<Field> fields;
};

/// One op in a Save*/Load* body: v1 archive ops (Magic/Pod/Vec), flat slab
/// ops (Slab/Root), and nested Save*/Load* calls (Sub).
struct FormatOp {
  std::string kind;    // "Magic" | "Pod" | "Vec" | "Slab" | "Root" | "Sub"
  std::string detail;  // tag literal / template args / call spelling
  int line = 0;
};

/// The ordered op sequence of one Save*/Load* function.
struct OpSection {
  std::string file;
  std::string function;  // Owner::Name (owner empty for free functions)
  int line = 0;
  std::vector<FormatOp> ops;
};

/// A 4-char magic / family tag spelled in a source file.
struct TagUse {
  std::string tag;
  std::string file;
  int line = 0;
};

struct Model {
  std::vector<FormatSpec> formats;
  std::vector<StructInfo> structs;
  std::vector<OpSection> sections;
  std::vector<TagUse> tags;
  /// Coverage and consistency violations; a non-empty list blocks manifest
  /// emission (every contributing file must map to exactly one format,
  /// every spelled tag must be declared, every declared tag spelled, every
  /// registration resolvable to exactly one struct definition).
  std::vector<std::string> errors;
};

/// Scans `sources` (repo-relative paths) and assembles the model.
Model BuildModel(const std::vector<SourceFile>& sources);

/// The format covering `path`, or nullptr (with an error appended) when the
/// path matches zero or more than one format's file substrings.
const FormatSpec* FormatForPath(const Model& model, const std::string& path,
                                std::vector<std::string>* errors);

struct ProbeField {
  uint64_t offset = 0;
  uint64_t size = 0;
};
struct ProbeStruct {
  uint64_t size = 0;
  uint64_t align = 0;
  std::map<std::string, ProbeField> fields;  // by field name
};
/// alias -> measured layout.
using ProbeLayout = std::map<std::string, ProbeStruct>;

/// Generates the probe translation unit for `model`'s registrations.
std::string EmitProbeSource(const Model& model);

/// Parses the probe's stdout ("struct ..." / "field ..." lines).
ProbeLayout ParseProbeOutput(const std::string& text,
                             std::vector<std::string>* errors);

/// Renders the canonical manifest. Appends to `errors` (and returns "") when
/// the model has errors or a registration has no probe measurement.
std::string RenderManifest(const Model& model, const ProbeLayout& layout,
                           std::vector<std::string>* errors);

struct DiffResult {
  std::vector<std::string> changes;     // human-readable, per format
  std::vector<std::string> violations;  // drift without the required bump
};

/// Compares two manifests format-by-format. Any change to a format's locked
/// content (structs, fields, layout numbers, op sequences, tags) requires
/// that format's version to strictly increase; removing a format or
/// decreasing a version is always a violation. New formats are fine.
DiffResult DiffManifests(const std::string& old_text,
                         const std::string& new_text);

/// Reads every .h/.cc under <repo_root>/src, sorted by path.
std::vector<SourceFile> LoadTree(const std::string& repo_root);

}  // namespace abi
}  // namespace kwsc

#endif  // KWSC_TOOLS_KWSC_ABI_ABI_H_
