#!/usr/bin/env bash
# cppcheck pass over first-party sources, the second static-analysis opinion
# next to clang-tidy (different engine, different false-negative profile).
#
# Usage: tools/run_cppcheck.sh
#
# Blocking: the warn-first burn-down is done and the CI job fails on any
# finding. Like run_tidy.sh, an absent tool degrades to a no-op with a
# warning (developer containers ship only gcc; CI installs the real tool).
set -euo pipefail

cd "$(dirname "$0")/.."

CPPCHECK="${CPPCHECK:-cppcheck}"
if ! command -v "$CPPCHECK" >/dev/null 2>&1; then
  echo "run_cppcheck.sh: WARNING: '$CPPCHECK' not found; skipping." >&2
  echo "run_cppcheck.sh: install cppcheck (or set CPPCHECK) to enforce it." >&2
  exit 0
fi

echo "run_cppcheck.sh: $("$CPPCHECK" --version)"

# --enable: warning+performance+portability; style is clang-tidy's job and
# unusedFunction misfires on template/header-only code. --inline-suppr
# honours `// cppcheck-suppress id` comments at audited sites.
if "$CPPCHECK" \
    --enable=warning,performance,portability \
    --std=c++20 \
    --language=c++ \
    --inline-suppr \
    --suppressions-list=tools/cppcheck-suppressions.txt \
    --error-exitcode=1 \
    --quiet \
    -I src \
    -i tests/lint_fixtures \
    -i tests/negative_compile \
    src tests bench examples; then
  echo "run_cppcheck.sh: OK"
else
  echo "run_cppcheck.sh: FAILED — cppcheck findings above (fix, add an" >&2
  echo "run_cppcheck.sh: inline 'cppcheck-suppress' comment, or extend" >&2
  echo "run_cppcheck.sh: tools/cppcheck-suppressions.txt)." >&2
  exit 1
fi
