#!/usr/bin/env bash
# Formatting gate: every first-party source must match .clang-format.
#
# Usage: tools/check_format.sh          # check (CI mode, fails on drift)
#        tools/check_format.sh --fix    # rewrite files in place
#
# When clang-format is not installed the gate degrades to a no-op with a
# warning instead of failing: developer containers ship only gcc; CI installs
# the real tool and is where the gate has teeth.
set -euo pipefail

cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "check_format.sh: WARNING: '$FMT' not found; skipping format gate." >&2
  echo "check_format.sh: install clang-format (or set CLANG_FORMAT)." >&2
  exit 0
fi

# tests/lint_fixtures/ is excluded: those files are a scan-only corpus for
# kwsc-lint whose seeded violations depend on exact token/line placement;
# reformatting them would silently move or mask what they seed.
mapfile -t FILES < <(find src tests bench examples \
  -path 'tests/lint_fixtures' -prune -o \
  \( -name '*.cc' -o -name '*.h' \) -print | sort)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check_format.sh: FAILED — file discovery returned nothing." >&2
  exit 1
fi

if [ "${1:-}" = "--fix" ]; then
  "$FMT" -i "${FILES[@]}"
  echo "check_format.sh: reformatted ${#FILES[@]} files."
  exit 0
fi

# Exit code 1 from --dry-run --Werror means drift; anything else means the
# tool itself failed (bad invocation, crash) and must fail the gate loudly
# rather than masquerade as a formatting finding.
STATUS=0
for f in "${FILES[@]}"; do
  rc=0
  "$FMT" --dry-run --Werror "$f" >/dev/null 2>&1 || rc=$?
  if [ "$rc" -eq 1 ]; then
    echo "needs formatting: $f"
    STATUS=1
  elif [ "$rc" -ne 0 ]; then
    echo "check_format.sh: FAILED — '$FMT' exited $rc on $f." >&2
    exit "$rc"
  fi
done

if [ "$STATUS" -ne 0 ]; then
  echo "check_format.sh: FAILED — run tools/check_format.sh --fix." >&2
else
  echo "check_format.sh: OK (${#FILES[@]} files)"
fi
exit "$STATUS"
