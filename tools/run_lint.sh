#!/usr/bin/env bash
# kwsc-lint gate: the project-specific static analyzer over the real tree.
#
# Usage: tools/run_lint.sh [build-dir]
#
# Unlike run_tidy.sh, this gate never degrades to a no-op: kwsc_lint is built
# from this repo with the same toolchain as everything else, so it is always
# available. The script builds the kwsc_lint target if the build directory is
# configured, then scans src/ bench/ tests/ examples/ under
# tools/lint_allowlist.txt. Any finding fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/tools/kwsc_lint/kwsc_lint"

if [ ! -d "$BUILD_DIR" ]; then
  echo "run_lint.sh: no build directory '$BUILD_DIR'; configure first:" >&2
  echo "run_lint.sh:   cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

if ! cmake --build "$BUILD_DIR" --target kwsc_lint -j >/dev/null; then
  echo "run_lint.sh: FAILED — could not build the kwsc_lint target." >&2
  exit 1
fi

if "$BIN" --allowlist tools/lint_allowlist.txt src bench tests examples; then
  echo "run_lint.sh: OK"
else
  echo "run_lint.sh: FAILED — kwsc-lint findings above (fix the code, add an" >&2
  echo "run_lint.sh: inline 'kwsc-lint: allow(rule-id)' with a justification," >&2
  echo "run_lint.sh: or extend tools/lint_allowlist.txt for audited cases)." >&2
  exit 1
fi
