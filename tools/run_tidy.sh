#!/usr/bin/env bash
# clang-tidy gate over every first-party translation unit.
#
# Usage: tools/run_tidy.sh [build-dir]
#
# Needs a configured build directory with a compile_commands.json (default:
# build/; configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON, which the CI
# workflow does). Any warning fails the run (WarningsAsErrors: '*' in
# .clang-tidy).
#
# When clang-tidy is not installed the gate degrades to a no-op with a
# warning instead of failing: developer containers ship only gcc; CI installs
# the real tool and is where the gate has teeth.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: WARNING: '$TIDY' not found; skipping the tidy gate." >&2
  echo "run_tidy.sh: install clang-tidy (or set CLANG_TIDY) to enforce it." >&2
  exit 0
fi

# The gate is pinned to one clang-tidy major so check semantics don't drift
# between a developer run and CI (CI installs clang-tidy-$PINNED_MAJOR and
# sets CLANG_TIDY accordingly). Other majors still run, with a warning, so a
# newer local toolchain stays usable.
PINNED_MAJOR=18
MAJOR="$("$TIDY" --version | sed -n 's/.*version \([0-9]*\)\..*/\1/p' | head -1)"
if [ -n "$MAJOR" ] && [ "$MAJOR" != "$PINNED_MAJOR" ]; then
  echo "run_tidy.sh: WARNING: $TIDY is major $MAJOR; the gate is pinned to" >&2
  echo "run_tidy.sh: clang-tidy-$PINNED_MAJOR — findings may differ from CI." >&2
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: no $BUILD_DIR/compile_commands.json." >&2
  echo "run_tidy.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON." >&2
  exit 1
fi

# First-party sources only; third-party code (if any appears) is not ours to
# lint. Headers are covered through HeaderFilterRegex in .clang-tidy.
# tests/lint_fixtures/ (scan-only corpus of seeded kwsc-lint violations) and
# tests/negative_compile/ (TUs that must NOT compile) are excluded: neither
# is in the compile database, and the latter fails by design.
mapfile -t FILES < <(find src tests bench examples \
  \( -path 'tests/lint_fixtures' -o -path 'tests/negative_compile' \) \
  -prune -o -name '*.cc' -print | sort)

# mapfile over a process substitution swallows find's exit status; an empty
# list is the observable symptom of that failure (or of running from the
# wrong directory) and must not pass as "0 files, 0 findings".
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_tidy.sh: FAILED — file discovery returned nothing." >&2
  exit 1
fi

echo "run_tidy.sh: linting ${#FILES[@]} translation units..."
STATUS=0
for f in "${FILES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$f"; then
    STATUS=1
  fi
done

if [ "$STATUS" -ne 0 ]; then
  echo "run_tidy.sh: FAILED — clang-tidy reported findings above." >&2
else
  echo "run_tidy.sh: OK"
fi
exit "$STATUS"
