// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// kwsc-lint: the project-specific static analyzer.
//
// A source scanner enforcing the repo rules clang-tidy cannot express — the
// rules are about *kwsc's* contracts (deterministic queries, symmetric
// archives, budgeted candidate enumeration, the threading model), not
// general C++ hygiene. The scanner deliberately stays lexical: no LLVM
// dependency, no compile database, millisecond runs, and the rules are
// written against the codebase's uniform idiom (which PR 2's format/tidy
// gates keep uniform). v2 runs in two passes — a declarations pass builds a
// lightweight semantic model of each file (what names are Mutexes, which
// identifiers hold mapped memory, what the annotations guard), and the rules
// then judge *uses* against those declarations instead of single tokens.
//
// Rules (ids as emitted in findings, `file:line: rule-id: message`):
//   determinism-clock  — no std::rand/srand/time()/clock()/steady_clock/...
//       outside src/obs/, src/common/timer.h, src/common/random.*. Queries
//       and builds must be reproducible; wall-clock reads belong to the
//       observability layer (DESIGN.md, substitution 3).
//   hash-order         — a FlatHashMap/FlatHashSet::ForEach whose lambda
//       accumulates into a vector (push_back/emplace_back) must be followed
//       by a sort: hash iteration order is seeded per-process, so unsorted
//       dumps leak nondeterminism into archives and results.
//   archive-symmetry   — for every Save/Load pair (member pair, or free
//       Save*/Load* pair), the two bodies must issue the same ordered
//       sequence of Magic/Pod/Vec/nested-serialize calls, with matching
//       explicit template arguments and magic tags where both sides spell
//       them. Catches field skew that byte-identity tests only find on
//       exercised paths.
//   ops-budget         — in core/ and serve/ files, a range-for over
//       ObjectId inside a
//       function taking an OpsBudget* must call Charge in its body (the
//       footnote-4 manual-termination device); audited exceptions go into
//       the allowlist file.
//   include-guard      — header guards must spell the file path
//       (src/core/orp_kw.h -> KWSC_CORE_ORP_KW_H_).
//   using-namespace    — no `using namespace` in headers.
//   copyright          — every source file opens with the copyright line.
//
// Concurrency rule pack (scoped to paths containing src/; the annotated
// vocabulary lives in common/mutex.h + common/thread_annotations.h, which
// are exempt):
//   thread-capture     — a lambda submitted to ThreadPool/TaskGroup
//       (Run/Enqueue) that captures by reference and writes the captured
//       object (assignment, ++/--, mutating method) without taking a
//       MutexLock. Elementwise writes (`slots[i] = ...`) are the sanctioned
//       disjoint-sharing idiom and do not fire.
//   concurrency-static-state — in src/core/ and src/common/, `static`
//       object declarations that are not const/constexpr, std::atomic,
//       thread_local, a Mutex, or KWSC_GUARDED_BY-annotated: silent
//       cross-thread shared state.
//   concurrency-raw-thread — std::thread/jthread, pthread_*, or detach()
//       outside common/thread_pool.*; all parallelism is fork/join on the
//       audited pool.
//   concurrency-raw-mutex — raw std synchronization types (mutex,
//       lock_guard, condition_variable, ...) outside common/mutex.h; locks
//       the annotations cannot see are locks the analysis cannot check.
//   concurrency-unguarded-mutex — a `Mutex name_;` member never named by
//       any KWSC_* annotation argument: a lock with no stated discipline.
//
// Flat-slab escape analysis (the mmap v2 format; common/flat_arena.* is
// the one place allowed to touch raw bytes):
//   flat-escape        — reinterpret_cast in a statement involving an
//       MmapFile/SlabRef/FlatArenaReader-typed identifier, or pointer
//       arithmetic on a std::byte* view; mapped bytes are read through
//       FlatArenaReader's bounds-checked accessors only.
//   flat-retain        — a member-shaped declaration (trailing '_') of type
//       FlatArenaReader or std::byte*: a retained view that can outlive the
//       mapping it points into. Store the MmapFile and re-derive.
//
// Epoch/snapshot discipline (the batch-dynamic read path; common/epoch.h
// defines the vocabulary and is exempt):
//   epoch-nonapi-access — an EpochPtr member touched through anything other
//       than .Acquire()/.Publish()/.epoch(), or a snapshot obtained from
//       Acquire() mutated in place (mutating method, member assignment)
//       while in scope. Published level sets are deep-immutable; every
//       access goes through the epoch API so concurrent readers never see
//       a half-built or shifting state (DESIGN.md §7).
//
// v3 ABI/format rule pack (scoped to paths containing src/; the vocabulary
// lives in common/abi.h + core/format_versions.h, which are exempt). These
// are the per-file fast checks backing the tree-wide FORMATS.lock drift
// gate (tools/kwsc_abi, DESIGN.md §5h):
//   abi-unregistered-struct — a struct defined in a file and reinterpreted
//       from mapped bytes there (named in a Slab<T>/SlabOk<T>/Root<T>/
//       RootOk<T> element type) without a KWSC_ABI_STRUCT registration in
//       the same file: a persisted layout the manifest cannot lock.
//   abi-raw-width      — a platform-width type spelling (int, long, size_t,
//       ...) inside a registered ABI struct's definition; persisted/wire
//       fields spell fixed-width types.
//   abi-version-bump   — `Magic("TAG", <numeric literal>)`: format versions
//       are named constants in core/format_versions.h so the abi-gate can
//       tie a layout diff to a version bump.
//
// Suppression, most-specific first: an inline `kwsc-lint: allow(rule-id)`
// comment on the finding's line or the line above; an allowlist entry
// (`rule-id  path-substring  [line-substring]`); the hardcoded path
// exemptions baked into individual rules.

#ifndef KWSC_TOOLS_KWSC_LINT_LINT_H_
#define KWSC_TOOLS_KWSC_LINT_LINT_H_

#include <string>
#include <vector>

namespace kwsc {
namespace lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     // e.g. "archive-symmetry"
  std::string message;  // human-readable detail

  std::string Format() const;
};

/// One allowlist entry: suppress `rule` findings in files whose path
/// contains `path_substring` and (when non-empty) whose flagged source line
/// contains `line_substring`.
struct AllowEntry {
  std::string rule;
  std::string path_substring;
  std::string line_substring;
};

/// Parses allowlist text: one entry per line, whitespace-separated fields
/// `rule path-substring [line-substring]`; '#' starts a comment.
std::vector<AllowEntry> ParseAllowlist(const std::string& text);

/// Reads the allowlist file; returns empty on a missing file.
std::vector<AllowEntry> LoadAllowlistFile(const std::string& path);

class Linter {
 public:
  explicit Linter(std::vector<AllowEntry> allowlist)
      : allowlist_(std::move(allowlist)) {}

  /// Sets the repo root; absolute paths handed to LintFile/LintTree are
  /// reported (and rule-matched) relative to it.
  void SetRoot(std::string root) { root_ = std::move(root); }

  /// Lints one file's contents. `path` is the repo-relative path (rules key
  /// off it: scope checks, guard derivation, exemptions).
  void LintSource(const std::string& path, const std::string& contents);

  /// Reads and lints one file from disk. Returns false if unreadable.
  bool LintFile(const std::string& path);

  /// Recursively lints every .h/.cc/.cpp under `dir`, skipping
  /// lint_fixtures/ (seeded-violation corpora), negative_compile/, and
  /// hidden/build directories.
  /// Paths are reported relative to the current working directory.
  bool LintTree(const std::string& dir);

  /// Findings surviving suppression, sorted by (file, line, rule).
  std::vector<Finding> TakeFindings();

 private:
  void Report(const std::string& path, int line, const std::string& rule,
              std::string message, const std::string& source_line);
  bool Suppressed(const std::string& path, const std::string& rule,
                  const std::string& source_line, bool inline_allowed) const;

  std::vector<AllowEntry> allowlist_;
  std::vector<Finding> findings_;
  std::string root_;
};

}  // namespace lint
}  // namespace kwsc

#endif  // KWSC_TOOLS_KWSC_LINT_LINT_H_
