// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kwsc {
namespace lint {

std::string Finding::Format() const {
  std::ostringstream out;
  out << file << ":" << line << ": " << rule << ": " << message;
  return out.str();
}

std::vector<AllowEntry> ParseAllowlist(const std::string& text) {
  std::vector<AllowEntry> entries;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    AllowEntry entry;
    if (!(fields >> entry.rule >> entry.path_substring)) continue;
    // The rest of the line (trimmed) is the optional line-substring, so it
    // may itself contain spaces.
    std::string rest;
    std::getline(fields, rest);
    const size_t begin = rest.find_first_not_of(" \t");
    if (begin != std::string::npos) {
      const size_t end = rest.find_last_not_of(" \t");
      entry.line_substring = rest.substr(begin, end - begin + 1);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<AllowEntry> LoadAllowlistFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::ostringstream text;
  text << in.rdbuf();
  return ParseAllowlist(text.str());
}

namespace {

// ---------------------------------------------------------------------------
// Lexer: comments and preprocessor lines stripped from the token stream
// (preprocessor directives and allow-comments are collected on the side).
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Scan {
  std::vector<std::string> lines;  // 0-based; lines[i] is source line i+1.
  std::vector<Token> tokens;
  std::vector<std::pair<int, std::string>> preprocessor;  // (line, directive)
  std::map<int, std::vector<std::string>> allow;  // line -> allowed rule ids
};

void RecordAllowComment(Scan* scan, int line, std::string_view comment) {
  static constexpr std::string_view kTag = "kwsc-lint: allow(";
  size_t pos = comment.find(kTag);
  while (pos != std::string_view::npos) {
    const size_t open = pos + kTag.size();
    const size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    scan->allow[line].emplace_back(comment.substr(open, close - open));
    pos = comment.find(kTag, close);
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Scan Tokenize(const std::string& contents) {
  Scan scan;
  {
    std::istringstream stream(contents);
    std::string line;
    while (std::getline(stream, line)) scan.lines.push_back(line);
  }

  const size_t n = contents.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // Only whitespace seen since the last newline.
  auto advance = [&](size_t count) {
    for (size_t j = 0; j < count && i < n; ++j, ++i) {
      if (contents[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = contents[i];
    if (c == '\n') {
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && contents[i + 1] == '/') {
      const size_t end = contents.find('\n', i);
      const size_t stop = end == std::string::npos ? n : end;
      RecordAllowComment(&scan, line,
                         std::string_view(contents).substr(i, stop - i));
      advance(stop - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && contents[i + 1] == '*') {
      const size_t end = contents.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? n : end + 2;
      RecordAllowComment(&scan, line,
                         std::string_view(contents).substr(i, stop - i));
      advance(stop - i);
      continue;
    }
    // Preprocessor directive (with backslash continuations), only when '#'
    // is the first non-whitespace character on the line.
    if (c == '#' && at_line_start) {
      const int directive_line = line;
      size_t end = i;
      while (end < n) {
        const size_t newline = contents.find('\n', end);
        const size_t stop = newline == std::string::npos ? n : newline;
        // A trailing backslash continues the directive onto the next line.
        size_t last = stop;
        while (last > end &&
               std::isspace(static_cast<unsigned char>(contents[last - 1])) !=
                   0 &&
               contents[last - 1] != '\n') {
          --last;
        }
        if (last > end && contents[last - 1] == '\\' && newline != std::string::npos) {
          end = newline + 1;
          continue;
        }
        end = stop;
        break;
      }
      scan.preprocessor.emplace_back(directive_line,
                                     contents.substr(i, end - i));
      advance(end - i);
      continue;
    }
    at_line_start = false;
    // String literal.
    if (c == '"') {
      size_t j = i + 1;
      while (j < n && contents[j] != '"') {
        if (contents[j] == '\\') ++j;
        ++j;
      }
      const size_t stop = j < n ? j + 1 : n;
      scan.tokens.push_back(
          {Token::kString, contents.substr(i, stop - i), line});
      advance(stop - i);
      continue;
    }
    // Character literal (the lexer does not need digraph/UDL fidelity).
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && contents[j] != '\'') {
        if (contents[j] == '\\') ++j;
        ++j;
      }
      const size_t stop = j < n ? j + 1 : n;
      scan.tokens.push_back({Token::kChar, contents.substr(i, stop - i), line});
      advance(stop - i);
      continue;
    }
    // Identifier / keyword.
    if (IsIdentChar(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      size_t j = i;
      while (j < n && IsIdentChar(contents[j])) ++j;
      scan.tokens.push_back({Token::kIdent, contents.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Number (good enough: digits plus identifier-ish suffixes and dots).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i;
      while (j < n && (IsIdentChar(contents[j]) || contents[j] == '.' ||
                       ((contents[j] == '+' || contents[j] == '-') && j > i &&
                        (contents[j - 1] == 'e' || contents[j - 1] == 'E')))) {
        ++j;
      }
      scan.tokens.push_back({Token::kNumber, contents.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Punctuation; '::' and '->' matter to the rules, so keep them fused.
    if (c == ':' && i + 1 < n && contents[i + 1] == ':') {
      scan.tokens.push_back({Token::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && contents[i + 1] == '>') {
      scan.tokens.push_back({Token::kPunct, "->", line});
      advance(2);
      continue;
    }
    scan.tokens.push_back({Token::kPunct, std::string(1, c), line});
    advance(1);
  }
  return scan;
}

/// Index of the token matching the opener at `open` ('(' or '{' or '<'),
/// or tokens.size() if unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  const std::string& open_text = tokens[open].text;
  const std::string close_text =
      open_text == "(" ? ")" : open_text == "{" ? "}" : ">";
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == open_text) {
      ++depth;
    } else if (tokens[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

bool RangeContainsIdent(const std::vector<Token>& tokens, size_t begin,
                        size_t end, std::string_view ident) {
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (tokens[i].kind == Token::kIdent && tokens[i].text == ident) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Archive-symmetry bookkeeping.
// ---------------------------------------------------------------------------

struct ArchiveOp {
  enum Kind { kMagic, kPod, kVec, kSub };
  Kind kind;
  std::string detail;  // Magic: tag literal; Pod/Vec: explicit template args
                       // ("" when deduced); Sub: callee suffix ("" for plain
                       // nested Save/Load).
  int line;
};

const char* OpName(ArchiveOp::Kind kind) {
  switch (kind) {
    case ArchiveOp::kMagic:
      return "Magic";
    case ArchiveOp::kPod:
      return "Pod";
    case ArchiveOp::kVec:
      return "Vec";
    case ArchiveOp::kSub:
      return "nested Save/Load";
  }
  return "?";
}

struct SerializeFn {
  std::string file;
  std::string owner;   // Class (or free-pair stem) the function belongs to.
  std::string suffix;  // "" for Save/Load, "Flat" for SaveFlat/LoadFlat.
  int line = 0;
  std::vector<ArchiveOp> ops;
};

}  // namespace

// ---------------------------------------------------------------------------
// Linter internals.
// ---------------------------------------------------------------------------

namespace {

struct LintContext {
  const std::string* path;       // Rule path (repo-relative).
  const Scan* scan;
  // Archive units discovered in this file, keyed by owner.
  std::map<std::string, std::vector<SerializeFn>>* saves;
  std::map<std::string, std::vector<SerializeFn>>* loads;
};

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.compare(0, prefix.size(), prefix) == 0;
}

std::string ExpectedGuard(const std::string& path) {
  std::string trimmed = path;
  if (StartsWith(trimmed, "src/")) trimmed = trimmed.substr(4);
  std::string guard = "KWSC_";
  for (char c : trimmed) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

/// Joins template-argument tokens into a canonical one-space spelling so the
/// same type spelled across Save and Load compares equal regardless of
/// whitespace in the source.
std::string JoinTokens(const std::vector<Token>& tokens, size_t begin,
                       size_t end) {
  std::string joined;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (!joined.empty()) joined += ' ';
    joined += tokens[i].text;
  }
  return joined;
}

}  // namespace

void Linter::Report(const std::string& path, int line, const std::string& rule,
                    std::string message, const std::string& source_line) {
  if (Suppressed(path, rule, source_line, /*inline_allowed=*/true)) return;
  findings_.push_back({path, line, rule, std::move(message)});
}

bool Linter::Suppressed(const std::string& path, const std::string& rule,
                        const std::string& source_line,
                        bool /*inline_allowed*/) const {
  for (const AllowEntry& entry : allowlist_) {
    if (entry.rule != rule && entry.rule != "*") continue;
    if (path.find(entry.path_substring) == std::string::npos) continue;
    if (!entry.line_substring.empty() &&
        source_line.find(entry.line_substring) == std::string::npos) {
      continue;
    }
    return true;
  }
  return false;
}

void Linter::LintSource(const std::string& path, const std::string& contents) {
  const Scan scan = Tokenize(contents);
  const bool is_header = EndsWith(path, ".h");
  const std::vector<Token>& toks = scan.tokens;

  auto line_text = [&scan](int line) -> std::string {
    if (line >= 1 && line <= static_cast<int>(scan.lines.size())) {
      return scan.lines[static_cast<size_t>(line - 1)];
    }
    return {};
  };
  auto inline_allowed = [&scan](int line, const std::string& rule) {
    for (int l : {line, line - 1}) {
      auto it = scan.allow.find(l);
      if (it == scan.allow.end()) continue;
      for (const std::string& r : it->second) {
        if (r == rule || r == "*") return true;
      }
    }
    return false;
  };
  auto report = [&](int line, const std::string& rule, std::string message) {
    if (inline_allowed(line, rule)) return;
    Report(path, line, rule, std::move(message), line_text(line));
  };

  // --- copyright -----------------------------------------------------------
  if (scan.lines.empty() || !StartsWith(scan.lines[0], "// Copyright")) {
    report(1, "copyright",
           "file must open with the '// Copyright' header line");
  }

  // --- include-guard -------------------------------------------------------
  if (is_header) {
    const std::string want = ExpectedGuard(path);
    std::string ifndef_name;
    std::string define_name;
    int guard_line = 1;
    // The first two directives must be the #ifndef/#define pair; anything
    // else (or #pragma once) is a violation.
    if (scan.preprocessor.size() >= 2) {
      std::istringstream first(scan.preprocessor[0].second);
      std::istringstream second(scan.preprocessor[1].second);
      std::string hash1;
      std::string hash2;
      first >> hash1 >> ifndef_name;
      second >> hash2 >> define_name;
      guard_line = scan.preprocessor[0].first;
      if (hash1 != "#ifndef") ifndef_name.clear();
      if (hash2 != "#define") define_name.clear();
    }
    if (ifndef_name != want || define_name != want) {
      report(guard_line, "include-guard",
             "header guard must be '" + want + "' (found '" +
                 (ifndef_name.empty() ? "<none>" : ifndef_name) + "')");
    }
  }

  // --- using-namespace -----------------------------------------------------
  if (is_header) {
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind == Token::kIdent && toks[i].text == "using" &&
          toks[i + 1].kind == Token::kIdent &&
          toks[i + 1].text == "namespace") {
        report(toks[i].line, "using-namespace",
               "'using namespace' in a header leaks into every includer");
      }
    }
  }

  // --- determinism-clock ---------------------------------------------------
  {
    const bool exempt = StartsWith(path, "src/obs/") ||
                        path == "src/common/timer.h" ||
                        StartsWith(path, "src/common/random.") ||
                        StartsWith(path, "tools/");
    if (!exempt) {
      static const std::set<std::string> kBannedAlways = {
          "steady_clock",     "system_clock", "high_resolution_clock",
          "gettimeofday",     "clock_gettime", "drand48",
          "random_device",    "srand",        "rand_r",
      };
      static const std::set<std::string> kBannedCalls = {"rand", "time",
                                                         "clock"};
      for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::kIdent) continue;
        const std::string& t = toks[i].text;
        bool banned = kBannedAlways.count(t) > 0;
        if (!banned && kBannedCalls.count(t) > 0 && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
          // `std::time(`/bare `time(` are the libc call; `x.time(`/`x->time(`
          // would be a member of some other type and is not ours to ban.
          const bool member_access =
              i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
          const bool std_qualified =
              i > 1 && toks[i - 1].text == "::" && toks[i - 2].text == "std";
          banned = !member_access || std_qualified;
        }
        if (banned) {
          report(toks[i].line, "determinism-clock",
                 "'" + t +
                     "' makes queries/builds irreproducible; time and "
                     "randomness belong to src/obs/, common/timer.h, "
                     "common/random.*");
        }
      }
    }
  }

  // --- hash-order ----------------------------------------------------------
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent || toks[i].text != "ForEach" ||
        toks[i + 1].text != "(") {
      continue;
    }
    const size_t close = MatchingClose(toks, i + 1);
    if (close >= toks.size()) continue;
    const bool accumulates =
        RangeContainsIdent(toks, i + 2, close, "push_back") ||
        RangeContainsIdent(toks, i + 2, close, "emplace_back");
    if (!accumulates) continue;
    // A sort of the accumulated vector must follow promptly (the canonical
    // "dump the table, then canonicalize" idiom); 60 tokens is roughly the
    // following two statements.
    const bool sorted_after =
        RangeContainsIdent(toks, close, close + 60, "sort") ||
        RangeContainsIdent(toks, close, close + 60, "Sort");
    if (!sorted_after) {
      report(toks[i].line, "hash-order",
             "ForEach over a hash table accumulates into a vector without a "
             "following sort; hash order is seeded per process");
    }
  }

  // --- function-structure pass: archive-symmetry + ops-budget --------------
  // One walk detects function definitions. For Save/Load definitions it
  // extracts the ordered archive-op sequence; for every definition it scans
  // range-for loops over ObjectId and demands OpsBudget::Charge when the
  // function takes an OpsBudget*.
  std::map<std::string, std::vector<SerializeFn>> saves;
  std::map<std::string, std::vector<SerializeFn>> loads;

  // Class context: (name, token index of the opening brace's matching
  // close), innermost last.
  std::vector<std::pair<std::string, size_t>> class_stack;
  std::string pending_class;

  const bool budget_scope = path.find("core/") != std::string::npos;

  auto extract_ops = [&](size_t body_begin, size_t body_end) {
    std::vector<ArchiveOp> ops;
    for (size_t j = body_begin; j < body_end; ++j) {
      if (toks[j].kind != Token::kIdent) continue;
      const std::string& name = toks[j].text;
      if (j + 1 >= body_end) break;
      if (name == "Magic" && toks[j + 1].text == "(") {
        std::string tag;
        if (j + 2 < body_end && toks[j + 2].kind == Token::kString) {
          tag = toks[j + 2].text;
        }
        ops.push_back({ArchiveOp::kMagic, tag, toks[j].line});
      } else if (name == "Pod" || name == "Vec") {
        const ArchiveOp::Kind kind =
            name == "Pod" ? ArchiveOp::kPod : ArchiveOp::kVec;
        if (toks[j + 1].text == "<") {
          const size_t targs_close = MatchingClose(toks, j + 1);
          if (targs_close < body_end && targs_close + 1 < toks.size() &&
              toks[targs_close + 1].text == "(") {
            ops.push_back({kind, JoinTokens(toks, j + 2, targs_close),
                           toks[j].line});
          }
        } else if (toks[j + 1].text == "(") {
          ops.push_back({kind, "", toks[j].line});
        }
      } else if ((StartsWith(name, "Save") || StartsWith(name, "Load")) &&
                 toks[j + 1].text == "(") {
        ops.push_back({ArchiveOp::kSub, name.substr(4), toks[j].line});
      }
    }
    return ops;
  };

  // Recursive lambda over token ranges; `has_budget` is inherited by loops
  // in nested lambdas (they run on the enclosing query path).
  auto scan_range = [&](auto&& self, size_t begin, size_t end,
                        bool has_budget) -> void {
    for (size_t i = begin; i < end; ++i) {
      const Token& tok = toks[i];
      // Track class context for member Save/Load attribution.
      // `enum class`, `template <class T>` and `<..., class U>` are not
      // class-scope introductions.
      if (tok.kind == Token::kIdent &&
          (tok.text == "class" || tok.text == "struct") &&
          (i == 0 || (toks[i - 1].text != "enum" && toks[i - 1].text != "<" &&
                      toks[i - 1].text != ",")) &&
          i + 1 < end && toks[i + 1].kind == Token::kIdent) {
        pending_class = toks[i + 1].text;
        continue;
      }
      if (tok.text == ";") {
        pending_class.clear();
        continue;
      }
      if (tok.text == "{") {
        if (!pending_class.empty()) {
          const size_t close = MatchingClose(toks, i);
          class_stack.emplace_back(pending_class, close);
          pending_class.clear();
        }
        continue;
      }
      while (!class_stack.empty() && i >= class_stack.back().second) {
        class_stack.pop_back();
      }

      // Range-for over ObjectId on a budgeted query path must Charge.
      if (tok.kind == Token::kIdent && tok.text == "for" && i + 1 < end &&
          toks[i + 1].text == "(") {
        const size_t parens_close = MatchingClose(toks, i + 1);
        if (parens_close >= end) continue;
        bool range_for = false;
        int depth = 0;
        for (size_t j = i + 2; j < parens_close; ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
          if (depth == 0 && toks[j].text == ":") {
            range_for = true;
            break;
          }
        }
        const bool over_objects =
            range_for && RangeContainsIdent(toks, i + 2, parens_close,
                                            "ObjectId");
        if (over_objects && has_budget && budget_scope &&
            parens_close + 1 < end && toks[parens_close + 1].text == "{") {
          const size_t body_close = MatchingClose(toks, parens_close + 1);
          if (!RangeContainsIdent(toks, parens_close + 1, body_close,
                                  "Charge")) {
            report(tok.line, "ops-budget",
                   "candidate-enumeration loop on a budgeted query path "
                   "does not call OpsBudget::Charge (footnote 4 manual "
                   "termination)");
          }
          // The loop body is still scanned below for nested functions.
        }
        continue;
      }

      // Function definition: ident '(' params ')' [const|noexcept|requires]
      // '{'. Control-flow keywords and macro-looking all-caps names are not
      // functions.
      if (tok.kind != Token::kIdent || i + 1 >= end ||
          toks[i + 1].text != "(") {
        continue;
      }
      static const std::set<std::string> kNotFunctions = {
          "if",     "for",    "while",   "switch", "return",
          "sizeof", "static_assert",     "decltype", "alignof",
          "catch",  "requires"};
      if (kNotFunctions.count(tok.text) > 0) continue;
      const size_t params_close = MatchingClose(toks, i + 1);
      if (params_close >= end) continue;
      size_t j = params_close + 1;
      bool is_definition = false;
      while (j < end) {
        const std::string& t = toks[j].text;
        if (t == "const" || t == "noexcept" || t == "override" ||
            t == "final" || t == "mutable") {
          ++j;
          continue;
        }
        if (t == "requires") {
          // Skip the trailing requires-clause: `requires ( ... )` or a bare
          // concept expression up to the '{'.
          ++j;
          if (j < end && toks[j].text == "(") j = MatchingClose(toks, j) + 1;
          continue;
        }
        is_definition = t == "{";
        break;
      }
      if (!is_definition || j >= end) continue;
      const size_t body_open = j;
      const size_t body_close = MatchingClose(toks, body_open);
      if (body_close > end) continue;

      const bool fn_has_budget =
          RangeContainsIdent(toks, i + 2, params_close, "OpsBudget");

      // Archive unit detection. LoadFlat reads from a mapped file rather
      // than an InputArchive, so MmapFile params count as load-like too.
      const std::string& fname = tok.text;
      const bool save_like =
          StartsWith(fname, "Save") &&
          (RangeContainsIdent(toks, i + 2, params_close, "OutputArchive") ||
           RangeContainsIdent(toks, i + 2, params_close, "ostream"));
      const bool load_like =
          StartsWith(fname, "Load") &&
          (RangeContainsIdent(toks, i + 2, params_close, "InputArchive") ||
           RangeContainsIdent(toks, i + 2, params_close, "istream") ||
           RangeContainsIdent(toks, i + 2, params_close, "MmapFile"));
      if (save_like || load_like) {
        std::string owner;
        std::string suffix = fname.substr(4);  // "" / "Flat" / free-pair stem.
        if (i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].kind == Token::kIdent) {
          owner = toks[i - 2].text;  // Out-of-line member: Class::Save.
        } else if (!class_stack.empty()) {
          owner = class_stack.back().first;
        } else {
          owner = fname.substr(4);  // Free SaveFoo/LoadFoo pair.
          suffix.clear();
        }
        if (!owner.empty()) {
          SerializeFn fn;
          fn.file = path;
          fn.owner = owner;
          fn.suffix = suffix;
          fn.line = tok.line;
          fn.ops = extract_ops(body_open + 1, body_close);
          // Pair by exact name, not by owner alone: an owner with both a
          // v1 Save/Load and a v2 SaveFlat/LoadFlat must keep each pair
          // checked independently (owner-keyed pairing would see two save
          // fns and silently skip the v1 check).
          const std::string key = owner + '\x1f' + suffix;
          (save_like ? saves : loads)[key].push_back(std::move(fn));
        }
      }

      self(self, body_open + 1, body_close, fn_has_budget);
      i = body_close;
    }
  };
  scan_range(scan_range, 0, toks.size(), /*has_budget=*/false);

  // --- archive-symmetry pairing (per file: the codebase keeps a pair's two
  // bodies in one translation-unit's source file). Keys are owner + exact
  // name suffix, so Save pairs with Load and SaveFlat with LoadFlat. --------
  for (const auto& [key, save_fns] : saves) {
    auto it = loads.find(key);
    if (save_fns.front().suffix == "Flat") {
      // Flat bodies are arena writes, not archive-op streams, so the op
      // comparison does not apply; what must hold is that a mapped-format
      // writer ships with its reader in the same translation unit.
      if (it == loads.end()) {
        report(save_fns.front().line, "archive-symmetry",
               save_fns.front().owner +
                   ": SaveFlat has no LoadFlat counterpart in this file; a "
                   "v2 flat container nobody can map back is write-only "
                   "data");
      }
      continue;
    }
    if (it == loads.end() || save_fns.size() != 1 || it->second.size() != 1) {
      continue;  // Unpaired or overloaded: nothing comparable.
    }
    const SerializeFn& save = save_fns[0];
    const SerializeFn& load = it->second[0];
    const size_t count = std::min(save.ops.size(), load.ops.size());
    std::string mismatch;
    int at_line = load.line;
    for (size_t k = 0; k < count && mismatch.empty(); ++k) {
      const ArchiveOp& s = save.ops[k];
      const ArchiveOp& l = load.ops[k];
      if (s.kind != l.kind) {
        mismatch = "op " + std::to_string(k + 1) + " is " + OpName(s.kind) +
                   " in Save but " + OpName(l.kind) + " in Load";
        at_line = l.line;
      } else if (!s.detail.empty() && !l.detail.empty() &&
                 s.detail != l.detail) {
        mismatch = "op " + std::to_string(k + 1) + " (" + OpName(s.kind) +
                   ") spells '" + s.detail + "' in Save but '" + l.detail +
                   "' in Load";
        at_line = l.line;
      }
    }
    if (mismatch.empty() && save.ops.size() != load.ops.size()) {
      mismatch = "Save issues " + std::to_string(save.ops.size()) +
                 " archive ops but Load issues " +
                 std::to_string(load.ops.size());
      at_line = load.line;
    }
    if (!mismatch.empty()) {
      report(at_line, "archive-symmetry",
             save.owner + ": " + mismatch +
                 "; Save and Load must stream the same ordered field "
                 "sequence");
    }
  }
  for (const auto& [key, load_fns] : loads) {
    if (load_fns.front().suffix != "Flat") continue;
    if (saves.find(key) == saves.end()) {
      report(load_fns.front().line, "archive-symmetry",
             load_fns.front().owner +
                 ": LoadFlat has no SaveFlat counterpart in this file; a "
                 "mapped-format reader with no writer cannot be kept in "
                 "sync with the layout it parses");
    }
  }
}

bool Linter::LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string rule_path = path;
  if (!root_.empty() && StartsWith(rule_path, root_)) {
    rule_path = rule_path.substr(root_.size());
    while (!rule_path.empty() && rule_path.front() == '/') {
      rule_path = rule_path.substr(1);
    }
  }
  while (StartsWith(rule_path, "./")) rule_path = rule_path.substr(2);
  LintSource(rule_path, contents.str());
  return true;
}

bool Linter::LintTree(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> files;
  fs::recursive_directory_iterator it(dir, ec);
  if (ec) return false;
  for (auto end = fs::recursive_directory_iterator(); it != end;
       it.increment(ec)) {
    if (ec) return false;
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory()) {
      // Seeded-violation corpora and build trees are not the real tree.
      if (name == "lint_fixtures" || name == "negative_compile" ||
          StartsWith(name, "build") || StartsWith(name, ".")) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (EndsWith(name, ".h") || EndsWith(name, ".cc")) {
      files.push_back(p.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  bool ok = true;
  for (const std::string& file : files) ok = LintFile(file) && ok;
  return ok;
}

std::vector<Finding> Linter::TakeFindings() {
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return std::move(findings_);
}

}  // namespace lint
}  // namespace kwsc
