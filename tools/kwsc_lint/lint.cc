// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "scanner.h"

namespace kwsc {
namespace lint {

std::string Finding::Format() const {
  std::ostringstream out;
  out << file << ":" << line << ": " << rule << ": " << message;
  return out.str();
}

std::vector<AllowEntry> ParseAllowlist(const std::string& text) {
  std::vector<AllowEntry> entries;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    AllowEntry entry;
    if (!(fields >> entry.rule >> entry.path_substring)) continue;
    // The rest of the line (trimmed) is the optional line-substring, so it
    // may itself contain spaces.
    std::string rest;
    std::getline(fields, rest);
    const size_t begin = rest.find_first_not_of(" \t");
    if (begin != std::string::npos) {
      const size_t end = rest.find_last_not_of(" \t");
      entry.line_substring = rest.substr(begin, end - begin + 1);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<AllowEntry> LoadAllowlistFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::ostringstream text;
  text << in.rdbuf();
  return ParseAllowlist(text.str());
}

// ---------------------------------------------------------------------------
// Linter internals.
// ---------------------------------------------------------------------------

namespace {

struct SerializeFn {
  std::string file;
  std::string owner;   // Class (or free-pair stem) the function belongs to.
  std::string suffix;  // "" for Save/Load, "Flat" for SaveFlat/LoadFlat.
  int line = 0;
  std::vector<ArchiveOp> ops;
};

std::string ExpectedGuard(const std::string& path) {
  std::string trimmed = path;
  if (StartsWith(trimmed, "src/")) trimmed = trimmed.substr(4);
  std::string guard = "KWSC_";
  for (char c : trimmed) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

/// Methods that mutate their receiver; a call through a by-reference capture
/// inside a pool task is a write to shared state.
bool IsMutatingMethod(const std::string& name) {
  static const std::set<std::string> kMutating = {
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front",
      "insert",    "emplace",      "erase",    "clear",      "resize",
      "reserve",   "assign",       "append",   "Record",     "Merge"};
  return kMutating.count(name) > 0;
}

/// True when the identifier at `at` is the head of an access path (not
/// `x.ident` / `x->ident` / `ns::ident` — there the sharing question belongs
/// to the path's root, which gets its own check at its own position).
bool IsAccessRoot(const std::vector<Token>& toks, size_t at) {
  if (at == 0) return true;
  const std::string& prev = toks[at - 1].text;
  return prev != "." && prev != "->" && prev != "::";
}

/// True when the identifier at `at` is written: plain or compound
/// assignment, increment/decrement, or a mutating method call. `x[i] = ...`
/// deliberately does not count — elementwise writes into pre-sized slots are
/// the library's sanctioned disjoint-sharing idiom.
bool IsWrite(const std::vector<Token>& toks, size_t at, size_t end) {
  if (at + 1 >= end) return false;
  const std::string& next = toks[at + 1].text;
  // `x = ...` but not `x == ...`.
  if (next == "=" && (at + 2 >= end || toks[at + 2].text != "=")) return true;
  // Compound assignment: `x += ...`, `x |= ...`, ...
  static const std::set<std::string> kCompound = {"+", "-", "*", "/", "%",
                                                  "&", "|", "^"};
  if (kCompound.count(next) > 0 && at + 2 < end &&
      toks[at + 2].text == "=" &&
      (at + 3 >= end || toks[at + 3].text != "=")) {
    return true;
  }
  // `x++` / `++x` (the lexer splits the operator into two tokens).
  if (next == "+" && at + 2 < end && toks[at + 2].text == "+") return true;
  if (next == "-" && at + 2 < end && toks[at + 2].text == "-") return true;
  if (at >= 2 && toks[at - 1].text == toks[at - 2].text &&
      (toks[at - 1].text == "+" || toks[at - 1].text == "-")) {
    return true;
  }
  // Mutating method on the captured object itself.
  if ((next == "." || next == "->") && at + 3 < end &&
      toks[at + 2].kind == Token::kIdent &&
      IsMutatingMethod(toks[at + 2].text) && toks[at + 3].text == "(") {
    return true;
  }
  return false;
}

/// The concurrency + flat-slab rule pack, scoped to library code (any path
/// containing "src/" — which includes the seeded fixtures under
/// tests/lint_fixtures/src/). `report` is (line, rule, message).
template <typename ReportFn>
void LintConcurrencyAndFlat(const std::string& path,
                            const std::vector<Token>& toks,
                            const ReportFn& report) {
  if (path.find("src/") == std::string::npos) return;
  // The vocabulary definitions themselves: the mutex wrapper spells the raw
  // std types once, the annotation header is all macros.
  if (path.find("common/mutex.h") != std::string::npos) return;
  if (path.find("common/thread_annotations.h") != std::string::npos) return;
  const bool pool_file = path.find("common/thread_pool.") != std::string::npos;
  const bool arena_file = path.find("common/flat_arena.") != std::string::npos;
  const bool state_scope = path.find("src/core/") != std::string::npos ||
                           path.find("src/common/") != std::string::npos;

  const DeclIndex decls = BuildDeclIndex(toks);

  // --- concurrency-unguarded-mutex ----------------------------------------
  for (const auto& [name, line] : decls.mutex_members) {
    if (decls.annotated.count(name) > 0) continue;
    report(line, "concurrency-unguarded-mutex",
           "Mutex member '" + name +
               "' is never named by a thread-safety annotation; state it "
               "guards must say so (KWSC_GUARDED_BY) and methods taking it "
               "must declare it (KWSC_EXCLUDES/KWSC_REQUIRES), or clang "
               "-Wthread-safety has nothing to check");
  }

  // --- flat-retain ---------------------------------------------------------
  if (!arena_file) {
    for (const auto& [name, line] : decls.retained_members) {
      report(line, "flat-retain",
             "member '" + name +
                 "' retains a view into a mapped region; pointers and "
                 "readers over MmapFile memory must not outlive the scope "
                 "that derived them — store the MmapFile (and offsets) and "
                 "re-derive through FlatArenaReader accessors");
    }
  }

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];

    // --- concurrency-raw-mutex ---------------------------------------------
    if (tok.kind == Token::kIdent && tok.text == "std" &&
        i + 2 < toks.size() && toks[i + 1].text == "::" &&
        toks[i + 2].kind == Token::kIdent) {
      static const std::set<std::string> kRawSync = {
          "mutex",         "recursive_mutex",
          "timed_mutex",   "recursive_timed_mutex",
          "shared_mutex",  "shared_timed_mutex",
          "condition_variable", "condition_variable_any",
          "lock_guard",    "unique_lock",
          "scoped_lock",   "shared_lock"};
      if (kRawSync.count(toks[i + 2].text) > 0) {
        report(tok.line, "concurrency-raw-mutex",
               "raw std::" + toks[i + 2].text +
                   " bypasses the annotated Mutex/MutexLock/CondVar "
                   "vocabulary (common/mutex.h); thread-safety analysis "
                   "cannot see locks it does not know");
      }
      // --- concurrency-raw-thread (std spelling) ---------------------------
      if (!pool_file &&
          (toks[i + 2].text == "thread" || toks[i + 2].text == "jthread")) {
        report(tok.line, "concurrency-raw-thread",
               "raw std::" + toks[i + 2].text +
                   " outside common/thread_pool.*; all parallelism goes "
                   "through ThreadPool/TaskGroup so fork/join nesting, "
                   "helping waits, and shutdown stay in one audited place");
      }
    }

    // --- concurrency-raw-thread (pthread / detach) -------------------------
    if (!pool_file && tok.kind == Token::kIdent &&
        StartsWith(tok.text, "pthread_")) {
      report(tok.line, "concurrency-raw-thread",
             "'" + tok.text +
                 "' outside common/thread_pool.*; all parallelism goes "
                 "through ThreadPool/TaskGroup");
    }
    if (!pool_file && (tok.text == "." || tok.text == "->") &&
        i + 2 < toks.size() && toks[i + 1].text == "detach" &&
        toks[i + 2].text == "(") {
      report(toks[i + 1].line, "concurrency-raw-thread",
             "detach() abandons a running thread; kwsc parallelism is "
             "strictly fork/join (TaskGroup::Wait joins everything)");
    }

    // --- concurrency-static-state ------------------------------------------
    if (state_scope && tok.kind == Token::kIdent && tok.text == "static") {
      bool safe = false;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "const" || t == "constexpr" || t == "constinit" ||
            t == "atomic" || t == "atomic_flag" || t == "thread_local" ||
            t == "Mutex" ||
            ThreadAnnotationMacros().count(t) > 0) {
          safe = true;
        }
        if (t == ";" || t == "=" || t == "(" || t == "{") break;
      }
      // A '(' or '{' terminator is a function (or ctor-style init the rule
      // cannot judge); ';' and '=' terminate an object declaration.
      if (j < toks.size() && (toks[j].text == ";" || toks[j].text == "=") &&
          !safe) {
        report(tok.line, "concurrency-static-state",
               "mutable static state in core/common is shared across every "
               "thread; make it const/constexpr, std::atomic, thread_local, "
               "or guard it with an annotated Mutex (KWSC_GUARDED_BY)");
      }
    }

    // --- flat-escape: reinterpret_cast over mapped memory --------------------
    if (!arena_file && tok.kind == Token::kIdent &&
        tok.text == "reinterpret_cast" && !decls.mapped.empty()) {
      size_t stmt_begin = i;
      while (stmt_begin > 0 && toks[stmt_begin - 1].text != ";" &&
             toks[stmt_begin - 1].text != "{" &&
             toks[stmt_begin - 1].text != "}") {
        --stmt_begin;
      }
      size_t stmt_end = i;
      while (stmt_end < toks.size() && toks[stmt_end].text != ";" &&
             toks[stmt_end].text != "{") {
        ++stmt_end;
      }
      for (size_t j = stmt_begin; j < stmt_end; ++j) {
        if (toks[j].kind == Token::kIdent &&
            (decls.mapped.count(toks[j].text) > 0 ||
             decls.byte_ptrs.count(toks[j].text) > 0)) {
          report(tok.line, "flat-escape",
                 "reinterpret_cast over mapped-file memory ('" +
                     toks[j].text +
                     "'); raw reinterpretation of MmapFile/SlabRef bytes "
                     "belongs inside FlatArenaReader's bounds-checked "
                     "accessors (common/flat_arena.h)");
          break;
        }
      }
    }

    // --- flat-escape: pointer arithmetic on byte views ----------------------
    if (!arena_file && tok.kind == Token::kIdent &&
        decls.byte_ptrs.count(tok.text) > 0 && IsAccessRoot(toks, i) &&
        i + 1 < toks.size() &&
        (toks[i + 1].text == "+" || toks[i + 1].text == "-")) {
      report(tok.line, "flat-escape",
             "pointer arithmetic on '" + tok.text +
                 "', a std::byte view of mapped memory; offsets into a flat "
                 "arena are SlabRefs resolved by FlatArenaReader, not hand "
                 "arithmetic");
    }

    // --- thread-capture ------------------------------------------------------
    // A lambda submitted to the pool: Run([...]...) / Enqueue([...]...).
    if (tok.kind != Token::kIdent ||
        (tok.text != "Run" && tok.text != "Enqueue") || i + 2 >= toks.size() ||
        toks[i + 1].text != "(" || toks[i + 2].text != "[") {
      continue;
    }
    const size_t cap_open = i + 2;
    const size_t cap_close = MatchingClose(toks, cap_open);
    if (cap_close >= toks.size()) continue;

    // Parse the capture list into by-ref names / by-value names / defaults.
    bool default_ref = false;
    std::set<std::string> by_ref;
    std::set<std::string> by_val;
    {
      size_t item_begin = cap_open + 1;
      int depth = 0;
      for (size_t j = cap_open + 1; j <= cap_close; ++j) {
        const std::string& t = toks[j].text;
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
        const bool item_end =
            j == cap_close || (depth == 0 && toks[j].text == ",");
        if (!item_end) continue;
        if (item_begin < j) {
          const Token& first = toks[item_begin];
          if (first.text == "&" && item_begin + 1 < j &&
              toks[item_begin + 1].kind == Token::kIdent) {
            by_ref.insert(toks[item_begin + 1].text);
          } else if (first.text == "&" && item_begin + 1 == j) {
            default_ref = true;
          } else if (first.kind == Token::kIdent && first.text != "this") {
            by_val.insert(first.text);
          }
        }
        item_begin = j + 1;
      }
    }
    if (by_ref.empty() && !default_ref) continue;

    // Lambda parameters and the body.
    std::set<std::string> locals;
    size_t j = cap_close + 1;
    if (j < toks.size() && toks[j].text == "(") {
      const size_t params_close = MatchingClose(toks, j);
      for (size_t k = j + 1; k < params_close && k < toks.size(); ++k) {
        if (toks[k].kind == Token::kIdent) locals.insert(toks[k].text);
      }
      j = params_close + 1;
    }
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;
    const size_t body_open = j;
    const size_t body_close = MatchingClose(toks, body_open);

    // A body that takes a lock is synchronizing on its own; the annotations
    // (and TSan) judge whether the locking is right.
    if (RangeContainsIdent(toks, body_open, body_close, "MutexLock")) {
      continue;
    }

    // Body-local declarations (heuristic: `Type name`, `auto name`,
    // `Type& name`). Only consulted for a default [&] capture, where every
    // non-local write target is suspect.
    static const std::set<std::string> kNotTypes = {
        "return", "co_return", "delete", "throw",  "case", "goto",
        "new",    "else",      "do",     "break",  "continue"};
    for (size_t k = body_open + 1; k < body_close && k < toks.size(); ++k) {
      if (toks[k].kind != Token::kIdent) continue;
      const Token& prev = toks[k - 1];
      const bool after_type =
          prev.kind == Token::kIdent && kNotTypes.count(prev.text) == 0;
      const bool after_ref_of_type =
          (prev.text == "&" || prev.text == "*") && k >= 2 &&
          toks[k - 2].kind == Token::kIdent &&
          kNotTypes.count(toks[k - 2].text) == 0;
      if (after_type || after_ref_of_type) locals.insert(toks[k].text);
    }

    std::set<std::string> reported;
    for (size_t k = body_open + 1; k < body_close && k < toks.size(); ++k) {
      if (toks[k].kind != Token::kIdent) continue;
      const std::string& name = toks[k].text;
      if (reported.count(name) > 0) continue;
      if (!IsAccessRoot(toks, k)) continue;
      const bool candidate =
          by_ref.count(name) > 0 ||
          (default_ref && locals.count(name) == 0 &&
           by_val.count(name) == 0 && name != "this");
      if (!candidate || !IsWrite(toks, k, body_close)) continue;
      reported.insert(name);
      report(toks[k].line, "thread-capture",
             "'" + name +
                 "' is captured by reference into a ThreadPool/TaskGroup "
                 "task and written without synchronization; shared task "
                 "state must be disjoint per task (pre-sized slots), "
                 "guarded by an annotated Mutex, or allowlisted with a "
                 "safety argument");
    }
  }
}

/// The v3 ABI/format rule pack (scoped to paths containing src/, like the
/// concurrency pack — which includes the seeded fixtures under
/// tests/lint_fixtures/src/). Judges the format-contract discipline that
/// tools/kwsc_abi locks tree-wide, at per-file granularity: persisted
/// structs must be registered, registered structs must spell fixed widths,
/// and Magic versions must come from core/format_versions.h.
template <typename ReportFn>
void LintAbiContracts(const std::string& path, const std::vector<Token>& toks,
                      const ReportFn& report) {
  if (path.find("src/") == std::string::npos) return;
  // The registration macros and the version table define the vocabulary.
  if (path.find("common/abi.h") != std::string::npos) return;
  if (path.find("core/format_versions.h") != std::string::npos) return;

  // Names appearing in any KWSC_ABI_STRUCT* registration argument list.
  // Deliberately coarse (every identifier in the list counts): naming a type
  // anywhere in a registration is what puts it into FORMATS.lock.
  std::set<std::string> registered;
  // Struct definitions in this file: name -> (def line, body token range).
  struct StructDef {
    int line;
    size_t body_open;
    size_t body_close;
  };
  std::map<std::string, StructDef> defs;
  // Element types named by slab/root accessors (`Slab<T>`, `Root<T>`,
  // `SlabOk<T>`, `RootOk<T>`): the set of types reinterpreted from mapped
  // bytes in this file.
  std::set<std::string> mapped_types;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::kIdent) continue;
    if (StartsWith(tok.text, "KWSC_ABI_STRUCT") && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const size_t close = MatchingClose(toks, i + 1);
      for (size_t j = i + 2; j < close && j < toks.size(); ++j) {
        if (toks[j].kind == Token::kIdent) registered.insert(toks[j].text);
      }
      continue;
    }
    if (tok.text == "struct" && i + 2 < toks.size() &&
        (i == 0 || (toks[i - 1].text != "enum" && toks[i - 1].text != "<" &&
                    toks[i - 1].text != ",")) &&
        toks[i + 1].kind == Token::kIdent && toks[i + 2].text == "{") {
      const size_t close = MatchingClose(toks, i + 2);
      defs.emplace(toks[i + 1].text,
                   StructDef{toks[i + 1].line, i + 2, close});
      continue;
    }
    if ((tok.text == "Slab" || tok.text == "SlabOk" || tok.text == "Root" ||
         tok.text == "RootOk") &&
        i + 1 < toks.size() && toks[i + 1].text == "<") {
      const size_t close = MatchingClose(toks, i + 1);
      for (size_t j = i + 2; j < close && j < toks.size(); ++j) {
        if (toks[j].kind == Token::kIdent) mapped_types.insert(toks[j].text);
      }
    }
  }

  // --- abi-unregistered-struct ---------------------------------------------
  for (const auto& [name, def] : defs) {
    if (mapped_types.count(name) == 0) continue;
    if (registered.count(name) > 0) continue;
    report(def.line, "abi-unregistered-struct",
           "struct '" + name +
               "' is reinterpreted from mapped bytes (Slab/Root element) but "
               "has no KWSC_ABI_STRUCT registration in this file; register "
               "it (common/abi.h) so kwsc-abi locks its layout in "
               "FORMATS.lock");
  }

  // --- abi-raw-width -------------------------------------------------------
  // Inside a registered struct's definition, every *field* must spell a
  // fixed width: platform-width integer spellings make sizeof/offsetof a
  // function of the host, which is exactly what a persisted layout must not
  // be. The scan is field-declaration-granular — member functions (any decl
  // containing '('), static members, and using-aliases are not layout.
  static const std::set<std::string> kRawWidth = {
      "int",      "long",      "short",     "unsigned", "signed",
      "size_t",   "ssize_t",   "ptrdiff_t", "intptr_t", "uintptr_t",
      "wchar_t",  "time_t",    "off_t"};
  static const std::set<std::string> kNotFields = {"static", "using", "friend",
                                                   "template", "typedef"};
  for (const auto& [name, def] : defs) {
    if (registered.count(name) == 0) continue;
    size_t decl_begin = def.body_open + 1;
    bool function_like = false;
    int depth = 0;
    for (size_t j = def.body_open + 1;
         j < def.body_close && j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[") ++depth;
      if (t == ")" || t == "]") --depth;
      if (t == "(") function_like = true;
      if (t == "{" && depth == 0) {
        if (function_like) {
          // A member-function body: skip it whole and start a fresh decl.
          j = MatchingClose(toks, j);
          decl_begin = j + 1;
          function_like = false;
          continue;
        }
        ++depth;  // Brace initializer on a field: part of the decl.
        continue;
      }
      if (t == "}" && depth > 0) {
        --depth;
        continue;
      }
      if (t != ";" || depth != 0) continue;
      // One declaration in [decl_begin, j).
      if (!function_like && decl_begin < j &&
          kNotFields.count(toks[decl_begin].text) == 0) {
        for (size_t k = decl_begin; k < j; ++k) {
          if (toks[k].kind != Token::kIdent ||
              kRawWidth.count(toks[k].text) == 0) {
            continue;
          }
          report(toks[k].line, "abi-raw-width",
                 "'" + toks[k].text + "' field in registered ABI struct '" +
                     name +
                     "' has platform-dependent width; persisted/wire "
                     "structs spell fixed-width types (int32_t, uint64_t, "
                     "...)");
        }
      }
      decl_begin = j + 1;
      function_like = false;
    }
  }

  // --- abi-version-bump ----------------------------------------------------
  // `Magic("TAG", 1)` hard-codes the version at the call site; the write and
  // read sides must both reference the named constant in
  // core/format_versions.h, which is the single declaration the manifest's
  // drift gate keys version bumps off.
  for (size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].kind == Token::kIdent && toks[i].text == "Magic" &&
        toks[i + 1].text == "(" && toks[i + 2].kind == Token::kString &&
        toks[i + 3].text == "," && toks[i + 4].kind == Token::kNumber) {
      report(toks[i].line, "abi-version-bump",
             "Magic(" + toks[i + 2].text +
                 ", ...) version is a numeric literal; use the named "
                 "k*FormatVersion constant from core/format_versions.h so "
                 "the abi-gate can tie layout drift to a version bump");
    }
  }
}

/// The epoch/snapshot discipline rule (scoped to paths containing src/,
/// like the concurrency pack — which includes the seeded fixtures under
/// tests/lint_fixtures/src/). common/epoch.h defines the vocabulary and is
/// exempt. EpochPtr members are reached through Acquire/Publish/epoch only,
/// and a snapshot handed out by Acquire is deep-immutable: mutating it in
/// place would change what concurrent readers of the same epoch observe.
template <typename ReportFn>
void LintEpochDiscipline(const std::string& path,
                         const std::vector<Token>& toks,
                         const ReportFn& report) {
  if (path.find("src/") == std::string::npos) return;
  if (path.find("common/epoch.h") != std::string::npos) return;

  // Declarations pass: identifiers declared with an EpochPtr<...> type.
  std::set<std::string> epoch_ptrs;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent || toks[i].text != "EpochPtr" ||
        toks[i + 1].text != "<") {
      continue;
    }
    const size_t close = MatchingClose(toks, i + 1);
    if (close >= toks.size()) continue;
    const size_t decl = DeclaredIdent(toks, close + 1);
    if (decl < toks.size()) epoch_ptrs.insert(toks[decl].text);
  }
  if (epoch_ptrs.empty()) return;

  static const std::set<std::string> kEpochApi = {"Acquire", "Publish",
                                                  "epoch"};
  // Snapshot identifiers assigned from Acquire(), each with the token index
  // where its enclosing block ends — the lexical lifetime of the taint.
  // Scoping matters: a same-named local built fresh in another function
  // (make_shared, filled in, then Published) is the sanctioned pattern.
  std::map<std::string, size_t> snapshots;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::kIdent) continue;

    if (epoch_ptrs.count(tok.text) > 0 && i + 2 < toks.size() &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == Token::kIdent) {
      // --- non-API member access on the EpochPtr itself --------------------
      if (kEpochApi.count(toks[i + 2].text) == 0) {
        report(toks[i + 2].line, "epoch-nonapi-access",
               "'" + tok.text + "." + toks[i + 2].text +
                   "': an EpochPtr is reached through "
                   "Acquire()/Publish()/epoch() only; poking past the API "
                   "hands concurrent readers a half-built or mutable level "
                   "set");
        continue;
      }
      // --- taint: `name = <epoch_ptr>.Acquire(...)` ------------------------
      if (toks[i + 2].text == "Acquire" && i + 3 < toks.size() &&
          toks[i + 3].text == "(" && i >= 2 && toks[i - 1].text == "=" &&
          toks[i - 2].kind == Token::kIdent) {
        size_t end = toks.size();
        int depth = 0;
        for (size_t j = i; j < toks.size(); ++j) {
          if (toks[j].text == "{") ++depth;
          if (toks[j].text == "}" && --depth < 0) {
            end = j;
            break;
          }
        }
        snapshots[toks[i - 2].text] = end;
      }
      continue;
    }

    // --- mutation through an acquired snapshot -----------------------------
    const auto it = snapshots.find(tok.text);
    if (it == snapshots.end() || i >= it->second || !IsAccessRoot(toks, i)) {
      continue;
    }
    // Walk the access chain (`snap->levels.push_back`, `snap->count = ...`)
    // to its final member, then judge the operation applied to it.
    size_t j = i;
    std::string last;
    while (j + 2 < toks.size() &&
           (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
           toks[j + 2].kind == Token::kIdent) {
      last = toks[j + 2].text;
      j += 2;
    }
    if (last.empty() || j + 1 >= toks.size()) continue;
    const bool mutating_call =
        IsMutatingMethod(last) && toks[j + 1].text == "(";
    const bool member_write =
        toks[j + 1].text == "=" &&
        (j + 2 >= toks.size() || toks[j + 2].text != "=");
    if (mutating_call || member_write) {
      report(toks[j].line, "epoch-nonapi-access",
             "snapshot '" + tok.text +
                 "' acquired from an EpochPtr is mutated here ('" + last +
                 "'); published snapshots are deep-immutable — build a new "
                 "one off to the side and Publish it");
    }
  }
}

}  // namespace

void Linter::Report(const std::string& path, int line, const std::string& rule,
                    std::string message, const std::string& source_line) {
  if (Suppressed(path, rule, source_line, /*inline_allowed=*/true)) return;
  findings_.push_back({path, line, rule, std::move(message)});
}

bool Linter::Suppressed(const std::string& path, const std::string& rule,
                        const std::string& source_line,
                        bool /*inline_allowed*/) const {
  for (const AllowEntry& entry : allowlist_) {
    if (entry.rule != rule && entry.rule != "*") continue;
    if (path.find(entry.path_substring) == std::string::npos) continue;
    if (!entry.line_substring.empty() &&
        source_line.find(entry.line_substring) == std::string::npos) {
      continue;
    }
    return true;
  }
  return false;
}

void Linter::LintSource(const std::string& path, const std::string& contents) {
  const Scan scan = Tokenize(contents);
  const bool is_header = EndsWith(path, ".h");
  const std::vector<Token>& toks = scan.tokens;

  auto line_text = [&scan](int line) -> std::string {
    if (line >= 1 && line <= static_cast<int>(scan.lines.size())) {
      return scan.lines[static_cast<size_t>(line - 1)];
    }
    return {};
  };
  auto inline_allowed = [&scan](int line, const std::string& rule) {
    for (int l : {line, line - 1}) {
      auto it = scan.allow.find(l);
      if (it == scan.allow.end()) continue;
      for (const std::string& r : it->second) {
        if (r == rule || r == "*") return true;
      }
    }
    return false;
  };
  auto report = [&](int line, const std::string& rule, std::string message) {
    if (inline_allowed(line, rule)) return;
    Report(path, line, rule, std::move(message), line_text(line));
  };

  // --- copyright -----------------------------------------------------------
  if (scan.lines.empty() || !StartsWith(scan.lines[0], "// Copyright")) {
    report(1, "copyright",
           "file must open with the '// Copyright' header line");
  }

  // --- include-guard -------------------------------------------------------
  if (is_header) {
    const std::string want = ExpectedGuard(path);
    std::string ifndef_name;
    std::string define_name;
    int guard_line = 1;
    // The first two directives must be the #ifndef/#define pair; anything
    // else (or #pragma once) is a violation.
    if (scan.preprocessor.size() >= 2) {
      std::istringstream first(scan.preprocessor[0].second);
      std::istringstream second(scan.preprocessor[1].second);
      std::string hash1;
      std::string hash2;
      first >> hash1 >> ifndef_name;
      second >> hash2 >> define_name;
      guard_line = scan.preprocessor[0].first;
      if (hash1 != "#ifndef") ifndef_name.clear();
      if (hash2 != "#define") define_name.clear();
    }
    if (ifndef_name != want || define_name != want) {
      report(guard_line, "include-guard",
             "header guard must be '" + want + "' (found '" +
                 (ifndef_name.empty() ? "<none>" : ifndef_name) + "')");
    }
  }

  // --- using-namespace -----------------------------------------------------
  if (is_header) {
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind == Token::kIdent && toks[i].text == "using" &&
          toks[i + 1].kind == Token::kIdent &&
          toks[i + 1].text == "namespace") {
        report(toks[i].line, "using-namespace",
               "'using namespace' in a header leaks into every includer");
      }
    }
  }

  // --- determinism-clock ---------------------------------------------------
  {
    const bool exempt = StartsWith(path, "src/obs/") ||
                        path == "src/common/timer.h" ||
                        StartsWith(path, "src/common/random.") ||
                        StartsWith(path, "tools/");
    if (!exempt) {
      static const std::set<std::string> kBannedAlways = {
          "steady_clock",     "system_clock", "high_resolution_clock",
          "gettimeofday",     "clock_gettime", "drand48",
          "random_device",    "srand",        "rand_r",
      };
      static const std::set<std::string> kBannedCalls = {"rand", "time",
                                                         "clock"};
      for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::kIdent) continue;
        const std::string& t = toks[i].text;
        bool banned = kBannedAlways.count(t) > 0;
        if (!banned && kBannedCalls.count(t) > 0 && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
          // `std::time(`/bare `time(` are the libc call; `x.time(`/`x->time(`
          // would be a member of some other type and is not ours to ban.
          const bool member_access =
              i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
          const bool std_qualified =
              i > 1 && toks[i - 1].text == "::" && toks[i - 2].text == "std";
          banned = !member_access || std_qualified;
        }
        if (banned) {
          report(toks[i].line, "determinism-clock",
                 "'" + t +
                     "' makes queries/builds irreproducible; time and "
                     "randomness belong to src/obs/, common/timer.h, "
                     "common/random.*");
        }
      }
    }
  }

  // --- hash-order ----------------------------------------------------------
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent || toks[i].text != "ForEach" ||
        toks[i + 1].text != "(") {
      continue;
    }
    const size_t close = MatchingClose(toks, i + 1);
    if (close >= toks.size()) continue;
    const bool accumulates =
        RangeContainsIdent(toks, i + 2, close, "push_back") ||
        RangeContainsIdent(toks, i + 2, close, "emplace_back");
    if (!accumulates) continue;
    // A sort of the accumulated vector must follow promptly (the canonical
    // "dump the table, then canonicalize" idiom); 60 tokens is roughly the
    // following two statements.
    const bool sorted_after =
        RangeContainsIdent(toks, close, close + 60, "sort") ||
        RangeContainsIdent(toks, close, close + 60, "Sort");
    if (!sorted_after) {
      report(toks[i].line, "hash-order",
             "ForEach over a hash table accumulates into a vector without a "
             "following sort; hash order is seeded per process");
    }
  }

  // --- v2 rule pack: concurrency + flat-slab escapes -----------------------
  LintConcurrencyAndFlat(path, toks, report);

  // --- v3 rule pack: ABI/format contracts ----------------------------------
  LintAbiContracts(path, toks, report);

  // --- epoch/snapshot discipline (batch-dynamic read path) -----------------
  LintEpochDiscipline(path, toks, report);

  // --- function-structure pass: archive-symmetry + ops-budget --------------
  // One walk detects function definitions. For Save/Load definitions it
  // extracts the ordered archive-op sequence; for every definition it scans
  // range-for loops over ObjectId and demands OpsBudget::Charge when the
  // function takes an OpsBudget*.
  std::map<std::string, std::vector<SerializeFn>> saves;
  std::map<std::string, std::vector<SerializeFn>> loads;

  // Class context: (name, token index of the opening brace's matching
  // close), innermost last.
  std::vector<std::pair<std::string, size_t>> class_stack;
  std::string pending_class;

  const bool budget_scope = path.find("core/") != std::string::npos ||
                            path.find("serve/") != std::string::npos;

  // Recursive lambda over token ranges; `has_budget` is inherited by loops
  // in nested lambdas (they run on the enclosing query path).
  auto scan_range = [&](auto&& self, size_t begin, size_t end,
                        bool has_budget) -> void {
    for (size_t i = begin; i < end; ++i) {
      const Token& tok = toks[i];
      // Track class context for member Save/Load attribution.
      // `enum class`, `template <class T>` and `<..., class U>` are not
      // class-scope introductions.
      if (tok.kind == Token::kIdent &&
          (tok.text == "class" || tok.text == "struct") &&
          (i == 0 || (toks[i - 1].text != "enum" && toks[i - 1].text != "<" &&
                      toks[i - 1].text != ",")) &&
          i + 1 < end && toks[i + 1].kind == Token::kIdent) {
        pending_class = toks[i + 1].text;
        continue;
      }
      if (tok.text == ";") {
        pending_class.clear();
        continue;
      }
      if (tok.text == "{") {
        if (!pending_class.empty()) {
          const size_t close = MatchingClose(toks, i);
          class_stack.emplace_back(pending_class, close);
          pending_class.clear();
        }
        continue;
      }
      while (!class_stack.empty() && i >= class_stack.back().second) {
        class_stack.pop_back();
      }

      // Range-for over ObjectId on a budgeted query path must Charge.
      if (tok.kind == Token::kIdent && tok.text == "for" && i + 1 < end &&
          toks[i + 1].text == "(") {
        const size_t parens_close = MatchingClose(toks, i + 1);
        if (parens_close >= end) continue;
        bool range_for = false;
        int depth = 0;
        for (size_t j = i + 2; j < parens_close; ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
          if (depth == 0 && toks[j].text == ":") {
            range_for = true;
            break;
          }
        }
        const bool over_objects =
            range_for && RangeContainsIdent(toks, i + 2, parens_close,
                                            "ObjectId");
        if (over_objects && has_budget && budget_scope &&
            parens_close + 1 < end && toks[parens_close + 1].text == "{") {
          const size_t body_close = MatchingClose(toks, parens_close + 1);
          if (!RangeContainsIdent(toks, parens_close + 1, body_close,
                                  "Charge")) {
            report(tok.line, "ops-budget",
                   "candidate-enumeration loop on a budgeted query path "
                   "does not call OpsBudget::Charge (footnote 4 manual "
                   "termination)");
          }
          // The loop body is still scanned below for nested functions.
        }
        continue;
      }

      // Function definition: ident '(' params ')' [const|noexcept|requires]
      // '{'. Control-flow keywords and macro-looking all-caps names are not
      // functions.
      if (tok.kind != Token::kIdent || i + 1 >= end ||
          toks[i + 1].text != "(") {
        continue;
      }
      static const std::set<std::string> kNotFunctions = {
          "if",     "for",    "while",   "switch", "return",
          "sizeof", "static_assert",     "decltype", "alignof",
          "catch",  "requires"};
      if (kNotFunctions.count(tok.text) > 0) continue;
      const size_t params_close = MatchingClose(toks, i + 1);
      if (params_close >= end) continue;
      size_t j = params_close + 1;
      bool is_definition = false;
      while (j < end) {
        const std::string& t = toks[j].text;
        if (t == "const" || t == "noexcept" || t == "override" ||
            t == "final" || t == "mutable") {
          ++j;
          continue;
        }
        if (t == "requires") {
          // Skip the trailing requires-clause: `requires ( ... )` or a bare
          // concept expression up to the '{'.
          ++j;
          if (j < end && toks[j].text == "(") j = MatchingClose(toks, j) + 1;
          continue;
        }
        is_definition = t == "{";
        break;
      }
      if (!is_definition || j >= end) continue;
      const size_t body_open = j;
      const size_t body_close = MatchingClose(toks, body_open);
      if (body_close > end) continue;

      const bool fn_has_budget =
          RangeContainsIdent(toks, i + 2, params_close, "OpsBudget");

      // Archive unit detection. LoadFlat reads from a mapped file rather
      // than an InputArchive, so MmapFile params count as load-like too.
      const std::string& fname = tok.text;
      const bool save_like =
          StartsWith(fname, "Save") &&
          (RangeContainsIdent(toks, i + 2, params_close, "OutputArchive") ||
           RangeContainsIdent(toks, i + 2, params_close, "ostream"));
      const bool load_like =
          StartsWith(fname, "Load") &&
          (RangeContainsIdent(toks, i + 2, params_close, "InputArchive") ||
           RangeContainsIdent(toks, i + 2, params_close, "istream") ||
           RangeContainsIdent(toks, i + 2, params_close, "MmapFile"));
      if (save_like || load_like) {
        std::string owner;
        std::string suffix = fname.substr(4);  // "" / "Flat" / free-pair stem.
        if (i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].kind == Token::kIdent) {
          owner = toks[i - 2].text;  // Out-of-line member: Class::Save.
        } else if (!class_stack.empty()) {
          owner = class_stack.back().first;
        } else {
          owner = fname.substr(4);  // Free SaveFoo/LoadFoo pair.
          suffix.clear();
        }
        if (!owner.empty()) {
          SerializeFn fn;
          fn.file = path;
          fn.owner = owner;
          fn.suffix = suffix;
          fn.line = tok.line;
          fn.ops = ExtractArchiveOps(toks, body_open + 1, body_close);
          // Pair by exact name, not by owner alone: an owner with both a
          // v1 Save/Load and a v2 SaveFlat/LoadFlat must keep each pair
          // checked independently (owner-keyed pairing would see two save
          // fns and silently skip the v1 check).
          const std::string key = owner + '\x1f' + suffix;
          (save_like ? saves : loads)[key].push_back(std::move(fn));
        }
      }

      self(self, body_open + 1, body_close, fn_has_budget);
      i = body_close;
    }
  };
  scan_range(scan_range, 0, toks.size(), /*has_budget=*/false);

  // --- archive-symmetry pairing (per file: the codebase keeps a pair's two
  // bodies in one translation-unit's source file). Keys are owner + exact
  // name suffix, so Save pairs with Load and SaveFlat with LoadFlat. --------
  for (const auto& [key, save_fns] : saves) {
    auto it = loads.find(key);
    if (save_fns.front().suffix == "Flat") {
      // Flat bodies are arena writes, not archive-op streams, so the op
      // comparison does not apply; what must hold is that a mapped-format
      // writer ships with its reader in the same translation unit.
      if (it == loads.end()) {
        report(save_fns.front().line, "archive-symmetry",
               save_fns.front().owner +
                   ": SaveFlat has no LoadFlat counterpart in this file; a "
                   "v2 flat container nobody can map back is write-only "
                   "data");
      }
      continue;
    }
    if (it == loads.end() || save_fns.size() != 1 || it->second.size() != 1) {
      continue;  // Unpaired or overloaded: nothing comparable.
    }
    const SerializeFn& save = save_fns[0];
    const SerializeFn& load = it->second[0];
    const size_t count = std::min(save.ops.size(), load.ops.size());
    std::string mismatch;
    int at_line = load.line;
    for (size_t k = 0; k < count && mismatch.empty(); ++k) {
      const ArchiveOp& s = save.ops[k];
      const ArchiveOp& l = load.ops[k];
      if (s.kind != l.kind) {
        mismatch = "op " + std::to_string(k + 1) + " is " +
                   ArchiveOpName(s.kind) + " in Save but " +
                   ArchiveOpName(l.kind) + " in Load";
        at_line = l.line;
      } else if (!s.detail.empty() && !l.detail.empty() &&
                 s.detail != l.detail) {
        mismatch = "op " + std::to_string(k + 1) + " (" +
                   ArchiveOpName(s.kind) + ") spells '" + s.detail +
                   "' in Save but '" + l.detail + "' in Load";
        at_line = l.line;
      }
    }
    if (mismatch.empty() && save.ops.size() != load.ops.size()) {
      mismatch = "Save issues " + std::to_string(save.ops.size()) +
                 " archive ops but Load issues " +
                 std::to_string(load.ops.size());
      at_line = load.line;
    }
    if (!mismatch.empty()) {
      report(at_line, "archive-symmetry",
             save.owner + ": " + mismatch +
                 "; Save and Load must stream the same ordered field "
                 "sequence");
    }
  }
  for (const auto& [key, load_fns] : loads) {
    if (load_fns.front().suffix != "Flat") continue;
    if (saves.find(key) == saves.end()) {
      report(load_fns.front().line, "archive-symmetry",
             load_fns.front().owner +
                 ": LoadFlat has no SaveFlat counterpart in this file; a "
                 "mapped-format reader with no writer cannot be kept in "
                 "sync with the layout it parses");
    }
  }
}

bool Linter::LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string rule_path = path;
  if (!root_.empty() && StartsWith(rule_path, root_)) {
    rule_path = rule_path.substr(root_.size());
    while (!rule_path.empty() && rule_path.front() == '/') {
      rule_path = rule_path.substr(1);
    }
  }
  while (StartsWith(rule_path, "./")) rule_path = rule_path.substr(2);
  LintSource(rule_path, contents.str());
  return true;
}

bool Linter::LintTree(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> files;
  fs::recursive_directory_iterator it(dir, ec);
  if (ec) return false;
  for (auto end = fs::recursive_directory_iterator(); it != end;
       it.increment(ec)) {
    if (ec) return false;
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory()) {
      // Seeded-violation corpora and build trees are not the real tree.
      if (name == "lint_fixtures" || name == "negative_compile" ||
          StartsWith(name, "build") || StartsWith(name, ".")) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (EndsWith(name, ".h") || EndsWith(name, ".cc") ||
        EndsWith(name, ".cpp")) {
      files.push_back(p.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  bool ok = true;
  for (const std::string& file : files) ok = LintFile(file) && ok;
  return ok;
}

std::vector<Finding> Linter::TakeFindings() {
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return std::move(findings_);
}

}  // namespace lint
}  // namespace kwsc
