// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The shared lexical scanner behind kwsc's static analyzers.
//
// kwsc-lint (rule judging) and kwsc-abi (format-manifest extraction) read
// the same codebase with the same deliberately-lexical model: a token
// stream with comments stripped and preprocessor lines collected on the
// side, plus a per-file declarations pass (DeclIndex) that records what
// names *mean* — which members are Mutexes, which identifiers hold mapped
// memory — so the passes above can judge uses instead of single tokens.
// Keeping one scanner keeps the two tools' view of the sources identical:
// a construct kwsc-abi can extract is a construct kwsc-lint can check.

#ifndef KWSC_TOOLS_KWSC_LINT_SCANNER_H_
#define KWSC_TOOLS_KWSC_LINT_SCANNER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kwsc {
namespace lint {

// ---------------------------------------------------------------------------
// Lexer: comments and preprocessor lines stripped from the token stream
// (preprocessor directives and allow-comments are collected on the side).
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Scan {
  std::vector<std::string> lines;  // 0-based; lines[i] is source line i+1.
  std::vector<Token> tokens;
  std::vector<std::pair<int, std::string>> preprocessor;  // (line, directive)
  std::map<int, std::vector<std::string>> allow;  // line -> allowed rule ids
};

Scan Tokenize(const std::string& contents);

/// Index of the token matching the opener at `open` ('(', '{', '[' or '<'),
/// or tokens.size() if unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open);

bool RangeContainsIdent(const std::vector<Token>& tokens, size_t begin,
                        size_t end, std::string_view ident);

/// Joins tokens into a canonical one-space spelling so the same type spelled
/// in two places compares equal regardless of whitespace in the source.
std::string JoinTokens(const std::vector<Token>& tokens, size_t begin,
                       size_t end);

bool EndsWith(std::string_view text, std::string_view suffix);
bool StartsWith(std::string_view text, std::string_view prefix);

// ---------------------------------------------------------------------------
// Archive-op extraction: the ordered Magic/Pod/Vec/nested-serialize sequence
// a Save or Load body issues. kwsc-lint compares the two sides of a pair
// (archive-symmetry); kwsc-abi serializes the save-side sequence into the
// FORMATS.lock manifest.
// ---------------------------------------------------------------------------

struct ArchiveOp {
  enum Kind { kMagic, kPod, kVec, kSub };
  Kind kind;
  std::string detail;  // Magic: tag literal; Pod/Vec: explicit template args
                       // ("" when deduced); Sub: callee suffix ("" for plain
                       // nested Save/Load).
  int line;
};

const char* ArchiveOpName(ArchiveOp::Kind kind);

/// Extracts the ordered archive-op sequence from the token range
/// [body_begin, body_end) of a Save/Load body.
std::vector<ArchiveOp> ExtractArchiveOps(const std::vector<Token>& toks,
                                         size_t body_begin, size_t body_end);

// ---------------------------------------------------------------------------
// Declarations pass: a lightweight per-file semantic model. Still lexical —
// "declaration" is a token-shape heuristic, not a parse — but the two-pass
// split (collect what names mean, then judge how they are used) is what lets
// the rules reason about captures, guards, and mapped memory.
// ---------------------------------------------------------------------------

/// What the declarations pass learned about one file.
struct DeclIndex {
  /// Mutex members (`Mutex name_;`, optionally `mutable`): name -> line.
  std::map<std::string, int> mutex_members;
  /// Every identifier appearing inside a KWSC_* thread-safety annotation's
  /// argument list. Deliberately coarse: naming a mutex anywhere in the
  /// contract vocabulary counts as giving it a discipline.
  std::set<std::string> annotated;
  /// Identifiers declared with a mapped-memory type (MmapFile, SlabRef,
  /// FlatArenaReader) — the taint set for flat-escape.
  std::set<std::string> mapped;
  /// Identifiers declared `std::byte*` / `const std::byte*`: raw pointers
  /// into (potentially) mapped regions, subject to the arithmetic ban.
  std::set<std::string> byte_ptrs;
  /// Member-shaped (trailing '_') declarations that retain a view into a
  /// mapped region past the deriving scope: name -> line, for flat-retain.
  std::map<std::string, int> retained_members;
};

const std::set<std::string>& ThreadAnnotationMacros();

/// From the token after a type name, skips declarator decoration and returns
/// the declared identifier's index, or tokens.size() when the type name is
/// not introducing a declaration here (a cast, a template argument, ...).
size_t DeclaredIdent(const std::vector<Token>& toks, size_t after_type);

DeclIndex BuildDeclIndex(const std::vector<Token>& toks);

}  // namespace lint
}  // namespace kwsc

#endif  // KWSC_TOOLS_KWSC_LINT_SCANNER_H_
