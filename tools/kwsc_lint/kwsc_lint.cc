// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// kwsc-lint driver. Usage:
//   kwsc_lint [--allowlist FILE] [PATH...]
//
// Each PATH is a file or directory (directories are scanned recursively for
// .h/.cc, skipping lint_fixtures/, negative_compile/, build*/ and hidden
// directories). With no PATH, lints src bench tests relative to the current
// directory. Exit status: 0 clean, 1 findings, 2 usage/IO error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::string allowlist_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allowlist") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "kwsc_lint: --allowlist needs a file argument\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: kwsc_lint [--allowlist FILE] [PATH...]\n"
                   "lints .h/.cc files for kwsc project rules; default paths "
                   "are src bench tests\n");
      return 0;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tests"};

  kwsc::lint::Linter linter(
      allowlist_path.empty()
          ? std::vector<kwsc::lint::AllowEntry>{}
          : kwsc::lint::LoadAllowlistFile(allowlist_path));
  bool io_ok = true;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      if (!linter.LintTree(path)) {
        std::fprintf(stderr, "kwsc_lint: error scanning %s\n", path.c_str());
        io_ok = false;
      }
    } else if (!linter.LintFile(path)) {
      std::fprintf(stderr, "kwsc_lint: cannot read %s\n", path.c_str());
      io_ok = false;
    }
  }

  const std::vector<kwsc::lint::Finding> findings = linter.TakeFindings();
  for (const kwsc::lint::Finding& f : findings) {
    std::printf("%s\n", f.Format().c_str());
  }
  if (!io_ok) return 2;
  if (!findings.empty()) {
    std::fprintf(stderr, "kwsc_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
