// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "scanner.h"

#include <cctype>
#include <sstream>

namespace kwsc {
namespace lint {

namespace {

void RecordAllowComment(Scan* scan, int line, std::string_view comment) {
  static constexpr std::string_view kTag = "kwsc-lint: allow(";
  size_t pos = comment.find(kTag);
  while (pos != std::string_view::npos) {
    const size_t open = pos + kTag.size();
    const size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    scan->allow[line].emplace_back(comment.substr(open, close - open));
    pos = comment.find(kTag, close);
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.compare(0, prefix.size(), prefix) == 0;
}

Scan Tokenize(const std::string& contents) {
  Scan scan;
  {
    std::istringstream stream(contents);
    std::string line;
    while (std::getline(stream, line)) scan.lines.push_back(line);
  }

  const size_t n = contents.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // Only whitespace seen since the last newline.
  auto advance = [&](size_t count) {
    for (size_t j = 0; j < count && i < n; ++j, ++i) {
      if (contents[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = contents[i];
    if (c == '\n') {
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && contents[i + 1] == '/') {
      const size_t end = contents.find('\n', i);
      const size_t stop = end == std::string::npos ? n : end;
      RecordAllowComment(&scan, line,
                         std::string_view(contents).substr(i, stop - i));
      advance(stop - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && contents[i + 1] == '*') {
      const size_t end = contents.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? n : end + 2;
      RecordAllowComment(&scan, line,
                         std::string_view(contents).substr(i, stop - i));
      advance(stop - i);
      continue;
    }
    // Preprocessor directive (with backslash continuations), only when '#'
    // is the first non-whitespace character on the line.
    if (c == '#' && at_line_start) {
      const int directive_line = line;
      size_t end = i;
      while (end < n) {
        const size_t newline = contents.find('\n', end);
        const size_t stop = newline == std::string::npos ? n : newline;
        // A trailing backslash continues the directive onto the next line.
        size_t last = stop;
        while (last > end &&
               std::isspace(static_cast<unsigned char>(contents[last - 1])) !=
                   0 &&
               contents[last - 1] != '\n') {
          --last;
        }
        if (last > end && contents[last - 1] == '\\' &&
            newline != std::string::npos) {
          end = newline + 1;
          continue;
        }
        end = stop;
        break;
      }
      scan.preprocessor.emplace_back(directive_line,
                                     contents.substr(i, end - i));
      advance(end - i);
      continue;
    }
    at_line_start = false;
    // String literal.
    if (c == '"') {
      size_t j = i + 1;
      while (j < n && contents[j] != '"') {
        if (contents[j] == '\\') ++j;
        ++j;
      }
      const size_t stop = j < n ? j + 1 : n;
      scan.tokens.push_back(
          {Token::kString, contents.substr(i, stop - i), line});
      advance(stop - i);
      continue;
    }
    // Character literal (the lexer does not need digraph/UDL fidelity).
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && contents[j] != '\'') {
        if (contents[j] == '\\') ++j;
        ++j;
      }
      const size_t stop = j < n ? j + 1 : n;
      scan.tokens.push_back({Token::kChar, contents.substr(i, stop - i), line});
      advance(stop - i);
      continue;
    }
    // Identifier / keyword.
    if (IsIdentChar(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      size_t j = i;
      while (j < n && IsIdentChar(contents[j])) ++j;
      scan.tokens.push_back({Token::kIdent, contents.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Number (good enough: digits plus identifier-ish suffixes and dots).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i;
      while (j < n && (IsIdentChar(contents[j]) || contents[j] == '.' ||
                       ((contents[j] == '+' || contents[j] == '-') && j > i &&
                        (contents[j - 1] == 'e' || contents[j - 1] == 'E')))) {
        ++j;
      }
      scan.tokens.push_back({Token::kNumber, contents.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Punctuation; '::' and '->' matter to the rules, so keep them fused.
    if (c == ':' && i + 1 < n && contents[i + 1] == ':') {
      scan.tokens.push_back({Token::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && contents[i + 1] == '>') {
      scan.tokens.push_back({Token::kPunct, "->", line});
      advance(2);
      continue;
    }
    scan.tokens.push_back({Token::kPunct, std::string(1, c), line});
    advance(1);
  }
  return scan;
}

size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  const std::string& open_text = tokens[open].text;
  const std::string close_text = open_text == "("   ? ")"
                                 : open_text == "{" ? "}"
                                 : open_text == "[" ? "]"
                                                    : ">";
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == open_text) {
      ++depth;
    } else if (tokens[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

bool RangeContainsIdent(const std::vector<Token>& tokens, size_t begin,
                        size_t end, std::string_view ident) {
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (tokens[i].kind == Token::kIdent && tokens[i].text == ident) {
      return true;
    }
  }
  return false;
}

std::string JoinTokens(const std::vector<Token>& tokens, size_t begin,
                       size_t end) {
  std::string joined;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (!joined.empty()) joined += ' ';
    joined += tokens[i].text;
  }
  return joined;
}

const char* ArchiveOpName(ArchiveOp::Kind kind) {
  switch (kind) {
    case ArchiveOp::kMagic:
      return "Magic";
    case ArchiveOp::kPod:
      return "Pod";
    case ArchiveOp::kVec:
      return "Vec";
    case ArchiveOp::kSub:
      return "nested Save/Load";
  }
  return "?";
}

std::vector<ArchiveOp> ExtractArchiveOps(const std::vector<Token>& toks,
                                         size_t body_begin, size_t body_end) {
  std::vector<ArchiveOp> ops;
  for (size_t j = body_begin; j < body_end; ++j) {
    if (toks[j].kind != Token::kIdent) continue;
    const std::string& name = toks[j].text;
    if (j + 1 >= body_end) break;
    if (name == "Magic" && toks[j + 1].text == "(") {
      std::string tag;
      if (j + 2 < body_end && toks[j + 2].kind == Token::kString) {
        tag = toks[j + 2].text;
      }
      ops.push_back({ArchiveOp::kMagic, tag, toks[j].line});
    } else if (name == "Pod" || name == "Vec") {
      const ArchiveOp::Kind kind =
          name == "Pod" ? ArchiveOp::kPod : ArchiveOp::kVec;
      if (toks[j + 1].text == "<") {
        const size_t targs_close = MatchingClose(toks, j + 1);
        if (targs_close < body_end && targs_close + 1 < toks.size() &&
            toks[targs_close + 1].text == "(") {
          ops.push_back(
              {kind, JoinTokens(toks, j + 2, targs_close), toks[j].line});
        }
      } else if (toks[j + 1].text == "(") {
        ops.push_back({kind, "", toks[j].line});
      }
    } else if ((StartsWith(name, "Save") || StartsWith(name, "Load")) &&
               toks[j + 1].text == "(") {
      ops.push_back({ArchiveOp::kSub, name.substr(4), toks[j].line});
    }
  }
  return ops;
}

const std::set<std::string>& ThreadAnnotationMacros() {
  static const std::set<std::string> kMacros = {
      "KWSC_GUARDED_BY",       "KWSC_PT_GUARDED_BY",
      "KWSC_REQUIRES",         "KWSC_REQUIRES_SHARED",
      "KWSC_ACQUIRE",          "KWSC_ACQUIRE_SHARED",
      "KWSC_RELEASE",          "KWSC_RELEASE_SHARED",
      "KWSC_TRY_ACQUIRE",      "KWSC_EXCLUDES",
      "KWSC_ASSERT_CAPABILITY", "KWSC_RETURN_CAPABILITY",
      "KWSC_ACQUIRED_BEFORE",  "KWSC_ACQUIRED_AFTER"};
  return kMacros;
}

size_t DeclaredIdent(const std::vector<Token>& toks, size_t after_type) {
  size_t j = after_type;
  while (j < toks.size() &&
         (toks[j].text == "*" || toks[j].text == "&" ||
          toks[j].text == "const")) {
    ++j;
  }
  if (j < toks.size() && toks[j].kind == Token::kIdent) return j;
  return toks.size();
}

DeclIndex BuildDeclIndex(const std::vector<Token>& toks) {
  DeclIndex index;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::kIdent) continue;

    // Mutex members: `Mutex name_;` (locals without the member underscore
    // are scoped by construction and carry their discipline in the code
    // around them).
    if (tok.text == "Mutex" && i + 2 < toks.size() &&
        toks[i + 1].kind == Token::kIdent && toks[i + 2].text == ";" &&
        EndsWith(toks[i + 1].text, "_")) {
      index.mutex_members.emplace(toks[i + 1].text, toks[i + 1].line);
    }

    // Annotation arguments.
    if (ThreadAnnotationMacros().count(tok.text) > 0 && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const size_t close = MatchingClose(toks, i + 1);
      for (size_t j = i + 2; j < close && j < toks.size(); ++j) {
        if (toks[j].kind == Token::kIdent) index.annotated.insert(toks[j].text);
      }
    }

    // Mapped-memory declarations: `MmapFile f`, `const SlabRef& r`,
    // `FlatArenaReader reader`. The declared name inherits the taint.
    if (tok.text == "MmapFile" || tok.text == "SlabRef" ||
        tok.text == "FlatArenaReader") {
      const size_t decl = DeclaredIdent(toks, i + 1);
      if (decl < toks.size()) {
        index.mapped.insert(toks[decl].text);
        if (tok.text == "FlatArenaReader" &&
            EndsWith(toks[decl].text, "_") && decl + 1 < toks.size() &&
            (toks[decl + 1].text == ";" || toks[decl + 1].text == "=" ||
             toks[decl + 1].text == "{")) {
          index.retained_members.emplace(toks[decl].text, toks[decl].line);
        }
      }
    }

    // `std::byte* p` declarations (the '*' is what makes it a raw view; a
    // by-value std::byte is inert).
    if (tok.text == "std" && i + 2 < toks.size() &&
        toks[i + 1].text == "::" && toks[i + 2].text == "byte") {
      size_t j = i + 3;
      bool pointer = false;
      while (j < toks.size() &&
             (toks[j].text == "*" || toks[j].text == "&" ||
              toks[j].text == "const")) {
        pointer = pointer || toks[j].text == "*";
        ++j;
      }
      if (pointer && j < toks.size() && toks[j].kind == Token::kIdent) {
        index.byte_ptrs.insert(toks[j].text);
        if (EndsWith(toks[j].text, "_") && j + 1 < toks.size() &&
            (toks[j + 1].text == ";" || toks[j + 1].text == "=" ||
             toks[j + 1].text == "{")) {
          index.retained_members.emplace(toks[j].text, toks[j].line);
        }
      }
    }
  }
  return index;
}

}  // namespace lint
}  // namespace kwsc
