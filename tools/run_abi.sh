#!/usr/bin/env bash
# kwsc-abi gate: the committed format/ABI manifest must match the tree.
#
# Usage: tools/run_abi.sh [--update] [build-dir]
#
# Regenerates the manifest from src/ (kwsc_abi + the compiled layout probe)
# into a scratch file and byte-compares it against the committed
# FORMATS.lock. Any mismatch fails with the diff — commit the regenerated
# manifest (--update writes it in place) *and* bump the owning format's
# version constant in src/core/format_versions.h; `kwsc_abi diff` is run
# against the committed manifest to enforce the bump half, so drift can
# never land silently and a layout change can never ride along unversioned.
set -euo pipefail

cd "$(dirname "$0")/.."

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/tools/kwsc_abi/kwsc_abi"
PROBE="$BUILD_DIR/tools/kwsc_abi/kwsc_abi_probe"

if [ ! -d "$BUILD_DIR" ]; then
  echo "run_abi.sh: no build directory '$BUILD_DIR'; configure first:" >&2
  echo "run_abi.sh:   cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

# The probe target re-emits abi_probe.gen.cc whenever any src/ source
# changed, and its compile re-checks the portability static_asserts.
if ! cmake --build "$BUILD_DIR" --target kwsc_abi kwsc_abi_probe -j >/dev/null; then
  echo "run_abi.sh: FAILED — could not build kwsc_abi / the layout probe" >&2
  echo "run_abi.sh: (a failing probe compile IS a finding: a registered" >&2
  echo "run_abi.sh: struct broke trivial-copyability, standard layout, or" >&2
  echo "run_abi.sh: grew undeclared padding)." >&2
  exit 1
fi

FRESH="$(mktemp)"
trap 'rm -f "$FRESH"' EXIT

"$BIN" manifest . --probe "$PROBE" -o "$FRESH"

if [ "$UPDATE" = "1" ]; then
  cp "$FRESH" FORMATS.lock
  echo "run_abi.sh: FORMATS.lock updated"
  exit 0
fi

if [ ! -f FORMATS.lock ]; then
  echo "run_abi.sh: FAILED — FORMATS.lock is not committed; generate it:" >&2
  echo "run_abi.sh:   tools/run_abi.sh --update" >&2
  exit 1
fi

if cmp -s FORMATS.lock "$FRESH"; then
  echo "run_abi.sh: OK — FORMATS.lock matches the tree"
  exit 0
fi

echo "run_abi.sh: FORMATS.lock is stale; drift against the tree:" >&2
diff -u FORMATS.lock "$FRESH" >&2 || true

# The bump half: content drift is only legal together with a version bump of
# the owning format. Exit 1 either way — the committed file must be updated —
# but the diff verdict tells the author whether updating is *all* they need.
echo "" >&2
"$BIN" diff FORMATS.lock "$FRESH" >&2 || true
echo "run_abi.sh: FAILED — regenerate (tools/run_abi.sh --update), fix any" >&2
echo "run_abi.sh: VIOLATION above (bump the format's constant in" >&2
echo "run_abi.sh: src/core/format_versions.h), and commit both." >&2
exit 1
