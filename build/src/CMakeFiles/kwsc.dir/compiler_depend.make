# Empty compiler generated dependencies file for kwsc.
# This may be replaced when dependencies are built.
