
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/memory.cc" "src/CMakeFiles/kwsc.dir/common/memory.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/common/memory.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/kwsc.dir/common/random.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/common/random.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/kwsc.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/common/zipf.cc.o.d"
  "/root/repo/src/core/balanced_cut.cc" "src/CMakeFiles/kwsc.dir/core/balanced_cut.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/core/balanced_cut.cc.o.d"
  "/root/repo/src/core/node_directory.cc" "src/CMakeFiles/kwsc.dir/core/node_directory.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/core/node_directory.cc.o.d"
  "/root/repo/src/core/sp_kw_hs.cc" "src/CMakeFiles/kwsc.dir/core/sp_kw_hs.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/core/sp_kw_hs.cc.o.d"
  "/root/repo/src/geom/lp.cc" "src/CMakeFiles/kwsc.dir/geom/lp.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/geom/lp.cc.o.d"
  "/root/repo/src/geom/polygon2d.cc" "src/CMakeFiles/kwsc.dir/geom/polygon2d.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/geom/polygon2d.cc.o.d"
  "/root/repo/src/ksi/framework_ksi.cc" "src/CMakeFiles/kwsc.dir/ksi/framework_ksi.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/ksi/framework_ksi.cc.o.d"
  "/root/repo/src/ksi/ksi_instance.cc" "src/CMakeFiles/kwsc.dir/ksi/ksi_instance.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/ksi/ksi_instance.cc.o.d"
  "/root/repo/src/ksi/naive_ksi.cc" "src/CMakeFiles/kwsc.dir/ksi/naive_ksi.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/ksi/naive_ksi.cc.o.d"
  "/root/repo/src/parttree/ham_sandwich.cc" "src/CMakeFiles/kwsc.dir/parttree/ham_sandwich.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/parttree/ham_sandwich.cc.o.d"
  "/root/repo/src/text/corpus.cc" "src/CMakeFiles/kwsc.dir/text/corpus.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/text/corpus.cc.o.d"
  "/root/repo/src/text/document.cc" "src/CMakeFiles/kwsc.dir/text/document.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/text/document.cc.o.d"
  "/root/repo/src/text/inverted_index.cc" "src/CMakeFiles/kwsc.dir/text/inverted_index.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/text/inverted_index.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/kwsc.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/kwsc.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/kwsc.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
