file(REMOVE_RECURSE
  "libkwsc.a"
)
