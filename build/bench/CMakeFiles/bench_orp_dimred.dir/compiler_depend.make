# Empty compiler generated dependencies file for bench_orp_dimred.
# This may be replaced when dependencies are built.
