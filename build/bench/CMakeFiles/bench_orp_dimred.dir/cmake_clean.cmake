file(REMOVE_RECURSE
  "CMakeFiles/bench_orp_dimred.dir/bench_orp_dimred.cc.o"
  "CMakeFiles/bench_orp_dimred.dir/bench_orp_dimred.cc.o.d"
  "bench_orp_dimred"
  "bench_orp_dimred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orp_dimred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
