file(REMOVE_RECURSE
  "CMakeFiles/bench_nn_linf.dir/bench_nn_linf.cc.o"
  "CMakeFiles/bench_nn_linf.dir/bench_nn_linf.cc.o.d"
  "bench_nn_linf"
  "bench_nn_linf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn_linf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
