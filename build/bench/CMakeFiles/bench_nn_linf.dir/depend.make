# Empty dependencies file for bench_nn_linf.
# This may be replaced when dependencies are built.
