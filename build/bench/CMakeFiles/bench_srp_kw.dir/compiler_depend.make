# Empty compiler generated dependencies file for bench_srp_kw.
# This may be replaced when dependencies are built.
