file(REMOVE_RECURSE
  "CMakeFiles/bench_srp_kw.dir/bench_srp_kw.cc.o"
  "CMakeFiles/bench_srp_kw.dir/bench_srp_kw.cc.o.d"
  "bench_srp_kw"
  "bench_srp_kw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_srp_kw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
