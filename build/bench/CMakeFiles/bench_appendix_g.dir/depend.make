# Empty dependencies file for bench_appendix_g.
# This may be replaced when dependencies are built.
