file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_g.dir/bench_appendix_g.cc.o"
  "CMakeFiles/bench_appendix_g.dir/bench_appendix_g.cc.o.d"
  "bench_appendix_g"
  "bench_appendix_g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
