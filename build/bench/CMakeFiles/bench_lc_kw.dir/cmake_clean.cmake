file(REMOVE_RECURSE
  "CMakeFiles/bench_lc_kw.dir/bench_lc_kw.cc.o"
  "CMakeFiles/bench_lc_kw.dir/bench_lc_kw.cc.o.d"
  "bench_lc_kw"
  "bench_lc_kw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lc_kw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
