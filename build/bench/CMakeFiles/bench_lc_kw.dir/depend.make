# Empty dependencies file for bench_lc_kw.
# This may be replaced when dependencies are built.
