# Empty compiler generated dependencies file for bench_ir_tree.
# This may be replaced when dependencies are built.
