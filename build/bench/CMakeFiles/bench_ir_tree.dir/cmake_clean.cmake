file(REMOVE_RECURSE
  "CMakeFiles/bench_ir_tree.dir/bench_ir_tree.cc.o"
  "CMakeFiles/bench_ir_tree.dir/bench_ir_tree.cc.o.d"
  "bench_ir_tree"
  "bench_ir_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ir_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
