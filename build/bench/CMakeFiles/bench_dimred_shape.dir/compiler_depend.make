# Empty compiler generated dependencies file for bench_dimred_shape.
# This may be replaced when dependencies are built.
