file(REMOVE_RECURSE
  "CMakeFiles/bench_dimred_shape.dir/bench_dimred_shape.cc.o"
  "CMakeFiles/bench_dimred_shape.dir/bench_dimred_shape.cc.o.d"
  "bench_dimred_shape"
  "bench_dimred_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dimred_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
