# Empty compiler generated dependencies file for bench_rr_kw.
# This may be replaced when dependencies are built.
