file(REMOVE_RECURSE
  "CMakeFiles/bench_rr_kw.dir/bench_rr_kw.cc.o"
  "CMakeFiles/bench_rr_kw.dir/bench_rr_kw.cc.o.d"
  "bench_rr_kw"
  "bench_rr_kw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rr_kw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
