# Empty dependencies file for bench_ksi.
# This may be replaced when dependencies are built.
