file(REMOVE_RECURSE
  "CMakeFiles/bench_ksi.dir/bench_ksi.cc.o"
  "CMakeFiles/bench_ksi.dir/bench_ksi.cc.o.d"
  "bench_ksi"
  "bench_ksi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ksi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
