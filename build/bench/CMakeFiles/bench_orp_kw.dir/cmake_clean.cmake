file(REMOVE_RECURSE
  "CMakeFiles/bench_orp_kw.dir/bench_orp_kw.cc.o"
  "CMakeFiles/bench_orp_kw.dir/bench_orp_kw.cc.o.d"
  "bench_orp_kw"
  "bench_orp_kw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orp_kw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
