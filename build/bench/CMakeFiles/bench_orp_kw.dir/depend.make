# Empty dependencies file for bench_orp_kw.
# This may be replaced when dependencies are built.
