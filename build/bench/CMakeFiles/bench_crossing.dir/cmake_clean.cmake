file(REMOVE_RECURSE
  "CMakeFiles/bench_crossing.dir/bench_crossing.cc.o"
  "CMakeFiles/bench_crossing.dir/bench_crossing.cc.o.d"
  "bench_crossing"
  "bench_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
