# Empty dependencies file for bench_crossing.
# This may be replaced when dependencies are built.
