file(REMOVE_RECURSE
  "CMakeFiles/sp_kw_test.dir/sp_kw_test.cc.o"
  "CMakeFiles/sp_kw_test.dir/sp_kw_test.cc.o.d"
  "sp_kw_test"
  "sp_kw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_kw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
