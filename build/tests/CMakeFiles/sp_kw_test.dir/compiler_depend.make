# Empty compiler generated dependencies file for sp_kw_test.
# This may be replaced when dependencies are built.
