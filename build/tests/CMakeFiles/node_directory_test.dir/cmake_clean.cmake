file(REMOVE_RECURSE
  "CMakeFiles/node_directory_test.dir/node_directory_test.cc.o"
  "CMakeFiles/node_directory_test.dir/node_directory_test.cc.o.d"
  "node_directory_test"
  "node_directory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
