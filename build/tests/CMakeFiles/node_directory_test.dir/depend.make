# Empty dependencies file for node_directory_test.
# This may be replaced when dependencies are built.
