# Empty compiler generated dependencies file for rr_kw_test.
# This may be replaced when dependencies are built.
