file(REMOVE_RECURSE
  "CMakeFiles/rr_kw_test.dir/rr_kw_test.cc.o"
  "CMakeFiles/rr_kw_test.dir/rr_kw_test.cc.o.d"
  "rr_kw_test"
  "rr_kw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_kw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
