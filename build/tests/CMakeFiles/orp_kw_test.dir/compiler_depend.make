# Empty compiler generated dependencies file for orp_kw_test.
# This may be replaced when dependencies are built.
