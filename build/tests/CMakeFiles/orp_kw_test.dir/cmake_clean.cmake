file(REMOVE_RECURSE
  "CMakeFiles/orp_kw_test.dir/orp_kw_test.cc.o"
  "CMakeFiles/orp_kw_test.dir/orp_kw_test.cc.o.d"
  "orp_kw_test"
  "orp_kw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_kw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
