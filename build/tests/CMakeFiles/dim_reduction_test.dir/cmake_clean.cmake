file(REMOVE_RECURSE
  "CMakeFiles/dim_reduction_test.dir/dim_reduction_test.cc.o"
  "CMakeFiles/dim_reduction_test.dir/dim_reduction_test.cc.o.d"
  "dim_reduction_test"
  "dim_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dim_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
