# Empty dependencies file for dim_reduction_test.
# This may be replaced when dependencies are built.
