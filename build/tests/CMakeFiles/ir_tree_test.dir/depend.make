# Empty dependencies file for ir_tree_test.
# This may be replaced when dependencies are built.
