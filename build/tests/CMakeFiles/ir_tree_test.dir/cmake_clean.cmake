file(REMOVE_RECURSE
  "CMakeFiles/ir_tree_test.dir/ir_tree_test.cc.o"
  "CMakeFiles/ir_tree_test.dir/ir_tree_test.cc.o.d"
  "ir_tree_test"
  "ir_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
