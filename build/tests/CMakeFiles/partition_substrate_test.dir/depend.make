# Empty dependencies file for partition_substrate_test.
# This may be replaced when dependencies are built.
