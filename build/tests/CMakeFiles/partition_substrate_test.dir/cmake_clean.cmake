file(REMOVE_RECURSE
  "CMakeFiles/partition_substrate_test.dir/partition_substrate_test.cc.o"
  "CMakeFiles/partition_substrate_test.dir/partition_substrate_test.cc.o.d"
  "partition_substrate_test"
  "partition_substrate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
