# Empty compiler generated dependencies file for srp_kw_test.
# This may be replaced when dependencies are built.
