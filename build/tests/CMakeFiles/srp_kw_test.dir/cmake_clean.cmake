file(REMOVE_RECURSE
  "CMakeFiles/srp_kw_test.dir/srp_kw_test.cc.o"
  "CMakeFiles/srp_kw_test.dir/srp_kw_test.cc.o.d"
  "srp_kw_test"
  "srp_kw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_kw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
