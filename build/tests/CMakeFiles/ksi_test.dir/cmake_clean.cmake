file(REMOVE_RECURSE
  "CMakeFiles/ksi_test.dir/ksi_test.cc.o"
  "CMakeFiles/ksi_test.dir/ksi_test.cc.o.d"
  "ksi_test"
  "ksi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
