# Empty compiler generated dependencies file for ksi_test.
# This may be replaced when dependencies are built.
