file(REMOVE_RECURSE
  "CMakeFiles/geo_poi.dir/geo_poi.cpp.o"
  "CMakeFiles/geo_poi.dir/geo_poi.cpp.o.d"
  "geo_poi"
  "geo_poi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_poi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
