# Empty compiler generated dependencies file for temporal_news.
# This may be replaced when dependencies are built.
