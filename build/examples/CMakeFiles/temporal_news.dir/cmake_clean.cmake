file(REMOVE_RECURSE
  "CMakeFiles/temporal_news.dir/temporal_news.cpp.o"
  "CMakeFiles/temporal_news.dir/temporal_news.cpp.o.d"
  "temporal_news"
  "temporal_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
