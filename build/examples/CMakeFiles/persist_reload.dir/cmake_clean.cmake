file(REMOVE_RECURSE
  "CMakeFiles/persist_reload.dir/persist_reload.cpp.o"
  "CMakeFiles/persist_reload.dir/persist_reload.cpp.o.d"
  "persist_reload"
  "persist_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
