# Empty compiler generated dependencies file for persist_reload.
# This may be replaced when dependencies are built.
