// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Batch-dynamic shard replicas and their coordinator (DESIGN.md §6, §7).
//
// The static serving path (serve/shard_replica.h) builds each replica once
// from a ShardPlan slice and then only answers queries. This file is the
// update-capable counterpart: each DynamicShardReplica owns a private
// DynamicIndex<Family> (core/dynamic_index.h), so inserts and tombstone
// deletes apply per shard with Bentley–Saxe carries — optionally rebuilt on
// a background merge pool — while queries keep running against immutable
// epoch snapshots. The DynamicCoordinator fronts S such replicas and serves
// mixed update/query traffic: updates route to their owning shard, query
// batches scatter-gather over all shards with the same merge protocols
// (serve/merge.h) and byte accounting as the static Coordinator.
//
// Routing: a static plan is a function of the full corpus, which a dynamic
// workload does not have up front. Dynamic arrivals therefore route by
// global id modulo S — deterministic, balanced to within one object, and
// independent of geometry. Global ids are assigned by the coordinator in
// arrival order and never reused (the tombstone contract of the dynamic
// layer), so each replica's local→global map is ascending and a sorted
// local row translates to a sorted global row — the property the merge
// protocols rely on, exactly as in the static path.
//
// Threading: replicas are internally synchronized (an annotated Mutex
// guards the id maps; the DynamicIndex has its own writer lock and
// epoch-snapshot reads), so one updater thread and concurrent query fan-out
// coexist without external locking. Background carries run on the caller's
// merge pool and never block queries.

#ifndef KWSC_SERVE_DYNAMIC_SHARD_REPLICA_H_
#define KWSC_SERVE_DYNAMIC_SHARD_REPLICA_H_

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/ops_budget.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dynamic_index.h"
#include "core/framework.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "serve/coordinator.h"
#include "serve/merge.h"
#include "text/document.h"

namespace kwsc {

/// One update in a mixed traffic stream, already routed to a shard. For
/// kInsert, `global_id` is the coordinator-assigned id and geom/doc carry
/// the payload; for kDelete only `global_id` is meaningful.
template <typename Geom>
struct DynamicUpdate {
  enum class Kind : uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  ObjectId global_id = 0;
  Geom geom{};
  Document doc;
};

template <typename Family,
          typename Region = typename Family::DynamicRegionType>
class DynamicShardReplica {
 public:
  using GeomType = typename Family::DynamicGeomType;
  using Update = DynamicUpdate<GeomType>;

  /// Same wire shape as the static replica's answer: sorted global-id rows
  /// plus the shard's aggregate stats and local execution wall.
  struct BatchAnswer {
    std::vector<std::vector<ObjectId>> rows;
    QueryStats stats;
    uint64_t budget_exhaustions = 0;
    double wall_micros = 0.0;
  };

  DynamicShardReplica(const FrameworkOptions& options, size_t buffer_capacity,
                      uint64_t per_query_ops, ThreadPool* merge_pool = nullptr)
      : index_(options, buffer_capacity, merge_pool),
        per_query_ops_(per_query_ops) {}

  /// Applies a routed update run in arrival order. Contiguous runs of the
  /// same kind batch into one InsertBatch/DeleteBatch so a burst pays one
  /// snapshot publish (and at most one carry schedule), not one per object.
  void ApplyUpdates(std::span<const Update> updates) KWSC_EXCLUDES(mu_) {
    std::vector<GeomType> geoms;
    std::vector<Document> docs;
    std::vector<ObjectId> insert_gids;
    std::vector<ObjectId> delete_locals;
    MutexLock lock(&mu_);
    auto flush_inserts = [&] {
      if (insert_gids.empty()) return;
      const ObjectId first = index_.InsertBatch(geoms, std::move(docs));
      KWSC_CHECK(first == to_global_.size());
      to_global_.insert(to_global_.end(), insert_gids.begin(),
                        insert_gids.end());
      geoms.clear();
      docs = {};
      insert_gids.clear();
    };
    auto flush_deletes = [&] {
      if (delete_locals.empty()) return;
      index_.DeleteBatch(delete_locals);
      delete_locals.clear();
    };
    for (const Update& u : updates) {
      if (u.kind == Update::Kind::kInsert) {
        flush_deletes();
        // Ids are assigned in arrival order, so the map stays ascending —
        // the invariant sorted-row translation depends on.
        KWSC_CHECK(insert_gids.empty() ? (to_global_.empty() ||
                                          u.global_id > to_global_.back())
                                       : u.global_id > insert_gids.back());
        geoms.push_back(u.geom);
        docs.push_back(u.doc);
        insert_gids.push_back(u.global_id);
      } else {
        flush_inserts();
        delete_locals.push_back(LocalIdLocked(u.global_id));
      }
    }
    flush_inserts();
    flush_deletes();
  }

  size_t num_objects() const KWSC_EXCLUDES(mu_) {
    return index_.num_objects();
  }
  size_t live_objects() const KWSC_EXCLUDES(mu_) {
    return index_.live_objects();
  }
  const DynamicIndex<Family>& index() const { return index_; }

  /// Blocks until no carry is in flight on this shard.
  void WaitQuiescent() { index_.WaitQuiescent(); }

  /// Runs the batch against the current epoch snapshot and translates rows
  /// to sorted global ids. Queries here deliberately bypass QueryEngine:
  /// snapshot reads are already wait-free, and batch parallelism in the
  /// dynamic path comes from the shard fan-out, not intra-shard threads.
  BatchAnswer RunBatch(std::span<const BatchQuery<Region>> batch) const
      KWSC_EXCLUDES(mu_) {
    BatchAnswer answer;
    WallTimer timer;
    answer.rows.reserve(batch.size());
    for (const BatchQuery<Region>& q : batch) {
      QueryStats stats;
      std::vector<ObjectId> row;
      if (per_query_ops_ == 0) {
        row = index_.Query(q.region, q.keywords, &stats);
      } else {
        OpsBudget budget(per_query_ops_);
        row = index_.Query(q.region, q.keywords, &stats, &budget);
      }
      if (stats.budget_exhausted) ++answer.budget_exhaustions;
      MergeQueryStats(stats, &answer.stats);
      std::sort(row.begin(), row.end());
      {
        // The map only grows, and every id the snapshot can emit was
        // inserted (and therefore mapped) before the snapshot published.
        MutexLock lock(&mu_);
        for (ObjectId& id : row) id = to_global_[id];
      }
      answer.rows.push_back(std::move(row));  // Ascending map: still sorted.
    }
    answer.wall_micros = timer.ElapsedMicros();
    return answer;
  }

 private:
  /// Global id -> local id by binary search (the map is ascending).
  ObjectId LocalIdLocked(ObjectId global_id) const KWSC_REQUIRES(mu_) {
    const auto it =
        std::lower_bound(to_global_.begin(), to_global_.end(), global_id);
    KWSC_CHECK_MSG(it != to_global_.end() && *it == global_id,
                   "update routed to a shard that does not own the id");
    return static_cast<ObjectId>(it - to_global_.begin());
  }

  DynamicIndex<Family> index_;
  const uint64_t per_query_ops_;
  mutable Mutex mu_;
  /// Local id -> global id, ascending (ids are assigned in arrival order).
  std::vector<ObjectId> to_global_ KWSC_GUARDED_BY(mu_);
};

/// Fronts S dynamic replicas with the static Coordinator's scatter-gather
/// and merge protocols, plus an update path. Reuses ServeOptions; the
/// static plan fields it has no dynamic equivalent for (threads_per_shard)
/// are ignored — see the routing note in the file comment.
template <typename Family,
          typename Region = typename Family::DynamicRegionType>
class DynamicCoordinator {
 public:
  using GeomType = typename Family::DynamicGeomType;
  using Replica = DynamicShardReplica<Family, Region>;
  using Update = typename Replica::Update;

  /// Same shape as Coordinator::Result (not aliased: the static Coordinator
  /// template requires a point-buildable index surface some dynamizable
  /// families — RR-KW builds from rectangles — do not expose).
  struct Result {
    std::vector<std::vector<ObjectId>> rows;
    QueryStats stats;
    uint64_t budget_exhaustions = 0;
    MergeByteCounters bytes;
    double wall_micros = 0.0;
    std::vector<double> shard_wall_micros;
    double merge_micros = 0.0;
  };

  DynamicCoordinator(uint32_t num_shards, const FrameworkOptions& index_options,
                     const ServeOptions& options, size_t buffer_capacity = 64,
                     ThreadPool* merge_pool = nullptr,
                     obs::MetricsRegistry* registry = nullptr)
      : options_(options), registry_(registry) {
    KWSC_CHECK(num_shards >= 1);
    replicas_.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      replicas_.push_back(std::make_unique<Replica>(
          index_options, buffer_capacity, options.per_shard_query_ops,
          merge_pool));
    }
    if (options_.parallel_fanout && replicas_.size() > 1) {
      pool_ = std::make_unique<ThreadPool>(
          static_cast<int>(replicas_.size()) - 1);
    }
    if (registry_ != nullptr) {
      registry_->SetGauge("serve.num_shards",
                          static_cast<double>(replicas_.size()));
    }
  }

  size_t num_shards() const { return replicas_.size(); }
  const Replica& replica(size_t s) const { return *replicas_[s]; }

  uint32_t ShardOf(ObjectId global_id) const {
    return static_cast<uint32_t>(global_id % replicas_.size());
  }

  /// Inserts one object; returns its global id.
  ObjectId Insert(const GeomType& geom, Document doc) KWSC_EXCLUDES(mu_) {
    Update u;
    u.kind = Update::Kind::kInsert;
    u.geom = geom;
    u.doc = std::move(doc);
    {
      MutexLock lock(&mu_);
      u.global_id = next_global_id_++;
    }
    replicas_[ShardOf(u.global_id)]->ApplyUpdates({&u, 1});
    if (registry_ != nullptr) registry_->AddCounter("serve.updates", 1);
    return u.global_id;
  }

  /// Tombstones one object on its owning shard.
  void Delete(ObjectId global_id) KWSC_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      KWSC_CHECK(global_id < next_global_id_);
    }
    Update u;
    u.kind = Update::Kind::kDelete;
    u.global_id = global_id;
    replicas_[ShardOf(global_id)]->ApplyUpdates({&u, 1});
    if (registry_ != nullptr) registry_->AddCounter("serve.updates", 1);
  }

  /// Applies a mixed update stream: assigns ids to inserts in arrival
  /// order, routes every update to its owning shard, and applies each
  /// shard's sub-stream in arrival order (cross-shard order is immaterial —
  /// shards are disjoint). Returns the global id of the first insert, or
  /// the next id when the stream held none.
  ObjectId ApplyUpdates(std::span<Update> updates) KWSC_EXCLUDES(mu_) {
    ObjectId first = 0;
    {
      MutexLock lock(&mu_);
      first = next_global_id_;
      for (Update& u : updates) {
        if (u.kind == Update::Kind::kInsert) u.global_id = next_global_id_++;
      }
    }
    std::vector<std::vector<Update>> routed(replicas_.size());
    for (Update& u : updates) {
      routed[ShardOf(u.global_id)].push_back(std::move(u));
    }
    for (size_t s = 0; s < replicas_.size(); ++s) {
      if (!routed[s].empty()) replicas_[s]->ApplyUpdates(routed[s]);
    }
    if (registry_ != nullptr) {
      registry_->AddCounter("serve.updates", updates.size());
    }
    return first;
  }

  /// Blocks until every shard's carries have drained.
  void WaitQuiescent() {
    for (auto& r : replicas_) r->WaitQuiescent();
  }

  size_t live_objects() const {
    size_t total = 0;
    for (const auto& r : replicas_) total += r->live_objects();
    return total;
  }

  /// Scatter-gather over all shards — structurally the static
  /// Coordinator::Run with dynamic replicas: every shard runs the whole
  /// batch against its current snapshot, answers land in disjoint slots,
  /// and the gather folds them in shard order with the same merge
  /// protocols and wire-cost model.
  Result Run(std::span<const BatchQuery<Region>> batch) {
    Result out;
    out.rows.resize(batch.size());
    WallTimer timer;
    const size_t num_shards = replicas_.size();
    std::vector<typename Replica::BatchAnswer> answers(num_shards);
    if (pool_ != nullptr) {
      TaskGroup group(pool_.get());
      for (size_t s = 1; s < num_shards; ++s) {
        group.Run([this, batch, &answers, s] {
          answers[s] = replicas_[s]->RunBatch(batch);
        });
      }
      answers[0] = replicas_[0]->RunBatch(batch);
    } else {
      for (size_t s = 0; s < num_shards; ++s) {
        answers[s] = replicas_[s]->RunBatch(batch);
      }
    }
    const double scatter_end_us = timer.ElapsedMicros();
    for (size_t s = 0; s < num_shards; ++s) {
      MergeQueryStats(answers[s].stats, &out.stats);
      out.budget_exhaustions += answers[s].budget_exhaustions;
      out.shard_wall_micros.push_back(answers[s].wall_micros);
    }
    std::vector<const std::vector<ObjectId>*> shard_rows(num_shards);
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t s = 0; s < num_shards; ++s) {
        shard_rows[s] = &answers[s].rows[i];
      }
      if (options_.top_t == 0) {
        const uint64_t naive = NaiveShipBytes(shard_rows);
        out.bytes.naive += naive;
        out.bytes.selection += naive;
        out.rows[i] = MergeAllRows(shard_rows);
      } else if (options_.selection_merge) {
        out.rows[i] = SelectTopT(shard_rows, options_.top_t, &out.bytes);
      } else {
        const uint64_t naive = NaiveShipBytes(shard_rows);
        out.bytes.naive += naive;
        out.bytes.selection += naive;
        std::vector<ObjectId> merged = MergeAllRows(shard_rows);
        if (merged.size() > options_.top_t) merged.resize(options_.top_t);
        out.rows[i] = std::move(merged);
      }
    }
    out.merge_micros = timer.ElapsedMicros() - scatter_end_us;
    out.wall_micros = timer.ElapsedMicros();
    if (registry_ != nullptr) {
      registry_->AddCounter("serve.batches", 1);
      registry_->AddCounter("serve.queries", batch.size());
      registry_->AddCounter("serve.shard_fanout", batch.size() * num_shards);
      registry_->AddCounter("serve.bytes_shipped", out.bytes.selection);
      registry_->AddCounter("serve.bytes_naive", out.bytes.naive);
      registry_->AddCounter("serve.merge_rounds", out.bytes.selection_rounds);
      registry_->AddCounter("serve.budget_exhausted", out.budget_exhaustions);
    }
    return out;
  }

 private:
  ServeOptions options_;
  obs::MetricsRegistry* registry_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<ThreadPool> pool_;
  Mutex mu_;
  ObjectId next_global_id_ KWSC_GUARDED_BY(mu_) = 0;
};

}  // namespace kwsc

#endif  // KWSC_SERVE_DYNAMIC_SHARD_REPLICA_H_
