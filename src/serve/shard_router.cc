// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "serve/shard_router.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "core/balanced_cut.h"

namespace kwsc {

namespace {

/// Fills the derived plan fields (members, shard_weight) from shard_of.
/// Members come out in ascending global-id order because the scan is one
/// forward pass over ids.
void FinalizePlan(const Corpus& corpus, ShardPlan* plan) {
  const uint32_t s_count = plan->num_shards;
  plan->members.assign(s_count, {});
  plan->shard_weight.assign(s_count, 0);
  for (ObjectId e = 0; e < plan->shard_of.size(); ++e) {
    const uint32_t s = plan->shard_of[e];
    KWSC_CHECK(s < s_count);
    plan->members[s].push_back(e);
    plan->shard_weight[s] += corpus.doc(e).size();
  }
}

}  // namespace

ShardRouter::ShardRouter(ShardStrategy strategy, uint32_t num_shards)
    : strategy_(strategy), num_shards_(num_shards) {
  KWSC_CHECK_MSG(num_shards >= 1, "a plan needs at least one shard");
}

ShardPlan ShardRouter::Plan(const Corpus& corpus,
                            std::span<const double> axis_keys) const {
  if (strategy_ == ShardStrategy::kKeywordPartitioned) {
    return PlanKeyword(corpus);
  }
  return PlanSpace(corpus, axis_keys);
}

ShardPlan ShardRouter::PlanSpace(const Corpus& corpus,
                                 std::span<const double> axis_keys) const {
  KWSC_CHECK_MSG(axis_keys.size() == corpus.num_objects(),
                 "space partitioning needs one axis key per object "
                 "(%zu keys, %zu objects)",
                 axis_keys.size(), corpus.num_objects());
  ShardPlan plan;
  plan.strategy = ShardStrategy::kSpacePartitioned;
  plan.num_shards = num_shards_;
  plan.shard_of.assign(corpus.num_objects(), 0);
  if (num_shards_ > 1 && corpus.num_objects() > 0) {
    // Axis order with id tiebreak — the same convention RankSpace uses, so
    // the plan is a pure function of (keys, corpus, S).
    std::vector<ObjectId> order(corpus.num_objects());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
      if (axis_keys[a] != axis_keys[b]) return axis_keys[a] < axis_keys[b];
      return a < b;
    });
    const BalancedCut cut = ComputeBalancedCut(order, corpus, num_shards_);
    for (uint32_t g = 0; g < cut.groups.size(); ++g) {
      for (uint32_t pos = cut.groups[g].begin; pos < cut.groups[g].end;
           ++pos) {
        plan.shard_of[order[pos]] = g;
      }
    }
    // Separator e*_i sits between groups i and i+1; it joins the shard on
    // its left (any fixed side works — the choice just has to be
    // deterministic and keep the cover total).
    for (uint32_t i = 0; i < cut.separators.size(); ++i) {
      plan.shard_of[cut.separators[i]] = std::min(i, num_shards_ - 1);
    }
  }
  FinalizePlan(corpus, &plan);
  return plan;
}

ShardPlan ShardRouter::PlanKeyword(const Corpus& corpus) const {
  ShardPlan plan;
  plan.strategy = ShardStrategy::kKeywordPartitioned;
  plan.num_shards = num_shards_;
  plan.shard_of.assign(corpus.num_objects(), 0);
  if (num_shards_ > 1 && corpus.num_objects() > 0) {
    // Corpus keyword frequencies (document frequency; documents are sets).
    std::vector<uint64_t> freq(corpus.vocab_size(), 0);
    for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
      for (KeywordId w : corpus.doc(e)) ++freq[w];
    }
    // Dominant keyword per object: highest corpus frequency, ties to the
    // smaller keyword id. Objects sharing a hot keyword group together.
    std::vector<KeywordId> dominant(corpus.num_objects());
    std::vector<uint64_t> group_weight(corpus.vocab_size(), 0);
    for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
      const Document& d = corpus.doc(e);
      KeywordId best = *d.begin();
      for (KeywordId w : d) {
        if (freq[w] > freq[best]) best = w;
      }
      dominant[e] = best;
      group_weight[best] += d.size();
    }
    // Longest-processing-time packing: heaviest keyword group first onto
    // the lightest shard, ties broken toward smaller ids/indices so the
    // placement is deterministic.
    std::vector<KeywordId> groups;
    for (KeywordId w = 0; w < group_weight.size(); ++w) {
      if (group_weight[w] > 0) groups.push_back(w);
    }
    std::sort(groups.begin(), groups.end(), [&](KeywordId a, KeywordId b) {
      if (group_weight[a] != group_weight[b]) {
        return group_weight[a] > group_weight[b];
      }
      return a < b;
    });
    std::vector<uint64_t> load(num_shards_, 0);
    std::vector<uint32_t> shard_of_keyword(corpus.vocab_size(), 0);
    for (KeywordId w : groups) {
      uint32_t target = 0;
      for (uint32_t s = 1; s < num_shards_; ++s) {
        if (load[s] < load[target]) target = s;
      }
      shard_of_keyword[w] = target;
      load[target] += group_weight[w];
    }
    for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
      plan.shard_of[e] = shard_of_keyword[dominant[e]];
    }
  }
  FinalizePlan(corpus, &plan);
  return plan;
}

}  // namespace kwsc
