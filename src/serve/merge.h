// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Scatter-gather merge protocols (DESIGN.md §6c).
//
// After a batch is fanned out, each shard holds a sorted list of global ids
// answering each query; the coordinator must assemble the global answer.
// Shards are disjoint by construction (serve/shard_router.h), so assembling
// is a merge of sorted runs — the question is how many bytes cross the
// coordinator↔shard boundary. Two protocols, both exact:
//
//   * Naive gather — every shard ships its full candidate list. Baseline;
//     bytes grow with the total candidate count regardless of how much of
//     it the caller wants.
//   * Threshold selection (top-t) — shards first ship constant-size
//     summaries (candidate count plus B sample keys at fixed local ranks,
//     whose exact ranks the coordinator knows for free from their
//     positions). The coordinator picks the smallest sampled threshold θ*
//     whose guaranteed global rank reaches t, broadcasts it, and shards
//     ship only their prefix of candidates ≤ θ*. That prefix contains the
//     global top-t and overshoots by at most S·⌈n_s/(B-1)⌉ — the classic
//     two-round distributed-selection shape, bytes O(S·B + t + S·n/B)
//     instead of O(Σ n_s). A cost check on the summaries falls back to
//     shipping everything when the candidate sets are too small for the
//     threshold round to pay for itself, so selection never ships more
//     than naive plus the summaries.
//
// Everything here is a pure function of the per-shard candidate lists, so
// merged results are byte-identical to sorting the unsharded engine's rows
// (tests/serve_test.cc pins that, and the protocols are simulated in-process
// — the byte counters model the wire cost of the process-per-shard
// deployment).

#ifndef KWSC_SERVE_MERGE_H_
#define KWSC_SERVE_MERGE_H_

#include <cstdint>
#include <vector>

#include "common/abi.h"
#include "text/document.h"

namespace kwsc {

/// Number of sample keys in a round-1 summary: evenly spaced local ranks
/// including both ends. A protocol parameter, not a layout artifact — it
/// sizes ShardSummaryWire below and bounds the selection overshoot.
inline constexpr uint64_t kMergeSampleKeys = 8;

// ---- Wire records (FORMATS.lock locks these under format serve-wire) ----
//
// The protocols are simulated in-process today, but the byte counters model
// the process-per-shard deployment, so the message layouts are pinned as
// explicit trivially-copyable structs rather than loose byte arithmetic.

/// One candidate id on the wire (candidate lists, samples, θ* broadcast).
struct CandidateWire {
  ObjectId id;
};

/// Fixed header of every shard→coordinator message: the shard ordinal and
/// the number of CandidateWire records that follow.
struct ShardMessageHeaderWire {
  uint32_t shard;
  uint32_t candidate_count;
};

/// A round-1 summary message: the header (candidate_count carries the
/// shard's full list size) plus up to kMergeSampleKeys sampled ids. Short
/// lists send fewer samples, so only the occupied prefix is charged.
struct ShardSummaryWire {
  ShardMessageHeaderWire header;
  ObjectId samples[kMergeSampleKeys];
};

KWSC_ABI_STRUCT(CandidateWire);
KWSC_ABI_STRUCT(ShardMessageHeaderWire);
KWSC_ABI_STRUCT(ShardSummaryWire);

/// Wire-cost model, derived from the structs above: each message pays a
/// fixed header, each candidate id rides as one CandidateWire.
inline constexpr uint64_t kShardMessageHeaderBytes =
    sizeof(ShardMessageHeaderWire);
inline constexpr uint64_t kCandidateBytes = sizeof(CandidateWire);

static_assert(sizeof(ShardSummaryWire) ==
                  sizeof(ShardMessageHeaderWire) +
                      kMergeSampleKeys * sizeof(CandidateWire),
              "summary must be exactly header + samples, no padding");
static_assert(kShardMessageHeaderBytes == 8 && kCandidateBytes == 4,
              "wire cost model must match the published byte accounting");

/// Bytes-exchanged accounting for one or more merged queries. `naive` is
/// always the full-gather cost; `selection` is what the selection protocol
/// actually paid (equal to naive plus summaries when it fell back).
struct MergeByteCounters {
  uint64_t naive = 0;
  uint64_t selection = 0;
  /// Coordinator<->shard round trips beyond the initial scatter.
  uint64_t selection_rounds = 0;
};

/// The wire cost of shipping every candidate list in full.
uint64_t NaiveShipBytes(
    const std::vector<const std::vector<ObjectId>*>& shard_rows);

/// Merges disjoint sorted per-shard rows into one ascending list.
std::vector<ObjectId> MergeAllRows(
    const std::vector<const std::vector<ObjectId>*>& shard_rows);

/// Exact top-t (t >= 1, smallest t ids) via the threshold-selection
/// protocol. Each input row must be sorted ascending; rows are disjoint.
/// Adds this query's naive and selection costs to `bytes`.
std::vector<ObjectId> SelectTopT(
    const std::vector<const std::vector<ObjectId>*>& shard_rows, uint64_t t,
    MergeByteCounters* bytes);

}  // namespace kwsc

#endif  // KWSC_SERVE_MERGE_H_
