// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// One shared-nothing shard replica (DESIGN.md §6b).
//
// A replica is the process-simulated unit of the serving architecture: it
// owns a private copy of its slice of the dataset (points + Corpus), a
// private index built over that slice, a private QueryEngine, and a private
// MetricsRegistry — nothing is shared with the coordinator or with sibling
// replicas, so a replica could be lifted verbatim into its own process; the
// only coupling is the message boundary RunBatch models.
//
// Local ids are dense 0..n_s-1 in ascending global-id order (the plan's
// member lists are ascending), so translating a sorted local result to
// global ids keeps it sorted — the property the merge protocols in
// serve/merge.h rely on.
//
// Per-shard ops budgets: the coordinator caps each query's work on each
// shard with a fresh OpsBudget (the paper's footnote-4 budgeted-termination
// primitive, here playing the scatter-gather role of a per-shard work cap).
// BudgetedIndexView adapts any index with the uniform
// Query(region, keywords, stats, budget) entry point into the 3-argument
// shape QueryEngine expects, injecting the budget per query.

#ifndef KWSC_SERVE_SHARD_REPLICA_H_
#define KWSC_SERVE_SHARD_REPLICA_H_

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/ops_budget.h"
#include "common/timer.h"
#include "core/framework.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "serve/shard_router.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

/// Adapts Index::Query(region, keywords, stats, budget) to the 3-argument
/// engine entry point, giving every query a fresh budget of
/// `per_query_ops` (0 = unlimited, no budget object at all).
template <typename Index>
class BudgetedIndexView {
 public:
  using PointType = typename Index::PointType;
  using BoxType = typename Index::BoxType;

  BudgetedIndexView() = default;
  BudgetedIndexView(const Index* index, uint64_t per_query_ops)
      : index_(index), per_query_ops_(per_query_ops) {}

  std::vector<ObjectId> Query(const BoxType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr) const {
    if (per_query_ops_ == 0) return index_->Query(q, keywords, stats);
    OpsBudget budget(per_query_ops_);
    return index_->Query(q, keywords, stats, &budget);
  }

 private:
  const Index* index_ = nullptr;
  uint64_t per_query_ops_ = 0;
};

template <typename Index, typename Region = typename Index::BoxType>
class ShardReplica {
 public:
  using PointType = typename Index::PointType;
  using Engine = QueryEngine<BudgetedIndexView<Index>, Region>;

  /// What a shard sends back for one batch: one sorted global-id row per
  /// query plus the shard's aggregate stats. wall_micros is the shard-local
  /// execution wall — on a real deployment, the time this shard's process
  /// was busy.
  struct BatchAnswer {
    std::vector<std::vector<ObjectId>> rows;
    QueryStats stats;
    uint64_t budget_exhaustions = 0;
    double wall_micros = 0.0;
  };

  /// Copies the member slice of (points, corpus) and builds the private
  /// index. `members` must be ascending global ids; `num_threads` is the
  /// replica's own engine parallelism (normally 1 — shards are the unit of
  /// scale-out, threads the unit of scale-up).
  ShardReplica(std::span<const ObjectId> members,
               std::span<const PointType> points, const Corpus& corpus,
               const FrameworkOptions& options, int num_threads,
               uint64_t per_query_ops) {
    to_global_.assign(members.begin(), members.end());
    std::vector<Document> docs;
    docs.reserve(members.size());
    points_.reserve(members.size());
    for (ObjectId e : members) {
      KWSC_CHECK(e < points.size());
      docs.push_back(corpus.doc(e));
      points_.push_back(points[e]);
    }
    corpus_ = Corpus(std::move(docs));
    index_ = std::make_unique<Index>(std::span<const PointType>(points_),
                                     &corpus_, options);
    view_ = BudgetedIndexView<Index>(index_.get(), per_query_ops);
    FrameworkOptions engine_options = options;
    engine_options.num_threads = num_threads;
    engine_ = std::make_unique<Engine>(&view_, engine_options, &registry_);
  }

  size_t num_objects() const { return to_global_.size(); }
  uint64_t weight() const { return corpus_.total_weight(); }
  const Index& index() const { return *index_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

  /// Runs the batch on the private engine and translates rows to global
  /// ids. Local emission order is index-specific, so rows are canonicalized
  /// (sorted ascending) at the shard before they cross the wire — the
  /// canonical order DESIGN.md §6d's determinism contract is stated in.
  BatchAnswer RunBatch(std::span<const BatchQuery<Region>> batch) {
    BatchAnswer answer;
    WallTimer timer;
    typename Engine::BatchResult result = engine_->Run(batch);
    answer.rows.resize(result.rows.size());
    for (size_t i = 0; i < result.rows.size(); ++i) {
      std::vector<ObjectId>& row = result.rows[i];
      std::sort(row.begin(), row.end());
      for (ObjectId& id : row) id = to_global_[id];
      answer.rows[i] = std::move(row);
    }
    answer.stats = result.stats;
    answer.budget_exhaustions = result.budget_exhaustions;
    answer.wall_micros = timer.ElapsedMicros();
    return answer;
  }

 private:
  std::vector<ObjectId> to_global_;  // Local id -> global id, ascending.
  std::vector<PointType> points_;
  Corpus corpus_;
  std::unique_ptr<Index> index_;
  BudgetedIndexView<Index> view_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace kwsc

#endif  // KWSC_SERVE_SHARD_REPLICA_H_
