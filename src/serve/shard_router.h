// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Shard routing: partitioning the verbose set across S shared-nothing
// replicas (DESIGN.md §6).
//
// A ShardPlan is a total, disjoint assignment of objects to shards —
// every object lives on exactly one shard, so a scatter-gather over all
// shards reports exactly the unsharded answer and the merge never needs to
// deduplicate. Two strategies, both deterministic functions of the corpus
// (and, for the space strategy, of the caller-chosen axis keys):
//
//   * kSpacePartitioned — sort objects by an axis key and cut the sequence
//     with the Section-4 balanced-cut machinery (core/balanced_cut.h), so
//     every shard's verbose-set weight is at most total/S plus one promoted
//     separator. Queries with spatial locality touch few shards' data, and
//     the weight bound caps the worst shard's index size.
//   * kKeywordPartitioned — assign each object to the shard owning its
//     dominant (most frequent) keyword, keyword groups placed by greedy
//     longest-processing-time packing over verbose-set weight. This
//     co-locates objects sharing hot keywords (the CAS-style layout), at
//     the cost of skew when one keyword dominates the corpus — the serve
//     bench measures exactly that trade.
//
// The router only plans; building the per-shard indexes and running queries
// is serve/shard_replica.h and serve/coordinator.h.

#ifndef KWSC_SERVE_SHARD_ROUTER_H_
#define KWSC_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

enum class ShardStrategy {
  kSpacePartitioned,
  kKeywordPartitioned,
};

/// A total disjoint assignment of the corpus across `num_shards` shards.
struct ShardPlan {
  ShardStrategy strategy = ShardStrategy::kSpacePartitioned;
  uint32_t num_shards = 1;

  /// Object id -> owning shard, one entry per corpus object.
  std::vector<uint32_t> shard_of;

  /// Per-shard member lists in ascending global-id order (the order the
  /// replica builds its local index in, so local ids are monotone in global
  /// ids). Always exactly num_shards entries; shards may be empty.
  std::vector<std::vector<ObjectId>> members;

  /// Per-shard verbose-set weight (sum of member document sizes).
  std::vector<uint64_t> shard_weight;
};

/// Plans partitions. Stateless apart from the strategy and shard count; the
/// same inputs always produce the same plan (the determinism contract the
/// coordinator's byte-identity guarantee rests on).
class ShardRouter {
 public:
  ShardRouter(ShardStrategy strategy, uint32_t num_shards);

  ShardStrategy strategy() const { return strategy_; }
  uint32_t num_shards() const { return num_shards_; }

  /// Builds the assignment for `corpus`. `axis_keys` holds one sort key per
  /// object (the caller's choice of coordinate — typically the first point
  /// coordinate); the keyword strategy ignores it and may be passed empty.
  ShardPlan Plan(const Corpus& corpus,
                 std::span<const double> axis_keys = {}) const;

 private:
  ShardPlan PlanSpace(const Corpus& corpus,
                      std::span<const double> axis_keys) const;
  ShardPlan PlanKeyword(const Corpus& corpus) const;

  ShardStrategy strategy_;
  uint32_t num_shards_;
};

}  // namespace kwsc

#endif  // KWSC_SERVE_SHARD_ROUTER_H_
