// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "serve/merge.h"

#include <algorithm>
#include <cstddef>

#include "common/macros.h"

namespace kwsc {

namespace {

/// The fixed local ranks a shard samples: kMergeSampleKeys evenly spaced
/// positions including both ends (fewer when the list is short). Both sides
/// of the protocol derive the same positions from the count alone, so the
/// ranks ride along with the summary for free.
std::vector<size_t> SamplePositions(size_t n) {
  std::vector<size_t> pos;
  if (n == 0) return pos;
  if (n <= kMergeSampleKeys) {
    for (size_t i = 0; i < n; ++i) pos.push_back(i);
    return pos;
  }
  for (uint64_t j = 0; j < kMergeSampleKeys; ++j) {
    const size_t p = static_cast<size_t>(j * (n - 1) / (kMergeSampleKeys - 1));
    if (pos.empty() || pos.back() != p) pos.push_back(p);
  }
  return pos;
}

/// Candidates in `row` with id <= theta (the shard-side prefix count).
size_t PrefixCount(const std::vector<ObjectId>& row, ObjectId theta) {
  return static_cast<size_t>(
      std::upper_bound(row.begin(), row.end(), theta) - row.begin());
}

}  // namespace

uint64_t NaiveShipBytes(
    const std::vector<const std::vector<ObjectId>*>& shard_rows) {
  uint64_t bytes = 0;
  for (const auto* row : shard_rows) {
    bytes += kShardMessageHeaderBytes + kCandidateBytes * row->size();
  }
  return bytes;
}

std::vector<ObjectId> MergeAllRows(
    const std::vector<const std::vector<ObjectId>*>& shard_rows) {
  // Disjoint sorted runs: concatenate in any order, then one sort pass would
  // do, but successive std::inplace_merge keeps it linear-ish and stable for
  // the handful of shards a coordinator runs.
  std::vector<ObjectId> out;
  size_t total = 0;
  for (const auto* row : shard_rows) total += row->size();
  out.reserve(total);
  for (const auto* row : shard_rows) {
    const auto middle = out.insert(out.end(), row->begin(), row->end());
    std::inplace_merge(out.begin(), middle, out.end());
  }
  return out;
}

std::vector<ObjectId> SelectTopT(
    const std::vector<const std::vector<ObjectId>*>& shard_rows, uint64_t t,
    MergeByteCounters* bytes) {
  KWSC_CHECK_MSG(t >= 1, "top-t selection needs t >= 1 (use MergeAllRows)");
  const size_t num_shards = shard_rows.size();
  const uint64_t naive = NaiveShipBytes(shard_rows);
  bytes->naive += naive;

  // Round 1: summaries. Count plus sampled keys per shard.
  std::vector<std::vector<size_t>> sample_pos(num_shards);
  uint64_t total = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    sample_pos[s] = SamplePositions(shard_rows[s]->size());
    total += shard_rows[s]->size();
    bytes->selection +=
        kShardMessageHeaderBytes + kCandidateBytes * sample_pos[s].size();
  }
  bytes->selection_rounds += 1;

  if (total <= t) {
    // The counts alone prove everything is needed; gather in full.
    bytes->selection += naive;
    bytes->selection_rounds += 1;
    return MergeAllRows(shard_rows);
  }

  // Pick θ* = the smallest sampled key whose guaranteed global rank reaches
  // t. A sample at local rank r proves its shard holds r + 1 candidates
  // <= that key, so walking the merged samples in ascending key order and
  // summing the per-shard proofs gives a monotone lower bound LB(θ); the
  // last sample of each non-empty shard is its maximum, so LB reaches
  // `total` > t and θ* exists.
  struct Sample {
    ObjectId key;
    uint32_t shard;
    uint64_t rank;
  };
  std::vector<Sample> samples;
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t p : sample_pos[s]) {
      samples.push_back({(*shard_rows[s])[p], static_cast<uint32_t>(s),
                         static_cast<uint64_t>(p)});
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.key < b.key; });
  std::vector<uint64_t> proven(num_shards, 0);
  uint64_t lower_bound = 0;
  ObjectId theta = samples.back().key;
  for (const Sample& sample : samples) {
    lower_bound += sample.rank + 1 - proven[sample.shard];
    proven[sample.shard] = sample.rank + 1;
    if (lower_bound >= t) {
      theta = sample.key;
      break;
    }
  }

  // Cost check, still on summary data only: the shards' prefix sizes at θ*
  // are bounded above by the rank of their first sample beyond it, so the
  // coordinator can price the threshold round before paying for it and fall
  // back to a full gather when the candidate sets are too small to split.
  uint64_t threshold_cost = kCandidateBytes * num_shards;  // θ* broadcast.
  for (size_t s = 0; s < num_shards; ++s) {
    uint64_t upper = shard_rows[s]->size();
    for (size_t p : sample_pos[s]) {
      if ((*shard_rows[s])[p] > theta) {
        upper = p;
        break;
      }
    }
    threshold_cost += kShardMessageHeaderBytes + kCandidateBytes * upper;
  }
  if (naive <= threshold_cost) {
    bytes->selection += naive;
    bytes->selection_rounds += 1;
    std::vector<ObjectId> merged = MergeAllRows(shard_rows);
    merged.resize(t);
    return merged;
  }

  // Round 2: broadcast θ*, gather per-shard prefixes, keep the first t.
  bytes->selection += kCandidateBytes * num_shards;
  std::vector<std::vector<ObjectId>> prefixes(num_shards);
  std::vector<const std::vector<ObjectId>*> prefix_ptrs(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t count = PrefixCount(*shard_rows[s], theta);
    prefixes[s].assign(shard_rows[s]->begin(),
                       shard_rows[s]->begin() + count);
    prefix_ptrs[s] = &prefixes[s];
    bytes->selection += kShardMessageHeaderBytes + kCandidateBytes * count;
  }
  bytes->selection_rounds += 1;
  std::vector<ObjectId> merged = MergeAllRows(prefix_ptrs);
  KWSC_CHECK(merged.size() >= t);
  merged.resize(t);
  return merged;
}

}  // namespace kwsc
