// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The scatter-gather coordinator (DESIGN.md §6).
//
// One Coordinator fronts S ShardReplicas built from one ShardPlan. Run()
// fans a batch out to every replica (each holds a disjoint slice of the
// verbose set, so every shard sees every query), gathers the per-shard
// sorted candidate rows, and merges them with serve/merge.h — naive full
// gather for reporting queries, the threshold-selection protocol for top-t.
//
// Process simulation: replicas share no mutable state with the coordinator
// or each other (see serve/shard_replica.h), and the only data crossing the
// replica boundary is what the merge protocols price in bytes. The fan-out
// runs replicas on a private pool when parallel_fanout is set, or strictly
// sequentially otherwise — the results are identical either way, because
// each answer lands in its own slot and the gather folds them in shard
// order. Sequential mode is what the scaling bench uses to measure clean
// per-shard walls on machines with fewer cores than shards.
//
// Determinism contract (DESIGN.md §6d): coordinator rows are in canonical
// ascending-id order and — with unlimited shard budgets — byte-identical to
// the unsharded engine's rows for the same batch after the same
// canonicalization (sort; truncate to t). Per-shard ops budgets trade that
// exactness for bounded per-shard work, the same trade footnote 4 prices
// for a single index.
//
// Observability: the optional registry accumulates serve.* counters —
// batches/queries, per-shard fan-out, bytes shipped (actual vs. naive),
// selection protocol rounds, budget exhaustions, and per-shard candidate
// counts (the skew signal the keyword strategy is benchmarked on).

#ifndef KWSC_SERVE_COORDINATOR_H_
#define KWSC_SERVE_COORDINATOR_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/framework.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "serve/merge.h"
#include "serve/shard_replica.h"
#include "serve/shard_router.h"
#include "text/corpus.h"

namespace kwsc {

/// Serving-side knobs. Partitioning (strategy, shard count) lives in the
/// ShardPlan; these control how the coordinator drives the replicas.
struct ServeOptions {
  /// Engine threads inside each replica (shards scale out, threads up).
  int threads_per_shard = 1;
  /// Per-query, per-shard ops budget; 0 = unlimited (exact results).
  uint64_t per_shard_query_ops = 0;
  /// 0 = full reporting; t >= 1 = return only the t smallest ids.
  uint64_t top_t = 0;
  /// For top-t: threshold-selection merge vs. naive gather + truncate.
  bool selection_merge = true;
  /// Fan shards out on a pool (one task per replica) vs. run sequentially.
  bool parallel_fanout = true;
};

template <typename Index, typename Region = typename Index::BoxType>
class Coordinator {
 public:
  using PointType = typename Index::PointType;
  using Replica = ShardReplica<Index, Region>;

  struct Result {
    /// One row per query, ascending global ids, truncated to top_t when
    /// set — the canonical form of the unsharded answer.
    std::vector<std::vector<ObjectId>> rows;
    /// Aggregate stats folded over shards in shard order.
    QueryStats stats;
    uint64_t budget_exhaustions = 0;
    /// Wire-cost model for this batch's merge (see serve/merge.h).
    MergeByteCounters bytes;
    double wall_micros = 0.0;
    /// Shard-local execution walls — max() models the scatter phase of a
    /// real S-process deployment, independent of how many cores this host
    /// happens to timeslice the simulation onto.
    std::vector<double> shard_wall_micros;
    double merge_micros = 0.0;
  };

  /// Builds one replica per plan shard over private slices of
  /// (points, corpus). The inputs are only read during construction.
  Coordinator(const ShardPlan& plan, std::span<const PointType> points,
              const Corpus& corpus, const FrameworkOptions& index_options,
              const ServeOptions& options,
              obs::MetricsRegistry* registry = nullptr)
      : options_(options), registry_(registry) {
    KWSC_CHECK(plan.members.size() == plan.num_shards);
    KWSC_CHECK(points.size() == corpus.num_objects());
    replicas_.reserve(plan.num_shards);
    for (const std::vector<ObjectId>& members : plan.members) {
      replicas_.push_back(std::make_unique<Replica>(
          std::span<const ObjectId>(members), points, corpus, index_options,
          options.threads_per_shard, options.per_shard_query_ops));
    }
    if (options_.parallel_fanout && replicas_.size() > 1) {
      pool_ = std::make_unique<ThreadPool>(
          static_cast<int>(replicas_.size()) - 1);
    }
    if (registry_ != nullptr) {
      registry_->SetGauge("serve.num_shards",
                          static_cast<double>(replicas_.size()));
    }
  }

  size_t num_shards() const { return replicas_.size(); }
  const Replica& replica(size_t s) const { return *replicas_[s]; }

  Result Run(std::span<const BatchQuery<Region>> batch) {
    Result out;
    out.rows.resize(batch.size());
    WallTimer timer;
    const size_t num_shards = replicas_.size();
    // Scatter: every shard runs the whole batch over its slice. Answers
    // land in disjoint slots; shard 0 runs on the calling thread.
    std::vector<typename Replica::BatchAnswer> answers(num_shards);
    if (pool_ != nullptr) {
      TaskGroup group(pool_.get());
      for (size_t s = 1; s < num_shards; ++s) {
        group.Run([this, batch, &answers, s] {
          answers[s] = replicas_[s]->RunBatch(batch);
        });
      }
      answers[0] = replicas_[0]->RunBatch(batch);
    } else {
      for (size_t s = 0; s < num_shards; ++s) {
        answers[s] = replicas_[s]->RunBatch(batch);
      }
    }
    const double scatter_end_us = timer.ElapsedMicros();
    // Gather: fold shard answers in shard order (the determinism contract).
    std::vector<uint64_t> shard_candidates(num_shards, 0);
    out.shard_wall_micros.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      MergeQueryStats(answers[s].stats, &out.stats);
      out.budget_exhaustions += answers[s].budget_exhaustions;
      out.shard_wall_micros.push_back(answers[s].wall_micros);
      for (const auto& row : answers[s].rows) {
        shard_candidates[s] += row.size();
      }
    }
    // Merge, one query at a time over its S disjoint sorted rows.
    std::vector<const std::vector<ObjectId>*> shard_rows(num_shards);
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t s = 0; s < num_shards; ++s) {
        shard_rows[s] = &answers[s].rows[i];
      }
      if (options_.top_t == 0) {
        // Full reporting: the answer is the whole candidate set, so there
        // is nothing for selection to save — both protocols ship it all.
        const uint64_t naive = NaiveShipBytes(shard_rows);
        out.bytes.naive += naive;
        out.bytes.selection += naive;
        out.rows[i] = MergeAllRows(shard_rows);
      } else if (options_.selection_merge) {
        out.rows[i] = SelectTopT(shard_rows, options_.top_t, &out.bytes);
      } else {
        const uint64_t naive = NaiveShipBytes(shard_rows);
        out.bytes.naive += naive;
        out.bytes.selection += naive;
        std::vector<ObjectId> merged = MergeAllRows(shard_rows);
        if (merged.size() > options_.top_t) merged.resize(options_.top_t);
        out.rows[i] = std::move(merged);
      }
    }
    out.merge_micros = timer.ElapsedMicros() - scatter_end_us;
    out.wall_micros = timer.ElapsedMicros();
    if (registry_ != nullptr) {
      registry_->AddCounter("serve.batches", 1);
      registry_->AddCounter("serve.queries", batch.size());
      registry_->AddCounter("serve.shard_fanout", batch.size() * num_shards);
      registry_->AddCounter("serve.bytes_shipped", out.bytes.selection);
      registry_->AddCounter("serve.bytes_naive", out.bytes.naive);
      registry_->AddCounter("serve.merge_rounds", out.bytes.selection_rounds);
      registry_->AddCounter("serve.budget_exhausted", out.budget_exhaustions);
      for (size_t s = 0; s < num_shards; ++s) {
        registry_->AddCounter("serve.shard" + std::to_string(s) +
                                  ".candidates",
                              shard_candidates[s]);
      }
    }
    return out;
  }

 private:
  ServeOptions options_;
  obs::MetricsRegistry* registry_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kwsc

#endif  // KWSC_SERVE_COORDINATOR_H_
