// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// A centered interval tree — the classical structured-only index for the
// d = 1 RR-KW setting (temporal keyword search [7]): report every data
// interval overlapping a query interval, then filter by keywords. Stabbing
// and overlap queries run in O(log n + matches); the keyword filter is
// applied downstream, which is exactly the structured-only naive baseline
// of Section 1 for interval data.

#ifndef KWSC_KDTREE_INTERVAL_TREE_H_
#define KWSC_KDTREE_INTERVAL_TREE_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/memory.h"
#include "geom/box.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

template <typename Scalar = double>
class IntervalTree {
 public:
  using Interval = Box<1, Scalar>;

  explicit IntervalTree(std::span<const Interval> intervals)
      : intervals_(intervals.begin(), intervals.end()) {
    for (const Interval& iv : intervals_) {
      KWSC_CHECK_MSG(iv.lo[0] <= iv.hi[0], "inverted interval");
    }
    if (intervals_.empty()) return;
    std::vector<uint32_t> ids(intervals_.size());
    std::iota(ids.begin(), ids.end(), 0);
    root_ = Build(&ids);
  }

  /// Emits the id of every interval overlapping the closed query interval
  /// [lo, hi]; `emit` returns false to stop early.
  template <typename Emit>
  void Overlapping(Scalar lo, Scalar hi, Emit&& emit) const {
    if (root_ >= 0 && lo <= hi) Visit(root_, lo, hi, emit);
  }

  std::vector<uint32_t> Overlapping(Scalar lo, Scalar hi) const {
    std::vector<uint32_t> out;
    Overlapping(lo, hi, [&out](uint32_t id) {
      out.push_back(id);
      return true;
    });
    return out;
  }

  /// Intervals containing the point x.
  std::vector<uint32_t> Stabbing(Scalar x) const { return Overlapping(x, x); }

  size_t MemoryBytes() const {
    size_t total = VectorBytes(intervals_) + VectorBytes(nodes_);
    for (const Node& node : nodes_) {
      total += VectorBytes(node.by_lo) + VectorBytes(node.by_hi);
    }
    return total;
  }

 private:
  // The invariant auditor reads (and its tests corrupt) the node arena
  // directly; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  struct Node {
    Scalar center{};
    // Intervals containing `center`, sorted by left endpoint ascending and
    // (separately) by right endpoint descending.
    std::vector<uint32_t> by_lo;
    std::vector<uint32_t> by_hi;
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t Build(std::vector<uint32_t>* ids) {
    if (ids->empty()) return -1;
    // Center = median of interval midpoints.
    std::vector<Scalar> mids;
    mids.reserve(ids->size());
    for (uint32_t id : *ids) {
      mids.push_back((intervals_[id].lo[0] + intervals_[id].hi[0]) / 2);
    }
    std::nth_element(mids.begin(), mids.begin() + mids.size() / 2,
                     mids.end());
    const Scalar center = mids[mids.size() / 2];

    const int32_t index = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[index].center = center;

    std::vector<uint32_t> here;
    std::vector<uint32_t> left_ids;
    std::vector<uint32_t> right_ids;
    for (uint32_t id : *ids) {
      const Interval& iv = intervals_[id];
      if (iv.hi[0] < center) {
        left_ids.push_back(id);
      } else if (iv.lo[0] > center) {
        right_ids.push_back(id);
      } else {
        here.push_back(id);
      }
    }
    ids->clear();
    ids->shrink_to_fit();

    std::sort(here.begin(), here.end(), [&](uint32_t a, uint32_t b) {
      return intervals_[a].lo[0] < intervals_[b].lo[0];
    });
    nodes_[index].by_lo = here;
    std::sort(here.begin(), here.end(), [&](uint32_t a, uint32_t b) {
      return intervals_[a].hi[0] > intervals_[b].hi[0];
    });
    nodes_[index].by_hi = std::move(here);

    const int32_t left = Build(&left_ids);
    const int32_t right = Build(&right_ids);
    nodes_[index].left = left;
    nodes_[index].right = right;
    return index;
  }

  template <typename Emit>
  bool Visit(int32_t node_index, Scalar lo, Scalar hi, Emit& emit) const {
    const Node& node = nodes_[node_index];
    if (hi < node.center) {
      // Query lies left of the center: of the centered intervals, exactly
      // those with lo[0] <= hi overlap.
      for (uint32_t id : node.by_lo) {
        if (intervals_[id].lo[0] > hi) break;
        if (!emit(id)) return false;
      }
      return node.left < 0 || Visit(node.left, lo, hi, emit);
    }
    if (lo > node.center) {
      for (uint32_t id : node.by_hi) {
        if (intervals_[id].hi[0] < lo) break;
        if (!emit(id)) return false;
      }
      return node.right < 0 || Visit(node.right, lo, hi, emit);
    }
    // The query straddles the center: every centered interval overlaps.
    for (uint32_t id : node.by_lo) {
      if (!emit(id)) return false;
    }
    if (node.left >= 0 && !Visit(node.left, lo, hi, emit)) return false;
    if (node.right >= 0 && !Visit(node.right, lo, hi, emit)) return false;
    return true;
  }

  std::vector<Interval> intervals_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace kwsc

#endif  // KWSC_KDTREE_INTERVAL_TREE_H_
