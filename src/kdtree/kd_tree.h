// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// A classic kd-tree over points (Section 3.1 reviews the structure).
//
// This is the *pure geometry* index: median splits on alternating axes, box
// cells, bucketed leaves. It serves two roles in the reproduction:
//   1. the structured-only naive baseline (range query, then filter by
//      keywords), whose candidate-set blow-up motivates the whole paper; and
//   2. a reference substrate for the crossing-sensitivity instrumentation of
//      bench_crossing.
// The transformed index of Theorem 1 (core/orp_kw.h) builds its own tree
// because it must split the *verbose set* by document weight and track
// pivot/active sets, which a plain kd-tree has no reason to support.

#ifndef KWSC_KDTREE_KD_TREE_H_
#define KWSC_KDTREE_KD_TREE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <queue>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/memory.h"
#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/point.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

template <int D, typename Scalar = double>
class KdTree {
 public:
  using PointType = Point<D, Scalar>;
  using BoxType = Box<D, Scalar>;

  KdTree() = default;

  /// Builds over a copy of `points`; reported ids are indices into `points`.
  explicit KdTree(std::span<const PointType> points, int leaf_capacity = 16)
      : points_(points.begin(), points.end()),
        leaf_capacity_(std::max(1, leaf_capacity)) {
    ids_.resize(points_.size());
    std::iota(ids_.begin(), ids_.end(), 0);
    if (!points_.empty()) {
      nodes_.reserve(2 * points_.size() / leaf_capacity_ + 2);
      BuildNode(0, points_.size(), 0);
    }
  }

  size_t num_points() const { return points_.size(); }

  /// Reports ids of all points inside the closed box `q`, via `emit`.
  /// `emit` returns false to abort the traversal early.
  template <typename Emit>
  void RangeReport(const BoxType& q, Emit&& emit) const {
    if (nodes_.empty() || !q.Valid()) return;
    ReportBoxRec(0, q, emit);
  }

  /// Reports ids of all points inside the box, appended to `out`.
  void RangeReport(const BoxType& q, std::vector<uint32_t>* out) const {
    RangeReport(q, [out](uint32_t id) {
      out->push_back(id);
      return true;
    });
  }

  /// Reports ids of all points satisfying every halfspace constraint.
  template <typename Emit>
  void ConvexReport(const ConvexQuery<D, Scalar>& q, Emit&& emit) const {
    if (nodes_.empty()) return;
    ReportConvexRec(0, q, emit);
  }

  /// Best-first nearest-neighbour enumeration under the distance functor
  /// `dist` (must provide PointDistance(p, q) and BoxDistance(box, q), both
  /// returning comparable doubles). Emits point ids in non-decreasing
  /// distance order until `emit` returns false.
  template <typename DistanceFns, typename Emit>
  void NearestFirst(const PointType& q, const DistanceFns& dist,
                    Emit&& emit) const {
    if (nodes_.empty()) return;
    struct Entry {
      double priority;
      uint32_t node;       // Valid when is_point == false.
      uint32_t point_id;   // Valid when is_point == true.
      bool is_point;
      bool operator>(const Entry& other) const {
        return priority > other.priority;
      }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.push({dist.BoxDistance(nodes_[0].bounds, q), 0, 0, false});
    while (!heap.empty()) {
      Entry top = heap.top();
      heap.pop();
      if (top.is_point) {
        if (!emit(top.point_id, top.priority)) return;
        continue;
      }
      const Node& node = nodes_[top.node];
      if (node.IsLeaf()) {
        for (uint32_t i = node.begin; i < node.end; ++i) {
          const uint32_t id = ids_[i];
          heap.push({dist.PointDistance(points_[id], q), 0, id, true});
        }
      } else {
        for (uint32_t child : {node.left, node.right}) {
          heap.push({dist.BoxDistance(nodes_[child].bounds, q), child, 0,
                     false});
        }
      }
    }
  }

  size_t MemoryBytes() const {
    return VectorBytes(points_) + VectorBytes(ids_) + VectorBytes(nodes_);
  }

 private:
  // The invariant auditor reads (and its tests corrupt) the node arena
  // directly; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  struct Node {
    BoxType bounds;        // Tight bounding box of the points below.
    uint32_t begin = 0;    // Leaf: range in ids_.
    uint32_t end = 0;
    uint32_t left = 0;     // Internal: child node indices.
    uint32_t right = 0;
    bool IsLeaf() const { return left == 0; }  // Node 0 is the root.
  };

  uint32_t BuildNode(size_t begin, size_t end, int depth) {
    const uint32_t index = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    BoxType bounds;
    bounds.lo = points_[ids_[begin]];
    bounds.hi = points_[ids_[begin]];
    for (size_t i = begin; i < end; ++i) {
      const PointType& p = points_[ids_[i]];
      for (int dim = 0; dim < D; ++dim) {
        bounds.lo[dim] = std::min(bounds.lo[dim], p[dim]);
        bounds.hi[dim] = std::max(bounds.hi[dim], p[dim]);
      }
    }
    nodes_[index].bounds = bounds;
    if (end - begin <= static_cast<size_t>(leaf_capacity_)) {
      nodes_[index].begin = static_cast<uint32_t>(begin);
      nodes_[index].end = static_cast<uint32_t>(end);
      return index;
    }
    const int dim = depth % D;
    const size_t mid = begin + (end - begin) / 2;
    std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                     ids_.begin() + end, [&](uint32_t a, uint32_t b) {
                       if (points_[a][dim] != points_[b][dim]) {
                         return points_[a][dim] < points_[b][dim];
                       }
                       return a < b;
                     });
    const uint32_t left = BuildNode(begin, mid, depth + 1);
    const uint32_t right = BuildNode(mid, end, depth + 1);
    nodes_[index].left = left;
    nodes_[index].right = right;
    return index;
  }

  template <typename Emit>
  bool ReportBoxRec(uint32_t node_index, const BoxType& q, Emit& emit) const {
    const Node& node = nodes_[node_index];
    if (!q.Intersects(node.bounds)) return true;
    if (node.bounds.InsideOf(q)) return EmitSubtree(node_index, emit);
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = ids_[i];
        if (q.Contains(points_[id]) && !emit(id)) return false;
      }
      return true;
    }
    return ReportBoxRec(node.left, q, emit) &&
           ReportBoxRec(node.right, q, emit);
  }

  template <typename Emit>
  bool ReportConvexRec(uint32_t node_index, const ConvexQuery<D, Scalar>& q,
                       Emit& emit) const {
    const Node& node = nodes_[node_index];
    bool fully_inside = true;
    for (const auto& h : q.constraints) {
      if (!node.bounds.IntersectsHalfspace(h)) return true;  // Disjoint.
      if (!node.bounds.InsideHalfspace(h)) fully_inside = false;
    }
    if (fully_inside) return EmitSubtree(node_index, emit);
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = ids_[i];
        if (q.Satisfies(points_[id]) && !emit(id)) return false;
      }
      return true;
    }
    return ReportConvexRec(node.left, q, emit) &&
           ReportConvexRec(node.right, q, emit);
  }

  template <typename Emit>
  bool EmitSubtree(uint32_t node_index, Emit& emit) const {
    const Node& node = nodes_[node_index];
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (!emit(ids_[i])) return false;
      }
      return true;
    }
    return EmitSubtree(node.left, emit) && EmitSubtree(node.right, emit);
  }

  std::vector<PointType> points_;
  std::vector<uint32_t> ids_;
  std::vector<Node> nodes_;
  int leaf_capacity_ = 16;
};

/// Distance functors for KdTree::NearestFirst.
template <int D, typename Scalar>
struct LInfDistanceFns {
  double PointDistance(const Point<D, Scalar>& p,
                       const Point<D, Scalar>& q) const {
    return static_cast<double>(LInfDistance(p, q));
  }
  double BoxDistance(const Box<D, Scalar>& b, const Point<D, Scalar>& q) const {
    double best = 0;
    for (int i = 0; i < D; ++i) {
      double diff = 0;
      if (q[i] < b.lo[i]) diff = static_cast<double>(b.lo[i] - q[i]);
      if (q[i] > b.hi[i]) diff = static_cast<double>(q[i] - b.hi[i]);
      best = std::max(best, diff);
    }
    return best;
  }
};

template <int D, typename Scalar>
struct L2SquaredDistanceFns {
  double PointDistance(const Point<D, Scalar>& p,
                       const Point<D, Scalar>& q) const {
    return static_cast<double>(L2DistanceSquared(p, q));
  }
  double BoxDistance(const Box<D, Scalar>& b, const Point<D, Scalar>& q) const {
    double total = 0;
    for (int i = 0; i < D; ++i) {
      double diff = 0;
      if (q[i] < b.lo[i]) diff = static_cast<double>(b.lo[i] - q[i]);
      if (q[i] > b.hi[i]) diff = static_cast<double>(q[i] - b.hi[i]);
      total += diff * diff;
    }
    return total;
  }
};

}  // namespace kwsc

#endif  // KWSC_KDTREE_KD_TREE_H_
