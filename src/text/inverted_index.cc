// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "text/inverted_index.h"

#include <algorithm>

#include "common/macros.h"
#include "common/memory.h"

namespace kwsc {

InvertedIndex::InvertedIndex(const Corpus& corpus)
    : postings_(corpus.vocab_size()) {
  // Two passes: size, then fill, so each list is allocated exactly once.
  std::vector<uint32_t> counts(corpus.vocab_size(), 0);
  for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
    for (KeywordId w : corpus.doc(e)) ++counts[w];
  }
  for (KeywordId w = 0; w < postings_.size(); ++w) {
    postings_[w].reserve(counts[w]);
  }
  for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
    for (KeywordId w : corpus.doc(e)) postings_[w].push_back(e);
  }
  // Object ids are visited in increasing order, so lists are already sorted.
}

std::span<const ObjectId> InvertedIndex::Postings(KeywordId w) const {
  if (w >= postings_.size()) return {};
  return postings_[w];
}

std::vector<ObjectId> InvertedIndex::IntersectWithLimit(
    std::span<const KeywordId> keywords, size_t limit) const {
  std::vector<ObjectId> result;
  if (keywords.empty() || limit == 0) return result;

  // Order lists by length; iterate the shortest, gallop through the rest.
  std::vector<std::span<const ObjectId>> lists;
  lists.reserve(keywords.size());
  for (KeywordId w : keywords) lists.push_back(Postings(w));
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  if (lists.front().empty()) return result;

  std::vector<const ObjectId*> cursors;
  cursors.reserve(lists.size());
  for (const auto& l : lists) cursors.push_back(l.data());

  for (ObjectId candidate : lists.front()) {
    bool in_all = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      const ObjectId* end = lists[i].data() + lists[i].size();
      cursors[i] = GallopLowerBound(cursors[i], end, candidate);
      if (cursors[i] == end) return result;  // This and later candidates fail.
      if (*cursors[i] != candidate) {
        in_all = false;
        break;
      }
    }
    if (in_all) {
      result.push_back(candidate);
      if (result.size() >= limit) return result;
    }
  }
  return result;
}

std::vector<ObjectId> InvertedIndex::Intersect(
    std::span<const KeywordId> keywords) const {
  if (keywords.empty()) return {};
  // Full intersections run the pairwise blocked/galloping kernels; the
  // limit path above keeps its candidate-at-a-time loop, whose early exit
  // the pairwise cascade cannot replicate.
  std::vector<std::span<const ObjectId>> lists;
  lists.reserve(keywords.size());
  for (KeywordId w : keywords) lists.push_back(Postings(w));
  return IntersectSortedLists(lists, kernel_);
}

bool InvertedIndex::IntersectionEmpty(
    std::span<const KeywordId> keywords) const {
  return IntersectWithLimit(keywords, 1).empty();
}

size_t InvertedIndex::MemoryBytes() const {
  return NestedVectorBytes(postings_);
}

}  // namespace kwsc
