// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The keyword/document model of the paper (Section 1.1).
//
// Each object e carries a non-empty document e.Doc, formulated as a set of
// integer keywords. Documents are stored as sorted, deduplicated arrays of
// KeywordId, which makes membership O(log |Doc|) = O(1) for the constant-size
// documents the analysis assumes, and makes k-subset enumeration (needed by
// the tuple registry of Section 3.2) trivial.

#ifndef KWSC_TEXT_DOCUMENT_H_
#define KWSC_TEXT_DOCUMENT_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace kwsc {

/// Integer keyword, the paper's w in [1, W] (0-based here).
using KeywordId = uint32_t;

/// Index of an object within its dataset.
using ObjectId = uint32_t;

constexpr ObjectId kInvalidObjectId = static_cast<ObjectId>(-1);

/// A sorted, deduplicated keyword set. Immutable after construction.
class Document {
 public:
  Document() = default;

  /// Sorts and deduplicates `keywords`. The result must be non-empty for use
  /// as an object document (Eq. (2) counts its size toward N), but empty
  /// documents are permitted here so partial builders can stage data.
  explicit Document(std::vector<KeywordId> keywords);
  Document(std::initializer_list<KeywordId> keywords);

  /// True iff `w` is in the set. Binary search.
  bool Contains(KeywordId w) const;

  /// True iff every keyword in [first, first + count) is in the set.
  bool ContainsAll(const KeywordId* first, size_t count) const;

  size_t size() const { return keywords_.size(); }
  bool empty() const { return keywords_.empty(); }
  const std::vector<KeywordId>& keywords() const { return keywords_; }

  auto begin() const { return keywords_.begin(); }
  auto end() const { return keywords_.end(); }

  size_t MemoryBytes() const {
    return keywords_.capacity() * sizeof(KeywordId);
  }

  friend bool operator==(const Document& a, const Document& b) {
    return a.keywords_ == b.keywords_;
  }

 private:
  std::vector<KeywordId> keywords_;
};

}  // namespace kwsc

#endif  // KWSC_TEXT_DOCUMENT_H_
