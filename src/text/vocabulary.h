// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// String vocabulary: the bridge between real text keywords and the integer
// KeywordIds of the paper's model ("w.l.o.g., each keyword is treated as an
// integer in [1, W]", Section 3.2). Interns strings to dense ids; lookups
// are O(1) expected. Applications tokenize however they like and intern the
// tokens here before building documents.

#ifndef KWSC_TEXT_VOCABULARY_H_
#define KWSC_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "text/document.h"

namespace kwsc {

class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `keyword`, interning it if new. Ids are dense and
  /// assigned in first-seen order.
  KeywordId Intern(std::string_view keyword);

  /// Id of `keyword` if already interned, else kInvalidKeyword.
  static constexpr KeywordId kInvalidKeyword = static_cast<KeywordId>(-1);
  KeywordId Find(std::string_view keyword) const;

  /// The string for an id (must be a valid interned id).
  const std::string& Term(KeywordId id) const;

  size_t size() const { return terms_.size(); }

  /// Interns every string and returns the Document over their ids.
  Document MakeDocument(std::initializer_list<std::string_view> keywords);
  Document MakeDocument(const std::vector<std::string>& keywords);

  size_t MemoryBytes() const;

 private:
  // 64-bit FNV-1a; collisions are resolved by comparing the stored strings
  // of every id in the bucket list for this hash.
  static uint64_t Hash(std::string_view s);

  std::vector<std::string> terms_;
  // hash -> ids with that hash (collision chains are nearly always length
  // one; correctness never depends on hash uniqueness).
  FlatHashMap<uint64_t, std::vector<KeywordId>> index_;
};

}  // namespace kwsc

#endif  // KWSC_TEXT_VOCABULARY_H_
