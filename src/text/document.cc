// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "text/document.h"

#include <algorithm>

namespace kwsc {

Document::Document(std::vector<KeywordId> keywords)
    : keywords_(std::move(keywords)) {
  std::sort(keywords_.begin(), keywords_.end());
  keywords_.erase(std::unique(keywords_.begin(), keywords_.end()),
                  keywords_.end());
}

Document::Document(std::initializer_list<KeywordId> keywords)
    : Document(std::vector<KeywordId>(keywords)) {}

bool Document::Contains(KeywordId w) const {
  return std::binary_search(keywords_.begin(), keywords_.end(), w);
}

bool Document::ContainsAll(const KeywordId* first, size_t count) const {
  for (size_t i = 0; i < count; ++i) {
    if (!Contains(first[i])) return false;
  }
  return true;
}

}  // namespace kwsc
