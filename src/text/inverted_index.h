// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Inverted index: keyword -> sorted posting list of object ids.
//
// This is the classical structure behind "pure" keyword search and the
// keywords-only naive baseline of Section 1: D(w1,...,wk) is computed by
// intersecting the k posting lists. Intersection starts from the shortest
// list and gallops (doubling search) through the others, which is the
// standard O(min * log(max/min))-flavoured merge; the worst case over all
// inputs is still Theta(N), which is exactly the drawback the paper's indexes
// remove.

#ifndef KWSC_TEXT_INVERTED_INDEX_H_
#define KWSC_TEXT_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "common/simd_intersect.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

class InvertedIndex {
 public:
  /// Builds posting lists for every keyword in [0, corpus.vocab_size()).
  /// The corpus must outlive the index.
  explicit InvertedIndex(const Corpus& corpus);

  /// Posting list for `w` (empty if the keyword never occurs).
  std::span<const ObjectId> Postings(KeywordId w) const;

  /// D(w1,...,wk): ids of all objects whose documents contain every query
  /// keyword, in increasing id order. Duplicated query keywords are allowed
  /// (they are harmless for intersection).
  std::vector<ObjectId> Intersect(std::span<const KeywordId> keywords) const;

  /// True iff the intersection is empty (k-SI emptiness query). Early-exits
  /// at the first witness.
  bool IntersectionEmpty(std::span<const KeywordId> keywords) const;

  /// |D(w)| for one keyword.
  size_t PostingSize(KeywordId w) const { return Postings(w).size(); }

  /// Selects the pairwise-merge kernel full intersections run on
  /// (common/simd_intersect.h). kAuto picks AVX2 when the CPU has it.
  void set_intersect_kernel(IntersectKernel kernel) { kernel_ = kernel; }
  IntersectKernel intersect_kernel() const { return kernel_; }

  size_t MemoryBytes() const;

 private:
  // Runs the galloping intersection, stopping after `limit` results.
  std::vector<ObjectId> IntersectWithLimit(std::span<const KeywordId> keywords,
                                           size_t limit) const;

  std::vector<std::vector<ObjectId>> postings_;
  IntersectKernel kernel_ = IntersectKernel::kAuto;
};

}  // namespace kwsc

#endif  // KWSC_TEXT_INVERTED_INDEX_H_
