// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "text/corpus.h"

#include <algorithm>

#include "common/macros.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "core/format_versions.h"

namespace kwsc {

Corpus::Corpus(std::vector<Document> docs) : docs_(std::move(docs)) {
  for (ObjectId e = 0; e < docs_.size(); ++e) {
    const Document& d = docs_[e];
    KWSC_CHECK_MSG(!d.empty(), "object %u has an empty document", e);
    total_weight_ += d.size();
    if (!d.empty()) {
      vocab_size_ = std::max(vocab_size_, d.keywords().back() + 1);
    }
    if (d.size() >= kHashedDocThreshold) {
      FlatHashSet<KeywordId>& set = hashed_docs_[e];
      set.Reserve(d.size());
      for (KeywordId w : d) set.Insert(w);
    }
  }
}

bool Corpus::Contains(ObjectId e, KeywordId w) const {
  KWSC_DCHECK(e < docs_.size());
  const FlatHashSet<KeywordId>* set = hashed_docs_.Find(e);
  if (set != nullptr) return set->Contains(w);
  return docs_[e].Contains(w);
}

bool Corpus::ContainsAll(ObjectId e, std::span<const KeywordId> keywords) const {
  for (KeywordId w : keywords) {
    if (!Contains(e, w)) return false;
  }
  return true;
}

void Corpus::Save(std::ostream* out) const {
  OutputArchive ar(out);
  ar.Magic("KWCP", kCorpusFormatVersion);
  ar.Pod<uint64_t>(docs_.size());
  for (const Document& d : docs_) ar.Vec(d.keywords());
}

Corpus Corpus::Load(std::istream* in) {
  InputArchive ar(in);
  const uint32_t version = ar.Magic("KWCP");
  KWSC_CHECK_MSG(version == kCorpusFormatVersion,
                 "unsupported corpus version %u", version);
  const uint64_t count = ar.Pod<uint64_t>();
  std::vector<Document> docs;
  docs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    docs.emplace_back(ar.Vec<KeywordId>());
  }
  return Corpus(std::move(docs));
}

size_t Corpus::MemoryBytes() const {
  size_t total = VectorBytes(docs_);
  for (const Document& d : docs_) total += d.MemoryBytes();
  total += hashed_docs_.MemoryBytes();
  hashed_docs_.ForEach([&total](ObjectId, const FlatHashSet<KeywordId>& set) {
    total += set.MemoryBytes();
  });
  return total;
}

}  // namespace kwsc
