// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "text/vocabulary.h"

#include "common/macros.h"
#include "common/memory.h"

namespace kwsc {

uint64_t Vocabulary::Hash(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

KeywordId Vocabulary::Intern(std::string_view keyword) {
  std::vector<KeywordId>& bucket = index_[Hash(keyword)];
  for (KeywordId id : bucket) {
    if (terms_[id] == keyword) return id;
  }
  const KeywordId id = static_cast<KeywordId>(terms_.size());
  terms_.emplace_back(keyword);
  bucket.push_back(id);
  return id;
}

KeywordId Vocabulary::Find(std::string_view keyword) const {
  const std::vector<KeywordId>* bucket = index_.Find(Hash(keyword));
  if (bucket == nullptr) return kInvalidKeyword;
  for (KeywordId id : *bucket) {
    if (terms_[id] == keyword) return id;
  }
  return kInvalidKeyword;
}

const std::string& Vocabulary::Term(KeywordId id) const {
  KWSC_CHECK(id < terms_.size());
  return terms_[id];
}

Document Vocabulary::MakeDocument(
    std::initializer_list<std::string_view> keywords) {
  std::vector<KeywordId> ids;
  ids.reserve(keywords.size());
  for (std::string_view kw : keywords) ids.push_back(Intern(kw));
  return Document(std::move(ids));
}

Document Vocabulary::MakeDocument(const std::vector<std::string>& keywords) {
  std::vector<KeywordId> ids;
  ids.reserve(keywords.size());
  for (const std::string& kw : keywords) ids.push_back(Intern(kw));
  return Document(std::move(ids));
}

size_t Vocabulary::MemoryBytes() const {
  size_t total = VectorBytes(terms_) + index_.MemoryBytes();
  for (const std::string& term : terms_) total += term.capacity();
  index_.ForEach([&total](uint64_t, const std::vector<KeywordId>& bucket) {
    total += VectorBytes(bucket);
  });
  return total;
}

}  // namespace kwsc
