// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Corpus: the keyword side of a dataset.
//
// Holds one Document per object and precomputes the quantities the paper's
// definitions use everywhere: the input size N = sum of document sizes
// (Eq. (2)) and the vocabulary size W. Geometry (points, rectangles) lives
// next to the Corpus in each index, keyed by ObjectId, so the same corpus can
// back every problem variant.

#ifndef KWSC_TEXT_CORPUS_H_
#define KWSC_TEXT_CORPUS_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/flat_hash.h"
#include "text/document.h"

namespace kwsc {

/// A set of query keywords; callers must supply exactly k distinct keywords
/// to an index built for k.
using KeywordQuery = std::vector<KeywordId>;

/// Immutable collection of documents, indexed by ObjectId.
class Corpus {
 public:
  Corpus() = default;

  /// Takes ownership of `docs`. Every document must be non-empty.
  explicit Corpus(std::vector<Document> docs);

  size_t num_objects() const { return docs_.size(); }

  /// The paper's input size N = sum over objects of |e.Doc| (Eq. (2)).
  uint64_t total_weight() const { return total_weight_; }

  /// Number of distinct keywords W (max keyword id + 1).
  uint32_t vocab_size() const { return vocab_size_; }

  const Document& doc(ObjectId e) const { return docs_[e]; }

  /// O(1)-ish membership: binary search for short documents, a hash set for
  /// long ones (the paper's footnote-9 perfect hash table on e.Doc).
  bool Contains(ObjectId e, KeywordId w) const;

  /// True iff e.Doc contains all of `keywords` — the membership test the
  /// query algorithms run when visiting pivot objects and materialized lists.
  bool ContainsAll(ObjectId e, std::span<const KeywordId> keywords) const;

  size_t MemoryBytes() const;

  /// Persists the documents to `out`; Load reconstructs the corpus
  /// (recomputing weights, vocabulary, and membership accelerators).
  void Save(std::ostream* out) const;
  static Corpus Load(std::istream* in);

 private:
  // Documents at least this long get a hash set for O(1) membership.
  static constexpr size_t kHashedDocThreshold = 32;

  std::vector<Document> docs_;
  // Sparse: one entry per long document only.
  FlatHashMap<ObjectId, FlatHashSet<KeywordId>> hashed_docs_;
  uint64_t total_weight_ = 0;
  uint32_t vocab_size_ = 0;
};

}  // namespace kwsc

#endif  // KWSC_TEXT_CORPUS_H_
