// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// IndexAuditor: mechanized verification of the paper's structural invariants
// on a *built* index (see DESIGN.md and EXPERIMENTS.md, "Verification
// ladder"). Every AuditIndex overload walks the raw node arena of one index
// family and recomputes, from the corpus and the geometry alone, what each
// node must contain:
//
//   * OrpKwIndex (Theorem 1): kd-substrate tree well-formedness, rank-space
//     cell derivation, pivot partition, weight halving, directory recounts,
//     rank permutations, serialization round trip;
//   * SpKwBoxIndex (Appendix D): same framework checks over original-space
//     box cells with shared split boundaries;
//   * DimRedOrpKwIndex (Theorem 2): the fanout schedule f_u = 2*2^(k^level),
//     f-balanced weight quotas, sigma(u) tightness, separator placement,
//     sub-corpus/id_map consistency, and a recursive audit of every
//     secondary index;
//   * RrKwIndex (Corollary 3): delegates to its lifted engine;
//   * KdTree / IntervalTree substrates: bounding-volume tightness and
//     partition checks for the baseline structures.
//
// The auditor is pure observation: it never mutates an index and reports
// through AuditReport instead of aborting, so tests can assert that a
// *specific* injected corruption is caught as the right violation class.

#ifndef KWSC_AUDIT_INDEX_AUDITOR_H_
#define KWSC_AUDIT_INDEX_AUDITOR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <numeric>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "audit/audit.h"
#include "audit/audit_access.h"
#include "common/flat_arena.h"
#include "common/flat_hash.h"
#include "core/balanced_cut.h"
#include "core/dim_reduction.h"
#include "core/dynamic_index.h"
#include "core/framework.h"
#include "core/node_directory.h"
#include "core/orp_kw.h"
#include "core/rr_kw.h"
#include "core/sp_kw_box.h"
#include "kdtree/interval_tree.h"
#include "kdtree/kd_tree.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {
namespace audit {

// Overloads are declared up front because they recurse into one another: a
// DimRedOrpKwIndex<D> audits its per-node secondary, which is either
// OrpKwIndex<2> or DimRedOrpKwIndex<D - 1>.
template <int D, typename Scalar>
AuditReport AuditIndex(const OrpKwIndex<D, Scalar>& index,
                       const AuditOptions& options = AuditOptions());
template <int D, typename Scalar>
AuditReport AuditIndex(const DimRedOrpKwIndex<D, Scalar>& index,
                       const AuditOptions& options = AuditOptions());
template <int D, typename Scalar>
AuditReport AuditIndex(const SpKwBoxIndex<D, Scalar>& index,
                       const AuditOptions& options = AuditOptions());
template <int D, typename Scalar>
AuditReport AuditIndex(const RrKwIndex<D, Scalar>& index,
                       const AuditOptions& options = AuditOptions());
template <typename Family>
AuditReport AuditIndex(const DynamicIndex<Family>& index,
                       const AuditOptions& options = AuditOptions());

namespace internal_auditor {

/// Smallest b with 2^b >= v.
inline int CeilLog2(uint64_t v) {
  int bits = 0;
  while (bits < 63 && (uint64_t{1} << bits) < v) ++bits;
  return bits;
}

inline uint64_t WeightOf(const Corpus& corpus,
                         std::span<const ObjectId> objects) {
  uint64_t total = 0;
  for (ObjectId e : objects) total += corpus.doc(e).size();
  return total;
}

/// k-combination enumeration, mirroring the DirectoryBuilder's (which lives
/// in an anonymous namespace — an intentional reimplementation, so the audit
/// does not share code with the machinery it verifies).
template <typename Fn>
void ForEachCombination(std::span<const uint32_t> sorted_lids, int k,
                        Fn&& fn) {
  const int n = static_cast<int>(sorted_lids.size());
  if (n < k) return;
  std::vector<uint32_t> combo(static_cast<size_t>(k));
  std::vector<int> idx(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = i;
  while (true) {
    for (int i = 0; i < k; ++i) {
      combo[static_cast<size_t>(i)] =
          sorted_lids[static_cast<size_t>(idx[static_cast<size_t>(i)])];
    }
    fn(std::span<const uint32_t>(combo));
    int pos = k - 1;
    while (pos >= 0 && idx[static_cast<size_t>(pos)] == n - k + pos) --pos;
    if (pos < 0) break;
    ++idx[static_cast<size_t>(pos)];
    for (int i = pos + 1; i < k; ++i) {
      idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
    }
  }
}

/// Recomputes one internal node's NodeDirectory from scratch — occurrence
/// counts of inherited keywords over the active set, the N_u^alpha
/// classification, materialized lists, per-child tuple registries — and
/// compares against the stored directory. Returns the recomputed large set
/// (sorted), which is the inherited set for the node's children.
inline std::vector<KeywordId> CheckNodeDirectory(
    const Corpus& corpus, const FrameworkOptions& options,
    std::span<const ObjectId> active,
    std::span<const std::vector<ObjectId>* const> child_active,
    const std::vector<KeywordId>* inherited, const NodeDirectory& dir,
    int64_t node, AuditReport* report) {
  const auto is_inherited = [inherited](KeywordId w) {
    return inherited == nullptr ||
           std::binary_search(inherited->begin(), inherited->end(), w);
  };

  FlatHashMap<KeywordId, uint32_t> counts;
  uint64_t weight = 0;
  for (ObjectId e : active) {
    const Document& doc = corpus.doc(e);
    weight += doc.size();
    for (KeywordId w : doc) {
      if (is_inherited(w)) ++counts[w];
    }
  }

  const double threshold = LargeThreshold(weight, options.EffectiveAlpha());
  std::vector<KeywordId> larges;
  counts.ForEach([&larges, threshold](KeywordId w, uint32_t count) {
    if (static_cast<double>(count) >= threshold) larges.push_back(w);
  });
  std::sort(larges.begin(), larges.end());

  // Large table: same key set, local ids assigned in increasing keyword
  // order (the canonical-lid contract EncodeTuple relies on).
  if (dir.num_large() != larges.size()) {
    report->Add(AuditCheck::kDirectoryLarge, node,
                "large table holds %zu keywords, recount finds %zu",
                dir.num_large(), larges.size());
  }
  for (size_t lid = 0; lid < larges.size(); ++lid) {
    const int64_t stored = dir.LargeId(larges[lid]);
    if (stored != static_cast<int64_t>(lid)) {
      report->Add(AuditCheck::kDirectoryLarge, node,
                  "keyword %u has lid %lld, expected %zu", larges[lid],
                  static_cast<long long>(stored), lid);
    }
  }

  // Materialized lists: exactly the keywords that are inherited, occur below
  // u, and fall short of the threshold; each list is the non-pivot carriers.
  // All reads go through the mode-agnostic directory API so a flat-loaded
  // index audits exactly like the pointer-built original.
  if (options.enable_materialized_lists) {
    FlatHashMap<KeywordId, std::vector<ObjectId>> expected;
    const std::span<const ObjectId> pivots = dir.pivots();
    for (ObjectId e : active) {
      if (std::find(pivots.begin(), pivots.end(), e) != pivots.end()) {
        continue;
      }
      for (KeywordId w : corpus.doc(e)) {
        const uint32_t* count = counts.Find(w);
        if (count != nullptr && static_cast<double>(*count) < threshold) {
          expected[w].push_back(e);
        }
      }
    }
    if (dir.num_materialized() != expected.size()) {
      report->Add(AuditCheck::kDirectoryMaterialized, node,
                  "%zu materialized lists, recount expects %zu",
                  dir.num_materialized(), expected.size());
    }
    expected.ForEach([&](KeywordId w, const std::vector<ObjectId>& list) {
      const std::optional<std::span<const ObjectId>> got =
          dir.MaterializedList(w);
      if (!got.has_value()) {
        report->Add(AuditCheck::kDirectoryMaterialized, node,
                    "missing materialized list for keyword %u", w);
        return;
      }
      std::vector<ObjectId> want(list);
      std::vector<ObjectId> have(got->begin(), got->end());
      std::sort(want.begin(), want.end());
      std::sort(have.begin(), have.end());
      if (want != have) {
        report->Add(AuditCheck::kDirectoryMaterialized, node,
                    "materialized list for keyword %u disagrees with the "
                    "recount (%zu stored vs %zu expected entries)",
                    w, have.size(), want.size());
      }
    });
    dir.ForEachMaterializedSorted(
        [&](KeywordId w, std::span<const ObjectId> /*list*/) {
          if (expected.Find(w) == nullptr) {
            report->Add(AuditCheck::kDirectoryMaterialized, node,
                        "unexpected materialized list for keyword %u", w);
          }
        });
  } else if (dir.num_materialized() != 0) {
    report->Add(AuditCheck::kDirectoryMaterialized, node,
                "materialized lists present although disabled by options");
  }

  // Per-child tuple registries: a k-tuple of large keywords is registered
  // for child c iff some object in c's active set carries all k keywords.
  if (dir.num_children() != child_active.size()) {
    report->Add(AuditCheck::kDirectoryTuples, node,
                "%zu child registries for %zu children", dir.num_children(),
                child_active.size());
  } else if (options.enable_tuple_pruning) {
    std::vector<uint32_t> doc_lids;
    for (size_t c = 0; c < child_active.size(); ++c) {
      FlatHashSet<uint64_t> expected_tuples;
      for (ObjectId e : *child_active[c]) {
        doc_lids.clear();
        for (KeywordId w : corpus.doc(e)) {
          const auto it = std::lower_bound(larges.begin(), larges.end(), w);
          if (it != larges.end() && *it == w) {
            doc_lids.push_back(static_cast<uint32_t>(it - larges.begin()));
          }
        }
        ForEachCombination(doc_lids, options.k,
                           [&expected_tuples](std::span<const uint32_t> t) {
                             expected_tuples.Insert(
                                 NodeDirectory::EncodeTuple(t));
                           });
      }
      if (dir.NumChildTupleKeys(c) != expected_tuples.size()) {
        report->Add(AuditCheck::kDirectoryTuples, node,
                    "child %zu registry holds %zu tuples, recount finds %zu",
                    c, dir.NumChildTupleKeys(c), expected_tuples.size());
      }
      bool missing = false;
      expected_tuples.ForEach([&](uint64_t key) {
        if (!dir.ChildTupleContainsKey(c, key)) missing = true;
      });
      if (missing) {
        report->Add(AuditCheck::kDirectoryTuples, node,
                    "child %zu registry omits a realized non-empty tuple", c);
      }
    }
  } else {
    for (size_t c = 0; c < dir.num_children(); ++c) {
      if (dir.NumChildTupleKeys(c) != 0) {
        report->Add(AuditCheck::kDirectoryTuples, node,
                    "child %zu registry non-empty although tuple pruning is "
                    "disabled",
                    c);
      }
    }
  }
  return larges;
}

/// Save -> Load -> Save must reproduce the first byte stream exactly (the
/// determinism contract parallel builds and fingerprints rely on).
template <typename Index>
void CheckSerializationRoundTrip(const Index& index, const Corpus& corpus,
                                 AuditReport* report) {
  std::ostringstream first_stream;
  index.Save(&first_stream);
  const std::string first = first_stream.str();
  std::istringstream in(first);
  const Index loaded = Index::Load(&in, &corpus);
  std::ostringstream second_stream;
  loaded.Save(&second_stream);
  if (second_stream.str() != first) {
    report->Add(AuditCheck::kSerialization, -1,
                "save/load/save round trip is not byte-identical "
                "(%zu vs %zu bytes)",
                first.size(), second_stream.str().size());
  }
}

/// Shared audit for the two binary transformed trees — OrpKwIndex (rank
/// space, pivot excluded from both child cells) and SpKwBoxIndex (original
/// space, children share the split plane). Their Node layouts are identical;
/// the cell-derivation rule is the only difference, selected by
/// kSharedBoundary.
template <int D, typename Scalar, typename Index, bool kSharedBoundary>
class FrameworkTreeAuditor {
 public:
  FrameworkTreeAuditor(const Index& index, const AuditOptions& audit_options,
                       AuditReport* report)
      : index_(index),
        nodes_(AuditAccess::Nodes(index)),
        corpus_(*AuditAccess::CorpusOf(index)),
        options_(AuditAccess::Options(index)),
        audit_options_(audit_options),
        report_(report) {}

  void Run() {
    const size_t n = corpus_.num_objects();
    if (nodes_.empty()) {
      if (n > 0) {
        report_->Add(AuditCheck::kPartitionCoverage, -1,
                     "index has no nodes but the corpus has %zu objects", n);
      }
      return;
    }
    seen_.assign(n, 0);
    referenced_.assign(nodes_.size(), 0);
    actives_.assign(nodes_.size(), {});

    using CellT = std::remove_cvref_t<decltype(nodes_[0].cell)>;
    if (!(nodes_[0].cell == CellT::Everything())) {
      report_->Add(AuditCheck::kCellGeometry, 0,
                   "root cell is not the whole space");
    }
    CollectNode(0, /*expected_level=*/0);

    for (size_t i = 1; i < nodes_.size(); ++i) {
      if (referenced_[i] == 0) {
        report_->Add(AuditCheck::kTreeStructure, static_cast<int64_t>(i),
                     "node unreachable from the root");
      }
    }
    for (size_t e = 0; e < n; ++e) {
      if (seen_[e] == 0) {
        report_->Add(AuditCheck::kPartitionCoverage, -1,
                     "object %zu appears in no pivot set", e);
      }
    }
    report_->objects_checked += n;

    // Depth: every split halves the verbose-set weight or the cardinality
    // (WeightedMedianIndex contract), so root-to-leaf paths are bounded by
    // log2(W) + log2(n) steps.
    const int depth_bound =
        CeilLog2(std::max<uint64_t>(corpus_.total_weight(), 2)) +
        CeilLog2(std::max<uint64_t>(n, 2)) + 2;
    if (max_level_ > depth_bound) {
      report_->Add(AuditCheck::kDepthBound, -1,
                   "tree depth %d exceeds the O(log N + log W) bound %d",
                   max_level_, depth_bound);
    }

    // Space: pivot sets partition the objects and every node stores at least
    // one pivot, so the arena is at most n nodes; each (object, keyword)
    // pair materializes at most once along its root-to-leaf path, so the
    // materialized-list total is at most N (Theorem 1's linear space).
    if (nodes_.size() > n) {
      report_->Add(AuditCheck::kSpaceBound, -1,
                   "%zu nodes for %zu objects breaks linear-space accounting",
                   nodes_.size(), n);
    }
    if (materialized_total_ > corpus_.total_weight()) {
      report_->Add(AuditCheck::kSpaceBound, -1,
                   "materialized lists hold %llu entries, more than N = %llu",
                   static_cast<unsigned long long>(materialized_total_),
                   static_cast<unsigned long long>(corpus_.total_weight()));
    }

    if (audit_options_.check_directories) {
      CheckDirectories(0, /*inherited=*/nullptr);
    }
  }

 private:
  decltype(auto) PointOf(ObjectId e) const {
    if constexpr (kSharedBoundary) {
      return AuditAccess::Points(index_)[e];
    } else {
      return AuditAccess::RankPoints(index_)[e];
    }
  }

  // Bottom-up pass: marks pivots, verifies tree shape, cell derivation, and
  // weight accounting, and records each node's active set (sorted by id) for
  // the top-down directory pass.
  void CollectNode(uint32_t idx, int expected_level) {
    const auto& node = nodes_[idx];
    ++report_->nodes_checked;
    max_level_ = std::max(max_level_, expected_level);
    if (static_cast<int>(node.level) != expected_level) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "node level %d, DFS depth says %d",
                   static_cast<int>(node.level), expected_level);
    }

    const std::span<const ObjectId> pivots = node.dir.pivots();
    for (ObjectId e : pivots) {
      if (static_cast<size_t>(e) >= seen_.size()) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "pivot id %u out of range", e);
        continue;
      }
      if (seen_[e]++ != 0) {
        report_->Add(AuditCheck::kPartitionDisjoint, idx,
                     "object %u stored in more than one pivot set", e);
      }
      if (!node.cell.Contains(PointOf(e))) {
        report_->Add(AuditCheck::kCellGeometry, idx,
                     "pivot %u lies outside its node's cell", e);
      }
    }
    node.dir.ForEachMaterializedSorted(
        [this](KeywordId, std::span<const ObjectId> list) {
          materialized_total_ += list.size();
        });

    std::vector<ObjectId>& active = actives_[idx];
    if (node.IsLeaf()) {
      if (pivots.size() > static_cast<size_t>(options_.leaf_objects)) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "leaf holds %zu objects, leaf_objects = %d",
                     pivots.size(), options_.leaf_objects);
      }
      if (node.dir.num_large() != 0) {
        report_->Add(AuditCheck::kDirectoryLarge, idx,
                     "leaf carries a large-keyword table");
      }
      if (node.dir.num_children() != 0) {
        report_->Add(AuditCheck::kDirectoryTuples, idx,
                     "leaf carries child tuple registries");
      }
      if (node.dir.num_materialized() != 0) {
        report_->Add(AuditCheck::kDirectoryMaterialized, idx,
                     "leaf carries materialized lists");
      }
      for (ObjectId e : pivots) {
        if (static_cast<size_t>(e) < seen_.size()) active.push_back(e);
      }
      std::sort(active.begin(), active.end());
      if (node.dir.weight() != WeightOf(corpus_, active)) {
        report_->Add(AuditCheck::kWeightAccounting, idx,
                     "leaf weight %llu, recount finds %llu",
                     static_cast<unsigned long long>(node.dir.weight()),
                     static_cast<unsigned long long>(
                         WeightOf(corpus_, active)));
      }
      return;
    }

    if (pivots.size() != 1) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "internal node stores %zu pivots, expected exactly 1",
                   pivots.size());
    }

    // Children: in-range, DFS preorder (first child immediately follows the
    // parent — the layout parallel builds must reproduce), referenced once.
    bool have_valid_child[2] = {false, false};
    bool first = true;
    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child < 0) continue;
      if (child <= static_cast<int32_t>(idx) ||
          child >= static_cast<int32_t>(nodes_.size())) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "child slot %d holds invalid index %d", c, child);
        continue;
      }
      if (first && child != static_cast<int32_t>(idx) + 1) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "first child %d breaks DFS preorder", child);
      }
      first = false;
      if (referenced_[static_cast<size_t>(child)]++ != 0) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "node %d referenced more than once", child);
        continue;
      }
      have_valid_child[c] = true;
      CollectNode(static_cast<uint32_t>(child), expected_level + 1);
    }

    // Cell derivation: the split coordinate comes from the pivot on the
    // level's dimension. Rank substrate excludes the pivot's coordinate from
    // both children; the box substrate shares the split plane.
    const int dim = expected_level % D;
    if (pivots.size() == 1 && static_cast<size_t>(pivots[0]) < seen_.size()) {
      const auto split = PointOf(pivots[0])[dim];
      auto expect_left = node.cell;
      auto expect_right = node.cell;
      if constexpr (kSharedBoundary) {
        expect_left.hi[dim] = split;
        expect_right.lo[dim] = split;
      } else {
        expect_left.hi[dim] = split - 1;
        expect_right.lo[dim] = split + 1;
      }
      if (have_valid_child[0] &&
          !(nodes_[static_cast<size_t>(node.child[0])].cell == expect_left)) {
        report_->Add(AuditCheck::kCellGeometry, idx,
                     "left child cell is not derived from the split");
      }
      if (have_valid_child[1] &&
          !(nodes_[static_cast<size_t>(node.child[1])].cell == expect_right)) {
        report_->Add(AuditCheck::kCellGeometry, idx,
                     "right child cell is not derived from the split");
      }
    }

    // Active set = pivot plus both child subtrees' objects.
    size_t total = pivots.size();
    for (int c = 0; c < 2; ++c) {
      if (have_valid_child[c]) {
        total += actives_[static_cast<size_t>(node.child[c])].size();
      }
    }
    active.reserve(total);
    for (ObjectId e : pivots) {
      if (static_cast<size_t>(e) < seen_.size()) active.push_back(e);
    }
    for (int c = 0; c < 2; ++c) {
      if (!have_valid_child[c]) continue;
      const std::vector<ObjectId>& sub =
          actives_[static_cast<size_t>(node.child[c])];
      active.insert(active.end(), sub.begin(), sub.end());
    }
    std::sort(active.begin(), active.end());

    // Weight accounting: the directory's N_u is the recomputed verbose-set
    // weight, and each split halves weight or cardinality (the degenerate
    // fallback of WeightedMedianIndex halves cardinality instead).
    const uint64_t node_weight = WeightOf(corpus_, active);
    if (node.dir.weight() != node_weight) {
      report_->Add(AuditCheck::kWeightAccounting, idx,
                   "directory weight %llu, recount finds %llu",
                   static_cast<unsigned long long>(node.dir.weight()),
                   static_cast<unsigned long long>(node_weight));
    }
    for (int c = 0; c < 2; ++c) {
      if (!have_valid_child[c]) continue;
      const std::vector<ObjectId>& sub =
          actives_[static_cast<size_t>(node.child[c])];
      const uint64_t child_weight = WeightOf(corpus_, sub);
      if (2 * child_weight > node_weight && 2 * sub.size() > active.size()) {
        report_->Add(AuditCheck::kWeightAccounting, idx,
                     "child %d halves neither weight (%llu of %llu) nor "
                     "cardinality (%zu of %zu)",
                     c, static_cast<unsigned long long>(child_weight),
                     static_cast<unsigned long long>(node_weight), sub.size(),
                     active.size());
      }
    }
  }

  // Top-down pass: directory recounts need the inherited-keyword set, which
  // is the parent chain's large sets — available only after the active sets
  // exist.
  void CheckDirectories(uint32_t idx, const std::vector<KeywordId>* inherited) {
    const auto& node = nodes_[idx];
    if (node.IsLeaf()) return;
    static const std::vector<ObjectId> kEmpty;
    const std::vector<ObjectId>* child_active[2] = {&kEmpty, &kEmpty};
    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child > static_cast<int32_t>(idx) &&
          child < static_cast<int32_t>(nodes_.size())) {
        child_active[c] = &actives_[static_cast<size_t>(child)];
      }
    }
    const std::vector<KeywordId> larges = CheckNodeDirectory(
        corpus_, options_, actives_[idx], child_active, inherited, node.dir,
        idx, report_);
    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child > static_cast<int32_t>(idx) &&
          child < static_cast<int32_t>(nodes_.size())) {
        CheckDirectories(static_cast<uint32_t>(child), &larges);
      }
    }
  }

  const Index& index_;
  const std::remove_cvref_t<decltype(AuditAccess::Nodes(
      std::declval<const Index&>()))>& nodes_;
  const Corpus& corpus_;
  const FrameworkOptions& options_;
  const AuditOptions audit_options_;
  AuditReport* report_;

  std::vector<uint8_t> seen_;        // Per object: pivot-set occurrences.
  std::vector<uint8_t> referenced_;  // Per node: parent references.
  std::vector<std::vector<ObjectId>> actives_;  // Per node, sorted by id.
  uint64_t materialized_total_ = 0;
  int max_level_ = 0;
};

/// Rank-space reduction checks (Section 3.4): per dimension, the stored rank
/// points form a permutation of 0..n-1 and agree with the rank tables.
template <int D, typename Scalar>
void CheckRankSpace(const OrpKwIndex<D, Scalar>& index, AuditReport* report) {
  const auto& rank = AuditAccess::RankSpaceOf(index);
  const auto& rank_points = AuditAccess::RankPoints(index);
  const size_t n = AuditAccess::CorpusOf(index)->num_objects();
  if (rank.num_points() != n || rank_points.size() != n) {
    report->Add(AuditCheck::kRankSpace, -1,
                "rank tables cover %zu points, images cover %zu, corpus has "
                "%zu objects",
                rank.num_points(), rank_points.size(), n);
    return;
  }
  std::vector<uint8_t> seen(n);
  for (int dim = 0; dim < D; ++dim) {
    std::fill(seen.begin(), seen.end(), 0);
    for (size_t e = 0; e < n; ++e) {
      const int64_t r = rank_points[e][dim];
      if (r < 0 || r >= static_cast<int64_t>(n)) {
        report->Add(AuditCheck::kRankSpace, -1,
                    "object %zu has rank %lld outside [0, %zu) in dim %d", e,
                    static_cast<long long>(r), n, dim);
        continue;
      }
      if (seen[static_cast<size_t>(r)]++ != 0) {
        report->Add(AuditCheck::kRankSpace, -1,
                    "rank %lld in dim %d assigned to more than one object",
                    static_cast<long long>(r), dim);
      }
    }
  }
  for (size_t e = 0; e < n; ++e) {
    if (!(rank.ToRank(static_cast<uint32_t>(e)) == rank_points[e])) {
      report->Add(AuditCheck::kRankSpace, -1,
                  "stored rank image of object %zu disagrees with the rank "
                  "tables",
                  e);
    }
  }
}

/// Audit of one dimension-reduction tree (Theorem 2): fanout schedule,
/// f-balanced quotas, sigma tightness, separator placement, sub-corpus and
/// id_map consistency, plus a recursive audit of every secondary index.
template <int D, typename Scalar>
class DimRedAuditor {
 public:
  using Index = DimRedOrpKwIndex<D, Scalar>;

  DimRedAuditor(const Index& index, const AuditOptions& audit_options,
                AuditReport* report)
      : index_(index),
        nodes_(AuditAccess::Nodes(index)),
        corpus_(*AuditAccess::CorpusOf(index)),
        points_(AuditAccess::Points(index)),
        options_(AuditAccess::Options(index)),
        audit_options_(audit_options),
        report_(report) {}

  void Run() {
    const size_t n = corpus_.num_objects();
    if (nodes_.empty()) {
      if (n > 0) {
        report_->Add(AuditCheck::kPartitionCoverage, -1,
                     "index has no nodes but the corpus has %zu objects", n);
      }
      return;
    }
    seen_.assign(n, 0);
    referenced_.assign(nodes_.size(), 0);
    Walk(0, /*expected_level=*/0);

    for (size_t i = 1; i < nodes_.size(); ++i) {
      if (referenced_[i] == 0) {
        report_->Add(AuditCheck::kTreeStructure, static_cast<int64_t>(i),
                     "node unreachable from the root");
      }
    }
    for (size_t e = 0; e < n; ++e) {
      if (seen_[e] == 0) {
        report_->Add(AuditCheck::kPartitionCoverage, -1,
                     "object %zu appears in no pivot set", e);
      }
    }
    report_->objects_checked += n;

    // Proposition 1: the doubly-exponential fanout schedule caps the tree at
    // O(log_k log_2 N) levels.
    const double log_weight = std::log2(
        std::max<double>(2.0, static_cast<double>(corpus_.total_weight())));
    const int level_bound =
        3 + static_cast<int>(std::ceil(std::log(std::max(1.0, log_weight)) /
                                       std::log(static_cast<double>(
                                           std::max(2, options_.k)))));
    if (max_level_ + 1 > level_bound) {
      report_->Add(AuditCheck::kDepthBound, -1,
                   "tree has %d levels, the O(log log N) bound allows %d",
                   max_level_ + 1, level_bound);
    }

    // Space: active sets of one level are disjoint, so each level's
    // secondary structures cover at most n objects (the per-level slice of
    // Theorem 2's O(N log log N) space bound).
    for (size_t level = 0; level < level_active_.size(); ++level) {
      if (level_active_[level] > n) {
        report_->Add(AuditCheck::kSpaceBound, -1,
                     "level %zu secondaries cover %llu objects, corpus has "
                     "%zu",
                     level,
                     static_cast<unsigned long long>(level_active_[level]),
                     n);
      }
    }
    if (nodes_.size() > 2 * n + 2) {
      report_->Add(AuditCheck::kSpaceBound, -1,
                   "%zu nodes for %zu objects breaks linear node accounting",
                   nodes_.size(), n);
    }
  }

 private:
  bool LessXId(ObjectId a, ObjectId b) const {
    if (points_[a][0] != points_[b][0]) return points_[a][0] < points_[b][0];
    return a < b;
  }

  // Returns the subtree's active set sorted by (x, id) — the order the
  // construction keeps everywhere.
  std::vector<ObjectId> Walk(uint32_t idx, int expected_level) {
    const auto& node = nodes_[idx];
    ++report_->nodes_checked;
    max_level_ = std::max(max_level_, expected_level);
    if (static_cast<int>(node.level) != expected_level) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "node level %d, DFS depth says %d",
                   static_cast<int>(node.level), expected_level);
    }

    std::vector<std::vector<ObjectId>> groups;
    groups.reserve(node.children.size());
    uint32_t prev = idx;
    bool first = true;
    for (uint32_t child : node.children) {
      if (child <= idx || child >= nodes_.size()) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "child index %u out of range", child);
        continue;
      }
      if (first && child != idx + 1) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "first child %u breaks DFS preorder", child);
      }
      if (!first && child <= prev) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "children out of arena order at %u", child);
      }
      first = false;
      prev = child;
      if (referenced_[child]++ != 0) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "node %u referenced more than once", child);
        continue;
      }
      groups.push_back(Walk(child, expected_level + 1));
    }

    std::vector<ObjectId> active;
    for (ObjectId e : node.pivots) {
      if (static_cast<size_t>(e) >= seen_.size()) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "pivot id %u out of range", e);
        continue;
      }
      if (seen_[e]++ != 0) {
        report_->Add(AuditCheck::kPartitionDisjoint, idx,
                     "object %u stored in more than one pivot set", e);
      }
      active.push_back(e);
    }
    for (const std::vector<ObjectId>& group : groups) {
      active.insert(active.end(), group.begin(), group.end());
    }
    std::sort(active.begin(), active.end(),
              [this](ObjectId a, ObjectId b) { return LessXId(a, b); });
    if (active.empty()) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "node has an empty active set");
      return active;
    }

    // sigma(u) is the tight x-range of the active set.
    if (node.sigma_lo != points_[active.front()][0] ||
        node.sigma_hi != points_[active.back()][0]) {
      report_->Add(AuditCheck::kCellGeometry, idx,
                   "sigma(u) is not the tight x-range of the active set");
    }

    // Groups are contiguous runs in (x, id) order, and every separator falls
    // strictly between the groups it separates — never inside one.
    for (size_t g = 0; g + 1 < groups.size(); ++g) {
      if (!groups[g].empty() && !groups[g + 1].empty() &&
          !LessXId(groups[g].back(), groups[g + 1].front())) {
        report_->Add(AuditCheck::kCellGeometry, idx,
                     "groups %zu and %zu overlap in (x, id) order", g, g + 1);
      }
    }
    for (ObjectId p : node.pivots) {
      if (static_cast<size_t>(p) >= seen_.size()) continue;
      for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].empty()) continue;
        if (!LessXId(p, groups[g].front()) && !LessXId(groups[g].back(), p)) {
          report_->Add(AuditCheck::kCellGeometry, idx,
                       "separator %u lies inside group %zu's x-range", p, g);
        }
      }
    }

    if (node.children.empty()) {
      AuditLeaf(idx, node, active);
      return active;
    }
    AuditInternal(idx, expected_level, node, active, groups);
    return active;
  }

  template <typename Node>
  void AuditLeaf(uint32_t idx, const Node& node,
                 const std::vector<ObjectId>& active) {
    if (active.size() > static_cast<size_t>(options_.leaf_objects)) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "leaf holds %zu objects, leaf_objects = %d", active.size(),
                   options_.leaf_objects);
    }
    if (node.fanout != 0) {
      report_->Add(AuditCheck::kFanoutSchedule, idx,
                   "leaf records fanout %llu, expected 0",
                   static_cast<unsigned long long>(node.fanout));
    }
    if (node.secondary != nullptr || node.sub_corpus != nullptr) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "leaf carries a secondary index");
    }
    if (node.pivots != active) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "leaf pivot set differs from its active set");
    }
  }

  template <typename Node>
  void AuditInternal(uint32_t idx, int expected_level, const Node& node,
                     const std::vector<ObjectId>& active,
                     const std::vector<std::vector<ObjectId>>& groups) {
    // Eq. (10): f_u = 2 * 2^(k^level), saturated at the active-set size.
    const uint64_t expected_fanout =
        FanoutForLevel(options_.k, expected_level, active.size());
    if (node.fanout != expected_fanout) {
      report_->Add(AuditCheck::kFanoutSchedule, idx,
                   "fanout %llu, schedule f_u = 2*2^(k^level) expects %llu",
                   static_cast<unsigned long long>(node.fanout),
                   static_cast<unsigned long long>(expected_fanout));
    }
    if (node.pivots.size() + 1 > expected_fanout) {
      report_->Add(AuditCheck::kFanoutSchedule, idx,
                   "%zu separators for fanout %llu (at most f - 1 allowed)",
                   node.pivots.size(),
                   static_cast<unsigned long long>(expected_fanout));
    }
    if (groups.size() > expected_fanout) {
      report_->Add(AuditCheck::kFanoutSchedule, idx,
                   "%zu groups for fanout %llu", groups.size(),
                   static_cast<unsigned long long>(expected_fanout));
    }
    // The f-balanced quota (footnote 13): every group's verbose-set weight
    // stays within total / f.
    const uint64_t quota = WeightOf(corpus_, active) / expected_fanout;
    for (size_t g = 0; g < groups.size(); ++g) {
      const uint64_t group_weight = WeightOf(corpus_, groups[g]);
      if (group_weight > quota) {
        report_->Add(AuditCheck::kFanoutSchedule, idx,
                     "group %zu weight %llu exceeds the f-balanced quota "
                     "%llu",
                     g, static_cast<unsigned long long>(group_weight),
                     static_cast<unsigned long long>(quota));
      }
    }

    if (node.secondary == nullptr || node.sub_corpus == nullptr) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "internal node lacks a secondary index");
      return;
    }
    if (node.id_map != active) {
      report_->Add(AuditCheck::kTreeStructure, idx,
                   "id_map does not enumerate the active set in (x, id) "
                   "order");
    } else {
      if (node.sub_corpus->num_objects() != active.size()) {
        report_->Add(AuditCheck::kTreeStructure, idx,
                     "sub-corpus holds %zu documents for %zu active objects",
                     node.sub_corpus->num_objects(), active.size());
      } else {
        for (size_t i = 0; i < active.size(); ++i) {
          if (!(node.sub_corpus->doc(static_cast<ObjectId>(i)) ==
                corpus_.doc(node.id_map[i]))) {
            report_->Add(AuditCheck::kTreeStructure, idx,
                         "sub-corpus document %zu differs from the original",
                         i);
            break;
          }
        }
      }
      CheckSecondaryGeometry(idx, node);
    }

    AuditReport sub = AuditIndex(*node.secondary, audit_options_);
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "node %u secondary: ", idx);
    report_->Merge(sub, prefix);

    if (level_active_.size() <= static_cast<size_t>(expected_level)) {
      level_active_.resize(static_cast<size_t>(expected_level) + 1, 0);
    }
    level_active_[static_cast<size_t>(expected_level)] += node.id_map.size();
  }

  // The secondary index covers the active set with the x-dimension dropped.
  // For the OrpKw base case the projection survives only as rank tables, so
  // the check compares rank order against the projected coordinate order;
  // deeper recursion keeps raw points and is compared directly.
  template <typename Node>
  void CheckSecondaryGeometry(uint32_t idx, const Node& node) {
    if constexpr (D == 3) {
      const auto& rank_points = AuditAccess::RankPoints(*node.secondary);
      const size_t m = node.id_map.size();
      if (rank_points.size() != m) {
        report_->Add(AuditCheck::kRankSpace, idx,
                     "secondary rank images cover %zu of %zu objects",
                     rank_points.size(), m);
        return;
      }
      std::vector<uint32_t> order(m);
      for (int j = 0; j < 2; ++j) {
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) {
                    const Scalar ca = points_[node.id_map[a]][j + 1];
                    const Scalar cb = points_[node.id_map[b]][j + 1];
                    if (ca != cb) return ca < cb;
                    return a < b;
                  });
        for (size_t pos = 0; pos < m; ++pos) {
          if (rank_points[order[pos]][j] != static_cast<int64_t>(pos)) {
            report_->Add(AuditCheck::kRankSpace, idx,
                         "secondary rank order in dim %d disagrees with the "
                         "projected coordinates",
                         j);
            break;
          }
        }
      }
    } else {
      const auto& sub_points = AuditAccess::Points(*node.secondary);
      if (sub_points.size() != node.id_map.size()) {
        report_->Add(AuditCheck::kCellGeometry, idx,
                     "secondary stores %zu points for %zu objects",
                     sub_points.size(), node.id_map.size());
        return;
      }
      for (size_t i = 0; i < sub_points.size(); ++i) {
        bool match = true;
        for (int dim = 1; dim < D; ++dim) {
          if (sub_points[i][dim - 1] != points_[node.id_map[i]][dim]) {
            match = false;
          }
        }
        if (!match) {
          report_->Add(AuditCheck::kCellGeometry, idx,
                       "secondary point %zu is not the x-dropped projection",
                       i);
          break;
        }
      }
    }
  }

  const Index& index_;
  const std::remove_cvref_t<decltype(AuditAccess::Nodes(
      std::declval<const Index&>()))>& nodes_;
  const Corpus& corpus_;
  const std::vector<Point<D, Scalar>>& points_;
  const FrameworkOptions& options_;
  const AuditOptions audit_options_;
  AuditReport* report_;

  std::vector<uint8_t> seen_;
  std::vector<uint8_t> referenced_;
  std::vector<uint64_t> level_active_;
  int max_level_ = 0;
};

}  // namespace internal_auditor

template <int D, typename Scalar>
AuditReport AuditIndex(const OrpKwIndex<D, Scalar>& index,
                       const AuditOptions& options) {
  AuditReport report;
  internal_auditor::FrameworkTreeAuditor<D, Scalar, OrpKwIndex<D, Scalar>,
                                         /*kSharedBoundary=*/false>
      auditor(index, options, &report);
  auditor.Run();
  internal_auditor::CheckRankSpace(index, &report);
  if (options.check_serialization) {
    internal_auditor::CheckSerializationRoundTrip(
        index, *AuditAccess::CorpusOf(index), &report);
  }
  return report;
}

template <int D, typename Scalar>
AuditReport AuditIndex(const SpKwBoxIndex<D, Scalar>& index,
                       const AuditOptions& options) {
  AuditReport report;
  internal_auditor::FrameworkTreeAuditor<D, Scalar, SpKwBoxIndex<D, Scalar>,
                                         /*kSharedBoundary=*/true>
      auditor(index, options, &report);
  auditor.Run();
  if (options.check_serialization) {
    internal_auditor::CheckSerializationRoundTrip(
        index, *AuditAccess::CorpusOf(index), &report);
  }
  return report;
}

template <int D, typename Scalar>
AuditReport AuditIndex(const DimRedOrpKwIndex<D, Scalar>& index,
                       const AuditOptions& options) {
  AuditReport report;
  internal_auditor::DimRedAuditor<D, Scalar> auditor(index, options, &report);
  auditor.Run();
  return report;
}

template <int D, typename Scalar>
AuditReport AuditIndex(const RrKwIndex<D, Scalar>& index,
                       const AuditOptions& options) {
  AuditReport report;
  report.Merge(AuditIndex(AuditAccess::Engine(index), options),
               "lifted engine: ");
  return report;
}

/// Audit of a v2 flat container on disk (or in memory via
/// MmapFile::FromBytes) *before* it is loaded: header magic and family tag,
/// slab offsets aligned and in bounds, secondary-structure sortedness,
/// canonical keyword order, id ranges — the deep half of the family's
/// ValidateFlat, with every finding reported as AuditCheck::kFlatLayout
/// instead of aborting the process. `Index` is the family class
/// (e.g. OrpKwIndex<2>); the container's offset defaults to 0.
template <typename Index>
AuditReport AuditFlatFile(const MmapFile& file, uint64_t offset = 0,
                          uint32_t expected_tag = Index::kFlatFamilyTag) {
  AuditReport report;
  const FlatErrorSink sink = [&report](const std::string& message) {
    report.Add(AuditCheck::kFlatLayout, -1, "%s", message.c_str());
  };
  Index::ValidateFlat(file, offset, expected_tag, sink);
  ++report.nodes_checked;  // The container itself; a zero here means "file
                           // never opened", not "clean".
  return report;
}

/// Audit of the plain kd-tree baseline: DFS preorder arena, tight bounding
/// boxes at every node, leaf ranges that partition the id permutation.
template <int D, typename Scalar>
AuditReport AuditKdTree(const KdTree<D, Scalar>& tree) {
  AuditReport report;
  const auto& nodes = AuditAccess::Nodes(tree);
  const auto& ids = AuditAccess::Ids(tree);
  const auto& points = AuditAccess::Points(tree);
  const size_t n = points.size();
  report.objects_checked += n;

  if (ids.size() != n) {
    report.Add(AuditCheck::kPartitionCoverage, -1,
               "id permutation covers %zu of %zu points", ids.size(), n);
  } else {
    std::vector<uint8_t> seen(n, 0);
    for (uint32_t id : ids) {
      if (static_cast<size_t>(id) >= n) {
        report.Add(AuditCheck::kTreeStructure, -1, "id %u out of range", id);
      } else if (seen[id]++ != 0) {
        report.Add(AuditCheck::kPartitionDisjoint, -1,
                   "id %u appears twice in the permutation", id);
      }
    }
    for (size_t e = 0; e < n; ++e) {
      if (seen[e] == 0) {
        report.Add(AuditCheck::kPartitionCoverage, -1,
                   "point %zu missing from the permutation", e);
      }
    }
  }
  if (nodes.empty()) {
    if (n > 0) {
      report.Add(AuditCheck::kTreeStructure, -1,
                 "tree has no nodes for %zu points", n);
    }
    return report;
  }

  using BoxType = std::remove_cvref_t<decltype(nodes[0].bounds)>;
  std::vector<uint8_t> referenced(nodes.size(), 0);
  size_t cursor = 0;  // Next expected leaf begin (leaves tile [0, n)).

  // Recursive walk without std::function: explicit stack of (node, phase).
  struct Frame {
    uint32_t node;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({0, false});
  std::vector<BoxType> tight(nodes.size());
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const auto& node = nodes[frame.node];
    if (!frame.expanded) {
      ++report.nodes_checked;
      if (node.IsLeaf()) {
        if (node.begin != cursor) {
          report.Add(AuditCheck::kTreeStructure, frame.node,
                     "leaf range starts at %u, DFS order expects %zu",
                     node.begin, cursor);
        }
        if (node.begin > node.end || node.end > ids.size()) {
          report.Add(AuditCheck::kTreeStructure, frame.node,
                     "leaf range [%u, %u) out of bounds", node.begin,
                     node.end);
        } else {
          cursor = node.end;
          BoxType box;
          for (uint32_t i = node.begin; i < node.end; ++i) {
            const auto& p = points[ids[i]];
            if (i == node.begin) {
              box.lo = p;
              box.hi = p;
            }
            for (int dim = 0; dim < D; ++dim) {
              box.lo[dim] = std::min(box.lo[dim], p[dim]);
              box.hi[dim] = std::max(box.hi[dim], p[dim]);
            }
          }
          tight[frame.node] = box;
          if (node.begin < node.end && !(box == node.bounds)) {
            report.Add(AuditCheck::kCellGeometry, frame.node,
                       "leaf bounds are not the tight box of its points");
          }
        }
        continue;
      }
      if (node.left <= frame.node || node.left >= nodes.size() ||
          node.right <= node.left || node.right >= nodes.size()) {
        report.Add(AuditCheck::kTreeStructure, frame.node,
                   "children (%u, %u) out of range", node.left, node.right);
        continue;
      }
      if (node.left != frame.node + 1) {
        report.Add(AuditCheck::kTreeStructure, frame.node,
                   "left child %u breaks DFS preorder", node.left);
      }
      if (referenced[node.left]++ != 0 || referenced[node.right]++ != 0) {
        report.Add(AuditCheck::kTreeStructure, frame.node,
                   "a child is referenced more than once");
        continue;
      }
      stack.push_back({frame.node, true});
      // Right is pushed first so the left subtree is visited first (DFS).
      stack.push_back({node.right, false});
      stack.push_back({node.left, false});
      continue;
    }
    // Post-order: bounds must be the tight union of the children.
    BoxType box = tight[node.left];
    for (int dim = 0; dim < D; ++dim) {
      box.lo[dim] = std::min(box.lo[dim], tight[node.right].lo[dim]);
      box.hi[dim] = std::max(box.hi[dim], tight[node.right].hi[dim]);
    }
    tight[frame.node] = box;
    if (!(box == node.bounds)) {
      report.Add(AuditCheck::kCellGeometry, frame.node,
                 "internal bounds are not the union of the child bounds");
    }
  }
  if (cursor != n) {
    report.Add(AuditCheck::kPartitionCoverage, -1,
               "leaf ranges cover [0, %zu), expected [0, %zu)", cursor, n);
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (referenced[i] == 0) {
      report.Add(AuditCheck::kTreeStructure, static_cast<int64_t>(i),
                 "node unreachable from the root");
    }
  }
  return report;
}

/// Audit of the centered interval tree baseline: every stored interval
/// contains its node's center, the two sort orders agree as multisets, and
/// subtrees lie strictly on their side of the center.
template <typename Scalar>
AuditReport AuditIntervalTree(const IntervalTree<Scalar>& tree) {
  AuditReport report;
  const auto& nodes = AuditAccess::Nodes(tree);
  const auto& intervals = AuditAccess::Intervals(tree);
  const int32_t root = AuditAccess::Root(tree);
  const size_t n = intervals.size();
  report.objects_checked += n;

  if (root < 0 || nodes.empty()) {
    if (n > 0) {
      report.Add(AuditCheck::kTreeStructure, -1,
                 "tree has no root for %zu intervals", n);
    }
    return report;
  }
  if (root >= static_cast<int32_t>(nodes.size())) {
    report.Add(AuditCheck::kTreeStructure, -1, "root index %d out of range",
               root);
    return report;
  }

  std::vector<uint8_t> seen(n, 0);
  std::vector<uint8_t> referenced(nodes.size(), 0);
  referenced[static_cast<size_t>(root)] = 1;

  struct SubtreeSpan {
    Scalar min_lo;
    Scalar max_hi;
    bool any = false;
  };
  // Recursive audit; the tree is weight-balanced by construction so the
  // recursion depth is logarithmic.
  const std::function<SubtreeSpan(int32_t)> walk =
      [&](int32_t index) -> SubtreeSpan {
    const auto& node = nodes[static_cast<size_t>(index)];
    ++report.nodes_checked;
    SubtreeSpan span;
    if (node.by_lo.empty() || node.by_lo.size() != node.by_hi.size()) {
      report.Add(AuditCheck::kTreeStructure, index,
                 "centered lists have sizes %zu and %zu", node.by_lo.size(),
                 node.by_hi.size());
    }
    for (size_t i = 0; i < node.by_lo.size(); ++i) {
      const uint32_t id = node.by_lo[i];
      if (static_cast<size_t>(id) >= n) {
        report.Add(AuditCheck::kTreeStructure, index,
                   "interval id %u out of range", id);
        continue;
      }
      if (seen[id]++ != 0) {
        report.Add(AuditCheck::kPartitionDisjoint, index,
                   "interval %u stored at more than one node", id);
      }
      const auto& iv = intervals[id];
      if (iv.lo[0] > node.center || iv.hi[0] < node.center) {
        report.Add(AuditCheck::kCellGeometry, index,
                   "interval %u does not contain the node center", id);
      }
      if (!span.any) {
        span.min_lo = iv.lo[0];
        span.max_hi = iv.hi[0];
        span.any = true;
      } else {
        span.min_lo = std::min(span.min_lo, iv.lo[0]);
        span.max_hi = std::max(span.max_hi, iv.hi[0]);
      }
      if (i > 0 && intervals[node.by_lo[i - 1]].lo[0] > iv.lo[0]) {
        report.Add(AuditCheck::kTreeStructure, index,
                   "by_lo is not sorted by left endpoint");
      }
    }
    for (size_t i = 0; i + 1 < node.by_hi.size(); ++i) {
      if (static_cast<size_t>(node.by_hi[i]) >= n ||
          static_cast<size_t>(node.by_hi[i + 1]) >= n) {
        continue;
      }
      if (intervals[node.by_hi[i]].hi[0] < intervals[node.by_hi[i + 1]].hi[0]) {
        report.Add(AuditCheck::kTreeStructure, index,
                   "by_hi is not sorted by descending right endpoint");
      }
    }
    {
      std::vector<uint32_t> a(node.by_lo);
      std::vector<uint32_t> b(node.by_hi);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) {
        report.Add(AuditCheck::kTreeStructure, index,
                   "by_lo and by_hi disagree as sets");
      }
    }
    for (const int32_t child : {node.left, node.right}) {
      if (child < 0) continue;
      if (child >= static_cast<int32_t>(nodes.size()) ||
          referenced[static_cast<size_t>(child)]++ != 0) {
        report.Add(AuditCheck::kTreeStructure, index,
                   "child %d invalid or referenced more than once", child);
        continue;
      }
      const SubtreeSpan child_span = walk(child);
      if (child_span.any) {
        const bool is_left = child == node.left;
        if (is_left && child_span.max_hi >= node.center) {
          report.Add(AuditCheck::kCellGeometry, index,
                     "left subtree reaches the center from below");
        }
        if (!is_left && child_span.min_lo <= node.center) {
          report.Add(AuditCheck::kCellGeometry, index,
                     "right subtree reaches the center from above");
        }
        if (!span.any) {
          span = child_span;
        } else {
          span.min_lo = std::min(span.min_lo, child_span.min_lo);
          span.max_hi = std::max(span.max_hi, child_span.max_hi);
        }
      }
    }
    return span;
  };
  walk(root);

  for (size_t e = 0; e < n; ++e) {
    if (seen[e] == 0) {
      report.Add(AuditCheck::kPartitionCoverage, -1,
                 "interval %zu stored at no node", e);
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (referenced[i] == 0) {
      report.Add(AuditCheck::kTreeStructure, static_cast<int64_t>(i),
                 "node unreachable from the root");
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Batch-dynamic layer (core/dynamic_index.h; DESIGN.md §7). The auditor
// works over a locked copy of the writer state (DebugAuditView), so it can
// run while background merges are in flight; the quiescence-only checks
// (buffer under capacity) are skipped mid-merge.
// ---------------------------------------------------------------------------

template <typename Family>
AuditReport AuditIndex(const DynamicIndex<Family>& index,
                       const AuditOptions& options) {
  using View = typename DynamicIndex<Family>::AuditView;
  AuditReport report;
  const View view = index.DebugAuditView();
  const std::vector<uint8_t>& dead = *view.dead;

  // --- Registry/tombstone consistency (kDynamicRegistry). ---
  if (view.geoms.size() != view.num_objects ||
      view.docs.size() != view.num_objects) {
    report.Add(AuditCheck::kDynamicRegistry, -1,
               "registry holds %zu geometries / %zu documents for %llu ids",
               view.geoms.size(), view.docs.size(),
               static_cast<unsigned long long>(view.num_objects));
    return report;  // Everything below indexes the registry by id.
  }
  if (dead.size() > view.num_objects) {
    report.Add(AuditCheck::kDynamicRegistry, -1,
               "tombstone bitmap covers %zu ids, registry has %llu",
               dead.size(), static_cast<unsigned long long>(view.num_objects));
  }
  uint64_t dead_count = 0;
  for (const uint8_t d : dead) dead_count += d != 0;
  if (view.live_objects + dead_count != view.num_objects) {
    report.Add(AuditCheck::kDynamicRegistry, -1,
               "live (%llu) + dead (%llu) != inserted (%llu)",
               static_cast<unsigned long long>(view.live_objects),
               static_cast<unsigned long long>(dead_count),
               static_cast<unsigned long long>(view.num_objects));
  }
  const auto is_dead = [&dead](ObjectId id) {
    return id < dead.size() && dead[id] != 0;
  };

  // Membership: every live id in exactly one component (buffer or one
  // level); dead ids in at most one (a carry that gathered the id dropped
  // it). Counts occurrences across the whole decomposition.
  std::vector<uint32_t> seen(view.num_objects, 0);
  const auto count_member = [&](ObjectId id, const char* where,
                                int64_t node) {
    if (id >= view.num_objects) {
      report.Add(AuditCheck::kDynamicRegistry, node,
                 "%s holds unknown id %llu", where,
                 static_cast<unsigned long long>(id));
      return;
    }
    ++seen[id];
  };
  for (const ObjectId id : view.buffer_ids) count_member(id, "buffer", -1);
  for (size_t slot = 0; slot < view.levels.size(); ++slot) {
    if (view.levels[slot] == nullptr) continue;
    for (const ObjectId id : view.levels[slot]->id_map) {
      count_member(id, "level", static_cast<int64_t>(slot));
    }
  }
  for (ObjectId id = 0; id < view.num_objects; ++id) {
    if (!is_dead(id) && seen[id] != 1) {
      report.Add(AuditCheck::kDynamicRegistry, -1,
                 "live id %llu stored %u times (want exactly 1)",
                 static_cast<unsigned long long>(id), seen[id]);
    }
    if (is_dead(id) && seen[id] > 1) {
      report.Add(AuditCheck::kDynamicRegistry, -1,
                 "tombstoned id %llu stored %u times (want at most 1)",
                 static_cast<unsigned long long>(id), seen[id]);
    }
  }

  // --- Level-set shape (kDynamicLevels). ---
  if (!view.merge_inflight && view.buffer_ids.size() >= view.buffer_capacity) {
    report.Add(AuditCheck::kDynamicLevels, -1,
               "buffer holds %zu ids at quiescence (capacity %zu)",
               view.buffer_ids.size(), view.buffer_capacity);
  }
  for (size_t slot = 0; slot < view.levels.size(); ++slot) {
    const auto& level = view.levels[slot];
    if (level == nullptr) continue;
    const int64_t node = static_cast<int64_t>(slot);
    const uint64_t cap = static_cast<uint64_t>(view.buffer_capacity)
                         << std::min<size_t>(slot, 48);
    if (level->id_map.size() > cap) {
      report.Add(AuditCheck::kDynamicLevels, node,
                 "level %zu holds %zu members, geometric bound is %llu",
                 slot, level->id_map.size(),
                 static_cast<unsigned long long>(cap));
    }
    if (level->geoms.size() != level->id_map.size() ||
        level->corpus == nullptr ||
        level->corpus->num_objects() != level->id_map.size() ||
        level->index == nullptr) {
      report.Add(AuditCheck::kDynamicLevels, node,
                 "level %zu internal sizes disagree", slot);
      continue;
    }
    for (size_t i = 0; i < level->id_map.size(); ++i) {
      const ObjectId id = level->id_map[i];
      if (id >= view.num_objects) continue;  // Reported above.
      if (!(level->geoms[i] == view.geoms[id])) {
        report.Add(AuditCheck::kDynamicLevels, node,
                   "level %zu member %zu geometry diverged from registry",
                   slot, i);
      }
      if (!(level->corpus->doc(static_cast<ObjectId>(i)) == *view.docs[id])) {
        report.Add(AuditCheck::kDynamicLevels, node,
                   "level %zu member %zu document diverged from registry",
                   slot, i);
      }
    }
    // Per-level static audit: each level is a full member of its family and
    // must satisfy every paper invariant on its own.
    AuditReport sub = AuditIndex(*level->index, options);
    report.Merge(sub, "level " + std::to_string(slot) + ": ");
  }
  report.objects_checked += view.num_objects;
  return report;
}

}  // namespace audit
}  // namespace kwsc

#endif  // KWSC_AUDIT_INDEX_AUDITOR_H_
