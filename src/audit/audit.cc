// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "audit/audit.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kwsc {
namespace audit {

const char* AuditCheckName(AuditCheck check) {
  switch (check) {
    case AuditCheck::kTreeStructure:
      return "tree-structure";
    case AuditCheck::kCellGeometry:
      return "cell-geometry";
    case AuditCheck::kPartitionDisjoint:
      return "partition-disjoint";
    case AuditCheck::kPartitionCoverage:
      return "partition-coverage";
    case AuditCheck::kWeightAccounting:
      return "weight-accounting";
    case AuditCheck::kDepthBound:
      return "depth-bound";
    case AuditCheck::kFanoutSchedule:
      return "fanout-schedule";
    case AuditCheck::kDirectoryLarge:
      return "directory-large";
    case AuditCheck::kDirectoryMaterialized:
      return "directory-materialized";
    case AuditCheck::kDirectoryTuples:
      return "directory-tuples";
    case AuditCheck::kSpaceBound:
      return "space-bound";
    case AuditCheck::kRankSpace:
      return "rank-space";
    case AuditCheck::kSerialization:
      return "serialization";
    case AuditCheck::kFlatLayout:
      return "flat-layout";
    case AuditCheck::kDynamicLevels:
      return "dynamic-levels";
    case AuditCheck::kDynamicRegistry:
      return "dynamic-registry";
  }
  return "unknown";
}

uint64_t AuditReport::CountOf(AuditCheck check) const {
  const size_t index = static_cast<size_t>(check);
  return index < counts_.size() ? counts_[index] : 0;
}

void AuditReport::Add(AuditCheck check, int64_t node, const char* fmt, ...) {
  const size_t index = static_cast<size_t>(check);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  ++counts_[index];
  ++total_violations_;
  if (violations_.size() >= kMaxStored) return;

  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  violations_.push_back({check, node, std::string(buf)});
}

void AuditReport::Merge(const AuditReport& other, const std::string& prefix) {
  nodes_checked += other.nodes_checked;
  objects_checked += other.objects_checked;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_violations_ += other.total_violations_;
  for (const AuditViolation& v : other.violations_) {
    if (violations_.size() >= kMaxStored) break;
    violations_.push_back({v.check, v.node, prefix + v.message});
  }
}

std::string AuditReport::ToString() const {
  char line[640];
  std::string out;
  std::snprintf(line, sizeof(line),
                "audit: %llu violation(s) over %llu node(s), %llu object(s)\n",
                static_cast<unsigned long long>(total_violations_),
                static_cast<unsigned long long>(nodes_checked),
                static_cast<unsigned long long>(objects_checked));
  out += line;
  for (const AuditViolation& v : violations_) {
    std::snprintf(line, sizeof(line), "  [%s] node %lld: %s\n",
                  AuditCheckName(v.check), static_cast<long long>(v.node),
                  v.message.c_str());
    out += line;
  }
  if (total_violations_ > violations_.size()) {
    std::snprintf(line, sizeof(line), "  ... %llu more not stored\n",
                  static_cast<unsigned long long>(total_violations_ -
                                                  violations_.size()));
    out += line;
  }
  return out;
}

bool AuditEnabled() {
#ifdef KWSC_AUDIT
  return true;
#else
  const char* env = std::getenv("KWSC_AUDIT");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
#endif
}

}  // namespace audit
}  // namespace kwsc
