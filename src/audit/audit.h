// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Structured violation reporting for the index auditor (see
// audit/index_auditor.h and DESIGN.md, "Verification ladder").
//
// Every check the auditor runs maps to a structural invariant the paper
// proves about a built index. A violation therefore names (a) the invariant
// class that failed, (b) the node it failed at, and (c) a human-readable
// description — enough for a test to assert that a specific injected
// corruption is caught as the *right* kind of defect, not merely "something
// is wrong".

#ifndef KWSC_AUDIT_AUDIT_H_
#define KWSC_AUDIT_AUDIT_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace kwsc {
namespace audit {

/// The invariant classes the auditor verifies. Each entry cites the paper
/// statement it mechanizes (see EXPERIMENTS.md, "Verification ladder" for
/// the full mapping).
enum class AuditCheck : uint8_t {
  /// Arena-tree well-formedness: child indices in range and in DFS preorder,
  /// every non-root node referenced exactly once, levels increase by one.
  kTreeStructure,
  /// Cell geometry of the space partition: child cells derived from the
  /// parent's split exactly, pivots on the splitting boundary (Section 3.2).
  kCellGeometry,
  /// Every object stored at most once across all pivot sets (Section 3.2:
  /// the pivot sets partition the input).
  kPartitionDisjoint,
  /// Every object stored at least once (coverage half of the partition).
  kPartitionCoverage,
  /// N_u bookkeeping: directory weight equals the recomputed verbose-set
  /// weight of the subtree, and each split halves weight or cardinality
  /// (the N_u = O(N / 2^level) argument behind Theorem 1).
  kWeightAccounting,
  /// Tree depth within the O(log N + log W) bound the halving implies.
  kDepthBound,
  /// Dimension-reduction fanout schedule f_u = 2 * 2^(k^level) (Eq. (10))
  /// and the f-balanced group-weight quota (Section 4 / Proposition 1).
  kFanoutSchedule,
  /// Large-keyword classification at each node matches a recount against
  /// the threshold N_u^alpha (Section 3.2).
  kDirectoryLarge,
  /// Materialized lists D_u^act(w) hold exactly the subtree objects whose
  /// documents contain w, for keywords small at u but inherited (Section
  /// 3.3; each (object, keyword) pair materializes at most once).
  kDirectoryMaterialized,
  /// Per-child k-tuple registry equals the realized non-empty tuples
  /// (the paper's k-dimensional bit array, Section 3.2).
  kDirectoryTuples,
  /// Linear-space accounting: node count, pivot total, and directory entry
  /// totals are O(N) (space claims of Theorems 1 and 2).
  kSpaceBound,
  /// Rank-space reduction: per-dimension ranks form a permutation and match
  /// the stored rank points (Section 3.4).
  kRankSpace,
  /// Save -> Load -> Save byte-identity (determinism contract of the
  /// serialization layer; see DESIGN.md, "Threading model").
  kSerialization,
  /// v2 flat-container well-formedness: header magic/tag, slab offsets
  /// 64-byte aligned and in bounds, secondary-structure sortedness and id
  /// ranges (DESIGN.md, "On-disk layout v2").
  kFlatLayout,
  /// Batch-dynamic level-set shape (DESIGN.md §7): geometric level sizes
  /// (slot s holds at most B * 2^s members), buffer under capacity at
  /// quiescence, per-level id_map/geometry/corpus agreement with the
  /// registry.
  kDynamicLevels,
  /// Batch-dynamic registry/tombstone consistency: dense ids, tombstones in
  /// range, live count bookkeeping, every live id in exactly one component
  /// and every dead id in at most one (carries drop tombstoned members).
  kDynamicRegistry,
};

/// Short stable name for a check class ("tree-structure", "fanout", ...).
const char* AuditCheckName(AuditCheck check);

/// One invariant failure. `node` is the arena index of the offending node,
/// or -1 when the violation is not attributable to a single node.
struct AuditViolation {
  AuditCheck check;
  int64_t node = -1;
  std::string message;
};

/// Result of auditing one index. Violations beyond `kMaxStored` are counted
/// but not stored, so auditing a badly corrupted index stays cheap.
class AuditReport {
 public:
  static constexpr size_t kMaxStored = 64;

  bool ok() const { return total_violations_ == 0; }
  uint64_t total_violations() const { return total_violations_; }
  const std::vector<AuditViolation>& violations() const { return violations_; }

  /// Number of violations (stored or not) of the given class.
  uint64_t CountOf(AuditCheck check) const;

  /// True iff at least one violation of the given class was recorded.
  bool Has(AuditCheck check) const { return CountOf(check) > 0; }

  /// Records a violation with a printf-formatted message.
  void Add(AuditCheck check, int64_t node, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 4, 5)))
#endif
      ;

  /// Folds `other` into this report (used when auditing composite indexes:
  /// a dimension-reduction node's secondary index audits into a sub-report).
  /// `prefix` labels where the sub-report came from.
  void Merge(const AuditReport& other, const std::string& prefix);

  /// Multi-line human-readable summary (empty-ish when ok()).
  std::string ToString() const;

  // Coverage counters, so "audit passed" is distinguishable from "audit
  // checked nothing".
  uint64_t nodes_checked = 0;
  uint64_t objects_checked = 0;

 private:
  std::vector<AuditViolation> violations_;
  std::vector<uint64_t> counts_;  // Indexed by AuditCheck value.
  uint64_t total_violations_ = 0;
};

/// Tuning knobs for the auditor. Defaults run every check; the directory
/// checks dominate cost (O(N log N) keyword recounts), so large-scale
/// benchmark audits can disable them separately.
struct AuditOptions {
  bool check_directories = true;
  bool check_serialization = true;
};

/// True when automatic audit wiring (test fixtures, bench_build) should run:
/// either the build defined KWSC_AUDIT (CMake -DKWSC_AUDIT=ON) or the
/// KWSC_AUDIT environment variable is set to a non-empty, non-"0" value.
/// Explicit calls into the auditor work regardless of this gate.
bool AuditEnabled();

}  // namespace audit
}  // namespace kwsc

#endif  // KWSC_AUDIT_AUDIT_H_
