// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// AuditAccess: the auditor's window into index internals.
//
// The indexes keep their node arenas and directories private — queries never
// need them — but the auditor must walk raw nodes, and the corruption
// injection tests must *mutate* them to prove each violation class is
// detected. Rather than widening every public API with debug accessors, each
// index befriends this single struct; everything audit-related funnels
// through here, so a grep for AuditAccess finds every spot where
// encapsulation is deliberately pierced.
//
// Accessors are templates: they instantiate only when called, so one shim
// serves every index family despite their differing internals (the member
// naming is uniform across the library: nodes_, options_, points_, ...).

#ifndef KWSC_AUDIT_AUDIT_ACCESS_H_
#define KWSC_AUDIT_AUDIT_ACCESS_H_

namespace kwsc {
namespace audit {

struct AuditAccess {
  // ---- Read-only views (auditor) ----

  template <typename Index>
  static const auto& Nodes(const Index& index) {
    return index.nodes_;
  }

  template <typename Index>
  static const auto& Options(const Index& index) {
    return index.options_;
  }

  /// The corpus the index was built over (pointer, as stored).
  template <typename Index>
  static const auto* CorpusOf(const Index& index) {
    return index.corpus_;
  }

  /// Original-space points (SpKwBoxIndex, DimRedOrpKwIndex).
  template <typename Index>
  static const auto& Points(const Index& index) {
    return index.points_;
  }

  /// Rank-space images of the objects (OrpKwIndex).
  template <typename Index>
  static const auto& RankPoints(const Index& index) {
    return index.rank_points_;
  }

  /// The rank-space reduction tables (OrpKwIndex).
  template <typename Index>
  static const auto& RankSpaceOf(const Index& index) {
    return index.rank_;
  }

  /// The lifted underlying engine (RrKwIndex).
  template <typename Index>
  static const auto& Engine(const Index& index) {
    return *index.engine_;
  }

  /// Point-id permutation (KdTree).
  template <typename Index>
  static const auto& Ids(const Index& index) {
    return index.ids_;
  }

  template <typename Tree>
  static const auto& Intervals(const Tree& tree) {
    return tree.intervals_;
  }

  template <typename Tree>
  static auto Root(const Tree& tree) {
    return tree.root_;
  }

  // NodeDirectory internals (the public API exposes lookups, not iteration).

  template <typename Dir>
  static const auto& Large(const Dir& dir) {
    return dir.large_;
  }

  template <typename Dir>
  static const auto& ChildTuples(const Dir& dir) {
    return dir.child_tuples_;
  }

  template <typename Dir>
  static const auto& Materialized(const Dir& dir) {
    return dir.materialized_;
  }

  // ---- Mutable views (corruption-injection tests only) ----

  template <typename Index>
  static auto& MutableNodes(Index* index) {
    return index->nodes_;
  }

  template <typename Dir>
  static auto& MutableWeight(Dir* dir) {
    return dir->weight_;
  }

  template <typename Dir>
  static auto& MutablePivots(Dir* dir) {
    return dir->pivots_;
  }

  template <typename Dir>
  static auto& MutableMaterialized(Dir* dir) {
    return dir->materialized_;
  }

  template <typename Dir>
  static auto& MutableChildTuples(Dir* dir) {
    return dir->child_tuples_;
  }

  // ---- Detection probes (core/contracts.h) ----
  //
  // The accessors above deduce their return type from the function body, so
  // naming them in a requires-expression for a type *without* the member is
  // a hard error, not a failed constraint. These probes move the member
  // access into the declared return type, where substitution failure is in
  // the immediate context: `requires { AuditAccess::NodesProbe(index); }`
  // is cleanly false for an unauditable type. Friendship covers the return
  // type, so the probes see the same private members the accessors do.

  template <typename Index>
  static auto NodesProbe(const Index& index) -> decltype((index.nodes_)) {
    return index.nodes_;
  }

  template <typename Index>
  static auto OptionsProbe(const Index& index) -> decltype((index.options_)) {
    return index.options_;
  }

  template <typename Index>
  static auto EngineProbe(const Index& index) -> decltype((*index.engine_)) {
    return *index.engine_;
  }
};

}  // namespace audit
}  // namespace kwsc

#endif  // KWSC_AUDIT_AUDIT_ACCESS_H_
