// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (workload generators, hash seeds,
// randomized tests) draws from Rng so that runs are reproducible from a single
// 64-bit seed. The generator is xoshiro256++, seeded via SplitMix64, which is
// the standard recommendation for seeding xoshiro-family generators.

#ifndef KWSC_COMMON_RANDOM_H_
#define KWSC_COMMON_RANDOM_H_

#include <cstdint>

#include "common/macros.h"

namespace kwsc {

/// SplitMix64 step; also useful as a cheap 64-bit mixing function.
uint64_t SplitMix64(uint64_t* state);

/// Mixes a 64-bit value through the SplitMix64 finalizer (stateless).
uint64_t Mix64(uint64_t x);

/// xoshiro256++ pseudo-random generator with convenience sampling helpers.
///
/// Not thread-safe; create one Rng per thread. Satisfies the subset of the
/// UniformRandomBitGenerator requirements the library needs.
class Rng {
 public:
  using result_type = uint64_t;

  /// Creates a generator whose full state is derived from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p = 0.5);

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian();

 private:
  uint64_t s_[4];
};

}  // namespace kwsc

#endif  // KWSC_COMMON_RANDOM_H_
