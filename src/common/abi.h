// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// ABI registration for persisted and wire structs (DESIGN.md §5h).
//
// Every struct whose bytes cross a durability or process boundary — written
// through OutputArchive::Pod, laid out in a flat-arena slab, mapped back by
// FlatArenaReader, or modeled on the serve wire — must be *registered* with
// one of the macros below, in the file that defines it. Registration does
// two jobs:
//
//   1. Compile-time: static_asserts that the type is trivially copyable and
//      standard-layout, the two properties byte-reinterpretation needs.
//   2. Tooling: the KWSC_ABI_STRUCT token is the lexical marker
//      tools/kwsc_abi scans for. The analyzer extracts the registered
//      type's field list, generates a probe translation unit computing
//      offsetof/sizeof/alignof for every field, and locks the result into
//      the committed FORMATS.lock manifest; kwsc-lint's
//      abi-unregistered-struct rule demands the marker per file.
//
// The alias each registration introduces (`KwscAbi_<name>`) is what the
// generated probe names the type by, so nested and template-instantiated
// types (e.g. OrpKwIndex<2>::FlatRoot) register through the _AS forms
// under a flat manifest name.
//
// Padding: registered structs are asserted padding-free by the probe (the
// field sizes must sum to sizeof). Types with deliberate interior padding —
// persisted only through memset-zeroed images — use the _PADDED_AS form,
// which skips the sum assert; the probe still records every padding run in
// the manifest, so a *changed* gap is still a locked-layout diff.

#ifndef KWSC_COMMON_ABI_H_
#define KWSC_COMMON_ABI_H_

#include <bit>
#include <type_traits>

/// Registers a namespace-scope struct under its own name.
#define KWSC_ABI_STRUCT(name) KWSC_ABI_STRUCT_AS(name, name)

/// Registers a nested or template-instantiated type under the manifest name
/// `alias` (the variadic tail is the type, which may contain commas).
#define KWSC_ABI_STRUCT_AS(alias, ...)                                       \
  using KwscAbi_##alias = __VA_ARGS__;                                       \
  static_assert(std::is_trivially_copyable_v<KwscAbi_##alias>,               \
                #alias " must be trivially copyable to cross an ABI "        \
                       "boundary");                                          \
  static_assert(std::is_standard_layout_v<KwscAbi_##alias>,                  \
                #alias " must be standard-layout for stable offsetof")

/// Like KWSC_ABI_STRUCT_AS, but the type is allowed interior padding (it is
/// only ever persisted from a memset-zeroed image, e.g.
/// PersistedFrameworkOptions). The probe records the padding runs instead of
/// asserting there are none.
#define KWSC_ABI_STRUCT_PADDED_AS(alias, ...)                                \
  KWSC_ABI_STRUCT_AS(alias, __VA_ARGS__)

namespace kwsc {

/// Both the v1 stream archives and the v2 flat containers write host-endian
/// bytes; the formats are defined as little-endian on disk. Refuse to build
/// on exotic hosts instead of silently writing byte-swapped archives.
static_assert(std::endian::native == std::endian::little,
              "kwsc on-disk formats are little-endian; big-endian hosts "
              "would need byte-swapping shims in serialize.h/flat_arena.h");

}  // namespace kwsc

#endif  // KWSC_COMMON_ABI_H_
