// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Clang Thread Safety Analysis annotations.
//
// These macros attach compile-time locking contracts to types, members, and
// functions: which mutex guards which field, which capability a function
// requires, acquires, releases, or must not hold. Under clang with
// -Wthread-safety (the default and CI configuration for clang builds, as an
// error under KWSC_WERROR) a violated contract is a build break; under gcc —
// which has no thread-safety analysis — every macro expands to nothing, so
// the annotated tree stays portable. The blocking clang job in CI is what
// gives the annotations teeth regardless of the local toolchain.
//
// The annotation vocabulary follows the Clang TSA documentation (and the
// convention popularized by abseil's thread_annotations.h), prefixed KWSC_
// so kwsc-lint and grep can find every contract site:
//
//   KWSC_CAPABILITY("mutex")   — the type is a lockable capability
//   KWSC_SCOPED_CAPABILITY     — RAII type that acquires/releases in
//                                ctor/dtor (MutexLock)
//   KWSC_GUARDED_BY(mu)        — field may only be read/written with mu held
//   KWSC_PT_GUARDED_BY(mu)     — pointee (not the pointer) guarded by mu
//   KWSC_REQUIRES(mu)          — caller must hold mu
//   KWSC_ACQUIRE(mu)/KWSC_RELEASE(mu) — function takes / drops mu
//   KWSC_TRY_ACQUIRE(ok, mu)   — conditional acquire, `ok` on success
//   KWSC_EXCLUDES(mu)          — caller must NOT hold mu (anti-deadlock)
//   KWSC_ASSERT_CAPABILITY(mu) — runtime-checked "mu is held here"
//   KWSC_RETURN_CAPABILITY(mu) — accessor returning the capability
//   KWSC_NO_THREAD_SAFETY_ANALYSIS — opt a function body out (rare; every
//                                use needs a comment saying why)
//
// Annotation conventions for this codebase are documented in DESIGN.md §5g
// ("Concurrency contracts"); kwsc-lint's concurrency-unguarded-mutex rule
// enforces that every Mutex member participates in at least one annotation.

#ifndef KWSC_COMMON_THREAD_ANNOTATIONS_H_
#define KWSC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define KWSC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define KWSC_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

#define KWSC_CAPABILITY(x) KWSC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define KWSC_SCOPED_CAPABILITY KWSC_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define KWSC_GUARDED_BY(x) KWSC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define KWSC_PT_GUARDED_BY(x) KWSC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define KWSC_ACQUIRED_BEFORE(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define KWSC_ACQUIRED_AFTER(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define KWSC_REQUIRES(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define KWSC_REQUIRES_SHARED(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define KWSC_ACQUIRE(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define KWSC_ACQUIRE_SHARED(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define KWSC_RELEASE(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define KWSC_RELEASE_SHARED(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define KWSC_TRY_ACQUIRE(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define KWSC_EXCLUDES(...) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define KWSC_ASSERT_CAPABILITY(x) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define KWSC_RETURN_CAPABILITY(x) \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define KWSC_NO_THREAD_SAFETY_ANALYSIS \
  KWSC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // KWSC_COMMON_THREAD_ANNOTATIONS_H_
