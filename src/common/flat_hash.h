// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Minimal open-addressing hash containers for integral keys.
//
// The paper's secondary structures T_u assume perfect hashing so that "is
// keyword w large at u" and "is this k-tuple non-empty" resolve in O(1).
// We substitute linear-probing tables with power-of-two capacities and a
// strong 64-bit mixer, which gives O(1) expected probes (see DESIGN.md,
// substitution 4). The containers are insert-only — the indexes are static —
// which keeps the implementation free of tombstones.

#ifndef KWSC_COMMON_FLAT_HASH_H_
#define KWSC_COMMON_FLAT_HASH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace kwsc {

namespace internal_flat_hash {

/// Smallest power of two >= max(8, 2 * n), so load factor stays <= 0.5 after
/// reserving for n elements.
inline size_t TableCapacityFor(size_t n) {
  size_t cap = 8;
  while (cap < 2 * n) cap <<= 1;
  return cap;
}

/// Widens a key to 64 bits without sign-extension: a negative signed key
/// must hash by its bit pattern, not by its sign-extended value.
template <typename Key>
uint64_t KeyBits(Key key) {
  return static_cast<uint64_t>(
      static_cast<std::make_unsigned_t<Key>>(key));
}

}  // namespace internal_flat_hash

/// Insert-only hash map from an integral key to a value.
template <typename Key, typename Value>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  /// Pre-sizes the table for `n` insertions (optional but avoids rehashing).
  void Reserve(size_t n) {
    size_t cap = internal_flat_hash::TableCapacityFor(n);
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Inserts `key` if absent and returns a reference to its value slot.
  Value& operator[](Key key) {
    if (KWSC_PREDICT_FALSE(slots_.empty() || 2 * (size_ + 1) > slots_.size())) {
      Rehash(internal_flat_hash::TableCapacityFor(size_ + 1));
    }
    size_t i = ProbeStart(key);
    while (used_[i]) {
      if (slots_[i].first == key) return slots_[i].second;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i] = {key, Value{}};
    ++size_;
    return slots_[i].second;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  const Value* Find(Key key) const {
    if (slots_.empty()) return nullptr;
    size_t i = ProbeStart(key);
    while (used_[i]) {
      if (slots_[i].first == key) return &slots_[i].second;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  Value* Find(Key key) {
    return const_cast<Value*>(static_cast<const FlatHashMap*>(this)->Find(key));
  }

  bool Contains(Key key) const { return Find(key) != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all entries. Keeps the allocated capacity when occupancy is
  /// reasonable, but shrinks the probe range when the last batch filled less
  /// than 1/8 of the table: a scratch table reused across batches of
  /// shrinking size (e.g. one DirectoryBuilder walking a whole kd-tree)
  /// would otherwise keep its largest batch's capacity forever, making every
  /// later Clear and ForEach pay O(max capacity) instead of O(batch).
  void Clear() {
    if (slots_.size() > 64 && 8 * size_ < slots_.size()) {
      const size_t cap = internal_flat_hash::TableCapacityFor(2 * size_);
      slots_.assign(cap, {});
      used_.assign(cap, 0);
      mask_ = cap - 1;
      size_ = 0;
      return;
    }
    std::fill(used_.begin(), used_.end(), 0);
    size_ = 0;
  }

  /// Invokes `fn(key, value)` for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

  /// Heap bytes held by the table (for the space benchmarks).
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(std::pair<Key, Value>) + used_.capacity();
  }

 private:
  size_t ProbeStart(Key key) const {
    return static_cast<size_t>(Mix64(internal_flat_hash::KeyBits(key))) &
           mask_;
  }

  void Rehash(size_t new_cap) {
    std::vector<std::pair<Key, Value>> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(new_cap, {});
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      size_t j = ProbeStart(old_slots[i].first);
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
      ++size_;
    }
  }

  std::vector<std::pair<Key, Value>> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Insert-only hash set of integral keys.
template <typename Key>
class FlatHashSet {
 public:
  FlatHashSet() = default;

  void Reserve(size_t n) {
    size_t cap = internal_flat_hash::TableCapacityFor(n);
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Inserts `key`; returns true if it was newly added.
  bool Insert(Key key) {
    if (KWSC_PREDICT_FALSE(slots_.empty() || 2 * (size_ + 1) > slots_.size())) {
      Rehash(internal_flat_hash::TableCapacityFor(size_ + 1));
    }
    size_t i = ProbeStart(key);
    while (used_[i]) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool Contains(Key key) const {
    if (slots_.empty()) return false;
    size_t i = ProbeStart(key);
    while (used_[i]) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i]);
    }
  }

  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(Key) + used_.capacity();
  }

 private:
  size_t ProbeStart(Key key) const {
    return static_cast<size_t>(Mix64(internal_flat_hash::KeyBits(key))) &
           mask_;
  }

  void Rehash(size_t new_cap) {
    std::vector<Key> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(new_cap, Key{});
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      size_t j = ProbeStart(old_slots[i]);
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      slots_[j] = old_slots[i];
      ++size_;
    }
  }

  std::vector<Key> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace kwsc

#endif  // KWSC_COMMON_FLAT_HASH_H_
