// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Annotated synchronization primitives: Mutex, MutexLock, CondVar.
//
// Thin wrappers over the std primitives that carry the Clang Thread Safety
// Analysis contracts from common/thread_annotations.h. The wrappers exist so
// that *every* lock acquisition in the library is statically checkable:
// KWSC_GUARDED_BY fields can only be named against a KWSC_CAPABILITY type,
// and raw std::mutex has none. kwsc-lint's concurrency-raw-mutex rule bans
// the raw std types everywhere in src/ except this header, so growing a new
// locked subsystem forces the author through the annotated vocabulary.
//
// Design notes:
//  - Mutex exposes both the library spelling (Lock/Unlock/TryLock) and the
//    std BasicLockable spelling (lock/unlock) — the latter so CondVar can be
//    a std::condition_variable_any waiting directly on the annotated Mutex,
//    which keeps the wait/notify protocol inside the analysis (CondVar::Wait
//    is KWSC_REQUIRES(mu), so waiting without the lock is a build break
//    under clang).
//  - CondVar::Wait deliberately has no predicate overload: a predicate
//    lambda is analyzed as a separate function, so its reads of guarded
//    state would need their own annotations. Write the standard
//    `while (!pred) cv.Wait(&mu);` loop instead — the loop body sits in the
//    caller's scope where the analysis can see the lock is held.
//  - No timed waits and no shared (reader/writer) mode: nothing in the
//    library needs them yet, and the smaller the vocabulary the stronger
//    the lint contract. Extend alongside real uses, with annotations.

#ifndef KWSC_COMMON_MUTEX_H_
#define KWSC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace kwsc {

/// An annotated standard mutex. Non-recursive; locking a Mutex you hold is
/// UB exactly as with std::mutex (and a build break under clang TSA, which
/// is the point).
class KWSC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KWSC_ACQUIRE() { mu_.lock(); }
  void Unlock() KWSC_RELEASE() { mu_.unlock(); }
  bool TryLock() KWSC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// std BasicLockable spelling, so std::condition_variable_any (CondVar)
  /// can drop and reacquire this mutex around a wait. Same contracts.
  void lock() KWSC_ACQUIRE() { mu_.lock(); }
  void unlock() KWSC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock scope over a Mutex (the only way the library takes a lock
/// outside CondVar waits). Scoped-capability semantics: the constructor
/// acquires, the destructor releases, and clang tracks the region between
/// as "mu held".
class KWSC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) KWSC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() KWSC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A condition variable bound to the annotated Mutex. Waiting requires the
/// mutex (enforced at compile time under clang); notifications never do —
/// notify with the lock released when convenient, exactly as with the std
/// primitive.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified, reacquires `*mu`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex* mu) KWSC_REQUIRES(mu) { cv_.wait(*mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace kwsc

#endif  // KWSC_COMMON_MUTEX_H_
