// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Flat (v2) on-disk layout primitives: a 64-byte header, 64-byte-aligned
// typed slabs addressed by byte offsets, and an mmap-backed read path.
//
// The v1 stream format (common/serialize.h) deserializes every field through
// InputArchive and pointer-rebuilds the index, so cold-start costs a full
// O(index) pass plus an RSS copy. The v2 "flat" format instead lays the bulk
// payload — posting lists, pivot pools, tuple registries, rank tables — out
// as contiguous trivially-copyable slabs; loading is an mmap plus header
// validation, and queries run directly over the mapped bytes through span
// views. Offsets are relative to the container start, so containers
// concatenate: a wrapper family appends its engine's container right after
// its own (both are padded to the 64-byte alignment quantum).
//
// Container layout:
//
//   [FlatHeader: 64 bytes]  magic "KWF2", family tag, total bytes, root ref
//   [slab]* each 64-byte aligned, in writer call order
//   [root slab]             one POD with SlabRefs naming every other slab
//   (padding to a 64-byte boundary)
//
// Ownership: loaded indexes keep a shared_ptr<const MmapFile> alive, so the
// spans they hand out stay valid for the index lifetime. On platforms
// without mmap (or when mapping fails) MmapFile falls back to a 64-byte-
// aligned heap read — same bytes, same alignment guarantees, no zero-copy.

#ifndef KWSC_COMMON_FLAT_ARENA_H_
#define KWSC_COMMON_FLAT_ARENA_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/abi.h"
#include "common/macros.h"

namespace kwsc {

/// Every slab (and every container) starts on a 64-byte boundary: one cache
/// line, and a multiple of every alignof the slabs store.
inline constexpr size_t kFlatAlignment = 64;

/// Packs a four-character family tag ("KWO2", ...) into the header word.
constexpr uint32_t FlatFamilyTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/// A typed slab reference: byte offset from the container start plus element
/// count. The element type is implied by the field holding the ref.
struct SlabRef {
  uint64_t offset = 0;
  uint64_t count = 0;
};

/// The fixed-size container header. `root_offset/root_size` locate the
/// family's root POD, which in turn names every other slab via SlabRefs.
struct FlatHeader {
  char magic[4];        // "KWF2"
  uint32_t family_tag;  // FlatFamilyTag(...), per index family
  uint64_t total_bytes; // container size including this header and padding
  uint64_t root_offset;
  uint64_t root_size;
  uint64_t reserved[4];
};
static_assert(sizeof(FlatHeader) == kFlatAlignment,
              "FlatHeader must fill exactly one alignment quantum");
static_assert(std::is_trivially_copyable_v<FlatHeader>);
KWSC_ABI_STRUCT(SlabRef);
KWSC_ABI_STRUCT(FlatHeader);

// The KWF2 container is host-endian on disk and defined as little-endian
// (common/abi.h asserts the host); a mapped FlatHeader is reinterpreted in
// place, so there is no byte-swapping seam to add one later.
static_assert(std::endian::native == std::endian::little,
              "FlatHeader and every slab are mapped back without swapping");

/// Receives human-readable structural complaints from flat-layout
/// validation. Load paths pass an aborting sink (KWSC_CHECK semantics); the
/// auditor passes a sink that records AuditCheck::kFlatLayout violations.
using FlatErrorSink = std::function<void(const std::string&)>;

/// An aborting sink for load paths: any validation failure is fatal.
FlatErrorSink AbortingFlatErrorSink();

/// A read-only byte buffer backed by mmap when available, or by a 64-byte-
/// aligned heap read otherwise. Immutable after creation; loaded indexes
/// share ownership so mapped spans outlive any one handle.
class MmapFile {
 public:
  /// Maps (or reads) `path`. Returns nullptr with a message on stderr when
  /// the file cannot be opened or read.
  static std::shared_ptr<const MmapFile> Open(const std::string& path);

  /// Wraps in-memory bytes (tests, flat_convert): copies into a 64-byte-
  /// aligned heap buffer so alignment checks behave exactly as on disk.
  static std::shared_ptr<const MmapFile> FromBytes(std::string bytes);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when the bytes are an actual mmap (zero-copy); false on the heap
  /// fallback. Feeds the load-path gauges.
  bool used_mmap() const { return used_mmap_; }

 protected:
  // Only the factory functions create instances (via a builder subclass in
  // the implementation file).
  MmapFile() = default;

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool used_mmap_ = false;
};

/// Serializes one flat container: append slabs, set the root, stream out.
/// Deterministic: byte content depends only on the call sequence (padding is
/// zeroed), so flat containers obey the same byte-identity discipline the
/// auditor enforces for v1 archives.
class FlatArenaWriter {
 public:
  explicit FlatArenaWriter(uint32_t family_tag) : family_tag_(family_tag) {
    buf_.assign(kFlatAlignment, '\0');  // header placeholder
  }

  /// Appends a 64-byte-aligned slab of trivially-copyable elements and
  /// returns its reference. An empty span yields a count-0 ref.
  template <typename T>
  SlabRef Slab(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "flat slabs hold trivially-copyable elements only");
    KWSC_CHECK(!finished_);
    Align();
    SlabRef ref{buf_.size(), items.size()};
    if (!items.empty()) {
      buf_.append(reinterpret_cast<const char*>(items.data()),
                  items.size() * sizeof(T));
    }
    return ref;
  }

  /// Writes the family's root POD (a struct of SlabRefs plus scalars) and
  /// records it in the header. Call exactly once, after every Slab call.
  template <typename T>
  void Root(const T& pod) {
    static_assert(std::is_trivially_copyable_v<T>);
    KWSC_CHECK(!finished_ && root_size_ == 0);
    const SlabRef ref = Slab(std::span<const T>(&pod, 1));
    root_offset_ = ref.offset;
    root_size_ = sizeof(T);
  }

  /// Finalizes (pads to the alignment quantum, fills the header) and
  /// returns the container bytes. Idempotent after the first call.
  const std::string& Finish();

  /// Container size after finalization (calls Finish()).
  size_t total_bytes() { return Finish().size(); }

  /// Finalizes and streams the container to `out`.
  void WriteTo(std::ostream* out);

 private:
  void Align() {
    const size_t rem = buf_.size() % kFlatAlignment;
    if (rem != 0) buf_.append(kFlatAlignment - rem, '\0');
  }

  std::string buf_;
  uint32_t family_tag_;
  uint64_t root_offset_ = 0;
  uint64_t root_size_ = 0;
  bool finished_ = false;
};

/// Validates and reads one flat container inside an MmapFile. Construction
/// aborts on a malformed header (load path); use Validate() for the
/// non-aborting variant (auditor). Slab accessors bound- and alignment-check
/// every reference before handing out a span over the mapped bytes.
class FlatArenaReader {
 public:
  /// Header-level validation: alignment, magic, family tag, size bounds,
  /// root slab sanity. Reports every problem through `sink`; returns true
  /// when the container header is well-formed.
  static bool Validate(const MmapFile& file, uint64_t offset,
                       uint32_t expected_tag, const FlatErrorSink& sink);

  /// Aborts (KWSC_CHECK semantics) unless Validate() would succeed.
  FlatArenaReader(const MmapFile& file, uint64_t offset,
                  uint32_t expected_tag);

  /// True when `ref`, read as a slab of T, lies inside the container with
  /// correct alignment. Count-0 refs are always valid.
  template <typename T>
  bool SlabOk(SlabRef ref) const {
    if (ref.count == 0) return true;
    if (ref.offset % kFlatAlignment != 0) return false;
    if (ref.offset < kFlatAlignment || ref.offset >= total_bytes_)
      return false;
    const uint64_t max_count = (total_bytes_ - ref.offset) / sizeof(T);
    return ref.count <= max_count;
  }

  /// The slab as a typed span over the mapped bytes. Aborts when !SlabOk.
  template <typename T>
  std::span<const T> Slab(SlabRef ref) const {
    static_assert(std::is_trivially_copyable_v<T>);
    KWSC_CHECK_MSG(SlabOk<T>(ref),
                   "flat slab out of bounds (offset %llu count %llu elem %zu "
                   "container %llu)",
                   static_cast<unsigned long long>(ref.offset),
                   static_cast<unsigned long long>(ref.count), sizeof(T),
                   static_cast<unsigned long long>(total_bytes_));
    if (ref.count == 0) return {};
    return std::span<const T>(
        reinterpret_cast<const T*>(base_ + ref.offset),
        static_cast<size_t>(ref.count));
  }

  /// True when the stored root slab is exactly one T (non-aborting check
  /// for validation passes).
  template <typename T>
  bool RootOk() const {
    return root_size_ == sizeof(T);
  }

  /// The family root POD. Aborts when the stored root size does not match
  /// sizeof(T) — catches loading a container with the wrong template
  /// instantiation (dimension or scalar mismatch).
  template <typename T>
  const T& Root() const {
    static_assert(std::is_trivially_copyable_v<T>);
    KWSC_CHECK_MSG(root_size_ == sizeof(T),
                   "flat root size mismatch (stored %llu, expected %zu)",
                   static_cast<unsigned long long>(root_size_), sizeof(T));
    return *reinterpret_cast<const T*>(base_ + root_offset_);
  }

  uint64_t total_bytes() const { return total_bytes_; }
  uint32_t family_tag() const { return family_tag_; }

 private:
  const std::byte* base_ = nullptr;
  uint64_t total_bytes_ = 0;
  uint32_t family_tag_ = 0;
  uint64_t root_offset_ = 0;
  uint64_t root_size_ = 0;
};

/// A container that owns a vector in the pointer-built path and merely views
/// a mapped slab in the flat path. Read-side API mirrors a const vector, so
/// query code is mode-agnostic. Moves are safe (vector moves keep the heap
/// buffer, so a view into the owned buffer survives); copies re-point the
/// view when it aliased the owned buffer.
template <typename T>
class OwnedSpan {
 public:
  OwnedSpan() = default;

  OwnedSpan(OwnedSpan&&) noexcept = default;
  OwnedSpan& operator=(OwnedSpan&&) noexcept = default;
  OwnedSpan(const OwnedSpan& other) { *this = other; }
  OwnedSpan& operator=(const OwnedSpan& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    view_ = other.owns() ? std::span<const T>(owned_) : other.view_;
    return *this;
  }

  /// Takes ownership of `v` (pointer-built path).
  void Assign(std::vector<T> v) {
    owned_ = std::move(v);
    view_ = owned_;
  }

  /// Views externally-owned bytes (flat path; the index keeps the backing
  /// MmapFile alive).
  void Attach(std::span<const T> s) {
    owned_.clear();
    owned_.shrink_to_fit();
    view_ = s;
  }

  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }
  const T& operator[](size_t i) const { return view_[i]; }
  const T* data() const { return view_.data(); }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }
  std::span<const T> view() const { return view_; }

  bool owns() const { return !owned_.empty(); }

  /// Heap bytes charged to this container (0 when viewing mapped bytes —
  /// that is the point of the flat layout).
  size_t MemoryBytes() const { return owned_.capacity() * sizeof(T); }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
};

}  // namespace kwsc

#endif  // KWSC_COMMON_FLAT_ARENA_H_
