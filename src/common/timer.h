// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Wall-clock timing for the benchmark harness.

#ifndef KWSC_COMMON_TIMER_H_
#define KWSC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kwsc {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kwsc

#endif  // KWSC_COMMON_TIMER_H_
