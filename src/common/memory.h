// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Memory accounting helpers.
//
// Every index in the library exposes MemoryBytes() so the space claims of
// Table 1 (O(N), O(N (loglog N)^{d-2}), ...) can be measured directly by
// bench_space. These helpers make the per-container arithmetic uniform.

#ifndef KWSC_COMMON_MEMORY_H_
#define KWSC_COMMON_MEMORY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace kwsc {

/// Heap bytes held by a vector's buffer (capacity, not size, since capacity
/// is what the allocator charged us for).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Heap bytes of a vector of vectors, including the inner buffers.
template <typename T>
size_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const auto& inner : v) total += inner.capacity() * sizeof(T);
  return total;
}

/// Human-readable byte count, e.g. "3.2 MiB".
std::string FormatBytes(size_t bytes);

/// Peak resident set size of this process in bytes (Linux: VmHWM from
/// /proc/self/status). Returns 0 where the platform offers no cheap probe.
/// Feeds the observability registry so BENCH_*.json records the memory
/// high-water mark alongside build wall time.
size_t PeakRssBytes();

/// Current resident set size in bytes (Linux: VmRSS from /proc/self/status).
/// Returns 0 where the platform offers no cheap probe. Sampled before and
/// after an index load so BENCH_load.json reports a per-load RSS delta
/// rather than a cumulative high-water mark.
size_t CurrentRssBytes();

}  // namespace kwsc

#endif  // KWSC_COMMON_MEMORY_H_
