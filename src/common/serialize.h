// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Minimal binary archives for persisting indexes.
//
// Indexes in this library are static: build once, query forever. Building,
// however, is O(N polylog N) with real constants (keyword counting at every
// node), so a downstream user wants to build once and reload from disk.
// The format is little-endian PODs with explicit sizes, a magic tag and a
// version per top-level object; readers abort on malformed input via
// KWSC_CHECK (the archives are trusted local files, not a network surface).

#ifndef KWSC_COMMON_SERIALIZE_H_
#define KWSC_COMMON_SERIALIZE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/macros.h"

namespace kwsc {

// Pod/Vec write host bytes straight into the stream; the format's stated
// little-endian layout is only true because the host is. Fail the build on
// big-endian targets instead of writing archives other hosts cannot read.
static_assert(std::endian::native == std::endian::little,
              "v1 archives are little-endian on disk; this host would need "
              "byte-swapping Pod/Vec shims");

/// Buffered binary writer. Per-value ostream::write calls for Pod dominate
/// save time on directory-heavy indexes (one virtual-dispatching write per
/// scalar), so values coalesce into an internal buffer flushed when it
/// fills, in ok(), in Flush(), and in the destructor. The byte stream is
/// identical to the unbuffered writer's (serialize_test asserts this).
///
/// Interleaving hazard: anything that writes to the same raw stream while an
/// OutputArchive is live (e.g. a nested `engine_->Save(out)` that builds its
/// own archive) must be preceded by Flush(), or the buffered bytes land
/// after the nested ones.
class OutputArchive {
 public:
  explicit OutputArchive(std::ostream* out) : out_(out) {
    KWSC_CHECK(out != nullptr);
    buffer_.reserve(kFlushThreshold);
  }

  ~OutputArchive() { Flush(); }

  OutputArchive(const OutputArchive&) = delete;
  OutputArchive& operator=(const OutputArchive&) = delete;

  /// Writes a 4-byte magic tag plus a version number.
  void Magic(std::string_view tag, uint32_t version) {
    KWSC_CHECK(tag.size() == 4);
    Append(tag.data(), 4);
    Pod(version);
  }

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Append(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void Vec(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(v.size());
    if (!v.empty()) {
      Append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
    }
  }

  template <typename T>
  void Vec(const std::vector<T>& v) {
    Vec(std::span<const T>(v));
  }

  /// Drains the coalescing buffer to the stream. Required before any write
  /// to the underlying stream that bypasses this archive.
  void Flush() {
    if (!buffer_.empty()) {
      out_->write(buffer_.data(),
                  static_cast<std::streamsize>(buffer_.size()));
      buffer_.clear();
    }
  }

  bool ok() {
    Flush();
    return out_->good();
  }

 private:
  // Large enough that bulk Vec payloads rarely split, small enough to stay
  // cache-resident while Pod-heavy directory saves fill it.
  static constexpr size_t kFlushThreshold = size_t{1} << 16;

  void Append(const char* data, size_t size) {
    if (buffer_.size() + size > kFlushThreshold) Flush();
    if (size > kFlushThreshold) {
      out_->write(data, static_cast<std::streamsize>(size));
      return;
    }
    buffer_.append(data, size);
  }

  std::ostream* out_;
  std::string buffer_;
};

class InputArchive {
 public:
  explicit InputArchive(std::istream* in) : in_(in) {
    KWSC_CHECK(in != nullptr);
  }

  /// Reads and validates a magic tag; returns the stored version.
  uint32_t Magic(std::string_view tag) {
    KWSC_CHECK(tag.size() == 4);
    char buf[4];
    in_->read(buf, 4);
    KWSC_CHECK_MSG(in_->good() && std::string_view(buf, 4) == tag,
                   "archive magic mismatch (want %.4s)", tag.data());
    return Pod<uint32_t>();
  }

  template <typename T>
  T Pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_->read(reinterpret_cast<char*>(&value), sizeof(T));
    KWSC_CHECK_MSG(in_->good(), "truncated archive");
    return value;
  }

  template <typename T>
  std::vector<T> Vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t size = Pod<uint64_t>();
    // Guard against absurd sizes from corrupt input before allocating.
    KWSC_CHECK_MSG(size < (uint64_t{1} << 40), "implausible vector size");
    // A corrupt (or truncated) archive can declare a length far beyond what
    // the stream holds; clamp against the actual remaining bytes so the
    // failure is this check, not a giant allocation followed by a short
    // read. Division keeps size * sizeof(T) from overflowing first.
    KWSC_CHECK_MSG(size <= RemainingBytes() / sizeof(T),
                   "vector length exceeds remaining archive bytes");
    std::vector<T> v(size);
    if (size > 0) {
      in_->read(reinterpret_cast<char*>(v.data()),
                static_cast<std::streamsize>(size * sizeof(T)));
      KWSC_CHECK_MSG(in_->good(), "truncated archive");
    }
    return v;
  }

  bool ok() const { return in_->good(); }

 private:
  /// Bytes between the read position and end-of-stream, or UINT64_MAX when
  /// the stream is not seekable (a pipe falls back to the plausibility guard
  /// plus the post-read truncation check).
  uint64_t RemainingBytes() {
    const std::istream::pos_type pos = in_->tellg();
    if (pos == std::istream::pos_type(-1)) return UINT64_MAX;
    in_->seekg(0, std::ios::end);
    const std::istream::pos_type end = in_->tellg();
    in_->seekg(pos);
    if (end == std::istream::pos_type(-1) || end < pos) return UINT64_MAX;
    return static_cast<uint64_t>(end - pos);
  }

  std::istream* in_;
};

}  // namespace kwsc

#endif  // KWSC_COMMON_SERIALIZE_H_
