// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Sorted posting-list intersection kernels.
//
// Posting lists are sorted uint32 object-id arrays (text/inverted_index.h),
// and in the v2 flat layout they are mmapped slabs read straight off disk, so
// the intersection inner loop is the hottest pure-keyword query path. Three
// kernels share one contract (strictly increasing inputs, increasing output):
//
//   kScalar  — galloping merge: iterate the shorter list, doubling-search the
//              longer. The portable fallback and the asymptotic winner when
//              the lists are wildly imbalanced.
//   kAvx2    — blocked compare: skip the longer list 8 lanes at a time, then
//              test a broadcast candidate against a full 8-lane block with
//              one compare+movemask. Wins when the lists are comparable in
//              length (the dense-block regime where galloping degrades to a
//              branchy linear merge).
//   kAuto    — kAvx2 when the binary and the CPU both support it, else
//              kScalar. Per-call imbalance heuristic inside the AVX2 kernel
//              still falls back to galloping for skewed pairs.
//
// AVX2 code is compiled when the translation unit is already built with
// -mavx2 (`__AVX2__`), or on x86-64 GCC/Clang via a per-function target
// attribute plus a runtime CPU check — so the default (scalar-flagged) build
// still dispatches to AVX2 on capable hardware, and CI can force the scalar
// kernel to cover both paths.

#ifndef KWSC_COMMON_SIMD_INTERSECT_H_
#define KWSC_COMMON_SIMD_INTERSECT_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "text/document.h"

#if defined(__AVX2__)
#define KWSC_HAVE_AVX2 1
#define KWSC_AVX2_TARGET
#include <immintrin.h>
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KWSC_HAVE_AVX2 1
#define KWSC_AVX2_TARGET __attribute__((target("avx2")))
#include <immintrin.h>
#endif

namespace kwsc {

enum class IntersectKernel : uint8_t {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
};

/// Galloping lower_bound: first position in [begin, end) with value >=
/// target, assuming the answer is usually near `begin`.
inline const ObjectId* GallopLowerBound(const ObjectId* begin,
                                        const ObjectId* end, ObjectId target) {
  size_t step = 1;
  const ObjectId* probe = begin;
  while (probe < end && *probe < target) {
    begin = probe + 1;
    probe = begin + step;
    step <<= 1;
  }
  if (probe > end) probe = end;
  return std::lower_bound(begin, probe, target);
}

namespace intersect_internal {

inline void IntersectScalar(std::span<const ObjectId> a,
                            std::span<const ObjectId> b,
                            std::vector<ObjectId>* out) {
  const ObjectId* cursor = b.data();
  const ObjectId* const end = b.data() + b.size();
  for (ObjectId candidate : a) {
    cursor = GallopLowerBound(cursor, end, candidate);
    if (cursor == end) return;
    if (*cursor == candidate) out->push_back(candidate);
  }
}

#if defined(KWSC_HAVE_AVX2)
// Above this length ratio galloping beats blocked skipping, so the AVX2
// kernel hands skewed pairs back to the scalar path.
inline constexpr size_t kAvx2SkewCutoff = 32;

KWSC_AVX2_TARGET inline void IntersectAvx2(std::span<const ObjectId> a,
                                           std::span<const ObjectId> b,
                                           std::vector<ObjectId>* out) {
  if (b.size() / (a.size() + 1) >= kAvx2SkewCutoff) {
    IntersectScalar(a, b, out);
    return;
  }
  size_t j = 0;
  for (ObjectId candidate : a) {
    // Skip whole 8-lane blocks of b strictly below the candidate. One scalar
    // compare per 32 bytes — the blocked analogue of the galloping phase.
    while (j + 8 <= b.size() && b[j + 7] < candidate) j += 8;
    if (j + 8 <= b.size()) {
      const __m256i vcand = _mm256_set1_epi32(static_cast<int>(candidate));
      const __m256i block = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b.data() + j));
      const __m256i eq = _mm256_cmpeq_epi32(block, vcand);
      if (_mm256_movemask_epi8(eq) != 0) out->push_back(candidate);
      // j stays on this block: the next candidate may still live in it.
    } else {
      while (j < b.size() && b[j] < candidate) ++j;
      if (j == b.size()) return;
      if (b[j] == candidate) out->push_back(candidate);
    }
  }
}

inline bool CpuHasAvx2() {
#if defined(__AVX2__)
  return true;  // The whole binary already assumes it.
#else
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#endif
}
#else
inline bool CpuHasAvx2() { return false; }
#endif  // KWSC_HAVE_AVX2

}  // namespace intersect_internal

/// The kernel kAuto resolves to on this binary + CPU.
inline IntersectKernel ResolveIntersectKernel(IntersectKernel kernel) {
  if (kernel != IntersectKernel::kAuto) return kernel;
  return intersect_internal::CpuHasAvx2() ? IntersectKernel::kAvx2
                                          : IntersectKernel::kScalar;
}

/// Appends the intersection of two strictly increasing lists to `*out`
/// (which is not cleared). kAvx2 on a binary/CPU without AVX2 silently runs
/// the scalar kernel rather than faulting.
inline void IntersectSorted(std::span<const ObjectId> a,
                            std::span<const ObjectId> b,
                            std::vector<ObjectId>* out,
                            IntersectKernel kernel = IntersectKernel::kAuto) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return;
  kernel = ResolveIntersectKernel(kernel);
#if defined(KWSC_HAVE_AVX2)
  if (kernel == IntersectKernel::kAvx2 && intersect_internal::CpuHasAvx2()) {
    intersect_internal::IntersectAvx2(a, b, out);
    return;
  }
#endif
  intersect_internal::IntersectScalar(a, b, out);
}

/// Intersection of k strictly increasing lists: pairwise, shortest-first, so
/// the running intersection (never longer than the shortest input) is always
/// the probe side.
inline std::vector<ObjectId> IntersectSortedLists(
    std::span<const std::span<const ObjectId>> lists,
    IntersectKernel kernel = IntersectKernel::kAuto) {
  std::vector<ObjectId> result;
  if (lists.empty()) return result;
  std::vector<std::span<const ObjectId>> ordered(lists.begin(), lists.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  result.assign(ordered.front().begin(), ordered.front().end());
  std::vector<ObjectId> next;
  for (size_t i = 1; i < ordered.size() && !result.empty(); ++i) {
    next.clear();
    next.reserve(result.size());
    IntersectSorted(result, ordered[i], &next, kernel);
    result.swap(next);
  }
  return result;
}

}  // namespace kwsc

#endif  // KWSC_COMMON_SIMD_INTERSECT_H_
