// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// A dependency-light task pool for fork/join parallelism.
//
// The library needs parallelism in exactly two shapes: recursive fork/join
// during index construction (subtrees build independently, then join), and
// flat sharding of query batches (core/query_engine.h). Both are served by a
// fixed set of workers pulling from one FIFO queue — no work stealing, no
// per-thread deques. The subtle requirement is nesting: a construction task
// forks child tasks onto the *same* pool and waits for them, so a blocking
// join could deadlock once every worker is a waiter. TaskGroup::Wait avoids
// that by helping: while its tasks are outstanding it pops and runs queued
// tasks (anyone's) instead of sleeping, so some thread always makes progress.
//
// Indexes are immutable after construction (the contract exercised by
// tests/concurrency_test.cc), which is what makes the query-side sharding
// synchronization-free.
//
// Locking contract (checked by clang -Wthread-safety, see
// common/thread_annotations.h): the pool's queue and stop flag are guarded
// by mu_; TaskGroup's pending count is an atomic and its mutex exists only
// to make the final-decrement/notify handoff race-free against a waiter
// destroying the group. Raw std::thread is confined to this file (enforced
// by kwsc-lint's concurrency-raw-thread rule).

#ifndef KWSC_COMMON_THREAD_POOL_H_
#define KWSC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace kwsc {

class TaskGroup;

/// Fixed set of worker threads over a FIFO task queue. Tasks are submitted
/// through a TaskGroup, never directly; the pool itself only runs them.
class ThreadPool {
 public:
  /// Spawns `num_workers` >= 1 threads. The caller participates too (see
  /// TaskGroup::Wait), so a pool for T-way parallelism wants T - 1 workers.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Threads that can make progress simultaneously: the workers plus the
  /// caller helping from TaskGroup::Wait.
  int parallelism() const { return num_workers() + 1; }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void Enqueue(Task task) KWSC_EXCLUDES(mu_);

  /// Pops and runs one queued task; returns false if the queue was empty.
  bool RunOneTask() KWSC_EXCLUDES(mu_);

  void WorkerLoop() KWSC_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<Task> queue_ KWSC_GUARDED_BY(mu_);
  bool stopping_ KWSC_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// A fork/join scope: Run() submits tasks, Wait() blocks until every task
/// submitted through this group has finished. Wait() helps drain the pool's
/// queue while waiting, so nested groups (a task forking its own subtasks)
/// cannot deadlock. The destructor waits, so a group never outlives its
/// outstanding tasks — references captured by the tasks may safely point
/// into the enclosing frame.
///
/// A null pool makes Run() execute the task inline, letting callers use one
/// code path for sequential and parallel execution.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn) KWSC_EXCLUDES(mu_);
  void Wait() KWSC_EXCLUDES(mu_);

 private:
  friend class ThreadPool;
  void OnTaskDone() KWSC_EXCLUDES(mu_);

  ThreadPool* pool_;
  /// Outstanding task count. Atomic rather than guarded: Run() increments
  /// from the submitting thread without the lock; the decrement and the
  /// final notify happen under mu_ (see OnTaskDone) so a waiter cannot
  /// observe zero while the last worker still touches this group.
  std::atomic<uint64_t> pending_{0};
  Mutex mu_;
  CondVar cv_;
};

/// Resolves FrameworkOptions::num_threads: a positive request is taken
/// verbatim, 0 means one thread per hardware thread (at least 1).
int ResolveNumThreads(int requested);

}  // namespace kwsc

#endif  // KWSC_COMMON_THREAD_POOL_H_
