// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// A dependency-light task pool for fork/join parallelism.
//
// The library needs parallelism in exactly two shapes: recursive fork/join
// during index construction (subtrees build independently, then join), and
// flat sharding of query batches (core/query_engine.h). Both are served by a
// fixed set of workers pulling from one FIFO queue — no work stealing, no
// per-thread deques. The subtle requirement is nesting: a construction task
// forks child tasks onto the *same* pool and waits for them, so a blocking
// join could deadlock once every worker is a waiter. TaskGroup::Wait avoids
// that by helping: while its tasks are outstanding it pops and runs queued
// tasks (anyone's) instead of sleeping, so some thread always makes progress.
//
// Indexes are immutable after construction (the contract exercised by
// tests/concurrency_test.cc), which is what makes the query-side sharding
// synchronization-free.

#ifndef KWSC_COMMON_THREAD_POOL_H_
#define KWSC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kwsc {

class TaskGroup;

/// Fixed set of worker threads over a FIFO task queue. Tasks are submitted
/// through a TaskGroup, never directly; the pool itself only runs them.
class ThreadPool {
 public:
  /// Spawns `num_workers` >= 1 threads. The caller participates too (see
  /// TaskGroup::Wait), so a pool for T-way parallelism wants T - 1 workers.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Threads that can make progress simultaneously: the workers plus the
  /// caller helping from TaskGroup::Wait.
  int parallelism() const { return num_workers() + 1; }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void Enqueue(Task task);

  /// Pops and runs one queued task; returns false if the queue was empty.
  bool RunOneTask();

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// A fork/join scope: Run() submits tasks, Wait() blocks until every task
/// submitted through this group has finished. Wait() helps drain the pool's
/// queue while waiting, so nested groups (a task forking its own subtasks)
/// cannot deadlock. The destructor waits, so a group never outlives its
/// outstanding tasks — references captured by the tasks may safely point
/// into the enclosing frame.
///
/// A null pool makes Run() execute the task inline, letting callers use one
/// code path for sequential and parallel execution.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);
  void Wait();

 private:
  friend class ThreadPool;
  void OnTaskDone();

  ThreadPool* pool_;
  std::atomic<uint64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Resolves FrameworkOptions::num_threads: a positive request is taken
/// verbatim, 0 means one thread per hardware thread (at least 1).
int ResolveNumThreads(int requested);

}  // namespace kwsc

#endif  // KWSC_COMMON_THREAD_POOL_H_
