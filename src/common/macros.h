// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Assertion and annotation macros used across the library.
//
// The library follows a "checks, not exceptions" policy on its hot paths:
// construction-time validation uses KWSC_CHECK (always on), while per-element
// invariants on query paths use KWSC_DCHECK (debug builds only).

#ifndef KWSC_COMMON_MACROS_H_
#define KWSC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `condition` is false. Enabled in all builds;
/// use for cheap validation of user-supplied arguments and construction-time
/// invariants.
#define KWSC_CHECK(condition)                                                    \
  do {                                                                           \
    if (!(condition)) {                                                          \
      std::fprintf(stderr, "KWSC_CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #condition);                                        \
      std::abort();                                                              \
    }                                                                            \
  } while (false)

/// Like KWSC_CHECK but with a custom printf-style message appended.
#define KWSC_CHECK_MSG(condition, ...)                                           \
  do {                                                                           \
    if (!(condition)) {                                                          \
      std::fprintf(stderr, "KWSC_CHECK failed at %s:%d: %s: ", __FILE__,         \
                   __LINE__, #condition);                                        \
      std::fprintf(stderr, __VA_ARGS__);                                         \
      std::fprintf(stderr, "\n");                                                \
      std::abort();                                                              \
    }                                                                            \
  } while (false)

/// Debug-only assertion for per-element invariants on query paths.
#ifdef NDEBUG
#define KWSC_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define KWSC_DCHECK(condition) KWSC_CHECK(condition)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define KWSC_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define KWSC_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
/// Read-prefetch with high temporal locality; used on tree descent to pull
/// the child node's cache line while the current node's directory is being
/// probed. A no-op hint: never changes semantics.
#define KWSC_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define KWSC_PREDICT_TRUE(x) (x)
#define KWSC_PREDICT_FALSE(x) (x)
#define KWSC_PREFETCH(addr) ((void)0)
#endif

#endif  // KWSC_COMMON_MACROS_H_
