// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace kwsc {

ZipfSampler::ZipfSampler(uint64_t universe, double s)
    : universe_(universe), s_(s), cdf_(universe) {
  KWSC_CHECK(universe > 0);
  KWSC_CHECK(s >= 0.0);
  double total = 0.0;
  for (uint64_t i = 0; i < universe; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding drift.
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint64_t rank) const {
  KWSC_CHECK(rank < universe_);
  double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

}  // namespace kwsc
