// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/thread_pool.h"

#include "common/macros.h"
#include "common/mutex.h"

namespace kwsc {

ThreadPool::ThreadPool(int num_workers) {
  KWSC_CHECK(num_workers >= 1);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Every TaskGroup waits before destruction, so nothing can be left queued.
  // Workers are joined, but the check still takes the lock: the guarded-by
  // contract has no "all other threads are gone" escape hatch, and the
  // uncontended acquire is free.
  MutexLock lock(&mu_);
  KWSC_CHECK(queue_.empty());
}

void ThreadPool::Enqueue(Task task) {
  {
    MutexLock lock(&mu_);
    KWSC_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::RunOneTask() {
  Task task;
  {
    MutexLock lock(&mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task.fn();
  task.group->OnTaskDone();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain the queue even when stopping so no task is ever dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
    task.group->OnTaskDone();
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Enqueue({std::move(fn), this});
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  for (;;) {
    // Every exit path observes pending_ == 0 while holding mu_. OnTaskDone
    // performs its final decrement and notify inside the same lock, so by
    // the time Wait() can return, the last worker has released mu_ and will
    // never touch this group again — the caller may destroy it immediately.
    {
      MutexLock lock(&mu_);
      if (pending_.load(std::memory_order_acquire) == 0) return;
    }
    // Help: run queued tasks (this group's or anyone's) instead of blocking,
    // so nested fork/join on one shared pool cannot deadlock.
    if (pool_->RunOneTask()) continue;
    // Queue empty but tasks outstanding: they are running on other threads.
    // Sleep until the last one signals.
    MutexLock lock(&mu_);
    while (pending_.load(std::memory_order_acquire) != 0) cv_.Wait(&mu_);
    return;
  }
}

void TaskGroup::OnTaskDone() {
  MutexLock lock(&mu_);
  // Decrement under the lock: a waiter must not be able to see zero (and
  // destroy the group) before this thread is done touching cv_ and mu_.
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.NotifyAll();
  }
}

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace kwsc
