// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/thread_pool.h"

#include "common/macros.h"

namespace kwsc {

ThreadPool::ThreadPool(int num_workers) {
  KWSC_CHECK(num_workers >= 1);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Every TaskGroup waits before destruction, so nothing can be left queued.
  KWSC_CHECK(queue_.empty());
}

void ThreadPool::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    KWSC_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task.fn();
  task.group->OnTaskDone();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so no task is ever dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
    task.group->OnTaskDone();
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Enqueue({std::move(fn), this});
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  for (;;) {
    // Every exit path observes pending_ == 0 while holding mu_. OnTaskDone
    // performs its final decrement and notify inside the same lock, so by
    // the time Wait() can return, the last worker has released mu_ and will
    // never touch this group again — the caller may destroy it immediately.
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_.load(std::memory_order_acquire) == 0) return;
    }
    // Help: run queued tasks (this group's or anyone's) instead of blocking,
    // so nested fork/join on one shared pool cannot deadlock.
    if (pool_->RunOneTask()) continue;
    // Queue empty but tasks outstanding: they are running on other threads.
    // Sleep until the last one signals.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    return;
  }
}

void TaskGroup::OnTaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  // Decrement under the lock: a waiter must not be able to see zero (and
  // destroy the group) before this thread is done touching cv_ and mu_.
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace kwsc
