// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/random.h"

#include <cmath>

namespace kwsc {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  KWSC_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  KWSC_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits scaled to [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box-Muller; avoids log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace kwsc
