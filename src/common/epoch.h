// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// EpochPtr<T>: single-publisher, multi-reader snapshot publication.
//
// The batch-dynamic layer (core/dynamic_index.h) serves queries against an
// *immutable* snapshot of its level set while the writer mutates its own
// private state and background merges rebuild levels on the ThreadPool. The
// protocol is the classic epoch scheme, reduced to its load-bearing core:
//
//   - the publisher builds a fresh immutable T off to the side, then installs
//     it with Publish(), bumping the epoch counter;
//   - readers Acquire() a shared_ptr<const T>; everything reachable from a
//     published T is frozen forever, so a reader's snapshot stays valid for
//     as long as it holds the pointer — no locks on the query path beyond the
//     pointer copy, no reader ever observes a half-built state;
//   - old snapshots die by refcount when the last reader drops out.
//
// The pointer handoff is guarded by an annotated Mutex (common/mutex.h), not
// by atomic<shared_ptr>: the critical section is two pointer copies, the
// annotations keep the guarded state inside clang's thread-safety analysis,
// and kwsc-lint's epoch-nonapi-access rule can then enforce that *all*
// access to a published level set goes through Acquire/Publish — mutation of
// live snapshots is a lint error, not a code-review hope.
//
// Contract (the part the types cannot express): T and everything it owns
// must be deep-immutable after Publish. Publish a *new* T built from copies;
// never mutate a T that has ever been published.

#ifndef KWSC_COMMON_EPOCH_H_
#define KWSC_COMMON_EPOCH_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace kwsc {

template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  explicit EpochPtr(std::shared_ptr<const T> initial)
      : current_(std::move(initial)) {}

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// The reader entry point: returns the currently published snapshot (may
  /// be null before the first Publish). The returned object is immutable and
  /// outlives any concurrent Publish for as long as the caller holds it.
  std::shared_ptr<const T> Acquire() const {
    MutexLock lock(&mu_);
    return current_;
  }

  /// The publisher entry point: atomically installs `next` as the snapshot
  /// every subsequent Acquire observes, and returns the new epoch number
  /// (monotone from 1). The previous snapshot is released here but stays
  /// alive until its last reader drops it.
  uint64_t Publish(std::shared_ptr<const T> next) {
    MutexLock lock(&mu_);
    current_ = std::move(next);
    return ++epoch_;
  }

  /// The number of Publish calls so far. A reader pair (epoch before, epoch
  /// after) brackets whether its snapshot was current for the whole read.
  uint64_t epoch() const {
    MutexLock lock(&mu_);
    return epoch_;
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const T> current_ KWSC_GUARDED_BY(mu_);
  uint64_t epoch_ KWSC_GUARDED_BY(mu_) = 0;
};

}  // namespace kwsc

#endif  // KWSC_COMMON_EPOCH_H_
