// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Deterministic operation budgets for self-terminating queries.
//
// Several reductions in the paper run a reporting query and "terminate it
// manually" once it exceeds its worst-case bound (footnote 4; Appendices F
// and G): if the query did not finish within O(N^{1-1/k} * t^{1/k}) time, the
// answer set must be at least t. Wall-clock self-termination is
// irreproducible, so kwsc charges every elementary step (object examined,
// node visited) to an OpsBudget and aborts the traversal deterministically
// when the budget is spent. See DESIGN.md, substitution 3.

#ifndef KWSC_COMMON_OPS_BUDGET_H_
#define KWSC_COMMON_OPS_BUDGET_H_

#include <cstdint>
#include <limits>

namespace kwsc {

/// Counts elementary operations against a cap. A default-constructed budget
/// is unlimited.
class OpsBudget {
 public:
  /// Unlimited budget.
  OpsBudget() = default;

  /// Budget of exactly `limit` elementary operations.
  explicit OpsBudget(uint64_t limit) : limit_(limit) {}

  /// Charges `n` operations; returns false once the budget is exhausted.
  /// The add saturates at uint64_t max: without saturation a charge near the
  /// counter's ceiling would wrap spent_ back to a small value and silently
  /// un-exhaust the budget (and an unlimited budget would oscillate).
  bool Charge(uint64_t n = 1) {
    spent_ = spent_ > std::numeric_limits<uint64_t>::max() - n
                 ? std::numeric_limits<uint64_t>::max()
                 : spent_ + n;
    return spent_ <= limit_;
  }

  bool Exhausted() const { return spent_ > limit_; }
  uint64_t spent() const { return spent_; }
  uint64_t limit() const { return limit_; }

 private:
  uint64_t limit_ = std::numeric_limits<uint64_t>::max();
  uint64_t spent_ = 0;
};

}  // namespace kwsc

#endif  // KWSC_COMMON_OPS_BUDGET_H_
