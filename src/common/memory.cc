// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/memory.h"

#include <array>
#include <cstdio>
#include <cstring>

namespace kwsc {

std::string FormatBytes(size_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

size_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  size_t peak_kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long kib = 0;
      if (std::sscanf(line + 6, "%llu", &kib) == 1) {
        peak_kib = static_cast<size_t>(kib);
      }
      break;
    }
  }
  std::fclose(f);
  return peak_kib * 1024;
#else
  return 0;
#endif
}

}  // namespace kwsc
