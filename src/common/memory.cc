// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/memory.h"

#include <array>
#include <cstdio>
#include <cstring>

namespace kwsc {

std::string FormatBytes(size_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

namespace {

#if defined(__linux__)
/// Reads one "<field>: <kib> kB" line from /proc/self/status.
size_t ProcStatusBytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  size_t kib_value = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long kib = 0;
      if (std::sscanf(line + field_len, "%llu", &kib) == 1) {
        kib_value = static_cast<size_t>(kib);
      }
      break;
    }
  }
  std::fclose(f);
  return kib_value * 1024;
}
#endif

}  // namespace

size_t PeakRssBytes() {
#if defined(__linux__)
  return ProcStatusBytes("VmHWM:");
#else
  return 0;
#endif
}

size_t CurrentRssBytes() {
#if defined(__linux__)
  return ProcStatusBytes("VmRSS:");
#else
  return 0;
#endif
}

}  // namespace kwsc
