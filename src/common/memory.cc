// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/memory.h"

#include <array>
#include <cstdio>

namespace kwsc {

std::string FormatBytes(size_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace kwsc
