// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "common/flat_arena.h"

#include <cstdio>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#define KWSC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define KWSC_HAVE_MMAP 0
#include <fstream>
#endif

namespace kwsc {

namespace {

/// 64-byte-aligned heap buffer for the no-mmap paths, so file-relative slab
/// alignment implies absolute alignment exactly as it does under mmap
/// (page-aligned bases).
std::byte* AlignedAlloc(size_t size) {
  if (size == 0) return nullptr;
  return static_cast<std::byte*>(
      ::operator new(size, std::align_val_t(kFlatAlignment)));
}

void AlignedFree(std::byte* p) {
  if (p != nullptr) ::operator delete(p, std::align_val_t(kFlatAlignment));
}

// MmapFile is immutable after creation, so the factory functions need a
// brief mutable window; this subclass just re-opens the constructor.
struct MmapFileBuilder : MmapFile {};

/// Whether this buffer should be released with munmap (true) or the aligned
/// delete (false). Tracked per address in the destructor via the flag baked
/// into MmapFile::used_mmap_ — but the heap fallback of Open() also sets
/// used_mmap_ = false, so the flag doubles as the deallocation discriminant.
}  // namespace

FlatErrorSink AbortingFlatErrorSink() {
  return [](const std::string& message) {
    KWSC_CHECK_MSG(false, "flat layout invalid: %s", message.c_str());
  };
}

MmapFile::~MmapFile() {
#if KWSC_HAVE_MMAP
  if (used_mmap_) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::byte*>(data_), size_);
    }
    return;
  }
#endif
  AlignedFree(const_cast<std::byte*>(data_));
}

std::shared_ptr<const MmapFile> MmapFile::Open(const std::string& path) {
#if KWSC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    std::fprintf(stderr, "MmapFile: cannot open %s\n", path.c_str());
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    std::fprintf(stderr, "MmapFile: cannot stat %s\n", path.c_str());
    ::close(fd);
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  auto file = std::make_shared<MmapFileBuilder>();
  file->size_ = size;
  if (size == 0) {
    ::close(fd);
    return file;
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mapped != MAP_FAILED) {
    file->data_ = static_cast<const std::byte*>(mapped);
    file->used_mmap_ = true;
    ::close(fd);
    return file;
  }
  // Graceful fallback: read the file into an aligned heap buffer. Same
  // bytes and alignment guarantees, just not zero-copy.
  std::byte* buf = AlignedAlloc(size);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::read(fd, buf + off, size - off);
    if (n <= 0) {
      std::fprintf(stderr, "MmapFile: short read on %s\n", path.c_str());
      AlignedFree(buf);
      ::close(fd);
      return nullptr;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  file->data_ = buf;
  file->used_mmap_ = false;
  return file;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "MmapFile: cannot open %s\n", path.c_str());
    return nullptr;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    std::fprintf(stderr, "MmapFile: read failed on %s\n", path.c_str());
    return nullptr;
  }
  return FromBytes(std::move(bytes));
#endif
}

std::shared_ptr<const MmapFile> MmapFile::FromBytes(std::string bytes) {
  auto file = std::make_shared<MmapFileBuilder>();
  file->size_ = bytes.size();
  file->used_mmap_ = false;
  if (!bytes.empty()) {
    std::byte* buf = AlignedAlloc(bytes.size());
    std::memcpy(buf, bytes.data(), bytes.size());
    file->data_ = buf;
  }
  return file;
}

const std::string& FlatArenaWriter::Finish() {
  if (finished_) return buf_;
  KWSC_CHECK_MSG(root_size_ != 0, "flat container finished without a root");
  Align();
  FlatHeader header;
  std::memset(static_cast<void*>(&header), 0, sizeof(header));
  header.magic[0] = 'K';
  header.magic[1] = 'W';
  header.magic[2] = 'F';
  header.magic[3] = '2';
  header.family_tag = family_tag_;
  header.total_bytes = buf_.size();
  header.root_offset = root_offset_;
  header.root_size = root_size_;
  std::memcpy(buf_.data(), &header, sizeof(header));
  finished_ = true;
  return buf_;
}

void FlatArenaWriter::WriteTo(std::ostream* out) {
  const std::string& bytes = Finish();
  out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool FlatArenaReader::Validate(const MmapFile& file, uint64_t offset,
                               uint32_t expected_tag,
                               const FlatErrorSink& sink) {
  auto fail = [&sink](std::string message) {
    sink(std::move(message));
    return false;
  };
  if (offset % kFlatAlignment != 0) {
    return fail("container offset " + std::to_string(offset) +
                " not 64-byte aligned");
  }
  if (offset > file.size() || file.size() - offset < sizeof(FlatHeader)) {
    return fail("file too small for flat header (size " +
                std::to_string(file.size()) + ", offset " +
                std::to_string(offset) + ")");
  }
  FlatHeader header;
  std::memcpy(&header, file.data() + offset, sizeof(header));
  if (std::memcmp(header.magic, "KWF2", 4) != 0) {
    return fail("flat magic mismatch (want KWF2)");
  }
  if (header.family_tag != expected_tag) {
    const auto spell = [](uint32_t tag) {
      std::string s(4, '?');
      for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
        s[static_cast<size_t>(i)] = (c >= 32 && c < 127) ? c : '?';
      }
      return s;
    };
    return fail("flat family tag mismatch (file " + spell(header.family_tag) +
                ", expected " + spell(expected_tag) + ")");
  }
  if (header.total_bytes < sizeof(FlatHeader) ||
      header.total_bytes % kFlatAlignment != 0 ||
      header.total_bytes > file.size() - offset) {
    return fail("flat container size " + std::to_string(header.total_bytes) +
                " implausible or exceeds file (file " +
                std::to_string(file.size()) + ", offset " +
                std::to_string(offset) + ")");
  }
  if (header.root_size == 0 || header.root_offset % kFlatAlignment != 0 ||
      header.root_offset < sizeof(FlatHeader) ||
      header.root_offset >= header.total_bytes ||
      header.root_size > header.total_bytes - header.root_offset) {
    return fail("flat root slab out of bounds (offset " +
                std::to_string(header.root_offset) + ", size " +
                std::to_string(header.root_size) + ")");
  }
  return true;
}

FlatArenaReader::FlatArenaReader(const MmapFile& file, uint64_t offset,
                                 uint32_t expected_tag) {
  KWSC_CHECK(Validate(file, offset, expected_tag, AbortingFlatErrorSink()));
  base_ = file.data() + offset;
  FlatHeader header;
  std::memcpy(&header, base_, sizeof(header));
  total_bytes_ = header.total_bytes;
  family_tag_ = header.family_tag;
  root_offset_ = header.root_offset;
  root_size_ = header.root_size;
}

}  // namespace kwsc
