// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Zipfian sampling over a finite universe.
//
// Keyword frequencies in text corpora are famously Zipf-distributed; the
// paper's large/small keyword classification (Section 3.2) is designed
// exactly for such skew, so the workload generators sample keywords from a
// ZipfSampler. Sampling uses the inverted-CDF table method: O(W) setup,
// O(log W) per sample, exact probabilities.

#ifndef KWSC_COMMON_ZIPF_H_
#define KWSC_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace kwsc {

/// Samples ranks in [0, universe) with P(rank i) proportional to 1/(i+1)^s.
class ZipfSampler {
 public:
  /// `universe` must be positive; `s` is the skew (s = 0 is uniform).
  ZipfSampler(uint64_t universe, double s);

  /// Draws one rank using `rng`.
  uint64_t Sample(Rng* rng) const;

  uint64_t universe() const { return universe_; }
  double skew() const { return s_; }

  /// Exact probability of drawing `rank`.
  double Probability(uint64_t rank) const;

 private:
  uint64_t universe_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); cdf_.back() == 1.
};

}  // namespace kwsc

#endif  // KWSC_COMMON_ZIPF_H_
