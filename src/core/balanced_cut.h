// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// f-balanced cuts (Section 4).
//
// Given objects sorted by a coordinate and an integer f >= 2, an f-balanced
// cut partitions the sequence into groups D_1,...,D_f and separator objects
// e*_1,...,e*_{f-1} such that
//   * groups and separators are disjoint and cover the input,
//   * groups are contiguous runs (all of D_i precedes all of D_j for i < j),
//   * weight(D_i) <= weight(input) / f for every i.
// The construction is the greedy scan of the paper's footnote 13: pack as
// many objects as possible into the current group without exceeding the
// weight quota, then promote the next object to a separator.

#ifndef KWSC_CORE_BALANCED_CUT_H_
#define KWSC_CORE_BALANCED_CUT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

struct BalancedCut {
  /// Contiguous, possibly empty index ranges [begin, end) into the sorted
  /// input, one per group. At most f entries; trailing empty groups are
  /// omitted.
  struct Group {
    uint32_t begin;
    uint32_t end;
  };
  std::vector<Group> groups;

  /// The separator objects e*_i, in scan order (at most f - 1 of them).
  std::vector<ObjectId> separators;
};

/// Computes an f-balanced cut of `sorted_objects` (already ordered by the
/// cut coordinate) using `corpus` document sizes as weights.
BalancedCut ComputeBalancedCut(std::span<const ObjectId> sorted_objects,
                               const Corpus& corpus, uint64_t fanout);

/// The fanout schedule of Theorem 2's tree: f_u = 2 * 2^(k^level), saturated
/// so it never exceeds `max_fanout` (callers pass the active-set size — a
/// fanout beyond it only creates empty groups).
uint64_t FanoutForLevel(int k, int level, uint64_t max_fanout);

}  // namespace kwsc

#endif  // KWSC_CORE_BALANCED_CUT_H_
