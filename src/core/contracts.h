// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Compile-time contracts for the Section 3 framework surface.
//
// Every Table 1 family (ORP-KW, dimension reduction, RR-KW, L∞NN-KW,
// LC/SP-KW, the baselines) implements the same four-step transformation, and
// PR 2's runtime auditor verifies the *built* indexes against the paper's
// invariants. What the auditor cannot see is interface drift: a family whose
// Build/Query/Save/Load surface quietly diverges from the framework still
// compiles and only fails once a test (or a user) exercises the missing
// piece. The concepts here pin that surface at compile time —
// tests/contracts_test.cc instantiates them over every family and substrate,
// so removing or retyping a required member is a build break, not a runtime
// surprise.
//
// Mapping to the paper (Section 3; see DESIGN.md, "Static contracts"):
//   step 1 (space partitioning over the verbose set)  -> PointBuildable /
//     RectBuildable: construction from geometry + Corpus + FrameworkOptions;
//   step 2 (secondary structures T_u)                 -> MemoryAccounted
//     (the space bounds of Theorems 1/2 are asserted over this surface);
//   step 3 (query descent with budgeted scans)        -> BudgetedKwQueryable
//     and friends: QueryStats exposure plus an OpsBudget entry point (the
//     "manual termination" device of footnote 4);
//   step 4 (degeneracy removal / persistence)         -> ArchiveSerializable
//     and StreamPersistable: symmetric Save/Load so a reloaded index is the
//     built index (byte-identity is checked at runtime by the auditor; the
//     *presence and shape* of the pair is checked here).

#ifndef KWSC_CORE_CONTRACTS_H_
#define KWSC_CORE_CONTRACTS_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "audit/audit_access.h"
#include "common/ops_budget.h"
#include "common/serialize.h"
#include "core/framework.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

// ---------------------------------------------------------------------------
// Archive contracts (framework step 4: persistence of the built structure).
// ---------------------------------------------------------------------------

/// Writes itself into an OutputArchive. Components (NodeDirectory,
/// RankSpace) serialize through archives; top-level indexes wrap a stream.
template <typename T>
concept ArchiveSavable = requires(const T& t, OutputArchive* out) {
  { t.Save(out) } -> std::same_as<void>;
};

/// Restores itself in place from an InputArchive.
template <typename T>
concept ArchiveLoadable = requires(T& t, InputArchive* in) {
  { t.Load(in) } -> std::same_as<void>;
};

/// The symmetric component pair: Save(OutputArchive*) matched by a Load that
/// rebuilds a default-constructed instance. kwsc_lint's archive-symmetry
/// rule additionally checks that the two bodies issue the same ordered
/// Magic/Pod/Vec sequence; this concept pins the signatures.
template <typename T>
concept ArchiveSerializable =
    std::default_initializable<T> && ArchiveSavable<T> && ArchiveLoadable<T>;

/// Top-level index persistence: Save to a stream, static Load from a stream
/// plus the corpus the index was built over (the corpus is persisted
/// separately — see Corpus::Save — and re-supplied on load).
template <typename T>
concept StreamPersistable =
    requires(const T& t, std::ostream* out, std::istream* in,
             const Corpus* corpus) {
      { t.Save(out) } -> std::same_as<void>;
      { T::Load(in, corpus) } -> std::same_as<T>;
    };

/// Self-contained persistence (Corpus): static Load needs only the stream.
template <typename T>
concept SelfPersistable =
    requires(const T& t, std::ostream* out, std::istream* in) {
      { t.Save(out) } -> std::same_as<void>;
      { T::Load(in) } -> std::same_as<T>;
    };

// ---------------------------------------------------------------------------
// Construction contracts (framework step 1: the partition tree is built from
// geometry, the corpus, and one FrameworkOptions).
// ---------------------------------------------------------------------------

/// Buildable from one point per corpus object plus FrameworkOptions.
template <typename Index>
concept PointBuildable =
    std::constructible_from<Index,
                            std::span<const typename Index::PointType>,
                            const Corpus*, FrameworkOptions>;

/// Buildable from one rectangle per corpus object (RR-KW lifts these).
template <typename Index>
concept RectBuildable =
    std::constructible_from<Index,
                            std::span<const typename Index::RectType>,
                            const Corpus*, FrameworkOptions>;

// ---------------------------------------------------------------------------
// Query contracts (framework step 3: budgeted descent with stats exposure).
// ---------------------------------------------------------------------------

/// Exposes the construction-time keyword arity k (queries must supply
/// exactly k distinct keywords; see CanonicalizeQueryKeywords).
template <typename T>
concept ExposesArity = requires(const T& t) {
  { t.k() } -> std::same_as<int>;
};

/// Exposes its memory footprint (the surface the Theorem 1/2 space bounds
/// are measured over, in bench_space and the auditor).
template <typename T>
concept MemoryAccounted = requires(const T& t) {
  { t.MemoryBytes() } -> std::same_as<size_t>;
};

/// The uniform reporting entry point: a query region, exactly k keywords,
/// optional QueryStats, optional OpsBudget for deterministic manual
/// termination (footnote 4). `Region` is Box<D> for the kd/dim-red path and
/// ConvexQuery<D> for the partition-tree path.
template <typename Index, typename Region>
concept BudgetedKwQueryable =
    requires(const Index& index, const Region& q,
             std::span<const KeywordId> keywords, QueryStats* stats,
             OpsBudget* budget) {
      { index.Query(q, keywords, stats, budget) }
          -> std::same_as<std::vector<ObjectId>>;
    };

/// Budgeted "at least t results?" detection (Corollaries 4 and 7).
template <typename Index, typename Region>
concept ThresholdDetecting =
    requires(const Index& index, const Region& q,
             std::span<const KeywordId> keywords, uint64_t t,
             QueryStats* stats) {
      { index.ContainsAtLeast(q, keywords, t, stats) } -> std::same_as<bool>;
    };

/// Spherical reporting + detection (SRP-KW, Corollary 6): closed ball given
/// as center and squared radius.
template <typename Index>
concept BallKwQueryable =
    requires(const Index& index, const typename Index::PointType& center,
             double radius_sq, std::span<const KeywordId> keywords,
             uint64_t t, QueryStats* stats, OpsBudget* budget) {
      { index.Query(center, radius_sq, keywords, stats, budget) }
          -> std::same_as<std::vector<ObjectId>>;
      { index.ContainsAtLeast(center, radius_sq, keywords, t, stats) }
          -> std::same_as<bool>;
    };

/// t-nearest reporting (L∞NN-KW / L2NN-KW, Corollaries 5 and 7): the t
/// closest members of D(w1..wk), ordered by non-decreasing distance.
template <typename Index>
concept NearestKwQueryable =
    requires(const Index& index, const typename Index::PointType& q,
             uint64_t t, std::span<const KeywordId> keywords,
             QueryStats* stats) {
      { index.Query(q, t, keywords, stats) }
          -> std::same_as<std::vector<ObjectId>>;
    };

// ---------------------------------------------------------------------------
// The composed family contract and the audit registration contract.
// ---------------------------------------------------------------------------

/// A Table 1 index family on the reporting path: built from points under
/// FrameworkOptions, exposing k, accounting its memory, and answering
/// budgeted keyword queries over `Region`.
template <typename Index, typename Region>
concept KwIndexFamily = PointBuildable<Index> && ExposesArity<Index> &&
                        MemoryAccounted<Index> &&
                        BudgetedKwQueryable<Index, Region>;

namespace contracts_internal {
/// Emit-callback shape probe for DynamizableFamily: QueryEmit must accept a
/// callable taking the emitted ObjectId and returning bool (false stops the
/// query early).
struct DynamicEmitProbe {
  bool operator()(ObjectId) const { return true; }
};
}  // namespace contracts_internal

/// The surface core/dynamic_index.h dynamizes (any family satisfying this
/// gets batched insert/delete, background merges, and epoch-snapshot reads
/// for free). Beyond the static KwIndexFamily shape, dynamization needs the
/// family to name the *element geometry* it is built from and the *query
/// region* it answers, expose the exact region/element match predicate the
/// insertion-buffer brute scan runs (the same predicate the static index's
/// leaves apply, so buffer and level answers agree), and provide the
/// streaming QueryEmit the per-level fan-out translates ids through.
template <typename Index>
concept DynamizableFamily =
    ExposesArity<Index> && MemoryAccounted<Index> &&
    std::constructible_from<Index,
                            std::span<const typename Index::DynamicGeomType>,
                            const Corpus*, FrameworkOptions> &&
    requires(const Index& index, const typename Index::DynamicRegionType& q,
             const typename Index::DynamicGeomType& g,
             std::span<const KeywordId> keywords, QueryStats* stats,
             OpsBudget* budget) {
      { Index::MatchesRegion(q, g) } -> std::same_as<bool>;
      index.QueryEmit(q, keywords, contracts_internal::DynamicEmitProbe{},
                      stats, budget);
    };

/// Registered with the runtime auditor by befriending audit::AuditAccess and
/// exposing a node arena + options under the uniform member naming
/// (nodes_/options_). Families that wrap another family whole (RR-KW,
/// L∞NN-KW) are DelegatingAuditable instead: the auditor audits engine_.
template <typename Index>
concept DirectlyAuditable = requires(const Index& index) {
  audit::AuditAccess::NodesProbe(index);
  audit::AuditAccess::OptionsProbe(index);
};

template <typename Index>
concept DelegatingAuditable = requires(const Index& index) {
  audit::AuditAccess::EngineProbe(index);
};

template <typename Index>
concept AuditableFamily =
    DirectlyAuditable<Index> || DelegatingAuditable<Index>;

}  // namespace kwsc

#endif  // KWSC_CORE_CONTRACTS_H_
