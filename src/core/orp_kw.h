// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// ORP-KW: orthogonal range reporting with keywords (Theorem 1, Section 3).
//
// The index applies the paper's transformation framework to a kd-tree:
//   * coordinates are reduced to rank space (Section 3.4), which removes all
//     degeneracies — every object has distinct integer coordinates per
//     dimension;
//   * the tree splits by *document weight* (the verbose-set construction of
//     Section 3.2: an object counts |e.Doc| times), so N_u = O(N / 2^level);
//   * the object whose coordinate defines the split line becomes the node's
//     pivot set (it lies on the boundary of both child cells);
//   * each node carries a NodeDirectory: large-keyword table, per-child
//     non-empty k-tuple registry, and materialized lists.
//
// A query descends from the root while all k keywords remain large, pruning
// children whose cells miss the query rectangle or whose k-tuple
// intersection is empty; at the first node where a keyword turns small it
// scans that keyword's materialized list (size < N_u^{1-1/k}) and stops.
// Query time is O(N^{1-1/k} (1 + OUT^{1/k})) for d <= 2 (Theorem 1).
//
// The same code runs for any constant d; for d >= 3 the crossing-sensitivity
// guarantee weakens (Section 3.5) and core/dim_reduction.h restores it.

#ifndef KWSC_CORE_ORP_KW_H_
#define KWSC_CORE_ORP_KW_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "common/abi.h"
#include "common/flat_arena.h"
#include "common/macros.h"
#include "common/memory.h"
#include "common/ops_budget.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/flat_format.h"
#include "core/format_versions.h"
#include "core/framework.h"
#include "core/node_directory.h"
#include "geom/box.h"
#include "geom/point.h"
#include "geom/rank_space.h"
#include "text/corpus.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

template <int D, typename Scalar = double>
class OrpKwIndex {
 public:
  using PointType = Point<D, Scalar>;
  using BoxType = Box<D, Scalar>;
  using RankBox = Box<D, int64_t>;

  // Batch-dynamic surface (DynamizableFamily, core/contracts.h): built from
  // points, queried with boxes; the dynamization buffer scan runs the same
  // containment test the static leaves apply.
  using DynamicGeomType = PointType;
  using DynamicRegionType = BoxType;
  static bool MatchesRegion(const BoxType& q, const PointType& p) {
    return q.Contains(p);
  }

  /// Builds the index over `points` (one per corpus object, same order).
  /// `corpus` must outlive the index.
  ///
  /// `pool`, when non-null, is a shared task pool the build forks subtree
  /// tasks onto (the dimension-reduction index builds its secondaries this
  /// way); otherwise `options.num_threads` decides whether the build spins
  /// up its own. The built index — including its Save byte stream — is
  /// identical for every thread count.
  OrpKwIndex(std::span<const PointType> points, const Corpus* corpus,
             FrameworkOptions options, ThreadPool* pool = nullptr)
      : corpus_(corpus), options_(options), rank_(points) {
    KWSC_CHECK(corpus != nullptr);
    KWSC_CHECK_MSG(points.size() == corpus->num_objects(),
                   "points (%zu) and corpus (%zu) disagree", points.size(),
                   corpus->num_objects());
    KWSC_CHECK_MSG(options_.k >= 2 && options_.k <= 8,
                   "k must be in [2, 8], got %d", options_.k);
    std::vector<Point<D, int64_t>> rank_points(points.size());
    for (uint32_t e = 0; e < points.size(); ++e) {
      rank_points[e] = rank_.ToRank(e);
    }
    rank_points_.Assign(std::move(rank_points));
    if (points.empty()) return;
    std::unique_ptr<ThreadPool> owned_pool;
    if (pool == nullptr) {
      const int threads = ResolveNumThreads(options_.num_threads);
      if (threads > 1) {
        owned_pool = std::make_unique<ThreadPool>(threads - 1);
        pool = owned_pool.get();
      }
    }
    Build(pool);
  }

  int k() const { return options_.k; }
  uint64_t total_weight() const { return corpus_->total_weight(); }
  size_t num_nodes() const { return nodes_.size(); }
  const Corpus& corpus() const { return *corpus_; }

  /// Reports q ∩ D(w1,...,wk). `keywords` must hold exactly k distinct
  /// keywords.
  std::vector<ObjectId> Query(const BoxType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    std::vector<ObjectId> out;
    QueryEmit(q, keywords,
              [&out](ObjectId e) {
                out.push_back(e);
                return true;
              },
              stats, budget);
    return out;
  }

  /// Streaming variant; `emit` returns false to stop the query early.
  template <typename Emit>
  void QueryEmit(const BoxType& q, std::span<const KeywordId> keywords,
                 Emit&& emit, QueryStats* stats = nullptr,
                 OpsBudget* budget = nullptr) const {
    const std::vector<KeywordId> sorted =
        CanonicalizeQueryKeywords(keywords, options_.k);
    const RankBox rq = rank_.ToRankBox(q);
    QueryRankEmit(rq, sorted, emit, stats, budget);
  }

  /// Query already expressed in rank space (used by the RR-KW reduction and
  /// by tests exercising Section 3.4 directly). `sorted_keywords` must be
  /// sorted and distinct.
  template <typename Emit>
  void QueryRankEmit(const RankBox& rq,
                     std::span<const KeywordId> sorted_keywords, Emit&& emit,
                     QueryStats* stats = nullptr,
                     OpsBudget* budget = nullptr) const {
    if (nodes_.empty() || !rq.Valid()) return;
    OpsBudget unlimited;
    if (budget == nullptr) budget = &unlimited;
    Visit(0, rq, sorted_keywords, emit, stats, budget);
  }

  /// "Does q ∩ D(w1,...,wk) have at least t objects?" — the budgeted
  /// detection primitive of Corollary 4's proof: run a reporting query; if it
  /// exceeds its worst-case budget for output size t, the answer must be yes.
  bool ContainsAtLeast(const BoxType& q, std::span<const KeywordId> keywords,
                       uint64_t t, QueryStats* stats = nullptr) const {
    KWSC_CHECK(t >= 1);
    OpsBudget budget(ThresholdQueryBudget(total_weight(), options_.k, t));
    uint64_t found = 0;
    QueryEmit(q, keywords,
              [&found, t](ObjectId) { return ++found < t; }, stats, &budget);
    return found >= t || budget.Exhausted();
  }

  /// Emptiness query in O(N^{1-1/k}) expected work: run a reporting query
  /// under the OUT = 0 budget; exhausting it certifies non-emptiness
  /// (footnote 4 of the paper).
  bool Empty(const BoxType& q, std::span<const KeywordId> keywords,
             QueryStats* stats = nullptr) const {
    OpsBudget budget(ThresholdQueryBudget(total_weight(), options_.k, 1));
    bool witness = false;
    QueryEmit(q, keywords,
              [&witness](ObjectId) {
                witness = true;
                return false;
              },
              stats, &budget);
    return !witness && !budget.Exhausted();
  }

  /// |q ∩ D(w1,...,wk)| by full enumeration (counting cannot do better than
  /// reporting in this framework; the paper never claims otherwise).
  uint64_t Count(const BoxType& q, std::span<const KeywordId> keywords,
                 QueryStats* stats = nullptr) const {
    uint64_t count = 0;
    QueryEmit(q, keywords, [&count](ObjectId) {
      ++count;
      return true;
    }, stats);
    return count;
  }

  /// Converts an original-space box to rank space (exposed for reductions).
  RankBox ToRankBox(const BoxType& q) const { return rank_.ToRankBox(q); }

  /// Rank-space image of an object's point.
  const Point<D, int64_t>& RankPointOf(ObjectId e) const {
    return rank_points_[e];
  }

  size_t MemoryBytes() const {
    size_t total = rank_.MemoryBytes() + rank_points_.MemoryBytes() +
                   nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_) total += node.dir.MemoryBytes();
    return total;
  }

  /// Maximum node level (root = 0); the analysis expects O(log N).
  int Depth() const {
    int depth = 0;
    for (const Node& node : nodes_) depth = std::max(depth, int{node.level});
    return depth;
  }

  /// Persists the full index (construction is expensive; reloading is a
  /// sequential read). The corpus is saved separately (Corpus::Save) and
  /// supplied again on Load; a fingerprint guards against mismatches.
  void Save(std::ostream* out) const {
    OutputArchive ar(out);
    ar.Magic("KWO1", kOrpKwFormatVersion);
    ar.Pod<uint32_t>(static_cast<uint32_t>(D));
    SaveFrameworkOptions(&ar, options_);
    ar.Pod<uint64_t>(corpus_->num_objects());
    ar.Pod<uint64_t>(corpus_->total_weight());
    rank_.Save(&ar);
    ar.Vec(rank_points_.view());
    ar.Pod<uint64_t>(nodes_.size());
    for (const Node& node : nodes_) {
      ar.Pod(node.cell);
      ar.Pod(node.child[0]);
      ar.Pod(node.child[1]);
      ar.Pod(node.level);
      node.dir.Save(&ar);
    }
  }

  /// Rebuilds an index previously written by Save. `corpus` must be the
  /// same corpus (same objects in the same order) the index was built over.
  static OrpKwIndex Load(std::istream* in, const Corpus* corpus) {
    KWSC_CHECK(corpus != nullptr);
    InputArchive ar(in);
    const uint32_t version = ar.Magic("KWO1");
    KWSC_CHECK_MSG(version == kOrpKwFormatVersion,
                   "unsupported index version %u", version);
    KWSC_CHECK_MSG(ar.Pod<uint32_t>() == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    OrpKwIndex index(corpus);
    index.options_ = LoadFrameworkOptions(&ar);
    KWSC_CHECK_MSG(ar.Pod<uint64_t>() == corpus->num_objects(),
                   "corpus object count mismatch");
    KWSC_CHECK_MSG(ar.Pod<uint64_t>() == corpus->total_weight(),
                   "corpus weight mismatch");
    index.rank_.Load(&ar);
    index.rank_points_.Assign(ar.Vec<Point<D, int64_t>>());
    const uint64_t num_nodes = ar.Pod<uint64_t>();
    index.nodes_.resize(num_nodes);
    for (Node& node : index.nodes_) {
      node.cell = ar.Pod<RankBox>();
      node.child[0] = ar.Pod<int32_t>();
      node.child[1] = ar.Pod<int32_t>();
      node.level = ar.Pod<int16_t>();
      node.dir.Load(&ar);
    }
    return index;
  }

  // ---- v2 flat layout (common/flat_arena.h; DESIGN.md "On-disk layout
  // v2"). SaveFlat writes one offset-addressed container; LoadFlat is an
  // mmap plus header/structure validation — the bulk payload (rank tables,
  // rank points, directory pools) stays mapped and only the O(num_nodes)
  // arena is rebuilt, each directory attached as a zero-copy view. ----

  static constexpr uint32_t kFlatFamilyTag = FlatFamilyTag('K', 'W', 'O', '2');

  /// The flat root POD. Wrapper families reuse the container verbatim under
  /// their own family tag, so the tag is a parameter below.
  struct FlatRoot {
    uint32_t dim;
    uint32_t reserved;
    PersistedFrameworkOptions options;
    uint64_t num_objects;
    uint64_t total_weight;
    typename RankSpace<D, Scalar>::FlatImage rank;
    SlabRef rank_points;  // Point<D, int64_t>
    SlabRef nodes;        // FlatNodeRec<RankBox>
    FlatDirPools dir_pools;
  };

  void SaveFlat(std::ostream* out, uint32_t family_tag = kFlatFamilyTag) const {
    FlatArenaWriter writer(family_tag);
    FlatRoot root;
    std::memset(static_cast<void*>(&root), 0, sizeof(root));  // padding must be deterministic
    root.dim = static_cast<uint32_t>(D);
    root.options.k = options_.k;
    root.options.alpha = options_.alpha;
    root.options.leaf_objects = options_.leaf_objects;
    root.options.enable_tuple_pruning = options_.enable_tuple_pruning;
    root.options.enable_materialized_lists = options_.enable_materialized_lists;
    root.options.exact_cell_tests = options_.exact_cell_tests;
    root.num_objects = corpus_->num_objects();
    root.total_weight = corpus_->total_weight();
    root.rank = rank_.SaveFlatSlabs(&writer);
    root.rank_points = writer.Slab(rank_points_.view());

    FlatDirPoolWriter pools;
    std::vector<FlatNodeRec<RankBox>> recs(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      FlatNodeRec<RankBox>& rec = recs[i];
      std::memset(static_cast<void*>(&rec), 0, sizeof(rec));
      rec.cell = nodes_[i].cell;
      rec.child[0] = nodes_[i].child[0];
      rec.child[1] = nodes_[i].child[1];
      rec.level = nodes_[i].level;
      pools.Append(nodes_[i].dir, &rec);
    }
    root.nodes = writer.Slab<FlatNodeRec<RankBox>>(recs);
    root.dir_pools = pools.WriteSlabs(&writer);
    writer.Root(root);
    writer.WriteTo(out);
  }

  /// Opens a flat container over mapped bytes. The returned index keeps
  /// `file` alive; `offset` addresses nested containers inside wrapper
  /// formats. Any structural problem aborts (same policy as v1 Load).
  static OrpKwIndex LoadFlat(std::shared_ptr<const MmapFile> file,
                             const Corpus* corpus, uint64_t offset = 0,
                             uint32_t expected_tag = kFlatFamilyTag) {
    KWSC_CHECK(corpus != nullptr);
    KWSC_CHECK(file != nullptr);
    const FlatErrorSink sink = AbortingFlatErrorSink();
    const FlatArenaReader reader(*file, offset, expected_tag);
    const FlatRoot& root = reader.template Root<FlatRoot>();
    KWSC_CHECK_MSG(root.dim == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    KWSC_CHECK_MSG(root.num_objects == corpus->num_objects(),
                   "corpus object count mismatch");
    KWSC_CHECK_MSG(root.total_weight == corpus->total_weight(),
                   "corpus weight mismatch");

    OrpKwIndex index(corpus);
    index.options_.k = root.options.k;
    index.options_.alpha = root.options.alpha;
    index.options_.leaf_objects = root.options.leaf_objects;
    index.options_.enable_tuple_pruning = root.options.enable_tuple_pruning;
    index.options_.enable_materialized_lists =
        root.options.enable_materialized_lists;
    index.options_.exact_cell_tests = root.options.exact_cell_tests;
    KWSC_CHECK(index.rank_.AttachFlat(reader, root.rank, root.num_objects,
                                      sink));
    using RankPointT = Point<D, int64_t>;
    KWSC_CHECK(reader.SlabOk<RankPointT>(root.rank_points) &&
               root.rank_points.count == root.num_objects);
    index.rank_points_.Attach(reader.Slab<Point<D, int64_t>>(root.rank_points));

    FlatDirPoolReader pools;
    KWSC_CHECK(pools.Init(reader, root.dir_pools, sink));
    const auto recs = reader.Slab<FlatNodeRec<RankBox>>(root.nodes);
    KWSC_CHECK(ValidateFlatTreeShallow(recs, pools, sink));
    index.nodes_.resize(recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
      Node& node = index.nodes_[i];
      node.cell = recs[i].cell;
      node.child[0] = recs[i].child[0];
      node.child[1] = recs[i].child[1];
      node.level = recs[i].level;
      FlatDirView view;
      KWSC_CHECK(pools.MakeView(recs[i], static_cast<int64_t>(i), &view,
                                sink));
      node.dir.AttachFlat(view);
    }
    index.mmap_ = std::move(file);
    return index;
  }

  /// Layout-level verification of a flat container: header, slab bounds and
  /// alignment, tree structure, canonical sort orders, object-id ranges.
  /// Never aborts; every problem goes through `sink`. The audit subsystem
  /// wraps this into AuditCheck::kFlatLayout (audit/index_auditor.h).
  static bool ValidateFlat(const MmapFile& file, uint64_t offset,
                           uint32_t expected_tag, const FlatErrorSink& sink) {
    if (!FlatArenaReader::Validate(file, offset, expected_tag, sink)) {
      return false;
    }
    const FlatArenaReader reader(file, offset, expected_tag);
    if (!reader.RootOk<FlatRoot>()) {
      sink("flat root size mismatch for family");
      return false;
    }
    const FlatRoot& root = reader.template Root<FlatRoot>();
    if (root.dim != static_cast<uint32_t>(D)) {
      sink("flat root dimensionality mismatch");
      return false;
    }
    bool ok = true;
    RankSpace<D, Scalar> rank_probe;
    if (!rank_probe.AttachFlat(reader, root.rank, root.num_objects, sink)) {
      ok = false;
    }
    if (!reader.SlabOk<Point<D, int64_t>>(root.rank_points) ||
        root.rank_points.count != root.num_objects) {
      sink("flat rank-point slab out of bounds or cardinality mismatch");
      ok = false;
    }
    FlatDirPoolReader pools;
    if (!pools.Init(reader, root.dir_pools, sink)) return false;
    if (!reader.SlabOk<FlatNodeRec<RankBox>>(root.nodes)) {
      sink("flat node slab out of bounds");
      return false;
    }
    const auto recs = reader.Slab<FlatNodeRec<RankBox>>(root.nodes);
    if (!ValidateFlatTreeShallow(recs, pools, sink)) ok = false;
    if (!ValidateFlatTreeDeep(recs, pools, root.num_objects, sink)) ok = false;
    return ok;
  }

 private:
  // The invariant auditor reads (and its tests corrupt) the node arena
  // directly; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  // Shell constructor used by Load.
  explicit OrpKwIndex(const Corpus* corpus) : corpus_(corpus) {}

  struct Node {
    RankBox cell;
    NodeDirectory dir;
    int32_t child[2] = {-1, -1};
    int16_t level = 0;
    bool IsLeaf() const { return child[0] < 0 && child[1] < 0; }
  };

  // A node's active set viewed once per dimension, each view sorted by that
  // dimension's rank coordinate. Maintaining the D orders across splits
  // (stable partition around the pivot) replaces the per-level re-sort of
  // the seed construction, dropping split cost from O(n log n) to O(D n) —
  // the classic O(N log N) kd-tree build.
  struct ActiveSet {
    std::array<std::vector<ObjectId>, D> by_dim;

    size_t size() const { return by_dim[0].size(); }

    // Frees all views; called once a node has partitioned itself so peak
    // memory stays O(D N) along a root-to-leaf path.
    void Release() {
      for (std::vector<ObjectId>& view : by_dim) {
        view.clear();
        view.shrink_to_fit();
      }
    }
  };

  struct BuildContext {
    ThreadPool* pool = nullptr;
    int fork_levels = 0;
  };

  // Subtrees smaller than this build inline: the task dispatch and arena
  // splice are not worth amortizing over fewer objects.
  static constexpr size_t kMinForkObjects = 512;

  void Build(ThreadPool* pool) {
    const size_t n = rank_points_.size();
    nodes_.reserve(2 * n / options_.leaf_objects + 2);
    DirectoryBuilder builder(corpus_, options_);
    if (n <= static_cast<size_t>(options_.leaf_objects)) {
      // Root-only tree; the leaf keeps the object-id pivot order the
      // recursive construction would have received.
      nodes_.emplace_back();
      nodes_[0].cell = RankBox::Everything();
      std::vector<ObjectId> active(n);
      std::iota(active.begin(), active.end(), 0);
      builder.BuildLeaf(active, &nodes_[0].dir);
      return;
    }
    // Rank coordinates per dimension are a permutation of 0..n-1
    // (geom/rank_space.h sorts by (coordinate, id)), so the initial sorted
    // views come from inverting that permutation — no sort at all.
    ActiveSet root;
    for (int dim = 0; dim < D; ++dim) {
      root.by_dim[dim].resize(n);
      for (uint32_t e = 0; e < n; ++e) {
        root.by_dim[dim][static_cast<size_t>(rank_points_[e][dim])] = e;
      }
    }
    BuildContext ctx;
    ctx.pool = pool;
    ctx.fork_levels = ForkLevels(pool);
    BuildNode(&root, RankBox::Everything(), /*level=*/0,
              /*inherited=*/nullptr, &builder, &nodes_, &ctx);
  }

  // Forking the top `fork_levels` levels yields up to 2^fork_levels subtree
  // tasks; aim for ~4 per thread so the weight-balanced (but not perfectly
  // even) tasks still load-balance, without paying splice traffic deeper.
  static int ForkLevels(const ThreadPool* pool) {
    if (pool == nullptr) return 0;
    int levels = 0;
    for (int capacity = 1; capacity < 4 * pool->parallelism(); capacity *= 2) {
      ++levels;
    }
    return levels;
  }

  // Appends `sub` — a subtree arena in DFS preorder with arena-local child
  // indices — onto `arena`, rebasing the indices. Returns the subtree root's
  // index in `arena`, or -1 for an empty subtree. Splicing left then right
  // after a forked build reproduces the sequential DFS preorder exactly,
  // which is what makes parallel builds byte-identical under Save.
  static int32_t SpliceArena(std::vector<Node>* arena, std::vector<Node>* sub) {
    if (sub->empty()) return -1;
    const int32_t base = static_cast<int32_t>(arena->size());
    arena->reserve(arena->size() + sub->size());
    for (Node& node : *sub) {
      for (int32_t& child : node.child) {
        if (child >= 0) child += base;
      }
      arena->push_back(std::move(node));
    }
    sub->clear();
    return base;
  }

  uint32_t BuildNode(ActiveSet* active, const RankBox& cell, int level,
                     const std::vector<KeywordId>* inherited,
                     DirectoryBuilder* builder, std::vector<Node>* arena,
                     const BuildContext* ctx) {
    const uint32_t index = static_cast<uint32_t>(arena->size());
    arena->emplace_back();
    (*arena)[index].cell = cell;
    (*arena)[index].level = static_cast<int16_t>(level);

    const size_t n = active->size();
    if (n <= static_cast<size_t>(options_.leaf_objects)) {
      // Leaf pivots keep the order the recursive caller partitioned them in:
      // the parent's split-dimension view. (level >= 1 here — a root-sized
      // leaf is handled in Build; the + D keeps the modulus in range even on
      // that unreachable path, which GCC's array-bounds analysis otherwise
      // flags when this call is inlined into Build with level = 0.)
      builder->BuildLeaf(active->by_dim[((level - 1) % D + D) % D],
                         &(*arena)[index].dir);
      return index;
    }

    // Weight-balanced split on the level's dimension: cut the (pre-sorted)
    // view at the object where the prefix weight reaches half. That object
    // is the pivot — it sits on the split line, i.e. the boundary of both
    // child cells (Section 3.2's push-down rule).
    const int dim = level % D;
    const std::vector<ObjectId>& sorted = active->by_dim[dim];
    const size_t median = WeightedMedianIndex(n, [&](size_t i) {
      return static_cast<uint64_t>(corpus_->doc(sorted[i]).size());
    });
    const ObjectId pivot = sorted[median];
    const int64_t split = rank_points_[pivot][dim];

    std::vector<std::vector<ObjectId>> child_split(2);
    child_split[0].assign(sorted.begin(), sorted.begin() + median);
    child_split[1].assign(sorted.begin() + median + 1, sorted.end());

    std::vector<KeywordId> next_inherited;
    builder->Build(sorted, child_split, inherited, {pivot},
                   &(*arena)[index].dir, &next_inherited);

    // Partition every other dimension's view around the pivot. Rank
    // coordinates are distinct, so side membership is a single comparison
    // against the split coordinate; order within each side is preserved —
    // the children arrive pre-sorted in all D dimensions.
    ActiveSet left;
    ActiveSet right;
    left.by_dim[dim] = std::move(child_split[0]);
    right.by_dim[dim] = std::move(child_split[1]);
    for (int d = 0; d < D; ++d) {
      if (d == dim) continue;
      left.by_dim[d].reserve(median);
      right.by_dim[d].reserve(n - median - 1);
      for (ObjectId e : active->by_dim[d]) {
        if (e == pivot) continue;
        (rank_points_[e][dim] < split ? left : right).by_dim[d].push_back(e);
      }
    }
    active->Release();

    RankBox left_cell = cell;
    left_cell.hi[dim] = split - 1;
    RankBox right_cell = cell;
    right_cell.lo[dim] = split + 1;

    int32_t left_child = -1;
    int32_t right_child = -1;
    if (ctx->pool != nullptr && level < ctx->fork_levels &&
        left.size() >= kMinForkObjects && right.size() >= kMinForkObjects) {
      // Fork: the left subtree builds on the pool while this thread builds
      // the right one, each into a private arena. The forked task gets its
      // own DirectoryBuilder (its scratch state is per-instance) and a copy
      // of the inherited-keyword list.
      std::vector<Node> left_arena;
      std::vector<Node> right_arena;
      {
        TaskGroup group(ctx->pool);
        group.Run([this, &left, left_cell, level, next_inherited, &left_arena,
                   ctx] {
          DirectoryBuilder task_builder(corpus_, options_);
          BuildNode(&left, left_cell, level + 1, &next_inherited,
                    &task_builder, &left_arena, ctx);
        });
        BuildNode(&right, right_cell, level + 1, &next_inherited, builder,
                  &right_arena, ctx);
        group.Wait();
      }
      left_child = SpliceArena(arena, &left_arena);
      right_child = SpliceArena(arena, &right_arena);
    } else {
      if (left.size() > 0) {
        left_child = static_cast<int32_t>(BuildNode(
            &left, left_cell, level + 1, &next_inherited, builder, arena,
            ctx));
      }
      if (right.size() > 0) {
        right_child = static_cast<int32_t>(BuildNode(
            &right, right_cell, level + 1, &next_inherited, builder, arena,
            ctx));
      }
    }
    (*arena)[index].child[0] = left_child;
    (*arena)[index].child[1] = right_child;
    return index;
  }

  template <typename Emit>
  bool Visit(uint32_t node_index, const RankBox& rq,
             std::span<const KeywordId> kws, Emit& emit, QueryStats* stats,
             OpsBudget* budget) const {
    const Node& node = nodes_[node_index];
    const bool covered = node.cell.InsideOf(rq);
    if (stats != nullptr) {
      ++stats->nodes_visited;
      covered ? ++stats->covered_nodes : ++stats->crossing_nodes;
    }
    if (!budget->Charge()) return Exhaust(stats);

    // Examine the pivot set.
    for (ObjectId e : node.dir.pivots()) {
      if (!budget->Charge()) return Exhaust(stats);
      if (stats != nullptr) {
        ++stats->pivot_checks;
        covered ? ++stats->covered_work : ++stats->crossing_work;
      }
      if (rq.Contains(rank_points_[e]) && corpus_->ContainsAll(e, kws)) {
        if (stats != nullptr) ++stats->results;
        if (!emit(e)) return false;
      }
    }
    if (node.IsLeaf()) return true;

    uint32_t lids[8];
    KeywordId small_keyword = 0;
    if (!node.dir.ResolveLarge(kws, lids, &small_keyword)) {
      // Some query keyword is small at this node: its materialized list
      // bounds the remaining work by N_u^{1-1/k} (Section 3.3).
      if (options_.enable_materialized_lists) {
        const std::optional<std::span<const ObjectId>> list =
            node.dir.MaterializedList(small_keyword);
        if (!list.has_value()) return true;  // Keyword absent below this node.
        for (ObjectId e : *list) {
          if (!budget->Charge()) return Exhaust(stats);
          if (stats != nullptr) {
            ++stats->list_scanned;
            covered ? ++stats->covered_work : ++stats->crossing_work;
          }
          if (rq.Contains(rank_points_[e]) && corpus_->ContainsAll(e, kws)) {
            if (stats != nullptr) ++stats->results;
            if (!emit(e)) return false;
          }
        }
        return true;
      }
      // Ablation mode (A2): no materialized lists — fall back to scanning
      // the whole subtree, pruning by geometry only.
      return ScanSubtree(node_index, rq, kws, emit, stats, budget);
    }

    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child < 0) continue;
      // Pull the child node's line while the tuple registry is probed; the
      // cell test and recursive visit touch it a few instructions later.
      KWSC_PREFETCH(&nodes_[child]);
      if (options_.enable_tuple_pruning &&
          !node.dir.ChildTupleNonEmpty(c, {lids, kws.size()})) {
        if (stats != nullptr) ++stats->tuple_pruned;
        continue;
      }
      if (!nodes_[child].cell.Intersects(rq)) {
        if (stats != nullptr) ++stats->geom_pruned;
        continue;
      }
      if (!Visit(child, rq, kws, emit, stats, budget)) return false;
    }
    return true;
  }

  template <typename Emit>
  bool ScanSubtree(uint32_t node_index, const RankBox& rq,
                   std::span<const KeywordId> kws, Emit& emit,
                   QueryStats* stats, OpsBudget* budget) const {
    const Node& node = nodes_[node_index];
    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child < 0) continue;
      KWSC_PREFETCH(&nodes_[child]);
      if (!nodes_[child].cell.Intersects(rq)) continue;
      const Node& child_node = nodes_[child];
      for (ObjectId e : child_node.dir.pivots()) {
        if (!budget->Charge()) return Exhaust(stats);
        if (stats != nullptr) ++stats->list_scanned;
        if (rq.Contains(rank_points_[e]) && corpus_->ContainsAll(e, kws)) {
          if (stats != nullptr) ++stats->results;
          if (!emit(e)) return false;
        }
      }
      if (!ScanSubtree(child, rq, kws, emit, stats, budget)) return false;
    }
    return true;
  }

  static bool Exhaust(QueryStats* stats) {
    if (stats != nullptr) stats->budget_exhausted = true;
    return false;
  }

  const Corpus* corpus_;
  FrameworkOptions options_;
  RankSpace<D, Scalar> rank_;
  // Owned after a build or v1 load; a zero-copy view into mmap_ after
  // LoadFlat.
  OwnedSpan<Point<D, int64_t>> rank_points_;
  std::vector<Node> nodes_;
  // Keeps the mapped bytes every flat view points into alive.
  std::shared_ptr<const MmapFile> mmap_;
};

// The persisted d=2 instantiations: the KWO2 flat root and its rank-cell
// node record (FORMATS.lock locks their layouts under format orp-kw).
KWSC_ABI_STRUCT_AS(OrpKwFlatRoot2, OrpKwIndex<2>::FlatRoot);
KWSC_ABI_STRUCT_AS(OrpKwFlatNodeRec2, FlatNodeRec<Box<2, int64_t>>);

}  // namespace kwsc

#endif  // KWSC_CORE_ORP_KW_H_
