// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// ORP-KW: orthogonal range reporting with keywords (Theorem 1, Section 3).
//
// The index applies the paper's transformation framework to a kd-tree:
//   * coordinates are reduced to rank space (Section 3.4), which removes all
//     degeneracies — every object has distinct integer coordinates per
//     dimension;
//   * the tree splits by *document weight* (the verbose-set construction of
//     Section 3.2: an object counts |e.Doc| times), so N_u = O(N / 2^level);
//   * the object whose coordinate defines the split line becomes the node's
//     pivot set (it lies on the boundary of both child cells);
//   * each node carries a NodeDirectory: large-keyword table, per-child
//     non-empty k-tuple registry, and materialized lists.
//
// A query descends from the root while all k keywords remain large, pruning
// children whose cells miss the query rectangle or whose k-tuple
// intersection is empty; at the first node where a keyword turns small it
// scans that keyword's materialized list (size < N_u^{1-1/k}) and stops.
// Query time is O(N^{1-1/k} (1 + OUT^{1/k})) for d <= 2 (Theorem 1).
//
// The same code runs for any constant d; for d >= 3 the crossing-sensitivity
// guarantee weakens (Section 3.5) and core/dim_reduction.h restores it.

#ifndef KWSC_CORE_ORP_KW_H_
#define KWSC_CORE_ORP_KW_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/memory.h"
#include "common/ops_budget.h"
#include "common/serialize.h"
#include "core/framework.h"
#include "core/node_directory.h"
#include "geom/box.h"
#include "geom/point.h"
#include "geom/rank_space.h"
#include "text/corpus.h"

namespace kwsc {

template <int D, typename Scalar = double>
class OrpKwIndex {
 public:
  using PointType = Point<D, Scalar>;
  using BoxType = Box<D, Scalar>;
  using RankBox = Box<D, int64_t>;

  /// Builds the index over `points` (one per corpus object, same order).
  /// `corpus` must outlive the index.
  OrpKwIndex(std::span<const PointType> points, const Corpus* corpus,
             FrameworkOptions options)
      : corpus_(corpus), options_(options), rank_(points) {
    KWSC_CHECK(corpus != nullptr);
    KWSC_CHECK_MSG(points.size() == corpus->num_objects(),
                   "points (%zu) and corpus (%zu) disagree", points.size(),
                   corpus->num_objects());
    KWSC_CHECK_MSG(options_.k >= 2 && options_.k <= 8,
                   "k must be in [2, 8], got %d", options_.k);
    rank_points_.resize(points.size());
    for (uint32_t e = 0; e < points.size(); ++e) {
      rank_points_[e] = rank_.ToRank(e);
    }
    if (!points.empty()) {
      std::vector<ObjectId> active(points.size());
      std::iota(active.begin(), active.end(), 0);
      DirectoryBuilder builder(corpus_, options_);
      nodes_.reserve(2 * points.size() / options_.leaf_objects + 2);
      BuildNode(&active, RankBox::Everything(), /*level=*/0,
                /*inherited=*/nullptr, &builder);
    }
  }

  int k() const { return options_.k; }
  uint64_t total_weight() const { return corpus_->total_weight(); }
  size_t num_nodes() const { return nodes_.size(); }
  const Corpus& corpus() const { return *corpus_; }

  /// Reports q ∩ D(w1,...,wk). `keywords` must hold exactly k distinct
  /// keywords.
  std::vector<ObjectId> Query(const BoxType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    std::vector<ObjectId> out;
    QueryEmit(q, keywords,
              [&out](ObjectId e) {
                out.push_back(e);
                return true;
              },
              stats, budget);
    return out;
  }

  /// Streaming variant; `emit` returns false to stop the query early.
  template <typename Emit>
  void QueryEmit(const BoxType& q, std::span<const KeywordId> keywords,
                 Emit&& emit, QueryStats* stats = nullptr,
                 OpsBudget* budget = nullptr) const {
    const std::vector<KeywordId> sorted =
        CanonicalizeQueryKeywords(keywords, options_.k);
    const RankBox rq = rank_.ToRankBox(q);
    QueryRankEmit(rq, sorted, emit, stats, budget);
  }

  /// Query already expressed in rank space (used by the RR-KW reduction and
  /// by tests exercising Section 3.4 directly). `sorted_keywords` must be
  /// sorted and distinct.
  template <typename Emit>
  void QueryRankEmit(const RankBox& rq,
                     std::span<const KeywordId> sorted_keywords, Emit&& emit,
                     QueryStats* stats = nullptr,
                     OpsBudget* budget = nullptr) const {
    if (nodes_.empty() || !rq.Valid()) return;
    OpsBudget unlimited;
    if (budget == nullptr) budget = &unlimited;
    Visit(0, rq, sorted_keywords, emit, stats, budget);
  }

  /// "Does q ∩ D(w1,...,wk) have at least t objects?" — the budgeted
  /// detection primitive of Corollary 4's proof: run a reporting query; if it
  /// exceeds its worst-case budget for output size t, the answer must be yes.
  bool ContainsAtLeast(const BoxType& q, std::span<const KeywordId> keywords,
                       uint64_t t, QueryStats* stats = nullptr) const {
    KWSC_CHECK(t >= 1);
    OpsBudget budget(ThresholdQueryBudget(total_weight(), options_.k, t));
    uint64_t found = 0;
    QueryEmit(q, keywords,
              [&found, t](ObjectId) { return ++found < t; }, stats, &budget);
    return found >= t || budget.Exhausted();
  }

  /// Emptiness query in O(N^{1-1/k}) expected work: run a reporting query
  /// under the OUT = 0 budget; exhausting it certifies non-emptiness
  /// (footnote 4 of the paper).
  bool Empty(const BoxType& q, std::span<const KeywordId> keywords,
             QueryStats* stats = nullptr) const {
    OpsBudget budget(ThresholdQueryBudget(total_weight(), options_.k, 1));
    bool witness = false;
    QueryEmit(q, keywords,
              [&witness](ObjectId) {
                witness = true;
                return false;
              },
              stats, &budget);
    return !witness && !budget.Exhausted();
  }

  /// |q ∩ D(w1,...,wk)| by full enumeration (counting cannot do better than
  /// reporting in this framework; the paper never claims otherwise).
  uint64_t Count(const BoxType& q, std::span<const KeywordId> keywords,
                 QueryStats* stats = nullptr) const {
    uint64_t count = 0;
    QueryEmit(q, keywords, [&count](ObjectId) {
      ++count;
      return true;
    }, stats);
    return count;
  }

  /// Converts an original-space box to rank space (exposed for reductions).
  RankBox ToRankBox(const BoxType& q) const { return rank_.ToRankBox(q); }

  /// Rank-space image of an object's point.
  const Point<D, int64_t>& RankPointOf(ObjectId e) const {
    return rank_points_[e];
  }

  size_t MemoryBytes() const {
    size_t total = rank_.MemoryBytes() + VectorBytes(rank_points_) +
                   nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_) total += node.dir.MemoryBytes();
    return total;
  }

  /// Maximum node level (root = 0); the analysis expects O(log N).
  int Depth() const {
    int depth = 0;
    for (const Node& node : nodes_) depth = std::max(depth, int{node.level});
    return depth;
  }

  /// Persists the full index (construction is expensive; reloading is a
  /// sequential read). The corpus is saved separately (Corpus::Save) and
  /// supplied again on Load; a fingerprint guards against mismatches.
  void Save(std::ostream* out) const {
    OutputArchive ar(out);
    ar.Magic("KWO1", /*version=*/1);
    ar.Pod<uint32_t>(static_cast<uint32_t>(D));
    ar.Pod(options_);
    ar.Pod<uint64_t>(corpus_->num_objects());
    ar.Pod<uint64_t>(corpus_->total_weight());
    rank_.Save(&ar);
    ar.Vec(rank_points_);
    ar.Pod<uint64_t>(nodes_.size());
    for (const Node& node : nodes_) {
      ar.Pod(node.cell);
      ar.Pod(node.child[0]);
      ar.Pod(node.child[1]);
      ar.Pod(node.level);
      node.dir.Save(&ar);
    }
  }

  /// Rebuilds an index previously written by Save. `corpus` must be the
  /// same corpus (same objects in the same order) the index was built over.
  static OrpKwIndex Load(std::istream* in, const Corpus* corpus) {
    KWSC_CHECK(corpus != nullptr);
    InputArchive ar(in);
    const uint32_t version = ar.Magic("KWO1");
    KWSC_CHECK_MSG(version == 1, "unsupported index version %u", version);
    KWSC_CHECK_MSG(ar.Pod<uint32_t>() == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    OrpKwIndex index(corpus);
    index.options_ = ar.Pod<FrameworkOptions>();
    KWSC_CHECK_MSG(ar.Pod<uint64_t>() == corpus->num_objects(),
                   "corpus object count mismatch");
    KWSC_CHECK_MSG(ar.Pod<uint64_t>() == corpus->total_weight(),
                   "corpus weight mismatch");
    index.rank_.Load(&ar);
    index.rank_points_ = ar.Vec<Point<D, int64_t>>();
    const uint64_t num_nodes = ar.Pod<uint64_t>();
    index.nodes_.resize(num_nodes);
    for (Node& node : index.nodes_) {
      node.cell = ar.Pod<RankBox>();
      node.child[0] = ar.Pod<int32_t>();
      node.child[1] = ar.Pod<int32_t>();
      node.level = ar.Pod<int16_t>();
      node.dir.Load(&ar);
    }
    return index;
  }

 private:
  // Shell constructor used by Load.
  explicit OrpKwIndex(const Corpus* corpus) : corpus_(corpus) {}

  struct Node {
    RankBox cell;
    NodeDirectory dir;
    int32_t child[2] = {-1, -1};
    int16_t level = 0;
    bool IsLeaf() const { return child[0] < 0 && child[1] < 0; }
  };

  uint32_t BuildNode(std::vector<ObjectId>* active, const RankBox& cell,
                     int level, const std::vector<KeywordId>* inherited,
                     DirectoryBuilder* builder) {
    const uint32_t index = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[index].cell = cell;
    nodes_[index].level = static_cast<int16_t>(level);

    if (active->size() <= static_cast<size_t>(options_.leaf_objects)) {
      builder->BuildLeaf(*active, &nodes_[index].dir);
      return index;
    }

    // Weight-balanced split on the level's dimension: sort the active set by
    // rank coordinate and cut at the object where the prefix weight reaches
    // half. That object is the pivot — it sits on the split line, i.e. the
    // boundary of both child cells (Section 3.2's push-down rule).
    const int dim = level % D;
    std::sort(active->begin(), active->end(), [&](ObjectId a, ObjectId b) {
      return rank_points_[a][dim] < rank_points_[b][dim];
    });
    uint64_t total = 0;
    for (ObjectId e : *active) total += corpus_->doc(e).size();
    uint64_t prefix = 0;
    size_t median = 0;
    for (size_t i = 0; i < active->size(); ++i) {
      prefix += corpus_->doc((*active)[i]).size();
      if (2 * prefix >= total) {
        median = i;
        break;
      }
    }
    const ObjectId pivot = (*active)[median];
    const int64_t split = rank_points_[pivot][dim];

    std::vector<std::vector<ObjectId>> child_active(2);
    child_active[0].assign(active->begin(), active->begin() + median);
    child_active[1].assign(active->begin() + median + 1, active->end());

    std::vector<KeywordId> next_inherited;
    builder->Build(*active, child_active, inherited, {pivot},
                   &nodes_[index].dir, &next_inherited);
    // The active list is no longer needed below this point; free it before
    // recursing so peak memory stays O(N) along a root-to-leaf path.
    active->clear();
    active->shrink_to_fit();

    RankBox left_cell = cell;
    left_cell.hi[dim] = split - 1;
    RankBox right_cell = cell;
    right_cell.lo[dim] = split + 1;

    int32_t left = -1;
    int32_t right = -1;
    if (!child_active[0].empty()) {
      left = static_cast<int32_t>(BuildNode(&child_active[0], left_cell,
                                            level + 1, &next_inherited,
                                            builder));
    }
    if (!child_active[1].empty()) {
      right = static_cast<int32_t>(BuildNode(&child_active[1], right_cell,
                                             level + 1, &next_inherited,
                                             builder));
    }
    nodes_[index].child[0] = left;
    nodes_[index].child[1] = right;
    return index;
  }

  template <typename Emit>
  bool Visit(uint32_t node_index, const RankBox& rq,
             std::span<const KeywordId> kws, Emit& emit, QueryStats* stats,
             OpsBudget* budget) const {
    const Node& node = nodes_[node_index];
    const bool covered = node.cell.InsideOf(rq);
    if (stats != nullptr) {
      ++stats->nodes_visited;
      covered ? ++stats->covered_nodes : ++stats->crossing_nodes;
    }
    if (!budget->Charge()) return Exhaust(stats);

    // Examine the pivot set.
    for (ObjectId e : node.dir.pivots()) {
      if (!budget->Charge()) return Exhaust(stats);
      if (stats != nullptr) {
        ++stats->pivot_checks;
        covered ? ++stats->covered_work : ++stats->crossing_work;
      }
      if (rq.Contains(rank_points_[e]) && corpus_->ContainsAll(e, kws)) {
        if (stats != nullptr) ++stats->results;
        if (!emit(e)) return false;
      }
    }
    if (node.IsLeaf()) return true;

    uint32_t lids[8];
    KeywordId small_keyword = 0;
    if (!node.dir.ResolveLarge(kws, lids, &small_keyword)) {
      // Some query keyword is small at this node: its materialized list
      // bounds the remaining work by N_u^{1-1/k} (Section 3.3).
      if (options_.enable_materialized_lists) {
        const std::vector<ObjectId>* list =
            node.dir.MaterializedList(small_keyword);
        if (list == nullptr) return true;  // Keyword absent below this node.
        for (ObjectId e : *list) {
          if (!budget->Charge()) return Exhaust(stats);
          if (stats != nullptr) {
            ++stats->list_scanned;
            covered ? ++stats->covered_work : ++stats->crossing_work;
          }
          if (rq.Contains(rank_points_[e]) && corpus_->ContainsAll(e, kws)) {
            if (stats != nullptr) ++stats->results;
            if (!emit(e)) return false;
          }
        }
        return true;
      }
      // Ablation mode (A2): no materialized lists — fall back to scanning
      // the whole subtree, pruning by geometry only.
      return ScanSubtree(node_index, rq, kws, emit, stats, budget);
    }

    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child < 0) continue;
      if (options_.enable_tuple_pruning &&
          !node.dir.ChildTupleNonEmpty(c, {lids, kws.size()})) {
        if (stats != nullptr) ++stats->tuple_pruned;
        continue;
      }
      if (!nodes_[child].cell.Intersects(rq)) {
        if (stats != nullptr) ++stats->geom_pruned;
        continue;
      }
      if (!Visit(child, rq, kws, emit, stats, budget)) return false;
    }
    return true;
  }

  template <typename Emit>
  bool ScanSubtree(uint32_t node_index, const RankBox& rq,
                   std::span<const KeywordId> kws, Emit& emit,
                   QueryStats* stats, OpsBudget* budget) const {
    const Node& node = nodes_[node_index];
    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child < 0) continue;
      if (!nodes_[child].cell.Intersects(rq)) continue;
      const Node& child_node = nodes_[child];
      for (ObjectId e : child_node.dir.pivots()) {
        if (!budget->Charge()) return Exhaust(stats);
        if (stats != nullptr) ++stats->list_scanned;
        if (rq.Contains(rank_points_[e]) && corpus_->ContainsAll(e, kws)) {
          if (stats != nullptr) ++stats->results;
          if (!emit(e)) return false;
        }
      }
      if (!ScanSubtree(child, rq, kws, emit, stats, budget)) return false;
    }
    return true;
  }

  static bool Exhaust(QueryStats* stats) {
    if (stats != nullptr) stats->budget_exhausted = true;
    return false;
  }

  const Corpus* corpus_;
  FrameworkOptions options_;
  RankSpace<D, Scalar> rank_;
  std::vector<Point<D, int64_t>> rank_points_;
  std::vector<Node> nodes_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_ORP_KW_H_
