// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// SP-KW over the 2-D ham-sandwich partition tree (Appendix D, d = 2).
//
// The substrate follows the partition-tree requirements of Appendix D.1:
// convex cells that cover their points, children partitioning the parent's
// cell, and |P_u| = O(N / f^level). Each node cuts its cell with two lines
// (parttree/ham_sandwich.h) into four children; objects landing *on* a cut
// line form the pivot set — the same boundary/interior distinction that
// defines active and pivot sets in Section 3.2 / Appendix D.2. Any query
// line crosses at most three of the four children, which is what bounds the
// crossing sensitivity (Appendix D.3; measured by bench_crossing).

#ifndef KWSC_CORE_SP_KW_HS_H_
#define KWSC_CORE_SP_KW_HS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/ops_budget.h"
#include "core/framework.h"
#include "core/node_directory.h"
#include "geom/halfspace.h"
#include "geom/point.h"
#include "geom/polygon2d.h"
#include "text/corpus.h"

namespace kwsc {

class SpKwHsIndex {
 public:
  using PointType = Point<2>;
  using QueryType = ConvexQuery<2>;

  /// Builds over `points` (one per corpus object). `corpus` must outlive the
  /// index.
  SpKwHsIndex(std::span<const PointType> points, const Corpus* corpus,
              FrameworkOptions options);

  int k() const { return options_.k; }
  size_t num_nodes() const { return nodes_.size(); }
  uint64_t total_weight() const;

  /// Reports every object satisfying all constraints of `q` whose document
  /// contains all k keywords.
  std::vector<ObjectId> Query(const QueryType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const;

  /// Budgeted threshold detection, as in SpKwBoxIndex::ContainsAtLeast.
  bool ContainsAtLeast(const QueryType& q,
                       std::span<const KeywordId> keywords, uint64_t t,
                       QueryStats* stats = nullptr) const;

  size_t MemoryBytes() const;

 private:
  static constexpr int kFanout = 4;

  struct Node {
    ConvexPolygon2D cell;
    NodeDirectory dir;
    int32_t child[kFanout] = {-1, -1, -1, -1};
    int16_t level = 0;
    bool IsLeaf() const {
      return child[0] < 0 && child[1] < 0 && child[2] < 0 && child[3] < 0;
    }
  };

  uint32_t BuildNode(std::vector<ObjectId>* active, ConvexPolygon2D cell,
                     int level, const std::vector<KeywordId>* inherited,
                     DirectoryBuilder* builder);

  // 0 = disjoint, 1 = crossing, 2 = cell inside the query region.
  static int Classify(const ConvexPolygon2D& cell, const QueryType& q);

  bool Visit(uint32_t node_index, const QueryType& q,
             std::span<const KeywordId> kws,
             const std::function<bool(ObjectId)>& emit, QueryStats* stats,
             OpsBudget* budget) const;

  bool ScanSubtree(uint32_t node_index, const QueryType& q,
                   std::span<const KeywordId> kws,
                   const std::function<bool(ObjectId)>& emit,
                   QueryStats* stats, OpsBudget* budget) const;

  static bool Exhaust(QueryStats* stats);

  const Corpus* corpus_;
  FrameworkOptions options_;
  std::vector<PointType> points_;
  std::vector<Node> nodes_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_SP_KW_HS_H_
