// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The format-version table: one named constant per on-disk / wire format.
//
// This is the single declaration the ABI drift gate keys off (DESIGN.md
// §5h). Every `kwsc-abi: format` annotation below declares one format:
//
//   /// kwsc-abi: format <key> [tags=TAG1,TAG2] files=<substr1,substr2>
//
// `key` names the format in FORMATS.lock; `tags` lists the 4-char magic /
// family tags the covered files may spell (tools/kwsc_abi cross-checks
// every Magic("...") literal and FlatFamilyTag('.','.','.','.') in a
// covered file against this list); `files` is a comma-separated list of
// repo-relative path substrings assigning source files to the format.
// Every file contributing a manifest section (a registered struct or a
// Save/Load op sequence) must be covered by exactly one format here —
// tools/kwsc_abi refuses to emit a manifest otherwise.
//
// The workflow the abi-gate enforces: any change to a format's locked
// layout (fields, offsets, op sequences, slab sequences) must land together
// with a bump of that format's constant below, and regenerating
// FORMATS.lock (tools/run_abi.sh --update) must be committed in the same
// change. Versions only grow.
//
// v1 stream archives write their constant through Magic(tag, version); the
// flat KWF2 container and the serve wire model carry no version byte on
// the wire, so their constants exist purely as the manifest's bump target.

#ifndef KWSC_CORE_FORMAT_VERSIONS_H_
#define KWSC_CORE_FORMAT_VERSIONS_H_

#include <cstdint>

namespace kwsc {

/// kwsc-abi: format corpus tags=KWCP files=text/corpus
inline constexpr uint32_t kCorpusFormatVersion = 1;

/// kwsc-abi: format orp-kw tags=KWO1,KWO2 files=core/orp_kw
inline constexpr uint32_t kOrpKwFormatVersion = 1;

/// kwsc-abi: format sp-kw-box tags=KWS1,KWS2 files=core/sp_kw_box
inline constexpr uint32_t kSpKwBoxFormatVersion = 1;

/// kwsc-abi: format linf-nn tags=KWN1,KWN2 files=core/nn_linf
inline constexpr uint32_t kLinfNnFormatVersion = 1;

/// kwsc-abi: format l2-nn tags=KWL2 files=core/nn_l2
inline constexpr uint32_t kL2NnFormatVersion = 1;

/// kwsc-abi: format rr-kw tags=KWR2 files=core/rr_kw
inline constexpr uint32_t kRrKwFormatVersion = 1;

/// kwsc-abi: format srp-kw tags=KWP2 files=core/srp_kw
inline constexpr uint32_t kSrpKwFormatVersion = 1;

/// kwsc-abi: format ksi tags=KWK2 files=ksi/framework_ksi
inline constexpr uint32_t kKsiFormatVersion = 1;

/// The batch-dynamic checkpoint ("KWDY" v1 stream): registry + tombstones +
/// buffer + the level manifest; levels are rebuilt deterministically on
/// load (core/dynamic_index.h).
/// kwsc-abi: format dynamic-checkpoint tags=KWDY files=core/dynamic_index
inline constexpr uint32_t kDynamicCheckpointFormatVersion = 1;

/// Shared persisted substructures every family embeds: the framework
/// options image, NodeDirectory's stream and flat forms, the flat node
/// records and directory pools, rank-space images, and the geometric Pods
/// (Point/Box) slabs are built from. Bump when any shared layout changes.
/// kwsc-abi: format framework-core files=core/framework.h,core/node_directory,core/flat_format,geom/rank_space,geom/point,geom/box
inline constexpr uint32_t kFrameworkCoreFormatVersion = 1;

/// The container layers themselves: the v1 stream archive (Magic/Pod/Vec
/// framing) and the v2 mmap-native flat arena ("KWF2" header, 64-byte slab
/// alignment, SlabRef framing).
/// kwsc-abi: format flat-container tags=KWF2 files=common/flat_arena,common/serialize
inline constexpr uint32_t kFlatContainerFormatVersion = 2;

/// The serve-layer wire-cost model's message framing (DESIGN.md §6c).
/// kwsc-abi: format serve-wire files=serve/merge
inline constexpr uint32_t kServeWireFormatVersion = 1;

}  // namespace kwsc

#endif  // KWSC_CORE_FORMAT_VERSIONS_H_
