// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Insertions over the static Theorem-1 index via the logarithmic method
// (Bentley–Saxe decomposition).
//
// The paper's indexes are static — updates are outside its scope. ORP-KW is
// a *decomposable* search problem (the answer over a union of parts is the
// union of the answers), so the classic transformation applies: maintain a
// small insertion buffer plus a sequence of static OrpKwIndex instances of
// geometrically growing sizes; an insertion that overflows the buffer
// rebuilds the smallest run of full levels into the first empty one. Each
// object is rebuilt O(log n) times, so insertion costs O(polylog n)
// amortized index-build work, and a query fans out to the buffer plus
// O(log n) static indexes — multiplying the static query bound by O(log n).
//
// Storage: every inserted object lives exactly once in the global registry
// (all_docs_/all_points_, indexed by insertion id). The buffer is just the
// id list buffer_ids_ pointing into that registry, and each static level
// keeps the copies its OrpKwIndex needs; MemoryBytes() charges the registry
// once plus the per-level copies.
//
// Budgeted queries (footnote 4): Query takes an optional OpsBudget shared
// across the buffer scan and every level. Budgeted termination is global —
// once any component exhausts the budget, the remaining levels are not
// visited at all (the fan-out short-circuits, mirroring the static index's
// early return).

#ifndef KWSC_CORE_DYNAMIC_ORP_KW_H_
#define KWSC_CORE_DYNAMIC_ORP_KW_H_

#include <memory>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/ops_budget.h"
#include "core/framework.h"
#include "core/orp_kw.h"
#include "geom/box.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

template <int D, typename Scalar = double>
class DynamicOrpKwIndex {
 public:
  using PointType = Point<D, Scalar>;
  using BoxType = Box<D, Scalar>;

  explicit DynamicOrpKwIndex(FrameworkOptions options,
                             size_t buffer_capacity = 64)
      : options_(options),
        buffer_capacity_(std::max<size_t>(1, buffer_capacity)) {
    KWSC_CHECK(options_.k >= 2 && options_.k <= 8);
  }

  /// Inserts one object; returns its id (insertion order, dense from 0).
  /// The document must be non-empty.
  ObjectId Insert(const PointType& point, Document doc) {
    KWSC_CHECK_MSG(!doc.empty(), "objects need non-empty documents");
    const ObjectId id = static_cast<ObjectId>(num_objects_++);
    buffer_ids_.push_back(id);
    all_docs_.push_back(std::move(doc));
    all_points_.push_back(point);
    if (buffer_ids_.size() >= buffer_capacity_) Carry();
    return id;
  }

  size_t num_objects() const { return num_objects_; }
  size_t num_levels() const { return levels_.size(); }

  /// The number of non-empty static levels (exposed so tests can check the
  /// binary-counter shape of the decomposition).
  size_t ActiveLevels() const {
    size_t active = 0;
    for (const auto& level : levels_) active += level != nullptr;
    return active;
  }

  /// Reports q ∩ D(w1,...,wk) over everything inserted so far, as global
  /// insertion-order ids. `budget`, when non-null, caps the work across the
  /// whole decomposition: the buffer scan and every level charge the same
  /// budget, and the first component to exhaust it ends the query — no
  /// further level is visited (stats->budget_exhausted reports the cut).
  std::vector<ObjectId> Query(const BoxType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    const std::vector<KeywordId> sorted =
        CanonicalizeQueryKeywords(keywords, options_.k);
    OpsBudget unlimited;
    if (budget == nullptr) budget = &unlimited;
    std::vector<ObjectId> out;
    // Buffer: brute scan (it holds O(1) objects by construction).
    for (ObjectId id : buffer_ids_) {
      if (!budget->Charge()) {
        if (stats != nullptr) stats->budget_exhausted = true;
        return out;
      }
      if (stats != nullptr) ++stats->pivot_checks;
      if (q.Contains(all_points_[id]) &&
          all_docs_[id].ContainsAll(sorted.data(), sorted.size())) {
        out.push_back(id);
      }
    }
    // Static levels: delegate and translate local ids. Budgeted termination
    // is global, not per level: an exhausted budget stops the fan-out.
    for (const auto& level : levels_) {
      if (level == nullptr) continue;
      level->index->QueryEmit(
          q, sorted,
          [&](ObjectId local) {
            out.push_back(level->id_map[local]);
            return true;
          },
          stats, budget);
      if (budget->Exhausted()) {
        if (stats != nullptr) stats->budget_exhausted = true;
        break;
      }
    }
    return out;
  }

  size_t MemoryBytes() const {
    size_t total = VectorBytes(buffer_ids_) + VectorBytes(all_points_);
    for (const Document& d : all_docs_) total += d.MemoryBytes();
    for (const auto& level : levels_) {
      if (level == nullptr) continue;
      total += level->corpus->MemoryBytes() + level->index->MemoryBytes() +
               VectorBytes(level->id_map) + VectorBytes(level->points);
    }
    return total;
  }

 private:
  struct Level {
    std::unique_ptr<Corpus> corpus;
    std::vector<PointType> points;
    std::vector<ObjectId> id_map;  // Local id -> global id.
    std::unique_ptr<OrpKwIndex<D, Scalar>> index;
  };

  // Binary-counter carry: gather the buffer plus every consecutive full
  // level, rebuild them into the first empty slot.
  void Carry() {
    std::vector<ObjectId> ids = std::move(buffer_ids_);
    buffer_ids_.clear();
    std::vector<PointType> points;
    std::vector<Document> docs;
    points.reserve(ids.size());
    docs.reserve(ids.size());
    for (ObjectId id : ids) {
      points.push_back(all_points_[id]);
      docs.push_back(all_docs_[id]);
    }

    size_t slot = 0;
    while (slot < levels_.size() && levels_[slot] != nullptr) {
      Level& level = *levels_[slot];
      for (size_t i = 0; i < level.id_map.size(); ++i) {
        ids.push_back(level.id_map[i]);
        points.push_back(level.points[i]);
        docs.push_back(all_docs_[level.id_map[i]]);
      }
      levels_[slot] = nullptr;
      ++slot;
    }
    if (slot == levels_.size()) levels_.emplace_back(nullptr);

    auto level = std::make_unique<Level>();
    level->points = std::move(points);
    level->id_map = std::move(ids);
    level->corpus = std::make_unique<Corpus>(std::move(docs));
    level->index = std::make_unique<OrpKwIndex<D, Scalar>>(
        std::span<const PointType>(level->points), level->corpus.get(),
        options_);
    levels_[slot] = std::move(level);
  }

  FrameworkOptions options_;
  size_t buffer_capacity_;
  size_t num_objects_ = 0;

  // Buffered objects, as ids into the global registry below (the buffer owns
  // no copies of its own — see the storage note in the file header).
  std::vector<ObjectId> buffer_ids_;

  // Global object registry (documents/points by insertion id). The buffer
  // scan reads it directly; Document copies in levels are rebuilt from here.
  std::vector<Document> all_docs_;
  std::vector<PointType> all_points_;

  std::vector<std::unique_ptr<Level>> levels_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_DYNAMIC_ORP_KW_H_
