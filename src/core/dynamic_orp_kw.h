// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Insertions (and now deletions) over the static Theorem-1 index via the
// logarithmic method — the ORP-KW instantiation of the generic batch-dynamic
// layer.
//
// This header used to carry a hand-rolled single-family Bentley–Saxe
// implementation; that machinery now lives in core/dynamic_index.h,
// parameterized over any DynamizableFamily (core/contracts.h), with batched
// insert/delete, tombstones, background level merges, and epoch-snapshot
// concurrent reads. The alias below preserves the original name and the
// original semantics: constructed without a merge pool, carries run
// synchronously and the structure behaves exactly as the hand-rolled
// version did (tests/dynamic_test.cc passes unchanged).

#ifndef KWSC_CORE_DYNAMIC_ORP_KW_H_
#define KWSC_CORE_DYNAMIC_ORP_KW_H_

#include "core/dynamic_index.h"
#include "core/orp_kw.h"

namespace kwsc {

template <int D, typename Scalar = double>
using DynamicOrpKwIndex = DynamicIndex<OrpKwIndex<D, Scalar>>;

}  // namespace kwsc

#endif  // KWSC_CORE_DYNAMIC_ORP_KW_H_
