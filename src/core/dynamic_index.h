// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Generic batch-dynamic layer: the logarithmic method (Bentley–Saxe) over
// any DynamizableFamily, with tombstone deletes, background level merges,
// and epoch-snapshot concurrent reads.
//
// Every Table 1 family is a *decomposable* search problem — the answer over
// a union of parts is the union of the answers — so one transformation
// dynamizes them all: a small insertion buffer plus static indexes of
// geometrically growing capacities (slot s holds at most B * 2^s objects,
// where B is the buffer capacity). An insert that fills the buffer performs
// a binary-counter carry: the buffer and every consecutive full level are
// rebuilt into the first empty slot. Each object is rebuilt O(log n) times,
// so inserts cost O(polylog n) amortized build work; a query fans out to
// the buffer plus O(log n) static levels.
//
// Deletes are tombstones (the classic weak-deletion device): Delete marks
// the id dead in an immutable bitmap, queries filter dead ids at emit time,
// and the next carry that gathers a dead member physically drops it. Ids
// are never reused; the registry keeps every inserted object's document and
// geometry exactly once, tombstoned or not, so MemoryBytes() accounting is
// registry-once by construction.
//
// Concurrency (DESIGN.md §7): readers never touch writer state. Query
// acquires the current immutable Snapshot through an EpochPtr
// (common/epoch.h) — buffer entries, level pointers, and the tombstone
// bitmap are all frozen at publish time — and runs at full static-index
// speed. The writer mutates its private state under one Mutex and publishes
// a fresh snapshot after every batch. With a merge pool, carries build the
// new level *off* the lock on the ThreadPool while inserts, deletes, and
// queries proceed; the buffer is allowed to grow past capacity while a
// merge is in flight (at most one runs at a time) and the deferred carry
// drains when it completes. Without a pool, carries run synchronously, and
// the structure behaves exactly like the original hand-rolled
// DynamicOrpKwIndex (core/dynamic_orp_kw.h is now an alias for this
// template over OrpKwIndex).
//
// Budgeted queries (footnote 4): the OpsBudget is shared across the buffer
// scan and every level; the first component to exhaust it ends the query —
// no further level is visited.
//
// Persistence: SaveCheckpoint writes the "KWDY" v1 stream — registry,
// tombstones, buffer, and the level manifest (slot -> id list); levels are
// deterministically rebuilt on load, so the checkpoint costs O(n) bytes
// regardless of level count. Compact() rebuilds one static index over the
// live objects in insertion order; after quiescence its Save bytes are
// identical to a from-scratch build over the same object set
// (tests/dynamic_index_test.cc holds this as a hard invariant).

#ifndef KWSC_CORE_DYNAMIC_INDEX_H_
#define KWSC_CORE_DYNAMIC_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/abi.h"
#include "common/epoch.h"
#include "common/macros.h"
#include "common/memory.h"
#include "common/mutex.h"
#include "common/ops_budget.h"
#include "common/serialize.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/contracts.h"
#include "core/format_versions.h"
#include "core/framework.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

/// Fixed-size header of the "KWDY" dynamic checkpoint stream.
struct PersistedDynamicCheckpoint {
  uint64_t buffer_capacity;
  uint64_t num_objects;
  uint64_t live_objects;
  uint64_t num_slots;
};
KWSC_ABI_STRUCT(PersistedDynamicCheckpoint);

template <typename Family>
class DynamicIndex {
  static_assert(DynamizableFamily<Family>,
                "DynamicIndex requires the DynamizableFamily surface "
                "(core/contracts.h): DynamicGeomType, DynamicRegionType, "
                "MatchesRegion, span-construction, QueryEmit");

 public:
  using GeomType = typename Family::DynamicGeomType;
  using RegionType = typename Family::DynamicRegionType;
  // Legacy spellings kept for the ORP-KW alias (core/dynamic_orp_kw.h).
  using PointType = GeomType;
  using BoxType = RegionType;

  /// One immutable static level. Public so the auditor can walk the level
  /// set through DebugAuditView(); never mutated after construction.
  struct Level {
    std::unique_ptr<Corpus> corpus;
    std::vector<GeomType> geoms;
    std::vector<ObjectId> id_map;  // Local id -> global id.
    std::unique_ptr<Family> index;
  };

  /// `merge_pool`, when non-null, runs level merges in the background:
  /// Insert returns as soon as the carry is *scheduled*, and queries keep
  /// answering from the previous snapshot until the merged level publishes.
  /// A null pool runs carries synchronously inside Insert.
  explicit DynamicIndex(FrameworkOptions options, size_t buffer_capacity = 64,
                        ThreadPool* merge_pool = nullptr)
      : options_(options),
        buffer_capacity_(std::max<size_t>(1, buffer_capacity)),
        merge_pool_(merge_pool),
        dead_(std::make_shared<const std::vector<uint8_t>>()) {
    KWSC_CHECK(options_.k >= 2 && options_.k <= 8);
    if (merge_pool_ != nullptr) merge_tasks_.emplace(merge_pool_);
  }

  ~DynamicIndex() {
    WaitQuiescent();
    if (merge_tasks_.has_value()) merge_tasks_->Wait();
  }

  DynamicIndex(const DynamicIndex&) = delete;
  DynamicIndex& operator=(const DynamicIndex&) = delete;

  /// Inserts one object; returns its id (insertion order, dense from 0).
  /// The document must be non-empty. Ids are never reused, including after
  /// Delete.
  ObjectId Insert(const GeomType& geom, Document doc) {
    KWSC_CHECK_MSG(!doc.empty(), "objects need non-empty documents");
    MutexLock lock(&mu_);
    const ObjectId id = AppendLocked(geom, std::move(doc));
    MaybeCarryLocked();
    PublishLocked();
    return id;
  }

  /// Batched insert: appends every object, carries as many times as the
  /// capacity demands, and publishes one snapshot at the end (readers see
  /// the whole batch at once). Returns the id of the first object; the rest
  /// follow densely.
  ObjectId InsertBatch(std::span<const GeomType> geoms,
                       std::vector<Document> docs) {
    KWSC_CHECK_MSG(geoms.size() == docs.size(),
                   "batch geometry (%zu) and documents (%zu) disagree",
                   geoms.size(), docs.size());
    KWSC_CHECK(!geoms.empty());
    MutexLock lock(&mu_);
    const ObjectId first = static_cast<ObjectId>(num_objects_);
    for (size_t i = 0; i < geoms.size(); ++i) {
      KWSC_CHECK_MSG(!docs[i].empty(), "objects need non-empty documents");
      AppendLocked(geoms[i], std::move(docs[i]));
      MaybeCarryLocked();
    }
    PublishLocked();
    return first;
  }

  /// Tombstones one object. Returns true if `id` was live. The registry
  /// entry is retained (ids are never reused); the object stops matching
  /// queries as soon as the snapshot publishes, and is physically dropped by
  /// the next carry that gathers its level.
  bool Delete(ObjectId id) {
    MutexLock lock(&mu_);
    const size_t marked = MarkDeadLocked(std::span<const ObjectId>(&id, 1));
    PublishLocked();
    return marked > 0;
  }

  /// Batched tombstone: one bitmap copy and one snapshot publish for the
  /// whole batch. Returns how many of `ids` were live.
  size_t DeleteBatch(std::span<const ObjectId> ids) {
    MutexLock lock(&mu_);
    const size_t marked = MarkDeadLocked(ids);
    PublishLocked();
    return marked;
  }

  /// Reports q ∩ D(w1,...,wk) over the *live* objects, as global
  /// insertion-order ids. Runs entirely against the current immutable
  /// snapshot — safe to call from any thread while inserts, deletes, and
  /// background merges proceed. `budget`, when non-null, caps the work
  /// across the whole decomposition: the buffer scan and every level charge
  /// the same budget, and the first component to exhaust it ends the query
  /// (stats->budget_exhausted reports the cut).
  std::vector<ObjectId> Query(const RegionType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    const std::vector<KeywordId> sorted =
        CanonicalizeQueryKeywords(keywords, options_.k);
    OpsBudget unlimited;
    if (budget == nullptr) budget = &unlimited;
    std::vector<ObjectId> out;
    const std::shared_ptr<const Snapshot> snap = snapshot_.Acquire();
    if (snap == nullptr) return out;
    const std::vector<uint8_t>& dead = *snap->dead;
    const auto is_dead = [&dead](ObjectId id) {
      return id < dead.size() && dead[id] != 0;
    };
    // Buffer: brute scan (it holds O(B) objects by construction).
    for (const BufferEntry& entry : snap->buffer) {
      if (!budget->Charge()) {
        if (stats != nullptr) stats->budget_exhausted = true;
        return out;
      }
      if (stats != nullptr) ++stats->pivot_checks;
      if (!is_dead(entry.id) && Family::MatchesRegion(q, entry.geom) &&
          entry.doc->ContainsAll(sorted.data(), sorted.size())) {
        out.push_back(entry.id);
      }
    }
    // Static levels: delegate and translate local ids. Budgeted termination
    // is global, not per level: an exhausted budget stops the fan-out.
    for (const std::shared_ptr<const Level>& level : snap->levels) {
      if (level == nullptr) continue;
      level->index->QueryEmit(
          q, sorted,
          [&](ObjectId local) {
            const ObjectId global = level->id_map[local];
            if (!is_dead(global)) out.push_back(global);
            return true;
          },
          stats, budget);
      if (budget->Exhausted()) {
        if (stats != nullptr) stats->budget_exhausted = true;
        break;
      }
    }
    return out;
  }

  int k() const { return options_.k; }
  size_t buffer_capacity() const { return buffer_capacity_; }
  const FrameworkOptions& options() const { return options_; }

  /// Total inserted so far, tombstoned included (ids are dense in
  /// [0, num_objects())).
  size_t num_objects() const {
    MutexLock lock(&mu_);
    return num_objects_;
  }

  /// Objects inserted and not tombstoned.
  size_t live_objects() const {
    MutexLock lock(&mu_);
    return live_objects_;
  }

  size_t num_levels() const {
    MutexLock lock(&mu_);
    return levels_.size();
  }

  /// The number of non-empty static levels (exposed so tests can check the
  /// binary-counter shape of the decomposition).
  size_t ActiveLevels() const {
    MutexLock lock(&mu_);
    size_t active = 0;
    for (const auto& level : levels_) active += level != nullptr;
    return active;
  }

  /// True while a background carry is rebuilding a level. Always false
  /// without a merge pool.
  bool MergeInFlight() const {
    MutexLock lock(&mu_);
    return merge_inflight_;
  }

  /// Blocks until no background merge is in flight and no carry is owed
  /// (the buffer is back under capacity). A no-op without a merge pool.
  void WaitQuiescent() {
    MutexLock lock(&mu_);
    while (merge_inflight_) quiescent_cv_.Wait(&mu_);
  }

  /// Registry-once accounting: every inserted object's document and
  /// geometry is charged exactly once (tombstoned ids included — the
  /// registry retains them), plus the per-level copies the static indexes
  /// own. Published snapshots share the level and document storage counted
  /// here; their private state is O(B) buffer entries of pointers.
  size_t MemoryBytes() const {
    MutexLock lock(&mu_);
    size_t total = VectorBytes(buffer_ids_) + VectorBytes(all_geoms_) +
                   VectorBytes(all_docs_) + VectorBytes(*dead_);
    for (const auto& doc : all_docs_) total += doc->MemoryBytes();
    for (const auto& level : levels_) {
      if (level == nullptr) continue;
      total += level->corpus->MemoryBytes() + level->index->MemoryBytes() +
               VectorBytes(level->id_map) + VectorBytes(level->geoms);
    }
    return total;
  }

  // ---- Persistence ("KWDY" v1; core/format_versions.h) ----

  /// Writes registry + tombstones + buffer + the level manifest. Levels are
  /// rebuilt deterministically on load, so the stream is O(n) bytes. Safe
  /// to call mid-merge: the writer state is always a complete view (a
  /// carry's sources stay in place until its level is installed).
  void SaveCheckpoint(std::ostream* out) const {
    MutexLock lock(&mu_);
    OutputArchive ar(out);
    ar.Magic("KWDY", kDynamicCheckpointFormatVersion);
    PersistedDynamicCheckpoint header{};
    header.buffer_capacity = buffer_capacity_;
    header.num_objects = num_objects_;
    header.live_objects = live_objects_;
    header.num_slots = levels_.size();
    ar.Pod(header);
    SaveFrameworkOptions(&ar, options_);
    ar.Vec(std::span<const GeomType>(all_geoms_));
    for (const auto& doc : all_docs_) ar.Vec(doc->keywords());
    std::vector<ObjectId> dead_ids;
    for (ObjectId id = 0; id < dead_->size(); ++id) {
      if ((*dead_)[id] != 0) dead_ids.push_back(id);
    }
    ar.Vec(dead_ids);
    ar.Vec(buffer_ids_);
    for (const auto& level : levels_) {
      ar.Pod<uint8_t>(level != nullptr ? 1 : 0);
      if (level != nullptr) ar.Vec(level->id_map);
    }
  }

  /// Restores a checkpoint. Levels are rebuilt from the registry with the
  /// persisted options, so the restored index answers — and checkpoints —
  /// byte-identically to the saved one. (Returned by pointer: the index
  /// owns a Mutex and is deliberately immovable.)
  static std::unique_ptr<DynamicIndex> LoadCheckpoint(
      std::istream* in, ThreadPool* merge_pool = nullptr) {
    InputArchive ar(in);
    const uint32_t version = ar.Magic("KWDY");
    KWSC_CHECK_MSG(version == kDynamicCheckpointFormatVersion,
                   "dynamic checkpoint version %u unsupported", version);
    const auto header = ar.Pod<PersistedDynamicCheckpoint>();
    const FrameworkOptions options = LoadFrameworkOptions(&ar);
    auto index = std::make_unique<DynamicIndex>(
        options, static_cast<size_t>(header.buffer_capacity), merge_pool);
    MutexLock lock(&index->mu_);
    index->all_geoms_ = ar.Vec<GeomType>();
    KWSC_CHECK(index->all_geoms_.size() == header.num_objects);
    index->all_docs_.reserve(header.num_objects);
    for (uint64_t i = 0; i < header.num_objects; ++i) {
      index->all_docs_.push_back(
          std::make_shared<const Document>(Document(ar.Vec<KeywordId>())));
    }
    const std::vector<ObjectId> dead_ids = ar.Vec<ObjectId>();
    index->buffer_ids_ = ar.Vec<ObjectId>();
    index->num_objects_ = header.num_objects;
    auto dead = std::make_shared<std::vector<uint8_t>>();
    dead->resize(header.num_objects, 0);
    for (ObjectId id : dead_ids) {
      KWSC_CHECK(id < header.num_objects);
      (*dead)[id] = 1;
    }
    index->dead_ = std::move(dead);
    index->live_objects_ = header.num_objects - dead_ids.size();
    KWSC_CHECK(index->live_objects_ == header.live_objects);
    for (uint64_t slot = 0; slot < header.num_slots; ++slot) {
      const uint8_t present = ar.Pod<uint8_t>();
      if (present == 0) {
        index->levels_.push_back(nullptr);
        continue;
      }
      std::vector<ObjectId> id_map = ar.Vec<ObjectId>();
      auto level = std::make_shared<Level>();
      level->geoms.reserve(id_map.size());
      std::vector<Document> docs;
      docs.reserve(id_map.size());
      for (ObjectId id : id_map) {
        KWSC_CHECK(id < header.num_objects);
        level->geoms.push_back(index->all_geoms_[id]);
        docs.push_back(*index->all_docs_[id]);
      }
      level->id_map = std::move(id_map);
      level->corpus = std::make_unique<Corpus>(std::move(docs));
      level->index = std::make_unique<Family>(
          std::span<const GeomType>(level->geoms), level->corpus.get(),
          options);
      index->levels_.push_back(std::move(level));
    }
    index->PublishLocked();
    return index;
  }

  /// A compacted static rebuild: the live objects in insertion order, their
  /// corpus, and one Family index over them. After WaitQuiescent(), Save of
  /// the returned index is byte-identical to a from-scratch build over the
  /// same object set — the acceptance invariant of the dynamic layer.
  struct Compacted {
    std::vector<ObjectId> ids;  // Global ids, insertion order.
    std::vector<GeomType> geoms;
    std::unique_ptr<Corpus> corpus;
    std::unique_ptr<Family> index;
  };

  Compacted Compact() const {
    MutexLock lock(&mu_);
    Compacted out;
    std::vector<Document> docs;
    for (ObjectId id = 0; id < num_objects_; ++id) {
      if (IsDeadLocked(id)) continue;
      out.ids.push_back(id);
      out.geoms.push_back(all_geoms_[id]);
      docs.push_back(*all_docs_[id]);
    }
    out.corpus = std::make_unique<Corpus>(std::move(docs));
    out.index = std::make_unique<Family>(
        std::span<const GeomType>(out.geoms), out.corpus.get(), options_);
    return out;
  }

  /// Read-only copies of the writer state for the multi-level auditor
  /// (audit/index_auditor.h). Taken under the writer lock; the shared level
  /// and tombstone pointers are immutable.
  struct AuditView {
    size_t buffer_capacity = 0;
    uint64_t num_objects = 0;
    uint64_t live_objects = 0;
    bool merge_inflight = false;
    std::vector<ObjectId> buffer_ids;
    std::shared_ptr<const std::vector<uint8_t>> dead;
    std::vector<std::shared_ptr<const Level>> levels;
    std::vector<GeomType> geoms;  // The registry, by insertion id.
    std::vector<std::shared_ptr<const Document>> docs;
  };

  AuditView DebugAuditView() const {
    MutexLock lock(&mu_);
    AuditView view;
    view.buffer_capacity = buffer_capacity_;
    view.num_objects = num_objects_;
    view.live_objects = live_objects_;
    view.merge_inflight = merge_inflight_;
    view.buffer_ids = buffer_ids_;
    view.dead = dead_;
    view.levels = levels_;
    view.geoms = all_geoms_;
    view.docs = all_docs_;
    return view;
  }

 private:
  /// One buffered object as the snapshot sees it: the geometry by value,
  /// the document shared with the registry (charged once).
  struct BufferEntry {
    ObjectId id;
    GeomType geom;
    std::shared_ptr<const Document> doc;
  };

  /// The immutable published state: everything a query touches. Level and
  /// document storage is shared with the writer; the tombstone bitmap is
  /// replaced (never mutated) on delete, and ids past its end are live.
  struct Snapshot {
    std::vector<BufferEntry> buffer;
    std::vector<std::shared_ptr<const Level>> levels;
    std::shared_ptr<const std::vector<uint8_t>> dead;
    uint64_t num_objects = 0;
  };

  /// Everything one carry consumes, captured under the lock so the rebuild
  /// can run without it: the gathered live members (buffer first, then the
  /// consumed levels in slot order — the same order the original
  /// single-family implementation produced) plus the install coordinates.
  struct CarryPlan {
    std::vector<ObjectId> ids;
    std::vector<GeomType> geoms;
    std::vector<Document> docs;
    size_t consumed_buffer = 0;
    size_t num_consumed_slots = 0;
    size_t target_slot = 0;
  };

  ObjectId AppendLocked(const GeomType& geom, Document doc)
      KWSC_REQUIRES(mu_) {
    const ObjectId id = static_cast<ObjectId>(num_objects_++);
    ++live_objects_;
    buffer_ids_.push_back(id);
    all_geoms_.push_back(geom);
    all_docs_.push_back(std::make_shared<const Document>(std::move(doc)));
    return id;
  }

  bool IsDeadLocked(ObjectId id) const KWSC_REQUIRES(mu_) {
    return id < dead_->size() && (*dead_)[id] != 0;
  }

  /// Marks every live id in `ids` dead in one bitmap replacement (the
  /// published bitmaps are immutable; see Snapshot). Returns the number
  /// newly dead.
  size_t MarkDeadLocked(std::span<const ObjectId> ids) KWSC_REQUIRES(mu_) {
    size_t marked = 0;
    std::shared_ptr<std::vector<uint8_t>> next;
    for (ObjectId id : ids) {
      KWSC_CHECK_MSG(id < num_objects_, "delete of unknown id %u", id);
      if (IsDeadLocked(id)) continue;
      if (next == nullptr) {
        next = std::make_shared<std::vector<uint8_t>>(*dead_);
        next->resize(num_objects_, 0);
      }
      if ((*next)[id] != 0) continue;  // Duplicate within the batch.
      (*next)[id] = 1;
      ++marked;
    }
    if (next != nullptr) {
      dead_ = std::move(next);
      live_objects_ -= marked;
    }
    return marked;
  }

  /// Synchronous mode: carry until the buffer is under capacity. Background
  /// mode: schedule one carry if none is in flight; an over-capacity buffer
  /// during a merge is the deferred carry RunMergeTask drains.
  void MaybeCarryLocked() KWSC_REQUIRES(mu_) {
    if (merge_pool_ == nullptr) {
      while (buffer_ids_.size() >= buffer_capacity_) {
        CarryPlan plan = PlanCarryLocked();
        std::shared_ptr<const Level> level = BuildLevel(&plan);
        InstallLocked(plan, std::move(level));
      }
      return;
    }
    if (!merge_inflight_ && buffer_ids_.size() >= buffer_capacity_) {
      merge_inflight_ = true;
      ScheduleCarryLocked(PlanCarryLocked());
    }
  }

  /// Binary-counter carry planning: consume one buffer's worth of ids plus
  /// every consecutive full level from slot 0; the rebuilt level lands in
  /// the first empty slot. Tombstoned members are dropped here — this is
  /// the point deletes reclaim space. Consumed state stays in place (and in
  /// the published snapshot) until InstallLocked.
  CarryPlan PlanCarryLocked() KWSC_REQUIRES(mu_) {
    CarryPlan plan;
    plan.consumed_buffer = std::min(buffer_ids_.size(), buffer_capacity_);
    std::vector<ObjectId> gathered(
        buffer_ids_.begin(),
        buffer_ids_.begin() + static_cast<ptrdiff_t>(plan.consumed_buffer));
    size_t slot = 0;
    while (slot < levels_.size() && levels_[slot] != nullptr) {
      const Level& level = *levels_[slot];
      gathered.insert(gathered.end(), level.id_map.begin(),
                      level.id_map.end());
      ++slot;
    }
    plan.num_consumed_slots = slot;
    plan.target_slot = slot;
    plan.ids.reserve(gathered.size());
    plan.geoms.reserve(gathered.size());
    plan.docs.reserve(gathered.size());
    for (ObjectId id : gathered) {
      if (IsDeadLocked(id)) continue;
      plan.ids.push_back(id);
      plan.geoms.push_back(all_geoms_[id]);
      plan.docs.push_back(*all_docs_[id]);
    }
    return plan;
  }

  /// The expensive step, runs without the lock in background mode. Null
  /// when the gathered set was entirely tombstoned.
  std::shared_ptr<const Level> BuildLevel(CarryPlan* plan) const {
    if (plan->ids.empty()) return nullptr;
    auto level = std::make_shared<Level>();
    level->geoms = std::move(plan->geoms);
    level->id_map = std::move(plan->ids);
    level->corpus = std::make_unique<Corpus>(std::move(plan->docs));
    level->index = std::make_unique<Family>(
        std::span<const GeomType>(level->geoms), level->corpus.get(),
        options_);
    return level;
  }

  void InstallLocked(const CarryPlan& plan, std::shared_ptr<const Level> level)
      KWSC_REQUIRES(mu_) {
    buffer_ids_.erase(
        buffer_ids_.begin(),
        buffer_ids_.begin() + static_cast<ptrdiff_t>(plan.consumed_buffer));
    for (size_t slot = 0; slot < plan.num_consumed_slots; ++slot) {
      levels_[slot] = nullptr;
    }
    if (plan.target_slot >= levels_.size()) {
      levels_.resize(plan.target_slot + 1);
    }
    levels_[plan.target_slot] = std::move(level);
  }

  void ScheduleCarryLocked(CarryPlan plan) KWSC_REQUIRES(mu_) {
    merge_tasks_->Run(
        [this, plan = std::move(plan)]() mutable { RunMergeTask(&plan); });
  }

  /// The background carry: build off-lock, install, publish, chain the next
  /// carry if inserts outran this one, signal quiescence otherwise.
  void RunMergeTask(CarryPlan* plan) KWSC_EXCLUDES(mu_) {
    std::shared_ptr<const Level> level = BuildLevel(plan);
    MutexLock lock(&mu_);
    InstallLocked(*plan, std::move(level));
    if (buffer_ids_.size() >= buffer_capacity_) {
      ScheduleCarryLocked(PlanCarryLocked());
    } else {
      merge_inflight_ = false;
      quiescent_cv_.NotifyAll();
    }
    PublishLocked();
  }

  /// Installs a fresh immutable snapshot of the writer state. Everything it
  /// shares (levels, documents, the tombstone bitmap) is frozen; only the
  /// O(|buffer|) entry vector is copied.
  void PublishLocked() KWSC_REQUIRES(mu_) {
    auto snap = std::make_shared<Snapshot>();
    snap->buffer.reserve(buffer_ids_.size());
    for (ObjectId id : buffer_ids_) {
      snap->buffer.push_back(BufferEntry{id, all_geoms_[id], all_docs_[id]});
    }
    snap->levels = levels_;
    snap->dead = dead_;
    snap->num_objects = num_objects_;
    snapshot_.Publish(std::move(snap));
  }

  const FrameworkOptions options_;
  const size_t buffer_capacity_;
  ThreadPool* const merge_pool_;
  std::optional<TaskGroup> merge_tasks_;  // Engaged iff merge_pool_ != null.

  mutable Mutex mu_;
  CondVar quiescent_cv_;

  uint64_t num_objects_ KWSC_GUARDED_BY(mu_) = 0;
  uint64_t live_objects_ KWSC_GUARDED_BY(mu_) = 0;

  // Buffered objects, as ids into the global registry below (the buffer owns
  // no copies of its own; snapshots copy the id/geometry pair and share the
  // document). May exceed buffer_capacity_ while a merge is in flight.
  std::vector<ObjectId> buffer_ids_ KWSC_GUARDED_BY(mu_);

  // Global object registry (documents/geometry by insertion id, tombstoned
  // ids retained). Documents are shared_ptr so snapshots and the registry
  // charge the bytes once.
  std::vector<std::shared_ptr<const Document>> all_docs_ KWSC_GUARDED_BY(mu_);
  std::vector<GeomType> all_geoms_ KWSC_GUARDED_BY(mu_);

  // Tombstones. The pointed-to bitmap is immutable (shared with published
  // snapshots); deletes install a replacement. Ids past the end are live.
  std::shared_ptr<const std::vector<uint8_t>> dead_ KWSC_GUARDED_BY(mu_);

  // The level set: slot s holds at most buffer_capacity_ * 2^s objects.
  // Levels are immutable and shared with published snapshots.
  std::vector<std::shared_ptr<const Level>> levels_ KWSC_GUARDED_BY(mu_);

  bool merge_inflight_ KWSC_GUARDED_BY(mu_) = false;

  // The reader handoff point (common/epoch.h): queries Acquire, the writer
  // Publishes after every mutation batch.
  EpochPtr<Snapshot> snapshot_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_DYNAMIC_INDEX_H_
