// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// LC-KW: linear conjunction with keywords (Theorem 5).
//
// An LC-KW query supplies s = O(1) linear constraints plus k keywords. The
// paper proves Theorem 5 by reducing to simplex reporting (SP-KW, Theorem
// 12) on a partition tree; this wrapper selects the substrate per dimension:
//   * d = 2: the ham-sandwich partition tree (core/sp_kw_hs.h) — the closest
//     implementable analogue of Chan's optimal partition tree;
//   * d >= 3: the box-cell substrate (core/sp_kw_box.h).
// Both answer conjunction-of-halfspace queries directly, so the
// simplex-decomposition step of Appendix D is not needed.
//
// ORP-KW with d <= k can also be answered through this index (a d-rectangle
// is the conjunction of 2d halfspaces), which is how Theorem 5 improves the
// space of Theorem 2 to O(N); BoxToConvexQuery performs that translation.

#ifndef KWSC_CORE_LC_KW_H_
#define KWSC_CORE_LC_KW_H_

#include <type_traits>

#include "core/sp_kw_box.h"
#include "core/sp_kw_hs.h"
#include "geom/box.h"
#include "geom/halfspace.h"

namespace kwsc {

namespace internal_lc_kw {

template <int D, typename Scalar>
struct SubstrateSelector {
  using Type = SpKwBoxIndex<D, Scalar>;
};

template <>
struct SubstrateSelector<2, double> {
  using Type = SpKwHsIndex;
};

}  // namespace internal_lc_kw

/// The LC-KW index: SpKwHsIndex in the plane, SpKwBoxIndex otherwise. Both
/// expose Query(ConvexQuery, keywords), ContainsAtLeast, and MemoryBytes.
template <int D, typename Scalar = double>
using LcKwIndex = typename internal_lc_kw::SubstrateSelector<D, Scalar>::Type;

/// Rewrites a d-rectangle as the conjunction of 2d halfspaces, the reduction
/// the paper uses to answer ORP-KW via LC-KW (discussion after Theorem 5).
/// Infinite box sides contribute no constraint.
template <int D, typename Scalar>
ConvexQuery<D, Scalar> BoxToConvexQuery(const Box<D, Scalar>& box) {
  ConvexQuery<D, Scalar> q;
  for (int dim = 0; dim < D; ++dim) {
    if (box.hi[dim] < std::numeric_limits<Scalar>::max()) {
      Halfspace<D, Scalar> upper;
      upper.coeffs[dim] = 1.0;
      upper.rhs = static_cast<double>(box.hi[dim]);
      q.constraints.push_back(upper);
    }
    if (box.lo[dim] > std::numeric_limits<Scalar>::lowest()) {
      Halfspace<D, Scalar> lower;
      lower.coeffs[dim] = -1.0;
      lower.rhs = -static_cast<double>(box.lo[dim]);
      q.constraints.push_back(lower);
    }
  }
  return q;
}

}  // namespace kwsc

#endif  // KWSC_CORE_LC_KW_H_
