// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// SP-KW / LC-KW over the box-cell substrate (Appendix D, arbitrary d).
//
// This index applies the transformation framework to a space-partitioning
// tree whose cells are axis boxes in the *original* coordinate space (linear
// constraints do not survive the per-dimension rank reduction of Section
// 3.4, so rank space is unavailable here). Splits are weighted medians under
// the lexicographic (coordinate, id) order — the deterministic stand-in for
// the infinitesimal perturbation of Appendix D.4: the median object becomes
// the node's pivot (it lies on the splitting hyperplane), and ties share the
// boundary plane, so sibling cells may touch on a measure-zero slab.
//
// Queries are conjunctions of halfspaces (a d-simplex is d+1 of them; an
// LC-KW query supplies s of them directly, skipping the paper's
// simplex-decomposition step without changing the answer). Cells are pruned
// by exact corner tests against each halfspace.

#ifndef KWSC_CORE_SP_KW_BOX_H_
#define KWSC_CORE_SP_KW_BOX_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "common/abi.h"
#include "common/flat_arena.h"
#include "common/macros.h"
#include "common/memory.h"
#include "common/ops_budget.h"
#include "core/flat_format.h"
#include "core/format_versions.h"
#include "core/framework.h"
#include "core/node_directory.h"
#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/lp.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

template <int D, typename Scalar = double>
class SpKwBoxIndex {
 public:
  using PointType = Point<D, Scalar>;
  using QueryType = ConvexQuery<D, Scalar>;

  // Batch-dynamic surface (DynamizableFamily, core/contracts.h): built from
  // points, queried with halfspace conjunctions; the dynamization buffer
  // scan runs the same exact halfspace tests the cell pruning uses.
  using DynamicGeomType = PointType;
  using DynamicRegionType = QueryType;
  static bool MatchesRegion(const QueryType& q, const PointType& p) {
    return q.Satisfies(p);
  }

  SpKwBoxIndex(std::span<const PointType> points, const Corpus* corpus,
               FrameworkOptions options)
      : corpus_(corpus), options_(options) {
    points_.Assign(std::vector<PointType>(points.begin(), points.end()));
    KWSC_CHECK(corpus != nullptr);
    KWSC_CHECK(points.size() == corpus->num_objects());
    KWSC_CHECK(options_.k >= 2 && options_.k <= 8);
    if (!points_.empty()) {
      std::vector<ObjectId> active(points_.size());
      std::iota(active.begin(), active.end(), 0);
      DirectoryBuilder builder(corpus_, options_);
      BuildNode(&active, Box<D, Scalar>::Everything(), 0, nullptr, &builder);
    }
  }

  int k() const { return options_.k; }
  size_t num_nodes() const { return nodes_.size(); }
  uint64_t total_weight() const { return corpus_->total_weight(); }

  std::vector<ObjectId> Query(const QueryType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    std::vector<ObjectId> out;
    QueryEmit(q, keywords,
              [&out](ObjectId e) {
                out.push_back(e);
                return true;
              },
              stats, budget);
    return out;
  }

  template <typename Emit>
  void QueryEmit(const QueryType& q, std::span<const KeywordId> keywords,
                 Emit&& emit, QueryStats* stats = nullptr,
                 OpsBudget* budget = nullptr) const {
    const std::vector<KeywordId> sorted =
        CanonicalizeQueryKeywords(keywords, options_.k);
    if (nodes_.empty()) return;
    OpsBudget unlimited;
    if (budget == nullptr) budget = &unlimited;
    Visit(0, q, sorted, emit, stats, budget);
  }

  /// Budgeted "at least t results?" detection (used by the L2NN-KW binary
  /// search of Corollary 7). The budget follows the d > k - 1 regime of
  /// Corollary 6: C * (N^{1-1/(d+1)} + N^{1-1/k} t^{1/k}).
  bool ContainsAtLeast(const QueryType& q,
                       std::span<const KeywordId> keywords, uint64_t t,
                       QueryStats* stats = nullptr) const {
    KWSC_CHECK(t >= 1);
    const double n = static_cast<double>(total_weight());
    const double fixed =
        std::pow(n, 1.0 - 1.0 / static_cast<double>(D + 1));
    OpsBudget budget(
        ThresholdQueryBudget(total_weight(), options_.k, t) +
        static_cast<uint64_t>(64.0 * fixed));
    uint64_t found = 0;
    QueryEmit(q, keywords,
              [&found, t](ObjectId) { return ++found < t; }, stats, &budget);
    return found >= t || budget.Exhausted();
  }

  size_t MemoryBytes() const {
    size_t total = points_.MemoryBytes() + nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_) total += node.dir.MemoryBytes();
    return total;
  }

  /// Persistence: same contract as OrpKwIndex::Save/Load — the corpus is
  /// stored separately and must be re-supplied on Load.
  void Save(std::ostream* out) const {
    OutputArchive ar(out);
    ar.Magic("KWS1", kSpKwBoxFormatVersion);
    ar.Pod<uint32_t>(static_cast<uint32_t>(D));
    SaveFrameworkOptions(&ar, options_);
    ar.Pod<uint64_t>(corpus_->num_objects());
    ar.Pod<uint64_t>(corpus_->total_weight());
    ar.Vec(points_.view());
    ar.Pod<uint64_t>(nodes_.size());
    for (const Node& node : nodes_) {
      ar.Pod(node.cell);
      ar.Pod(node.child[0]);
      ar.Pod(node.child[1]);
      ar.Pod(node.level);
      node.dir.Save(&ar);
    }
  }

  static SpKwBoxIndex Load(std::istream* in, const Corpus* corpus) {
    KWSC_CHECK(corpus != nullptr);
    InputArchive ar(in);
    const uint32_t version = ar.Magic("KWS1");
    KWSC_CHECK_MSG(version == kSpKwBoxFormatVersion,
                   "unsupported index version %u", version);
    KWSC_CHECK_MSG(ar.Pod<uint32_t>() == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    SpKwBoxIndex index(corpus);
    index.options_ = LoadFrameworkOptions(&ar);
    KWSC_CHECK_MSG(ar.Pod<uint64_t>() == corpus->num_objects(),
                   "corpus object count mismatch");
    KWSC_CHECK_MSG(ar.Pod<uint64_t>() == corpus->total_weight(),
                   "corpus weight mismatch");
    index.points_.Assign(ar.Vec<PointType>());
    const uint64_t num_nodes = ar.Pod<uint64_t>();
    index.nodes_.resize(num_nodes);
    for (Node& node : index.nodes_) {
      node.cell = ar.Pod<Box<D, Scalar>>();
      node.child[0] = ar.Pod<int32_t>();
      node.child[1] = ar.Pod<int32_t>();
      node.level = ar.Pod<int16_t>();
      node.dir.Load(&ar);
    }
    return index;
  }

  // ---- v2 flat layout: same scheme as OrpKwIndex, with original-space
  // points in place of the rank tables (DESIGN.md "On-disk layout v2").
  // Wrapper families (SR-KW, and LC-KW for D >= 2 via the alias) reuse the
  // container under their own family tag. ----

  static constexpr uint32_t kFlatFamilyTag = FlatFamilyTag('K', 'W', 'S', '2');

  struct FlatRoot {
    uint32_t dim;
    uint32_t reserved;
    PersistedFrameworkOptions options;
    uint64_t num_objects;
    uint64_t total_weight;
    SlabRef points;  // Point<D, Scalar>
    SlabRef nodes;   // FlatNodeRec<Box<D, Scalar>>
    FlatDirPools dir_pools;
  };

  void SaveFlat(std::ostream* out, uint32_t family_tag = kFlatFamilyTag) const {
    FlatArenaWriter writer(family_tag);
    FlatRoot root;
    std::memset(static_cast<void*>(&root), 0, sizeof(root));  // padding must be deterministic
    root.dim = static_cast<uint32_t>(D);
    root.options.k = options_.k;
    root.options.alpha = options_.alpha;
    root.options.leaf_objects = options_.leaf_objects;
    root.options.enable_tuple_pruning = options_.enable_tuple_pruning;
    root.options.enable_materialized_lists = options_.enable_materialized_lists;
    root.options.exact_cell_tests = options_.exact_cell_tests;
    root.num_objects = corpus_->num_objects();
    root.total_weight = corpus_->total_weight();
    root.points = writer.Slab(points_.view());

    FlatDirPoolWriter pools;
    std::vector<FlatNodeRec<Box<D, Scalar>>> recs(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      FlatNodeRec<Box<D, Scalar>>& rec = recs[i];
      std::memset(static_cast<void*>(&rec), 0, sizeof(rec));
      rec.cell = nodes_[i].cell;
      rec.child[0] = nodes_[i].child[0];
      rec.child[1] = nodes_[i].child[1];
      rec.level = nodes_[i].level;
      pools.Append(nodes_[i].dir, &rec);
    }
    root.nodes = writer.Slab<FlatNodeRec<Box<D, Scalar>>>(recs);
    root.dir_pools = pools.WriteSlabs(&writer);
    writer.Root(root);
    writer.WriteTo(out);
  }

  static SpKwBoxIndex LoadFlat(std::shared_ptr<const MmapFile> file,
                               const Corpus* corpus, uint64_t offset = 0,
                               uint32_t expected_tag = kFlatFamilyTag) {
    KWSC_CHECK(corpus != nullptr);
    KWSC_CHECK(file != nullptr);
    const FlatErrorSink sink = AbortingFlatErrorSink();
    const FlatArenaReader reader(*file, offset, expected_tag);
    const FlatRoot& root = reader.template Root<FlatRoot>();
    KWSC_CHECK_MSG(root.dim == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    KWSC_CHECK_MSG(root.num_objects == corpus->num_objects(),
                   "corpus object count mismatch");
    KWSC_CHECK_MSG(root.total_weight == corpus->total_weight(),
                   "corpus weight mismatch");

    SpKwBoxIndex index(corpus);
    index.options_.k = root.options.k;
    index.options_.alpha = root.options.alpha;
    index.options_.leaf_objects = root.options.leaf_objects;
    index.options_.enable_tuple_pruning = root.options.enable_tuple_pruning;
    index.options_.enable_materialized_lists =
        root.options.enable_materialized_lists;
    index.options_.exact_cell_tests = root.options.exact_cell_tests;
    KWSC_CHECK(reader.SlabOk<PointType>(root.points) &&
               root.points.count == root.num_objects);
    index.points_.Attach(reader.Slab<PointType>(root.points));

    FlatDirPoolReader pools;
    KWSC_CHECK(pools.Init(reader, root.dir_pools, sink));
    const auto recs = reader.Slab<FlatNodeRec<Box<D, Scalar>>>(root.nodes);
    KWSC_CHECK(ValidateFlatTreeShallow(recs, pools, sink));
    index.nodes_.resize(recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
      Node& node = index.nodes_[i];
      node.cell = recs[i].cell;
      node.child[0] = recs[i].child[0];
      node.child[1] = recs[i].child[1];
      node.level = recs[i].level;
      FlatDirView view;
      KWSC_CHECK(pools.MakeView(recs[i], static_cast<int64_t>(i), &view,
                                sink));
      node.dir.AttachFlat(view);
    }
    index.mmap_ = std::move(file);
    return index;
  }

  static bool ValidateFlat(const MmapFile& file, uint64_t offset,
                           uint32_t expected_tag, const FlatErrorSink& sink) {
    if (!FlatArenaReader::Validate(file, offset, expected_tag, sink)) {
      return false;
    }
    const FlatArenaReader reader(file, offset, expected_tag);
    if (!reader.RootOk<FlatRoot>()) {
      sink("flat root size mismatch for family");
      return false;
    }
    const FlatRoot& root = reader.template Root<FlatRoot>();
    if (root.dim != static_cast<uint32_t>(D)) {
      sink("flat root dimensionality mismatch");
      return false;
    }
    bool ok = true;
    if (!reader.SlabOk<PointType>(root.points) ||
        root.points.count != root.num_objects) {
      sink("flat point slab out of bounds or cardinality mismatch");
      ok = false;
    }
    FlatDirPoolReader pools;
    if (!pools.Init(reader, root.dir_pools, sink)) return false;
    if (!reader.SlabOk<FlatNodeRec<Box<D, Scalar>>>(root.nodes)) {
      sink("flat node slab out of bounds");
      return false;
    }
    const auto recs = reader.Slab<FlatNodeRec<Box<D, Scalar>>>(root.nodes);
    if (!ValidateFlatTreeShallow(recs, pools, sink)) ok = false;
    if (!ValidateFlatTreeDeep(recs, pools, root.num_objects, sink)) ok = false;
    return ok;
  }

 private:
  // The invariant auditor reads (and its tests corrupt) the node arena
  // directly; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  // Shell constructor used by Load.
  explicit SpKwBoxIndex(const Corpus* corpus) : corpus_(corpus) {}

  struct Node {
    Box<D, Scalar> cell;
    NodeDirectory dir;
    int32_t child[2] = {-1, -1};
    int16_t level = 0;
    bool IsLeaf() const { return child[0] < 0 && child[1] < 0; }
  };

  uint32_t BuildNode(std::vector<ObjectId>* active, const Box<D, Scalar>& cell,
                     int level, const std::vector<KeywordId>* inherited,
                     DirectoryBuilder* builder) {
    const uint32_t index = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[index].cell = cell;
    nodes_[index].level = static_cast<int16_t>(level);

    if (active->size() <= static_cast<size_t>(options_.leaf_objects)) {
      builder->BuildLeaf(*active, &nodes_[index].dir);
      return index;
    }

    const int dim = level % D;
    std::sort(active->begin(), active->end(), [&](ObjectId a, ObjectId b) {
      if (points_[a][dim] != points_[b][dim]) {
        return points_[a][dim] < points_[b][dim];
      }
      return a < b;  // Deterministic perturbation (Appendix D.4).
    });
    const size_t median = WeightedMedianIndex(active->size(), [&](size_t i) {
      return static_cast<uint64_t>(corpus_->doc((*active)[i]).size());
    });
    const ObjectId pivot = (*active)[median];
    const Scalar split = points_[pivot][dim];

    std::vector<std::vector<ObjectId>> child_active(2);
    child_active[0].assign(active->begin(), active->begin() + median);
    child_active[1].assign(active->begin() + median + 1, active->end());

    std::vector<KeywordId> next_inherited;
    builder->Build(*active, child_active, inherited, {pivot},
                   &nodes_[index].dir, &next_inherited);
    active->clear();
    active->shrink_to_fit();

    // Cells touch on the splitting plane: ties share the coordinate, so both
    // children must keep it. Pruning stays exact; only the covered/crossing
    // statistics see the overlap.
    Box<D, Scalar> left_cell = cell;
    left_cell.hi[dim] = split;
    Box<D, Scalar> right_cell = cell;
    right_cell.lo[dim] = split;

    int32_t left = -1;
    int32_t right = -1;
    if (!child_active[0].empty()) {
      left = static_cast<int32_t>(BuildNode(&child_active[0], left_cell,
                                            level + 1, &next_inherited,
                                            builder));
    }
    if (!child_active[1].empty()) {
      right = static_cast<int32_t>(BuildNode(&child_active[1], right_cell,
                                             level + 1, &next_inherited,
                                             builder));
    }
    nodes_[index].child[0] = left;
    nodes_[index].child[1] = right;
    return index;
  }

  /// Cell/query relationship: 0 = disjoint, 1 = intersecting (crossing),
  /// 2 = cell fully inside the query region. With exact_cell_tests, the
  /// "crossing" verdict is confirmed by an LP feasibility check so that
  /// cells meeting every constraint individually but not their conjunction
  /// are pruned too.
  int Classify(const Box<D, Scalar>& cell, const QueryType& q) const {
    bool inside = true;
    for (const auto& h : q.constraints) {
      if (!cell.IntersectsHalfspace(h)) return 0;
      if (!cell.InsideHalfspace(h)) inside = false;
    }
    if (inside) return 2;
    if (options_.exact_cell_tests && q.constraints.size() > 1 &&
        !PolytopeIntersectsBox(q, cell)) {
      return 0;
    }
    return 1;
  }

  template <typename Emit>
  bool Visit(uint32_t node_index, const QueryType& q,
             std::span<const KeywordId> kws, Emit& emit, QueryStats* stats,
             OpsBudget* budget) const {
    const Node& node = nodes_[node_index];
    const bool covered = Classify(node.cell, q) == 2;
    if (stats != nullptr) {
      ++stats->nodes_visited;
      covered ? ++stats->covered_nodes : ++stats->crossing_nodes;
    }
    if (!budget->Charge()) return Exhaust(stats);

    for (ObjectId e : node.dir.pivots()) {
      if (!budget->Charge()) return Exhaust(stats);
      if (stats != nullptr) {
        ++stats->pivot_checks;
        covered ? ++stats->covered_work : ++stats->crossing_work;
      }
      if (q.Satisfies(points_[e]) && corpus_->ContainsAll(e, kws)) {
        if (stats != nullptr) ++stats->results;
        if (!emit(e)) return false;
      }
    }
    if (node.IsLeaf()) return true;

    uint32_t lids[8];
    KeywordId small_keyword = 0;
    if (!node.dir.ResolveLarge(kws, lids, &small_keyword)) {
      if (options_.enable_materialized_lists) {
        const std::optional<std::span<const ObjectId>> list =
            node.dir.MaterializedList(small_keyword);
        if (!list.has_value()) return true;
        for (ObjectId e : *list) {
          if (!budget->Charge()) return Exhaust(stats);
          if (stats != nullptr) {
            ++stats->list_scanned;
            covered ? ++stats->covered_work : ++stats->crossing_work;
          }
          if (q.Satisfies(points_[e]) && corpus_->ContainsAll(e, kws)) {
            if (stats != nullptr) ++stats->results;
            if (!emit(e)) return false;
          }
        }
        return true;
      }
      return ScanSubtree(node_index, q, kws, emit, stats, budget);
    }

    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child < 0) continue;
      // Pull the child node's line while the tuple registry is probed.
      KWSC_PREFETCH(&nodes_[child]);
      if (options_.enable_tuple_pruning &&
          !node.dir.ChildTupleNonEmpty(c, {lids, kws.size()})) {
        if (stats != nullptr) ++stats->tuple_pruned;
        continue;
      }
      if (Classify(nodes_[child].cell, q) == 0) {
        if (stats != nullptr) ++stats->geom_pruned;
        continue;
      }
      if (!Visit(child, q, kws, emit, stats, budget)) return false;
    }
    return true;
  }

  template <typename Emit>
  bool ScanSubtree(uint32_t node_index, const QueryType& q,
                   std::span<const KeywordId> kws, Emit& emit,
                   QueryStats* stats, OpsBudget* budget) const {
    const Node& node = nodes_[node_index];
    for (int c = 0; c < 2; ++c) {
      const int32_t child = node.child[c];
      if (child < 0) continue;
      KWSC_PREFETCH(&nodes_[child]);
      if (Classify(nodes_[child].cell, q) == 0) continue;
      for (ObjectId e : nodes_[child].dir.pivots()) {
        if (!budget->Charge()) return Exhaust(stats);
        if (stats != nullptr) ++stats->list_scanned;
        if (q.Satisfies(points_[e]) && corpus_->ContainsAll(e, kws)) {
          if (stats != nullptr) ++stats->results;
          if (!emit(e)) return false;
        }
      }
      if (!ScanSubtree(child, q, kws, emit, stats, budget)) return false;
    }
    return true;
  }

  static bool Exhaust(QueryStats* stats) {
    if (stats != nullptr) stats->budget_exhausted = true;
    return false;
  }

  const Corpus* corpus_;
  FrameworkOptions options_;
  // Owned after a build or v1 load; a zero-copy view into mmap_ after
  // LoadFlat.
  OwnedSpan<PointType> points_;
  std::vector<Node> nodes_;
  std::shared_ptr<const MmapFile> mmap_;
};

// The persisted d=2 instantiations: the KWS2 flat root and its box-cell
// node record (FORMATS.lock locks their layouts under format sp-kw-box).
KWSC_ABI_STRUCT_AS(SpKwBoxFlatRoot2, SpKwBoxIndex<2>::FlatRoot);
KWSC_ABI_STRUCT_AS(SpKwBoxFlatNodeRec2, FlatNodeRec<Box<2>>);

}  // namespace kwsc

#endif  // KWSC_CORE_SP_KW_BOX_H_
