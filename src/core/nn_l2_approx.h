// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Approximate Euclidean nearest-neighbour with keywords via the L∞ index —
// the interpretation the paper gives right after Corollary 4: "Corollary 4
// can also be interpreted as an approximation result under L2 distance
// because the L∞ distance between any two points is a constant-factor
// approximation of their L2 distance."
//
// Guarantee: let r2 be the true t-th smallest L2 distance among the matches.
// Every one of those t objects has L∞ <= r2, so the t-th L∞ distance is
// <= r2, and every object this index returns has
//   L2 <= sqrt(d) * L∞ <= sqrt(d) * r2.
// I.e. a sqrt(d)-approximation at the L∞ index's cost — no integer-grid
// restriction and no lifted partition tree needed, unlike the exact
// L2NnIndex of Corollary 7.

#ifndef KWSC_CORE_NN_L2_APPROX_H_
#define KWSC_CORE_NN_L2_APPROX_H_

#include <algorithm>
#include <span>
#include <vector>

#include "core/nn_linf.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

template <int D, typename Scalar = double>
class ApproxL2NnIndex {
 public:
  using PointType = Point<D, Scalar>;

  ApproxL2NnIndex(std::span<const PointType> points, const Corpus* corpus,
                  FrameworkOptions options)
      : points_(points.begin(), points.end()),
        engine_(std::span<const PointType>(points_), corpus, options) {}

  int k() const { return engine_.k(); }

  /// Returns (up to) t objects of D(w1..wk), each within sqrt(d) of the true
  /// t-th Euclidean distance, ordered by non-decreasing L2 distance.
  std::vector<ObjectId> Query(const PointType& q, uint64_t t,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr) const {
    std::vector<ObjectId> result = engine_.Query(q, t, keywords, stats);
    std::sort(result.begin(), result.end(), [&](ObjectId a, ObjectId b) {
      const auto da = L2DistanceSquared(points_[a], q);
      const auto db = L2DistanceSquared(points_[b], q);
      if (da != db) return da < db;
      return a < b;
    });
    return result;
  }

  size_t MemoryBytes() const {
    return engine_.MemoryBytes() + VectorBytes(points_);
  }

 private:
  std::vector<PointType> points_;
  LinfNnIndex<D, Scalar> engine_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_NN_L2_APPROX_H_
