// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "core/sp_kw_hs.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <optional>
#include <span>

#include "common/macros.h"
#include "common/memory.h"
#include "parttree/ham_sandwich.h"

namespace kwsc {

namespace {

// A point is "on" a cut line when its residual is within this tolerance
// (relative to the line offset). Such points join the pivot set, mirroring
// the boundary-objects rule of Appendix D.2.
double OnLineTolerance(const Halfspace<2>& line) {
  return 1e-9 * (1.0 + std::fabs(line.rhs));
}

}  // namespace

SpKwHsIndex::SpKwHsIndex(std::span<const PointType> points,
                         const Corpus* corpus, FrameworkOptions options)
    : corpus_(corpus), options_(options),
      points_(points.begin(), points.end()) {
  KWSC_CHECK(corpus != nullptr);
  KWSC_CHECK(points.size() == corpus->num_objects());
  KWSC_CHECK(options_.k >= 2 && options_.k <= 8);
  if (points_.empty()) return;

  // Root cell: the data bounding box, slightly expanded (stands in for R^2;
  // every query is implicitly clipped to it, which cannot lose results
  // because all objects lie inside).
  Box<2> bounds{points_[0], points_[0]};
  for (const PointType& p : points_) {
    for (int dim = 0; dim < 2; ++dim) {
      bounds.lo[dim] = std::min(bounds.lo[dim], p[dim]);
      bounds.hi[dim] = std::max(bounds.hi[dim], p[dim]);
    }
  }
  for (int dim = 0; dim < 2; ++dim) {
    const double pad = 1.0 + 0.01 * (bounds.hi[dim] - bounds.lo[dim]);
    bounds.lo[dim] -= pad;
    bounds.hi[dim] += pad;
  }

  std::vector<ObjectId> active(points_.size());
  std::iota(active.begin(), active.end(), 0);
  DirectoryBuilder builder(corpus_, options_);
  BuildNode(&active, ConvexPolygon2D::FromBox(bounds), 0, nullptr, &builder);
}

uint64_t SpKwHsIndex::total_weight() const { return corpus_->total_weight(); }

uint32_t SpKwHsIndex::BuildNode(std::vector<ObjectId>* active,
                                ConvexPolygon2D cell, int level,
                                const std::vector<KeywordId>* inherited,
                                DirectoryBuilder* builder) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].cell = std::move(cell);
  nodes_[index].level = static_cast<int16_t>(level);

  if (active->size() <= static_cast<size_t>(options_.leaf_objects)) {
    builder->BuildLeaf(*active, &nodes_[index].dir);
    return index;
  }

  // Find the two cut lines over the active set, weighted by document size
  // (the verbose-set weighting of Section 3.2).
  std::vector<Point<2>> pts;
  std::vector<uint64_t> weights;
  pts.reserve(active->size());
  weights.reserve(active->size());
  for (ObjectId e : *active) {
    pts.push_back(points_[e]);
    weights.push_back(corpus_->doc(e).size());
  }
  const HamSandwichCut cut = FindHamSandwichCut(pts, weights);
  const double tol1 = OnLineTolerance(cut.line1);
  const double tol2 = OnLineTolerance(cut.line2);

  // Objects on either line become pivots; the rest go to the quadrant given
  // by their side of each line.
  std::vector<ObjectId> pivots;
  std::vector<std::vector<ObjectId>> child_active(kFanout);
  for (ObjectId e : *active) {
    const double f1 = cut.line1.Eval(points_[e]) - cut.line1.rhs;
    const double f2 = cut.line2.Eval(points_[e]) - cut.line2.rhs;
    if (std::fabs(f1) <= tol1 || std::fabs(f2) <= tol2) {
      pivots.push_back(e);
      continue;
    }
    const int child = (f1 > 0 ? 2 : 0) + (f2 > 0 ? 1 : 0);
    child_active[child].push_back(e);
  }

  // Defensive progress check: the weighted-median line guarantees every
  // quadrant holds strictly less weight than the node, so recursion always
  // shrinks. If numerical degeneracy ever violated this, fall back to a leaf
  // rather than recurse forever.
  for (const auto& ca : child_active) {
    if (ca.size() == active->size()) {
      builder->BuildLeaf(*active, &nodes_[index].dir);
      return index;
    }
  }

  std::vector<KeywordId> next_inherited;
  builder->Build(*active, child_active, inherited, std::move(pivots),
                 &nodes_[index].dir, &next_inherited);
  active->clear();
  active->shrink_to_fit();

  // Child cells: clip the parent cell by the appropriate side of each line.
  const Halfspace<2> below1 = cut.line1;
  const Halfspace<2> above1{{{-cut.line1.coeffs[0], -cut.line1.coeffs[1]}},
                            -cut.line1.rhs};
  const Halfspace<2> below2 = cut.line2;
  const Halfspace<2> above2{{{-cut.line2.coeffs[0], -cut.line2.coeffs[1]}},
                            -cut.line2.rhs};
  for (int c = 0; c < kFanout; ++c) {
    if (child_active[c].empty()) continue;
    ConvexPolygon2D child_cell = nodes_[index].cell;
    child_cell = child_cell.ClipBy((c & 2) ? above1 : below1);
    child_cell = child_cell.ClipBy((c & 1) ? above2 : below2);
    const int32_t child = static_cast<int32_t>(
        BuildNode(&child_active[c], std::move(child_cell), level + 1,
                  &next_inherited, builder));
    nodes_[index].child[c] = child;
  }
  return index;
}

int SpKwHsIndex::Classify(const ConvexPolygon2D& cell, const QueryType& q) {
  bool inside = true;
  ConvexPolygon2D clipped = cell;
  for (const auto& h : q.constraints) {
    if (!cell.InsideHalfplane(h)) inside = false;
    clipped = clipped.ClipBy(h);
    if (clipped.Empty()) return 0;
  }
  return inside ? 2 : 1;
}

std::vector<ObjectId> SpKwHsIndex::Query(const QueryType& q,
                                         std::span<const KeywordId> keywords,
                                         QueryStats* stats,
                                         OpsBudget* budget) const {
  std::vector<ObjectId> out;
  const std::vector<KeywordId> sorted =
      CanonicalizeQueryKeywords(keywords, options_.k);
  if (nodes_.empty()) return out;
  OpsBudget unlimited;
  if (budget == nullptr) budget = &unlimited;
  std::function<bool(ObjectId)> emit = [&out](ObjectId e) {
    out.push_back(e);
    return true;
  };
  Visit(0, q, sorted, emit, stats, budget);
  return out;
}

bool SpKwHsIndex::ContainsAtLeast(const QueryType& q,
                                  std::span<const KeywordId> keywords,
                                  uint64_t t, QueryStats* stats) const {
  KWSC_CHECK(t >= 1);
  const std::vector<KeywordId> sorted =
      CanonicalizeQueryKeywords(keywords, options_.k);
  if (nodes_.empty()) return false;
  // Budget per Corollary 6 (d = 2 <= k - 1 regime plus the substrate's own
  // crossing term; the constant absorbs the substitution's weaker exponent).
  OpsBudget budget(ThresholdQueryBudget(total_weight(), options_.k, t, 128.0));
  uint64_t found = 0;
  std::function<bool(ObjectId)> emit = [&found, t](ObjectId) {
    return ++found < t;
  };
  Visit(0, q, sorted, emit, stats, &budget);
  return found >= t || budget.Exhausted();
}

bool SpKwHsIndex::Visit(uint32_t node_index, const QueryType& q,
                        std::span<const KeywordId> kws,
                        const std::function<bool(ObjectId)>& emit,
                        QueryStats* stats, OpsBudget* budget) const {
  const Node& node = nodes_[node_index];
  const bool covered = Classify(node.cell, q) == 2;
  if (stats != nullptr) {
    ++stats->nodes_visited;
    covered ? ++stats->covered_nodes : ++stats->crossing_nodes;
  }
  if (!budget->Charge()) return Exhaust(stats);

  for (ObjectId e : node.dir.pivots()) {
    if (!budget->Charge()) return Exhaust(stats);
    if (stats != nullptr) {
      ++stats->pivot_checks;
      covered ? ++stats->covered_work : ++stats->crossing_work;
    }
    if (q.Satisfies(points_[e]) && corpus_->ContainsAll(e, kws)) {
      if (stats != nullptr) ++stats->results;
      if (!emit(e)) return false;
    }
  }
  if (node.IsLeaf()) return true;

  uint32_t lids[8];
  KeywordId small_keyword = 0;
  if (!node.dir.ResolveLarge(kws, lids, &small_keyword)) {
    if (options_.enable_materialized_lists) {
      const std::optional<std::span<const ObjectId>> list =
          node.dir.MaterializedList(small_keyword);
      if (!list.has_value()) return true;
      for (ObjectId e : *list) {
        if (!budget->Charge()) return Exhaust(stats);
        if (stats != nullptr) {
          ++stats->list_scanned;
          covered ? ++stats->covered_work : ++stats->crossing_work;
        }
        if (q.Satisfies(points_[e]) && corpus_->ContainsAll(e, kws)) {
          if (stats != nullptr) ++stats->results;
          if (!emit(e)) return false;
        }
      }
      return true;
    }
    return ScanSubtree(node_index, q, kws, emit, stats, budget);
  }

  for (int c = 0; c < kFanout; ++c) {
    const int32_t child = node.child[c];
    if (child < 0) continue;
    if (options_.enable_tuple_pruning &&
        !node.dir.ChildTupleNonEmpty(c, {lids, kws.size()})) {
      if (stats != nullptr) ++stats->tuple_pruned;
      continue;
    }
    if (Classify(nodes_[child].cell, q) == 0) {
      if (stats != nullptr) ++stats->geom_pruned;
      continue;
    }
    if (!Visit(child, q, kws, emit, stats, budget)) return false;
  }
  return true;
}

bool SpKwHsIndex::ScanSubtree(uint32_t node_index, const QueryType& q,
                              std::span<const KeywordId> kws,
                              const std::function<bool(ObjectId)>& emit,
                              QueryStats* stats, OpsBudget* budget) const {
  const Node& node = nodes_[node_index];
  for (int c = 0; c < kFanout; ++c) {
    const int32_t child = node.child[c];
    if (child < 0) continue;
    if (Classify(nodes_[child].cell, q) == 0) continue;
    for (ObjectId e : nodes_[child].dir.pivots()) {
      if (!budget->Charge()) return Exhaust(stats);
      if (stats != nullptr) ++stats->list_scanned;
      if (q.Satisfies(points_[e]) && corpus_->ContainsAll(e, kws)) {
        if (stats != nullptr) ++stats->results;
        if (!emit(e)) return false;
      }
    }
    if (!ScanSubtree(child, q, kws, emit, stats, budget)) return false;
  }
  return true;
}

bool SpKwHsIndex::Exhaust(QueryStats* stats) {
  if (stats != nullptr) stats->budget_exhausted = true;
  return false;
}

size_t SpKwHsIndex::MemoryBytes() const {
  size_t total = VectorBytes(points_) + nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.dir.MemoryBytes() + node.cell.MemoryBytes();
  }
  return total;
}

}  // namespace kwsc
