// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// L2NN-KW: t-nearest-neighbour under Euclidean distance with keywords
// (Corollary 7).
//
// Points live on the integer grid N^d (coordinates of O(log N) bits, as the
// problem statement requires), so squared distances are integers bounded by
// a polynomial in N. The query binary-searches the squared radius over that
// integer range — O(log N) steps — testing each radius with the budgeted
// SRP-KW threshold primitive, then reports the ball at the minimal radius
// and keeps the t closest (exact int64 arithmetic breaks ties by id, the
// rank-space trick of the paper's general-position removal).

#ifndef KWSC_CORE_NN_L2_H_
#define KWSC_CORE_NN_L2_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/abi.h"
#include "common/flat_arena.h"
#include "common/macros.h"
#include "core/framework.h"
#include "core/srp_kw.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

template <int D>
class L2NnIndex {
 public:
  using PointType = IntPoint<D>;
  using Engine = SrpKwIndex<D, int64_t>;

  /// Coordinates must fit in 31 bits so squared distances stay exact in
  /// int64 (and in the double arithmetic of the lifted engine).
  L2NnIndex(std::span<const PointType> points, const Corpus* corpus,
            FrameworkOptions options)
      : engine_(points, corpus, options) {
    points_.Assign(std::vector<PointType>(points.begin(), points.end()));
    for (const PointType& p : points_) {
      for (int dim = 0; dim < D; ++dim) {
        KWSC_CHECK_MSG(p[dim] >= -kMaxCoord && p[dim] <= kMaxCoord,
                       "coordinate out of the 31-bit range");
        max_abs_coord_ = std::max(max_abs_coord_, std::abs(p[dim]));
      }
    }
  }

  int k() const { return engine_.k(); }

  /// Returns (up to) t objects of D(w1..wk) closest to `q` under L2,
  /// ordered by non-decreasing distance (ties by id). Fewer than t only when
  /// D(w1..wk) has fewer members.
  std::vector<ObjectId> Query(const PointType& q, uint64_t t,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr) const {
    KWSC_CHECK(t >= 1);
    if (points_.empty()) return {};
    for (int dim = 0; dim < D; ++dim) {
      KWSC_CHECK(q[dim] >= -kMaxCoord && q[dim] <= kMaxCoord);
    }
    // Max possible squared distance between q and any data point.
    int64_t max_side = 0;
    for (int dim = 0; dim < D; ++dim) {
      max_side = std::max(max_side, std::abs(q[dim]) + max_abs_coord_);
    }
    int64_t hi = static_cast<int64_t>(D) * max_side * max_side;

    if (!engine_.ContainsAtLeast(q, static_cast<double>(hi), keywords, t,
                                 stats)) {
      // Fewer than t matches exist: report them all.
      return FinishQuery(q, hi, t, keywords, stats);
    }
    // Binary search the minimal integer squared radius with >= t matches.
    int64_t lo = 0;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      if (engine_.ContainsAtLeast(q, static_cast<double>(mid), keywords, t,
                                  stats)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return FinishQuery(q, hi, t, keywords, stats);
  }

  size_t MemoryBytes() const {
    return engine_.MemoryBytes() + points_.MemoryBytes();
  }

  // ---- v2 flat layout: a small own container (original integer points plus
  // the cached coordinate bound the radius search needs) followed by the
  // lifted SRP-KW engine's container. ----

  static constexpr uint32_t kFlatFamilyTag = FlatFamilyTag('K', 'W', 'L', '2');

  struct FlatRoot {
    uint32_t dim;
    uint32_t reserved;
    uint64_t num_points;
    int64_t max_abs_coord;
    SlabRef points;  // IntPoint<D>
  };

  void SaveFlat(std::ostream* out, uint32_t family_tag = kFlatFamilyTag) const {
    FlatArenaWriter writer(family_tag);
    FlatRoot root;
    std::memset(static_cast<void*>(&root), 0, sizeof(root));  // padding must be deterministic
    root.dim = static_cast<uint32_t>(D);
    root.num_points = points_.size();
    root.max_abs_coord = max_abs_coord_;
    root.points = writer.Slab(points_.view());
    writer.Root(root);
    writer.WriteTo(out);
    engine_.SaveFlat(out);
  }

  static L2NnIndex LoadFlat(std::shared_ptr<const MmapFile> file,
                            const Corpus* corpus, uint64_t offset = 0,
                            uint32_t expected_tag = kFlatFamilyTag) {
    KWSC_CHECK(file != nullptr);
    const FlatArenaReader reader(*file, offset, expected_tag);
    const FlatRoot& root = reader.template Root<FlatRoot>();
    KWSC_CHECK_MSG(root.dim == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    L2NnIndex index(
        Engine::LoadFlat(file, corpus, offset + reader.total_bytes()));
    KWSC_CHECK(reader.SlabOk<PointType>(root.points) &&
               root.points.count == root.num_points);
    index.points_.Attach(reader.Slab<PointType>(root.points));
    index.max_abs_coord_ = root.max_abs_coord;
    index.mmap_ = std::move(file);
    return index;
  }

  static bool ValidateFlat(const MmapFile& file, uint64_t offset,
                           uint32_t expected_tag, const FlatErrorSink& sink) {
    if (!FlatArenaReader::Validate(file, offset, expected_tag, sink)) {
      return false;
    }
    const FlatArenaReader reader(file, offset, expected_tag);
    if (!reader.RootOk<FlatRoot>()) {
      sink("flat root size mismatch for family");
      return false;
    }
    const FlatRoot& root = reader.template Root<FlatRoot>();
    if (root.dim != static_cast<uint32_t>(D)) {
      sink("flat root dimensionality mismatch");
      return false;
    }
    bool ok = true;
    if (!reader.SlabOk<PointType>(root.points) ||
        root.points.count != root.num_points) {
      sink("flat point slab out of bounds or cardinality mismatch");
      ok = false;
    } else {
      // Deep check: the cached coordinate bound must be the recomputed
      // maximum, or the radius binary search can under-shoot.
      int64_t recomputed = 0;
      for (const PointType& p : reader.Slab<PointType>(root.points)) {
        for (int dim = 0; dim < D; ++dim) {
          recomputed = std::max(recomputed, std::abs(p[dim]));
        }
      }
      if (root.num_points != 0 && recomputed != root.max_abs_coord) {
        sink("flat coordinate bound disagrees with the stored points");
        ok = false;
      }
    }
    if (!Engine::ValidateFlat(file, offset + reader.total_bytes(),
                              Engine::kFlatFamilyTag, sink)) {
      ok = false;
    }
    return ok;
  }

 private:
  static constexpr int64_t kMaxCoord = (int64_t{1} << 31) - 1;

  // Shell constructor used by LoadFlat (the engine loads first because the
  // by-value member needs a live object before the points attach).
  explicit L2NnIndex(Engine&& engine) : engine_(std::move(engine)) {}

  std::vector<ObjectId> FinishQuery(const PointType& q, int64_t radius_sq,
                                    uint64_t t,
                                    std::span<const KeywordId> keywords,
                                    QueryStats* stats) const {
    std::vector<ObjectId> matches =
        engine_.Query(q, static_cast<double>(radius_sq), keywords, stats);
    std::sort(matches.begin(), matches.end(), [&](ObjectId a, ObjectId b) {
      const int64_t da = L2DistanceSquared(points_[a], q);
      const int64_t db = L2DistanceSquared(points_[b], q);
      if (da != db) return da < db;
      return a < b;
    });
    if (matches.size() > t) matches.resize(t);
    return matches;
  }

  // Owned after a build; a zero-copy view into mmap_ after LoadFlat.
  OwnedSpan<PointType> points_;
  int64_t max_abs_coord_ = 0;
  Engine engine_;
  std::shared_ptr<const MmapFile> mmap_;
};

// The persisted d=2 instantiation: the KWL2 flat root (FORMATS.lock locks
// its layout under format l2-nn).
KWSC_ABI_STRUCT_AS(L2NnFlatRoot2, L2NnIndex<2>::FlatRoot);

}  // namespace kwsc

#endif  // KWSC_CORE_NN_L2_H_
