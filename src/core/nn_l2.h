// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// L2NN-KW: t-nearest-neighbour under Euclidean distance with keywords
// (Corollary 7).
//
// Points live on the integer grid N^d (coordinates of O(log N) bits, as the
// problem statement requires), so squared distances are integers bounded by
// a polynomial in N. The query binary-searches the squared radius over that
// integer range — O(log N) steps — testing each radius with the budgeted
// SRP-KW threshold primitive, then reports the ball at the minimal radius
// and keeps the t closest (exact int64 arithmetic breaks ties by id, the
// rank-space trick of the paper's general-position removal).

#ifndef KWSC_CORE_NN_L2_H_
#define KWSC_CORE_NN_L2_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "core/framework.h"
#include "core/srp_kw.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

template <int D>
class L2NnIndex {
 public:
  using PointType = IntPoint<D>;

  /// Coordinates must fit in 31 bits so squared distances stay exact in
  /// int64 (and in the double arithmetic of the lifted engine).
  L2NnIndex(std::span<const PointType> points, const Corpus* corpus,
            FrameworkOptions options)
      : points_(points.begin(), points.end()),
        engine_(std::span<const PointType>(points_), corpus, options) {
    for (const PointType& p : points_) {
      for (int dim = 0; dim < D; ++dim) {
        KWSC_CHECK_MSG(p[dim] >= -kMaxCoord && p[dim] <= kMaxCoord,
                       "coordinate out of the 31-bit range");
        max_abs_coord_ = std::max(max_abs_coord_, std::abs(p[dim]));
      }
    }
  }

  int k() const { return engine_.k(); }

  /// Returns (up to) t objects of D(w1..wk) closest to `q` under L2,
  /// ordered by non-decreasing distance (ties by id). Fewer than t only when
  /// D(w1..wk) has fewer members.
  std::vector<ObjectId> Query(const PointType& q, uint64_t t,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr) const {
    KWSC_CHECK(t >= 1);
    if (points_.empty()) return {};
    for (int dim = 0; dim < D; ++dim) {
      KWSC_CHECK(q[dim] >= -kMaxCoord && q[dim] <= kMaxCoord);
    }
    // Max possible squared distance between q and any data point.
    int64_t max_side = 0;
    for (int dim = 0; dim < D; ++dim) {
      max_side = std::max(max_side, std::abs(q[dim]) + max_abs_coord_);
    }
    int64_t hi = static_cast<int64_t>(D) * max_side * max_side;

    if (!engine_.ContainsAtLeast(q, static_cast<double>(hi), keywords, t,
                                 stats)) {
      // Fewer than t matches exist: report them all.
      return FinishQuery(q, hi, t, keywords, stats);
    }
    // Binary search the minimal integer squared radius with >= t matches.
    int64_t lo = 0;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      if (engine_.ContainsAtLeast(q, static_cast<double>(mid), keywords, t,
                                  stats)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return FinishQuery(q, hi, t, keywords, stats);
  }

  size_t MemoryBytes() const {
    return engine_.MemoryBytes() + VectorBytes(points_);
  }

 private:
  static constexpr int64_t kMaxCoord = (int64_t{1} << 31) - 1;

  std::vector<ObjectId> FinishQuery(const PointType& q, int64_t radius_sq,
                                    uint64_t t,
                                    std::span<const KeywordId> keywords,
                                    QueryStats* stats) const {
    std::vector<ObjectId> matches =
        engine_.Query(q, static_cast<double>(radius_sq), keywords, stats);
    std::sort(matches.begin(), matches.end(), [&](ObjectId a, ObjectId b) {
      const int64_t da = L2DistanceSquared(points_[a], q);
      const int64_t db = L2DistanceSquared(points_[b], q);
      if (da != db) return da < db;
      return a < b;
    });
    if (matches.size() > t) matches.resize(t);
    return matches;
  }

  std::vector<PointType> points_;
  int64_t max_abs_coord_ = 0;
  SrpKwIndex<D, int64_t> engine_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_NN_L2_H_
