// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The dimension-reduction technique under keywords (Section 4, Theorem 2).
//
// ORP-KW in d = lambda + 1 dimensions reduces to ORP-KW in lambda dimensions
// at an O(log log N) space blow-up: a tree T is built over the x-dimension
// using f-balanced cuts whose fanout grows doubly exponentially with depth,
//   f_u = 2 * 2^(k^level(u))          (Eq. (10))
// so T has O(log log N) levels (Proposition 1). Every node stores
//   * its pivot set (the cut separators e*_1, ..., e*_{f-1}),
//   * a secondary ORP-KW index of dimension lambda over its active set
//     (ignoring the x-dimension).
// A query visits the maximal nodes whose x-range sigma(u) meets q[1]: type-1
// nodes (sigma inside q[1]) delegate to their secondary index; type-2 nodes
// (at most two per level, Figure 2) scan their O(f_u) pivots.
//
// The recursion over dimensions happens at compile time: the secondary index
// of DimRedOrpKwIndex<3> is the kd-tree index OrpKwIndex<2> of Theorem 1.

#ifndef KWSC_CORE_DIM_REDUCTION_H_
#define KWSC_CORE_DIM_REDUCTION_H_

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/memory.h"
#include "common/ops_budget.h"
#include "common/thread_pool.h"
#include "core/balanced_cut.h"
#include "core/framework.h"
#include "core/orp_kw.h"
#include "geom/box.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

/// Static shape of the dimension-reduction tree, for the Figure-2 /
/// Propositions 1-3 instrumentation (bench_dimred_shape).
struct DimRedShape {
  int levels = 0;                          // Root is level 0.
  std::vector<uint32_t> nodes_per_level;
  std::vector<uint64_t> max_fanout_per_level;
};

template <int D, typename Scalar = double>
class DimRedOrpKwIndex {
  static_assert(D >= 3, "use OrpKwIndex directly for d <= 2");

 public:
  using PointType = Point<D, Scalar>;
  using BoxType = Box<D, Scalar>;
  using Secondary = std::conditional_t<D == 3, OrpKwIndex<2, Scalar>,
                                       DimRedOrpKwIndex<D - 1, Scalar>>;
  using LowerPoint = Point<D - 1, Scalar>;
  using LowerBox = Box<D - 1, Scalar>;

  /// `pool`, when non-null, is a shared task pool (used when this index is
  /// itself a secondary of a higher-dimensional one); otherwise
  /// `options.num_threads` decides whether the build spins up its own. The
  /// built tree is identical for every thread count.
  DimRedOrpKwIndex(std::span<const PointType> points, const Corpus* corpus,
                   FrameworkOptions options, ThreadPool* pool = nullptr)
      : corpus_(corpus), options_(options),
        points_(points.begin(), points.end()) {
    KWSC_CHECK(corpus != nullptr);
    KWSC_CHECK(points.size() == corpus->num_objects());
    KWSC_CHECK(options_.k >= 2 && options_.k <= 8);
    if (points_.empty()) return;
    std::unique_ptr<ThreadPool> owned_pool;
    if (pool == nullptr) {
      const int threads = ResolveNumThreads(options_.num_threads);
      if (threads > 1) {
        owned_pool = std::make_unique<ThreadPool>(threads - 1);
        pool = owned_pool.get();
      }
    }
    std::vector<ObjectId> active(points_.size());
    std::iota(active.begin(), active.end(), 0);
    // Sort once by (x, id); balanced cuts preserve contiguity, so children
    // receive already-sorted slices.
    std::sort(active.begin(), active.end(), [&](ObjectId a, ObjectId b) {
      if (points_[a][0] != points_[b][0]) return points_[a][0] < points_[b][0];
      return a < b;
    });
    BuildContext ctx;
    ctx.pool = pool;
    // The doubly-exponential fanout makes even one forked level yield many
    // subtree tasks; each task also forks inside its secondary build, so
    // deep forking here would only add splice traffic.
    ctx.fork_levels = pool == nullptr ? 0 : (pool->parallelism() > 8 ? 2 : 1);
    BuildNode(active, /*level=*/0, &nodes_, &ctx);
  }

  int k() const { return options_.k; }
  size_t num_nodes() const { return nodes_.size(); }

  std::vector<ObjectId> Query(const BoxType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    std::vector<ObjectId> out;
    QueryEmit(q, keywords,
              [&out](ObjectId e) {
                out.push_back(e);
                return true;
              },
              stats, budget);
    return out;
  }

  template <typename Emit>
  void QueryEmit(const BoxType& q, std::span<const KeywordId> keywords,
                 Emit&& emit, QueryStats* stats = nullptr,
                 OpsBudget* budget = nullptr) const {
    const std::vector<KeywordId> sorted =
        CanonicalizeQueryKeywords(keywords, options_.k);
    if (nodes_.empty() || !q.Valid()) return;
    OpsBudget unlimited;
    if (budget == nullptr) budget = &unlimited;
    Visit(0, q, sorted, emit, stats, budget);
  }

  /// Budgeted threshold detection (see OrpKwIndex::ContainsAtLeast).
  bool ContainsAtLeast(const BoxType& q, std::span<const KeywordId> keywords,
                       uint64_t t, QueryStats* stats = nullptr) const {
    KWSC_CHECK(t >= 1);
    OpsBudget budget(
        ThresholdQueryBudget(corpus_->total_weight(), options_.k, t));
    uint64_t found = 0;
    QueryEmit(q, keywords,
              [&found, t](ObjectId) { return ++found < t; }, stats, &budget);
    return found >= t || budget.Exhausted();
  }

  DimRedShape Shape() const {
    DimRedShape shape;
    for (const Node& node : nodes_) {
      const int level = node.level;
      if (level + 1 > shape.levels) shape.levels = level + 1;
      if (static_cast<size_t>(level) >= shape.nodes_per_level.size()) {
        shape.nodes_per_level.resize(level + 1, 0);
        shape.max_fanout_per_level.resize(level + 1, 0);
      }
      ++shape.nodes_per_level[level];
      shape.max_fanout_per_level[level] = std::max(
          shape.max_fanout_per_level[level], node.fanout);
    }
    return shape;
  }

  size_t MemoryBytes() const {
    size_t total = VectorBytes(points_) + nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_) {
      total += VectorBytes(node.pivots) + VectorBytes(node.children) +
               VectorBytes(node.id_map);
      if (node.sub_corpus != nullptr) total += node.sub_corpus->MemoryBytes();
      if (node.secondary != nullptr) total += node.secondary->MemoryBytes();
    }
    return total;
  }

 private:
  // The invariant auditor reads (and its tests corrupt) the node arena
  // directly; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  struct Node {
    Scalar sigma_lo{};  // Tightest x-range of the active set.
    Scalar sigma_hi{};
    std::vector<ObjectId> pivots;      // The cut separators.
    std::vector<uint32_t> children;
    // Secondary lambda-dimensional index over the active set. Leaves have
    // none (their pivot set is their whole active set).
    std::unique_ptr<Corpus> sub_corpus;
    std::unique_ptr<Secondary> secondary;
    std::vector<ObjectId> id_map;      // Secondary-local id -> global id.
    uint64_t fanout = 0;
    int16_t level = 0;
  };

  struct BuildContext {
    ThreadPool* pool = nullptr;
    int fork_levels = 0;
  };

  // Appends `sub` — a subtree arena in DFS preorder with arena-local child
  // indices — onto `arena`, rebasing the indices, and returns the subtree
  // root's index in `arena`. Splicing child arenas in group order after a
  // forked build reproduces the sequential DFS preorder exactly.
  static uint32_t SpliceArena(std::vector<Node>* arena, std::vector<Node>* sub) {
    const uint32_t base = static_cast<uint32_t>(arena->size());
    arena->reserve(arena->size() + sub->size());
    for (Node& node : *sub) {
      for (uint32_t& child : node.children) child += base;
      arena->push_back(std::move(node));
    }
    sub->clear();
    return base;
  }

  // Builds `node`'s secondary structure: a lambda-dimensional ORP-KW index
  // over the whole active set, ignoring the x-dimension. Objects are
  // renumbered locally; the sub-corpus copy is what costs the O(log log N)
  // space factor. `pool` flows into the secondary build so its subtrees fork
  // on the shared pool too.
  void BuildSecondary(std::span<const ObjectId> active, Node* node,
                      ThreadPool* pool) {
    std::vector<Document> docs;
    docs.reserve(active.size());
    std::vector<LowerPoint> lower_points;
    lower_points.reserve(active.size());
    std::vector<ObjectId> id_map(active.begin(), active.end());
    for (ObjectId e : active) {
      docs.push_back(corpus_->doc(e));
      LowerPoint p;
      for (int dim = 1; dim < D; ++dim) p[dim - 1] = points_[e][dim];
      lower_points.push_back(p);
    }
    auto sub_corpus = std::make_unique<Corpus>(std::move(docs));
    // Parallelism flows through the shared pool only — a num_threads > 1
    // setting must not make every secondary spin up a pool of its own.
    FrameworkOptions sub_options = options_;
    sub_options.num_threads = 1;
    auto secondary = std::make_unique<Secondary>(
        std::span<const LowerPoint>(lower_points), sub_corpus.get(),
        sub_options, pool);
    node->sub_corpus = std::move(sub_corpus);
    node->secondary = std::move(secondary);
    node->id_map = std::move(id_map);
  }

  uint32_t BuildNode(std::span<const ObjectId> active, int level,
                     std::vector<Node>* arena, const BuildContext* ctx) {
    const uint32_t index = static_cast<uint32_t>(arena->size());
    arena->emplace_back();
    {
      Node& node = (*arena)[index];
      node.level = static_cast<int16_t>(level);
      node.sigma_lo = points_[active.front()][0];
      node.sigma_hi = points_[active.back()][0];
    }

    if (active.size() <= static_cast<size_t>(options_.leaf_objects)) {
      (*arena)[index].pivots.assign(active.begin(), active.end());
      return index;
    }

    const uint64_t fanout =
        FanoutForLevel(options_.k, level, /*max_fanout=*/active.size());
    const BalancedCut cut = ComputeBalancedCut(active, *corpus_, fanout);
    (*arena)[index].fanout = fanout;
    (*arena)[index].pivots = cut.separators;

    // Non-empty groups; slices of `active` remain sorted.
    std::vector<std::span<const ObjectId>> child_spans;
    for (const BalancedCut::Group& g : cut.groups) {
      if (g.begin == g.end) continue;
      child_spans.push_back(active.subspan(g.begin, g.end - g.begin));
    }

    if (ctx->pool == nullptr || level >= ctx->fork_levels) {
      BuildSecondary(active, &(*arena)[index], ctx->pool);
      std::vector<uint32_t> children;
      children.reserve(child_spans.size());
      for (std::span<const ObjectId> span : child_spans) {
        children.push_back(BuildNode(span, level + 1, arena, ctx));
      }
      (*arena)[index].children = std::move(children);
      return index;
    }

    // Fork: the secondary build and every child subtree are independent, so
    // all of them become tasks; child subtrees build into private arenas
    // spliced back in group order. The arenas vector is sized up front so
    // the pointers handed to the tasks stay stable.
    std::vector<std::vector<Node>> child_arenas(child_spans.size());
    {
      TaskGroup group(ctx->pool);
      // Stable: this thread appends nothing to `arena` until the splice.
      Node* node = &(*arena)[index];
      group.Run([this, active, node, ctx] {
        BuildSecondary(active, node, ctx->pool);
      });
      for (size_t i = 0; i < child_spans.size(); ++i) {
        group.Run([this, span = child_spans[i], level,
                   child_arena = &child_arenas[i], ctx] {
          BuildNode(span, level + 1, child_arena, ctx);
        });
      }
      group.Wait();
    }
    std::vector<uint32_t> children;
    children.reserve(child_arenas.size());
    for (std::vector<Node>& sub : child_arenas) {
      children.push_back(SpliceArena(arena, &sub));
    }
    (*arena)[index].children = std::move(children);
    return index;
  }

  template <typename Emit>
  bool Visit(uint32_t node_index, const BoxType& q,
             std::span<const KeywordId> kws, Emit& emit, QueryStats* stats,
             OpsBudget* budget) const {
    const Node& node = nodes_[node_index];
    // Disjoint x-ranges are pruned by the caller; re-check defensively.
    if (node.sigma_hi < q.lo[0] || node.sigma_lo > q.hi[0]) return true;
    if (!budget->Charge()) return Exhaust(stats);
    if (stats != nullptr) ++stats->nodes_visited;

    const bool type1 = q.lo[0] <= node.sigma_lo && node.sigma_hi <= q.hi[0];
    if (type1 && node.secondary != nullptr) {
      if (stats != nullptr) ++stats->type1_nodes;
      // Delegate dims 2..D to the secondary index; x is already satisfied.
      LowerBox lq;
      for (int dim = 1; dim < D; ++dim) {
        lq.lo[dim - 1] = q.lo[dim];
        lq.hi[dim - 1] = q.hi[dim];
      }
      bool keep_going = true;
      node.secondary->QueryEmit(
          lq, kws,
          [&](ObjectId local) {
            if (stats != nullptr) ++stats->results;
            keep_going = emit(node.id_map[local]);
            return keep_going;
          },
          stats, budget);
      if (budget->Exhausted()) return Exhaust(stats);
      return keep_going;
    }

    // Type-2 node (or a leaf): examine the pivots one by one.
    if (stats != nullptr && !type1) {
      ++stats->type2_nodes;
      if (stats->type2_per_level.size() <= static_cast<size_t>(node.level)) {
        stats->type2_per_level.resize(node.level + 1, 0);
      }
      ++stats->type2_per_level[node.level];
    }
    for (ObjectId e : node.pivots) {
      if (!budget->Charge()) return Exhaust(stats);
      if (stats != nullptr) ++stats->pivot_checks;
      if (q.Contains(points_[e]) && corpus_->ContainsAll(e, kws)) {
        if (stats != nullptr) ++stats->results;
        if (!emit(e)) return false;
      }
    }
    for (uint32_t child : node.children) {
      const Node& c = nodes_[child];
      if (c.sigma_hi < q.lo[0] || c.sigma_lo > q.hi[0]) continue;
      if (!Visit(child, q, kws, emit, stats, budget)) return false;
    }
    return true;
  }

  static bool Exhaust(QueryStats* stats) {
    if (stats != nullptr) stats->budget_exhausted = true;
    return false;
  }

  const Corpus* corpus_;
  FrameworkOptions options_;
  std::vector<PointType> points_;
  std::vector<Node> nodes_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_DIM_REDUCTION_H_
