// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// NodeDirectory: the secondary structure T_u of Section 3.2.
//
// For a node u of a transformed tree, the directory answers in O(1):
//   * the pivot set D_u^pvt (stored explicitly);
//   * whether a keyword is large at u (and its local id among the large);
//   * whether a k-tuple of large keywords has a non-empty intersection
//     inside a given child (the paper's k-dimensional bit array, realized as
//     a hash set of the *realized* non-empty tuples — see DESIGN.md,
//     substitution 2);
//   * the materialized list D_u^act(w) for keywords that are small at u but
//     were large at every proper ancestor.
//
// "Large" is evaluated only over keywords that are still *inherited* (large
// at every proper ancestor): a keyword that turned small higher up was
// materialized there and no query can ask about it below, so tracking it
// would waste space without changing any answer.

#ifndef KWSC_CORE_NODE_DIRECTORY_H_
#define KWSC_CORE_NODE_DIRECTORY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/flat_hash.h"
#include "common/serialize.h"
#include "core/framework.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

class NodeDirectory {
 public:
  NodeDirectory() = default;

  /// The objects stored at this node (the paper's D_u^pvt).
  const std::vector<ObjectId>& pivots() const { return pivots_; }

  /// N_u: total document weight of the active set at this node.
  uint64_t weight() const { return weight_; }

  /// Number of keywords large (and inherited) at this node.
  size_t num_large() const { return large_.size(); }

  /// Local id of `w` among the large keywords, or -1 if w is small/absent.
  int64_t LargeId(KeywordId w) const {
    const uint32_t* id = large_.Find(w);
    return id == nullptr ? -1 : static_cast<int64_t>(*id);
  }

  /// Resolves all query keywords to local large ids. Returns true iff every
  /// keyword is large at this node; on false, *small_keyword is set to the
  /// first keyword that is not large. `lids` receives the ids in the order
  /// of `sorted_keywords` (which is increasing, so lids are canonical too —
  /// local ids are assigned in increasing keyword order).
  bool ResolveLarge(std::span<const KeywordId> sorted_keywords, uint32_t* lids,
                    KeywordId* small_keyword) const;

  /// True iff the k-tuple of large keywords (given by canonical local ids)
  /// has a non-empty intersection within child `child`.
  bool ChildTupleNonEmpty(size_t child, std::span<const uint32_t> lids) const {
    return child_tuples_[child].Contains(EncodeTuple(lids));
  }

  size_t num_children() const { return child_tuples_.size(); }

  /// Materialized D_u^act(w), or nullptr when w has no list here (either the
  /// materialization condition fails or w does not occur below u).
  const std::vector<ObjectId>* MaterializedList(KeywordId w) const {
    return materialized_.Find(w);
  }

  size_t MemoryBytes() const;

  /// Binary persistence (the index owns the surrounding framing).
  void Save(OutputArchive* ar) const;
  void Load(InputArchive* ar);

  /// Packs up to k local ids (each < 2^(64/k)) into one 64-bit key. Local id
  /// counts are bounded by N_u^{1/k} <= 2^{64/k}, so the packing always fits.
  static uint64_t EncodeTuple(std::span<const uint32_t> lids);

 private:
  friend class DirectoryBuilder;
  // The invariant auditor iterates (and its tests corrupt) the tables
  // directly; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  std::vector<ObjectId> pivots_;
  FlatHashMap<KeywordId, uint32_t> large_;
  std::vector<FlatHashSet<uint64_t>> child_tuples_;
  FlatHashMap<KeywordId, std::vector<ObjectId>> materialized_;
  uint64_t weight_ = 0;
};

/// Builds NodeDirectory contents during index construction. One builder is
/// reused across nodes to amortize scratch allocations.
class DirectoryBuilder {
 public:
  DirectoryBuilder(const Corpus* corpus, FrameworkOptions options)
      : corpus_(corpus), options_(options) {}

  /// Total document weight of `objects`.
  uint64_t WeightOf(std::span<const ObjectId> objects) const;

  /// Populates `dir` for a node whose active set is `active` and whose
  /// children have active sets `child_active[0..f)`. `inherited` lists the
  /// keywords large at every proper ancestor in sorted order; nullptr means
  /// "all keywords" (the root). `pivots` are the objects stored at the node.
  ///
  /// On return, `next_inherited` (if non-null) receives the sorted keywords
  /// that are large at this node — the inherited set for the children.
  void Build(std::span<const ObjectId> active,
             std::span<const std::vector<ObjectId>> child_active,
             const std::vector<KeywordId>* inherited,
             std::vector<ObjectId> pivots, NodeDirectory* dir,
             std::vector<KeywordId>* next_inherited);

  /// Leaf variant: the whole active set becomes the pivot set and no
  /// large/tuple machinery is needed (the query examines pivots directly).
  void BuildLeaf(std::span<const ObjectId> active, NodeDirectory* dir);

 private:
  const Corpus* corpus_;
  FrameworkOptions options_;
  // Scratch: keyword -> occurrence count within the current active set.
  FlatHashMap<KeywordId, uint32_t> counts_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_NODE_DIRECTORY_H_
