// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// NodeDirectory: the secondary structure T_u of Section 3.2.
//
// For a node u of a transformed tree, the directory answers in O(1):
//   * the pivot set D_u^pvt (stored explicitly);
//   * whether a keyword is large at u (and its local id among the large);
//   * whether a k-tuple of large keywords has a non-empty intersection
//     inside a given child (the paper's k-dimensional bit array, realized as
//     a hash set of the *realized* non-empty tuples — see DESIGN.md,
//     substitution 2);
//   * the materialized list D_u^act(w) for keywords that are small at u but
//     were large at every proper ancestor.
//
// "Large" is evaluated only over keywords that are still *inherited* (large
// at every proper ancestor): a keyword that turned small higher up was
// materialized there and no query can ask about it below, so tracking it
// would waste space without changing any answer.
//
// The directory runs in one of two modes:
//   * owned — hash tables and vectors built by DirectoryBuilder or
//     deserialized from a v1 stream archive;
//   * flat — sorted spans into the memory-mapped slabs of a v2 flat
//     container (AttachFlat). Lookups switch from hashing to binary search
//     over the canonical sorted order; nothing is copied off the mapping.
// Query and save paths are mode-agnostic, so a flat-loaded index answers
// identically and re-saves to a byte-identical v1 archive.

#ifndef KWSC_CORE_NODE_DIRECTORY_H_
#define KWSC_CORE_NODE_DIRECTORY_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/abi.h"
#include "common/flat_hash.h"
#include "common/serialize.h"
#include "core/framework.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

/// One large-keyword table entry in canonical (keyword-ascending) order.
/// Doubles as the v1 archive record and the v2 flat slab element.
struct FlatLargeEntry {
  KeywordId keyword;
  uint32_t lid;
};
static_assert(sizeof(FlatLargeEntry) == 8, "no padding allowed in slabs");
KWSC_ABI_STRUCT(FlatLargeEntry);

/// One materialized list D_u^act(w) in the flat layout: `count` ObjectIds
/// starting at `begin` in the shared materialized-object pool.
struct FlatMatEntry {
  KeywordId keyword;
  uint32_t count;
  uint64_t begin;
};
static_assert(sizeof(FlatMatEntry) == 16, "no padding allowed in slabs");
KWSC_ABI_STRUCT(FlatMatEntry);

/// Flat-mode directory contents: sorted spans into mapped slabs. The owning
/// index keeps the backing MmapFile alive for as long as the directory uses
/// the view. Flat persistence currently covers the binary families only.
struct FlatDirView {
  static constexpr size_t kMaxChildren = 2;

  std::span<const ObjectId> pivots;
  std::span<const FlatLargeEntry> large;  // sorted by keyword
  std::array<std::span<const uint64_t>, kMaxChildren>
      child_tuples;                       // sorted tuple keys per child
  std::span<const FlatMatEntry> materialized;  // sorted by keyword
  std::span<const ObjectId> mat_pool;     // pool the entries index into
  uint32_t num_children = 0;
  uint64_t weight = 0;
};

class NodeDirectory {
 public:
  NodeDirectory() = default;

  /// The objects stored at this node (the paper's D_u^pvt).
  std::span<const ObjectId> pivots() const {
    return flat_mode_ ? flat_.pivots : std::span<const ObjectId>(pivots_);
  }

  /// N_u: total document weight of the active set at this node.
  uint64_t weight() const { return flat_mode_ ? flat_.weight : weight_; }

  /// Number of keywords large (and inherited) at this node.
  size_t num_large() const {
    return flat_mode_ ? flat_.large.size() : large_.size();
  }

  /// Local id of `w` among the large keywords, or -1 if w is small/absent.
  int64_t LargeId(KeywordId w) const;

  /// Resolves all query keywords to local large ids. Returns true iff every
  /// keyword is large at this node; on false, *small_keyword is set to the
  /// first keyword that is not large. `lids` receives the ids in the order
  /// of `sorted_keywords` (which is increasing, so lids are canonical too —
  /// local ids are assigned in increasing keyword order).
  bool ResolveLarge(std::span<const KeywordId> sorted_keywords, uint32_t* lids,
                    KeywordId* small_keyword) const;

  /// True iff the k-tuple of large keywords (given by canonical local ids)
  /// has a non-empty intersection within child `child`.
  bool ChildTupleNonEmpty(size_t child, std::span<const uint32_t> lids) const {
    return ChildTupleContainsKey(child, EncodeTuple(lids));
  }

  size_t num_children() const {
    return flat_mode_ ? flat_.num_children : child_tuples_.size();
  }

  /// Materialized D_u^act(w), or nullopt when w has no list here (either the
  /// materialization condition fails or w does not occur below u).
  std::optional<std::span<const ObjectId>> MaterializedList(KeywordId w) const;

  // ---- Mode-agnostic iteration (save path, auditor) ----
  //
  // Owned-mode hash iteration order is seeded per-process, so these
  // canonicalize to keyword/key-ascending order; flat mode stores exactly
  // that order already. The v1 Save below is built on them, which is what
  // makes a flat-loaded index re-save byte-identically.

  size_t num_materialized() const {
    return flat_mode_ ? flat_.materialized.size() : materialized_.size();
  }

  /// Large-keyword table in keyword-ascending order.
  std::vector<FlatLargeEntry> LargeEntriesSorted() const;

  /// Tuple-registry keys of child `c` in ascending order.
  std::vector<uint64_t> ChildTupleKeysSorted(size_t c) const;

  size_t NumChildTupleKeys(size_t c) const {
    return flat_mode_ ? flat_.child_tuples[c].size() : child_tuples_[c].size();
  }

  bool ChildTupleContainsKey(size_t c, uint64_t key) const;

  /// Invokes fn(keyword, list) for every materialized list in
  /// keyword-ascending order.
  template <typename Fn>
  void ForEachMaterializedSorted(Fn&& fn) const {
    if (flat_mode_) {
      for (const FlatMatEntry& entry : flat_.materialized) {
        fn(entry.keyword, flat_.mat_pool.subspan(entry.begin, entry.count));
      }
      return;
    }
    std::vector<KeywordId> keywords = OwnedMaterializedKeywordsSorted();
    for (KeywordId w : keywords) {
      const std::vector<ObjectId>* list = materialized_.Find(w);
      fn(w, std::span<const ObjectId>(*list));
    }
  }

  size_t MemoryBytes() const;

  /// Binary v1 persistence (the index owns the surrounding framing). Save
  /// works in both modes and emits the same canonical byte stream.
  void Save(OutputArchive* ar) const;
  void Load(InputArchive* ar);

  /// Switches to flat mode over `view` (spans into a mapped v2 container).
  /// Owned storage is released; the caller guarantees the backing bytes
  /// outlive this directory.
  void AttachFlat(const FlatDirView& view);

  bool flat_mode() const { return flat_mode_; }

  /// Packs up to k local ids (each < 2^(64/k)) into one 64-bit key. Local id
  /// counts are bounded by N_u^{1/k} <= 2^{64/k}, so the packing always fits.
  static uint64_t EncodeTuple(std::span<const uint32_t> lids);

 private:
  friend class DirectoryBuilder;
  // The invariant auditor's corruption-injection tests mutate the owned
  // tables directly; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  std::vector<KeywordId> OwnedMaterializedKeywordsSorted() const;

  std::vector<ObjectId> pivots_;
  FlatHashMap<KeywordId, uint32_t> large_;
  std::vector<FlatHashSet<uint64_t>> child_tuples_;
  FlatHashMap<KeywordId, std::vector<ObjectId>> materialized_;
  uint64_t weight_ = 0;

  bool flat_mode_ = false;
  FlatDirView flat_;
};

/// Builds NodeDirectory contents during index construction. One builder is
/// reused across nodes to amortize scratch allocations.
class DirectoryBuilder {
 public:
  DirectoryBuilder(const Corpus* corpus, FrameworkOptions options)
      : corpus_(corpus), options_(options) {}

  /// Total document weight of `objects`.
  uint64_t WeightOf(std::span<const ObjectId> objects) const;

  /// Populates `dir` for a node whose active set is `active` and whose
  /// children have active sets `child_active[0..f)`. `inherited` lists the
  /// keywords large at every proper ancestor in sorted order; nullptr means
  /// "all keywords" (the root). `pivots` are the objects stored at the node.
  ///
  /// On return, `next_inherited` (if non-null) receives the sorted keywords
  /// that are large at this node — the inherited set for the children.
  void Build(std::span<const ObjectId> active,
             std::span<const std::vector<ObjectId>> child_active,
             const std::vector<KeywordId>* inherited,
             std::vector<ObjectId> pivots, NodeDirectory* dir,
             std::vector<KeywordId>* next_inherited);

  /// Leaf variant: the whole active set becomes the pivot set and no
  /// large/tuple machinery is needed (the query examines pivots directly).
  void BuildLeaf(std::span<const ObjectId> active, NodeDirectory* dir);

 private:
  const Corpus* corpus_;
  FrameworkOptions options_;
  // Scratch: keyword -> occurrence count within the current active set.
  FlatHashMap<KeywordId, uint32_t> counts_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_NODE_DIRECTORY_H_
