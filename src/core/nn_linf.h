// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// L∞NN-KW: t-nearest-neighbour under the L∞ metric with keywords
// (Corollary 4).
//
// The proof of Corollary 4 turns an ORP-KW index into a nearest-neighbour
// index with two devices, both implemented here:
//   1. The *candidate radii*: the L∞ distance from q to its t-th closest
//      match is always a per-dimension coordinate difference |e[j] - q[j]|,
//      of which there are only d * |D|. The smallest radius r* whose L∞ ball
//      B(q, r*) holds >= t matches is found by binary search on the rank of
//      the candidate radius, with per-dimension sorted coordinate arrays
//      standing in for the paper's d binary search trees.
//   2. The *budgeted threshold test*: "does B(q,r) ∩ D(w1..wk) have >= t
//      objects" runs a reporting query under an operation budget of
//      O(N^{1-1/k} t^{1/k}); exhausting the budget certifies "yes"
//      (footnote 4 / DESIGN.md substitution 3).
// Total query cost: O(log N) threshold tests — the paper's
// O(N^{1-1/k} * t^{1/k} * log N).

#ifndef KWSC_CORE_NN_LINF_H_
#define KWSC_CORE_NN_LINF_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/abi.h"
#include "common/flat_arena.h"
#include "common/macros.h"
#include "core/dim_reduction.h"
#include "core/format_versions.h"
#include "core/framework.h"
#include "core/orp_kw.h"
#include "geom/box.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

template <int D, typename Scalar = double>
class LinfNnIndex {
 public:
  using PointType = Point<D, Scalar>;
  using Engine = std::conditional_t<D <= 2, OrpKwIndex<D, Scalar>,
                                    DimRedOrpKwIndex<D, Scalar>>;

  LinfNnIndex(std::span<const PointType> points, const Corpus* corpus,
              FrameworkOptions options) {
    points_.Assign(std::vector<PointType>(points.begin(), points.end()));
    engine_.emplace(points_.view(), corpus, options);
    for (int dim = 0; dim < D; ++dim) {
      std::vector<Scalar> coords;
      coords.reserve(points_.size());
      for (const PointType& p : points_) coords.push_back(p[dim]);
      std::sort(coords.begin(), coords.end());
      sorted_coords_[dim].Assign(std::move(coords));
    }
  }

  int k() const { return engine_->k(); }

  /// Returns (up to) t objects of D(w1..wk) closest to `q` under L∞,
  /// ordered by non-decreasing distance. Fewer than t are returned only when
  /// D(w1..wk) itself has fewer members.
  std::vector<ObjectId> Query(const PointType& q, uint64_t t,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr) const {
    KWSC_CHECK(t >= 1);
    if (points_.empty()) return {};

    // Binary search over the rank of the candidate radius: the smallest
    // candidate r with >= t matches inside B(q, r).
    const uint64_t num_candidates =
        static_cast<uint64_t>(points_.size()) * D;
    uint64_t lo = 1;
    uint64_t hi = num_candidates;
    double best_radius = CandidateRadiusByRank(q, num_candidates);
    bool any_at_best = engine_->ContainsAtLeast(BallBox(q, best_radius),
                                               keywords, t, stats);
    if (!any_at_best) {
      // Fewer than t matches exist in total: report everything, sorted.
      return FinishQuery(q, best_radius, t, keywords, stats);
    }
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      const double r = CandidateRadiusByRank(q, mid);
      if (engine_->ContainsAtLeast(BallBox(q, r), keywords, t, stats)) {
        hi = mid;
        best_radius = r;
      } else {
        lo = mid + 1;
      }
    }
    return FinishQuery(q, best_radius, t, keywords, stats);
  }

  size_t MemoryBytes() const {
    size_t total = engine_->MemoryBytes() + points_.MemoryBytes();
    for (int dim = 0; dim < D; ++dim) {
      total += sorted_coords_[dim].MemoryBytes();
    }
    return total;
  }

  /// Persistence (d <= 2 engines only, i.e. where Engine is OrpKwIndex;
  /// the dimension-reduction engine rebuilds quickly enough that persisting
  /// its per-node sub-corpora is not worth the disk footprint).
  void Save(std::ostream* out) const
    requires(D <= 2)
  {
    OutputArchive ar(out);
    ar.Magic("KWN1", kLinfNnFormatVersion);
    ar.Pod<uint32_t>(static_cast<uint32_t>(D));
    ar.Vec(points_.view());
    for (int dim = 0; dim < D; ++dim) ar.Vec(sorted_coords_[dim].view());
    // The engine writes to the raw stream next; the buffered archive must
    // hand its bytes over first or the two interleave out of order.
    ar.Flush();
    engine_->Save(out);
  }

  static LinfNnIndex Load(std::istream* in, const Corpus* corpus)
    requires(D <= 2)
  {
    InputArchive ar(in);
    const uint32_t version = ar.Magic("KWN1");
    KWSC_CHECK_MSG(version == kLinfNnFormatVersion,
                   "unsupported index version %u", version);
    KWSC_CHECK_MSG(ar.Pod<uint32_t>() == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    LinfNnIndex index{PrivateTag{}};
    index.points_.Assign(ar.Vec<PointType>());
    for (int dim = 0; dim < D; ++dim) {
      index.sorted_coords_[dim].Assign(ar.Vec<Scalar>());
    }
    index.engine_.emplace(Engine::Load(in, corpus));
    return index;
  }

  // ---- v2 flat layout: this wrapper's own container (points plus the
  // per-dimension candidate-radius arrays) followed immediately by the
  // wrapped ORP-KW engine's container. Both are padded to the alignment
  // quantum, so the engine's offset stays 64-byte aligned. ----

  static constexpr uint32_t kFlatFamilyTag = FlatFamilyTag('K', 'W', 'N', '2');

  struct FlatRoot {
    uint32_t dim;
    uint32_t reserved;
    uint64_t num_points;
    SlabRef points;             // Point<D, Scalar>
    SlabRef sorted_coords[D];   // Scalar, ascending per dimension
  };

  void SaveFlat(std::ostream* out, uint32_t family_tag = kFlatFamilyTag) const
    requires(D <= 2)
  {
    FlatArenaWriter writer(family_tag);
    FlatRoot root;
    std::memset(static_cast<void*>(&root), 0, sizeof(root));  // padding must be deterministic
    root.dim = static_cast<uint32_t>(D);
    root.num_points = points_.size();
    root.points = writer.Slab(points_.view());
    for (int dim = 0; dim < D; ++dim) {
      root.sorted_coords[dim] = writer.Slab(sorted_coords_[dim].view());
    }
    writer.Root(root);
    writer.WriteTo(out);
    engine_->SaveFlat(out);
  }

  static LinfNnIndex LoadFlat(std::shared_ptr<const MmapFile> file,
                              const Corpus* corpus, uint64_t offset = 0,
                              uint32_t expected_tag = kFlatFamilyTag)
    requires(D <= 2)
  {
    KWSC_CHECK(file != nullptr);
    const FlatArenaReader reader(*file, offset, expected_tag);
    const FlatRoot& root = reader.template Root<FlatRoot>();
    KWSC_CHECK_MSG(root.dim == static_cast<uint32_t>(D),
                   "index dimensionality mismatch");
    LinfNnIndex index{PrivateTag{}};
    KWSC_CHECK(reader.SlabOk<PointType>(root.points) &&
               root.points.count == root.num_points);
    index.points_.Attach(reader.Slab<PointType>(root.points));
    for (int dim = 0; dim < D; ++dim) {
      KWSC_CHECK(reader.SlabOk<Scalar>(root.sorted_coords[dim]) &&
                 root.sorted_coords[dim].count == root.num_points);
      index.sorted_coords_[dim].Attach(
          reader.Slab<Scalar>(root.sorted_coords[dim]));
    }
    index.engine_.emplace(
        Engine::LoadFlat(file, corpus, offset + reader.total_bytes()));
    index.mmap_ = std::move(file);
    return index;
  }

  static bool ValidateFlat(const MmapFile& file, uint64_t offset,
                           uint32_t expected_tag, const FlatErrorSink& sink)
    requires(D <= 2)
  {
    if (!FlatArenaReader::Validate(file, offset, expected_tag, sink)) {
      return false;
    }
    const FlatArenaReader reader(file, offset, expected_tag);
    if (!reader.RootOk<FlatRoot>()) {
      sink("flat root size mismatch for family");
      return false;
    }
    const FlatRoot& root = reader.template Root<FlatRoot>();
    if (root.dim != static_cast<uint32_t>(D)) {
      sink("flat root dimensionality mismatch");
      return false;
    }
    bool ok = true;
    if (!reader.SlabOk<PointType>(root.points) ||
        root.points.count != root.num_points) {
      sink("flat point slab out of bounds or cardinality mismatch");
      ok = false;
    }
    for (int dim = 0; dim < D; ++dim) {
      if (!reader.SlabOk<Scalar>(root.sorted_coords[dim]) ||
          root.sorted_coords[dim].count != root.num_points) {
        sink("flat sorted-coordinate slab out of bounds or cardinality "
             "mismatch");
        ok = false;
        continue;
      }
      const auto coords = reader.Slab<Scalar>(root.sorted_coords[dim]);
      for (size_t i = 1; i < coords.size(); ++i) {
        if (coords[i - 1] > coords[i]) {
          sink("flat candidate-radius array not sorted");
          ok = false;
          break;
        }
      }
    }
    if (!Engine::ValidateFlat(file, offset + reader.total_bytes(),
                              Engine::kFlatFamilyTag, sink)) {
      ok = false;
    }
    return ok;
  }

  /// The i-th smallest candidate radius (1-based rank), i.e. the i-th
  /// smallest value among { |c - q[j]| : c a data coordinate in dim j }.
  /// Exposed for tests of the selection substrate.
  double CandidateRadiusByRank(const PointType& q, uint64_t rank) const {
    KWSC_DCHECK(rank >= 1);
    // Bisection on the radius value, then an exact snap to the smallest
    // candidate that preserves the count. CandidateCount is monotone in r.
    double lo = 0.0;
    double hi = 0.0;
    for (int dim = 0; dim < D; ++dim) {
      const auto& coords = sorted_coords_[dim];
      hi = std::max({hi, std::fabs(static_cast<double>(coords.front()) -
                                   static_cast<double>(q[dim])),
                     std::fabs(static_cast<double>(coords.back()) -
                               static_cast<double>(q[dim]))});
    }
    if (CandidateCount(q, lo) >= rank) return lo;
    for (int iter = 0; iter < 64 && lo < hi; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (mid <= lo || mid >= hi) break;  // Converged to machine precision.
      if (CandidateCount(q, mid) >= rank) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    // Snap: the answer is the smallest candidate value > lo.
    return SmallestCandidateAbove(q, lo);
  }

  /// Number of candidate radii <= r (counting multiplicity across dims).
  uint64_t CandidateCount(const PointType& q, double r) const {
    uint64_t count = 0;
    for (int dim = 0; dim < D; ++dim) {
      const auto& coords = sorted_coords_[dim];
      const double qd = static_cast<double>(q[dim]);
      auto lo_it = std::lower_bound(coords.begin(), coords.end(), qd - r);
      auto hi_it = std::upper_bound(coords.begin(), coords.end(), qd + r);
      count += static_cast<uint64_t>(hi_it - lo_it);
    }
    return count;
  }

 private:
  // The invariant auditor audits the wrapped engine; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  Box<D, Scalar> BallBox(const PointType& q, double r) const {
    Box<D, Scalar> box;
    for (int dim = 0; dim < D; ++dim) {
      box.lo[dim] = static_cast<Scalar>(static_cast<double>(q[dim]) - r);
      box.hi[dim] = static_cast<Scalar>(static_cast<double>(q[dim]) + r);
    }
    return box;
  }

  double SmallestCandidateAbove(const PointType& q, double r) const {
    double best = std::numeric_limits<double>::infinity();
    for (int dim = 0; dim < D; ++dim) {
      const auto& coords = sorted_coords_[dim];
      const double qd = static_cast<double>(q[dim]);
      // Candidates > r on the right: first coordinate > qd + r.
      auto right = std::upper_bound(coords.begin(), coords.end(), qd + r);
      if (right != coords.end()) {
        best = std::min(best, static_cast<double>(*right) - qd);
      }
      // Candidates > r on the left: last coordinate < qd - r.
      auto left = std::lower_bound(coords.begin(), coords.end(), qd - r);
      if (left != coords.begin()) {
        best = std::min(best, qd - static_cast<double>(*(left - 1)));
      }
    }
    return std::isfinite(best) ? best : r;
  }

  std::vector<ObjectId> FinishQuery(const PointType& q, double radius,
                                    uint64_t t,
                                    std::span<const KeywordId> keywords,
                                    QueryStats* stats) const {
    std::vector<ObjectId> matches =
        engine_->Query(BallBox(q, radius), keywords, stats);
    std::sort(matches.begin(), matches.end(), [&](ObjectId a, ObjectId b) {
      const auto da = LInfDistance(points_[a], q);
      const auto db = LInfDistance(points_[b], q);
      if (da != db) return da < db;
      return a < b;
    });
    if (matches.size() > t) matches.resize(t);
    return matches;
  }

  struct PrivateTag {};
  explicit LinfNnIndex(PrivateTag) {}

  // Owned after a build or v1 load; zero-copy views into mmap_ after
  // LoadFlat.
  OwnedSpan<PointType> points_;
  std::array<OwnedSpan<Scalar>, D> sorted_coords_;
  std::optional<Engine> engine_;
  std::shared_ptr<const MmapFile> mmap_;
};

// The persisted d=2 instantiation: the KWN2 flat root (FORMATS.lock locks
// its layout under format linf-nn).
KWSC_ABI_STRUCT_AS(LinfNnFlatRoot2, LinfNnIndex<2>::FlatRoot);

}  // namespace kwsc

#endif  // KWSC_CORE_NN_LINF_H_
