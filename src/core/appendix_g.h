// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The Appendix-G reduction: answering a k-SI *reporting* query with an
// L∞NN-KW index by doubling t.
//
// Appendix G proves the (conditional) tightness of Corollary 4 by showing
// that a too-fast L∞NN-KW index would break the set-intersection
// conjectures: issue nearest-neighbour queries with t = 1, 2, 4, ...; the
// first query that returns fewer than t objects has found all of
// D(w1,...,wk), after Theta(1 + OUT) doublings of total cost dominated by
// the last round. This header implements that algorithm verbatim — both as
// a working k-SI reporter and as executable documentation of the reduction.

#ifndef KWSC_CORE_APPENDIX_G_H_
#define KWSC_CORE_APPENDIX_G_H_

#include <span>
#include <vector>

#include "core/nn_linf.h"
#include "text/corpus.h"

namespace kwsc {

/// Reports all of D(w1,...,wk) using only nearest-neighbour queries against
/// `nn` (anchored at an arbitrary point `anchor`, as in Appendix G: the
/// geometry is irrelevant, only the keyword filter matters). Also returns
/// the number of NN rounds used via `rounds` (Theta(log(1 + OUT))).
template <int D, typename Scalar>
std::vector<ObjectId> ReportViaNnDoubling(
    const LinfNnIndex<D, Scalar>& nn, const Point<D, Scalar>& anchor,
    std::span<const KeywordId> keywords, int* rounds = nullptr) {
  uint64_t t = 1;
  int used = 0;
  std::vector<ObjectId> result;
  while (true) {
    ++used;
    result = nn.Query(anchor, t, keywords);
    if (result.size() < t) break;  // The entire D(w1..wk) is in hand.
    t *= 2;
  }
  if (rounds != nullptr) *rounds = used;
  return result;
}

}  // namespace kwsc

#endif  // KWSC_CORE_APPENDIX_G_H_
