// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// SRP-KW: spherical range reporting with keywords (Corollary 6).
//
// Each data point p in R^d lifts to (p, ||p||^2) in R^{d+1} (geom/lifting.h);
// the query ball B(c, r) becomes a single halfspace there, so the problem is
// LC-KW with one constraint in d+1 dimensions, answered by the box-cell
// partition substrate. This is the "boolean range query with keywords" of
// the spatial-keyword literature [22]: find all objects within a given
// radius of a location whose documents contain all k keywords.

#ifndef KWSC_CORE_SRP_KW_H_
#define KWSC_CORE_SRP_KW_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/flat_arena.h"
#include "core/framework.h"
#include "core/sp_kw_box.h"
#include "geom/lifting.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

template <int D, typename Scalar = double>
class SrpKwIndex {
 public:
  using PointType = Point<D, Scalar>;
  using Engine = SpKwBoxIndex<D + 1, double>;

  SrpKwIndex(std::span<const PointType> points, const Corpus* corpus,
             FrameworkOptions options) {
    std::vector<Point<D + 1, double>> lifted(points.size());
    for (size_t i = 0; i < points.size(); ++i) lifted[i] = LiftPoint(points[i]);
    engine_.emplace(std::span<const Point<D + 1, double>>(lifted), corpus,
                    options);
  }

  int k() const { return engine_->k(); }

  /// Reports every object within squared distance `radius_sq` of `center`
  /// (closed ball) whose document holds all k keywords.
  std::vector<ObjectId> Query(const PointType& center, double radius_sq,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    return engine_->Query(MakeQuery(center, radius_sq), keywords, stats,
                          budget);
  }

  /// Budgeted "at least t in the ball?" detection, the primitive Corollary 7
  /// binary-searches over.
  bool ContainsAtLeast(const PointType& center, double radius_sq,
                       std::span<const KeywordId> keywords, uint64_t t,
                       QueryStats* stats = nullptr) const {
    return engine_->ContainsAtLeast(MakeQuery(center, radius_sq), keywords, t,
                                    stats);
  }

  size_t MemoryBytes() const { return engine_->MemoryBytes(); }

  // ---- v2 flat layout: this wrapper adds no state of its own (the lifted
  // points live inside the engine), so its container IS the engine's
  // container, re-tagged so a file cannot be loaded as the wrong family. ----

  static constexpr uint32_t kFlatFamilyTag = FlatFamilyTag('K', 'W', 'P', '2');

  void SaveFlat(std::ostream* out, uint32_t family_tag = kFlatFamilyTag) const {
    engine_->SaveFlat(out, family_tag);
  }

  static SrpKwIndex LoadFlat(std::shared_ptr<const MmapFile> file,
                             const Corpus* corpus, uint64_t offset = 0,
                             uint32_t expected_tag = kFlatFamilyTag) {
    SrpKwIndex index;
    index.engine_.emplace(
        Engine::LoadFlat(std::move(file), corpus, offset, expected_tag));
    return index;
  }

  static bool ValidateFlat(const MmapFile& file, uint64_t offset,
                           uint32_t expected_tag, const FlatErrorSink& sink) {
    return Engine::ValidateFlat(file, offset, expected_tag, sink);
  }

 private:
  // The invariant auditor audits the lifted engine; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  // Shell constructor used by LoadFlat.
  SrpKwIndex() = default;

  ConvexQuery<D + 1, double> MakeQuery(const PointType& center,
                                       double radius_sq) const {
    ConvexQuery<D + 1, double> q;
    q.constraints.push_back(BallToLiftedHalfspace(center, radius_sq));
    return q;
  }

  std::optional<Engine> engine_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_SRP_KW_H_
