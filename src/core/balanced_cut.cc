// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "core/balanced_cut.h"

#include "common/macros.h"

namespace kwsc {

BalancedCut ComputeBalancedCut(std::span<const ObjectId> sorted_objects,
                               const Corpus& corpus, uint64_t fanout) {
  KWSC_CHECK(fanout >= 2);
  BalancedCut cut;
  uint64_t total = 0;
  for (ObjectId e : sorted_objects) total += corpus.doc(e).size();
  // Quota per group; integer division keeps weight(D_i) <= total / f exactly.
  const uint64_t quota = total / fanout;

  uint32_t pos = 0;
  const uint32_t n = static_cast<uint32_t>(sorted_objects.size());
  while (pos < n && cut.groups.size() < fanout) {
    // Pack greedily while staying within the quota.
    uint32_t begin = pos;
    uint64_t group_weight = 0;
    while (pos < n) {
      const uint64_t w = corpus.doc(sorted_objects[pos]).size();
      if (group_weight + w > quota) break;
      group_weight += w;
      ++pos;
    }
    cut.groups.push_back({begin, pos});
    // The object that did not fit becomes a separator (if any remain and a
    // separator slot is available).
    if (pos < n && cut.separators.size() < fanout - 1) {
      cut.separators.push_back(sorted_objects[pos]);
      ++pos;
    }
  }
  // By construction the scan always terminates: f - 1 separators plus f
  // groups of quota total / f cover at least `total` weight.
  KWSC_CHECK_MSG(pos == n,
                 "balanced cut did not exhaust its input (%u of %u consumed)",
                 pos, n);
  return cut;
}

uint64_t FanoutForLevel(int k, int level, uint64_t max_fanout) {
  KWSC_CHECK(k >= 2 && level >= 0);
  // f = 2 * 2^(k^level), computed with saturation: once k^level >= 63 the
  // fanout exceeds any realistic active set and is clamped.
  uint64_t exponent = 1;  // k^0
  for (int i = 0; i < level; ++i) {
    if (exponent > 62 / static_cast<uint64_t>(k)) {
      exponent = 63;
      break;
    }
    exponent *= static_cast<uint64_t>(k);
  }
  if (exponent >= 63) return max_fanout < 2 ? 2 : max_fanout;
  const uint64_t f = uint64_t{2} << exponent;  // 2 * 2^exponent.
  if (max_fanout < 2) max_fanout = 2;
  return f > max_fanout ? max_fanout : f;
}

}  // namespace kwsc
