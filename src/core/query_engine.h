// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Batched query execution (the throughput layer).
//
// Every index in this library is immutable after construction — the contract
// tests/concurrency_test.cc exercises — so concurrent Query calls need no
// synchronization at all. This engine exploits that: a batch of (region,
// keywords) queries is cut into contiguous shards, one per thread, and each
// shard runs on its own thread with its own QueryStats. Results land in
// pre-sized slots of the output vector (no two shards touch the same slot),
// and per-shard stats are merged in shard order afterwards, so the outcome —
// result vectors, their order, and the aggregate counters — is identical to
// issuing the queries one by one on a single thread.
//
// Observability (src/obs/): each shard also records per-query wall latency
// and per-query work (objects examined) into shard-local log-bucket
// histograms, merged in shard order under the same determinism contract as
// MergeQueryStats — the work histogram is bit-identical for every thread
// count on the same batch, and the latency histogram always holds exactly
// one sample per query. With FrameworkOptions::enable_tracing the engine
// additionally snapshots a full QueryStats per query into a QueryTrace
// (off by default; the traced path reaches the identical merged totals by
// folding each per-query snapshot into the shard stats in order).
//
// Concurrency contract (DESIGN.md §5g): all cross-thread state inside Run is
// disjoint-by-construction — shard s writes only rows [begin_s, end_s),
// shard_stats[s], and shard_obs[s] — so the shard lambdas hold no locks;
// kwsc-lint's thread-capture rule checks that by-reference captures
// submitted to the TaskGroup stay in that shape. The one shared mutable
// structure, the optional MetricsRegistry, is internally locked.

#ifndef KWSC_CORE_QUERY_ENGINE_H_
#define KWSC_CORE_QUERY_ENGINE_H_

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/framework.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/document.h"

namespace kwsc {

/// One batch entry: a query region (Box for the kd-tree and
/// dimension-reduction indexes, a data rectangle for RR-KW, ConvexQuery for
/// the partition substrates) plus its k query keywords.
template <typename Region>
struct BatchQuery {
  Region region;
  std::vector<KeywordId> keywords;
};

/// Shards query batches across a thread pool.
///
/// `Index` needs only the uniform Query(region, keywords, stats) entry point
/// every index here exposes. `Region` defaults to Index::BoxType; pass it
/// explicitly for indexes whose region type has another name (e.g.
/// ConvexQuery for SpKwHsIndex).
template <typename Index, typename Region = typename Index::BoxType>
class QueryEngine {
 public:
  struct BatchResult {
    /// One result vector per query, in input order, each exactly what
    /// Index::Query would have returned.
    std::vector<std::vector<ObjectId>> rows;
    /// Aggregate over the whole batch.
    QueryStats stats;
    /// Wall time of shard execution only — it excludes result-slot
    /// allocation, shard setup, and the stats/histogram merge, so the
    /// per-query latency histogram decomposes it: max(shard_wall_micros)
    /// <= wall_micros and every shard's wall time upper-bounds the sum of
    /// its queries' latencies.
    double wall_micros = 0.0;
    /// Per-shard execution wall time, indexed by shard.
    std::vector<double> shard_wall_micros;
    /// Per-query wall latency, one sample per query, in nanoseconds.
    obs::Histogram latency;
    /// Per-query work (QueryStats::ObjectsExamined deltas) — deterministic:
    /// bit-identical across thread counts for the same batch.
    obs::Histogram work;
    /// Queries that tripped their OpsBudget (footnote 4's budgeted
    /// termination). Without tracing a shard counts only the transitions its
    /// sticky budget_exhausted flag shows; with tracing the count is exact
    /// per query. Engine-level batches rarely carry budgets, so this is
    /// normally 0.
    uint64_t budget_exhaustions = 0;
    /// Populated only when the engine was built with tracing enabled.
    obs::QueryTrace trace;
  };

  /// `index` must outlive the engine. `num_threads` follows
  /// FrameworkOptions::num_threads semantics: 0 = one per hardware thread,
  /// 1 = run the batch on the calling thread.
  QueryEngine(const Index* index, int num_threads)
      : QueryEngine(index, num_threads, /*enable_tracing=*/false,
                    /*registry=*/nullptr) {}

  /// Execution knobs from FrameworkOptions (num_threads, enable_tracing).
  /// `registry`, when non-null, accumulates engine.* counters and latency /
  /// work histograms across every Run; it must outlive the engine.
  /// MetricsRegistry is internally locked (see obs/metrics.h), so one
  /// registry may be shared by engines running on different threads — the
  /// per-batch fold is commutative, and tests/concurrency_stress_test.cc
  /// hammers exactly this sharing under TSan.
  QueryEngine(const Index* index, const FrameworkOptions& options,
              obs::MetricsRegistry* registry = nullptr)
      : QueryEngine(index, options.num_threads, options.enable_tracing,
                    registry) {}

  int num_threads() const { return num_threads_; }
  bool tracing_enabled() const { return trace_enabled_; }

  BatchResult Run(std::span<const BatchQuery<Region>> queries) const {
    BatchResult out;
    out.trace.enabled = trace_enabled_;
    out.rows.resize(queries.size());
    if (queries.empty()) {
      // An empty batch is still a batch: engine.batches must count every Run
      // call or the batches/queries ratio in the registry skews.
      if (registry_ != nullptr) {
        registry_->AddCounter("engine.batches", 1);
        registry_->AddCounter("engine.queries", 0);
      }
      return out;
    }
    WallTimer run_timer;
    const size_t shards =
        std::min(static_cast<size_t>(num_threads_), queries.size());
    std::vector<QueryStats> shard_stats(shards);
    std::vector<ShardObs> shard_obs(shards);
    const double exec_start_us = run_timer.ElapsedMicros();
    {
      TaskGroup group(pool_.get());
      for (size_t s = 1; s < shards; ++s) {
        group.Run([this, queries, &out, &shard_stats, &shard_obs, &run_timer,
                   s, shards] {
          RunShard(queries, s, shards, &out.rows, &shard_stats[s],
                   &shard_obs[s], run_timer);
        });
      }
      // Shard 0 runs on the calling thread; the group destructor joins the
      // rest (helping with stragglers still queued).
      RunShard(queries, 0, shards, &out.rows, &shard_stats[0], &shard_obs[0],
               run_timer);
    }
    const double exec_end_us = run_timer.ElapsedMicros();
    out.wall_micros = exec_end_us - exec_start_us;
    // Merge in shard order — the determinism contract: totals, histograms,
    // and span order equal the sequential single-thread accumulation.
    out.shard_wall_micros.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      MergeQueryStats(shard_stats[s], &out.stats);
      out.latency.Merge(shard_obs[s].latency);
      out.work.Merge(shard_obs[s].work);
      out.budget_exhaustions += shard_obs[s].budget_exhaustions;
      out.shard_wall_micros.push_back(shard_obs[s].wall_micros);
      if (trace_enabled_) {
        for (auto& span : shard_obs[s].spans) {
          out.trace.queries.push_back(std::move(span));
        }
      }
    }
    if (trace_enabled_) {
      out.trace.phases.push_back({"setup", 0.0, exec_start_us});
      out.trace.phases.push_back({"execute", exec_start_us, out.wall_micros});
      out.trace.phases.push_back(
          {"merge", exec_end_us, run_timer.ElapsedMicros() - exec_end_us});
    }
    if (registry_ != nullptr) {
      registry_->AddCounter("engine.batches", 1);
      registry_->AddCounter("engine.queries", queries.size());
      registry_->AddCounter("engine.ops_budget_exhausted",
                            out.budget_exhaustions);
      registry_->MergeHistogram("engine.query_latency_ns", out.latency);
      registry_->MergeHistogram("engine.query_work_objects", out.work);
    }
    return out;
  }

 private:
  /// Shard-local observability, merged into BatchResult in shard order.
  struct ShardObs {
    obs::Histogram latency;
    obs::Histogram work;
    uint64_t budget_exhaustions = 0;
    double wall_micros = 0.0;
    std::vector<obs::QuerySpan> spans;
  };

  QueryEngine(const Index* index, int num_threads, bool enable_tracing,
              obs::MetricsRegistry* registry)
      : index_(index),
        num_threads_(ResolveNumThreads(num_threads)),
        trace_enabled_(enable_tracing),
        registry_(registry) {
    KWSC_CHECK(index != nullptr);
    if (num_threads_ > 1) {
      pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
    }
  }

  void RunShard(std::span<const BatchQuery<Region>> queries, size_t shard,
                size_t shards, std::vector<std::vector<ObjectId>>* rows,
                QueryStats* stats, ShardObs* sobs,
                const WallTimer& run_timer) const {
    // Contiguous blocks: shard s owns [s*n/shards, (s+1)*n/shards).
    const size_t n = queries.size();
    const size_t begin = shard * n / shards;
    const size_t end = (shard + 1) * n / shards;
    if (trace_enabled_) sobs->spans.reserve(end - begin);
    WallTimer shard_timer;
    for (size_t i = begin; i < end; ++i) {
      if (trace_enabled_) {
        // Fresh per-query stats, folded into the shard stats in order:
        // identical totals to threading one QueryStats through the loop.
        const double start_us = run_timer.ElapsedMicros();
        WallTimer query_timer;
        QueryStats query_stats;
        (*rows)[i] =
            index_->Query(queries[i].region, queries[i].keywords, &query_stats);
        const int64_t nanos = query_timer.ElapsedNanos();
        RecordQuery(nanos, query_stats.ObjectsExamined(), sobs);
        if (query_stats.budget_exhausted) ++sobs->budget_exhaustions;
        obs::QuerySpan span;
        span.query_index = static_cast<uint32_t>(i);
        span.shard = static_cast<uint32_t>(shard);
        span.start_micros = start_us;
        span.duration_micros = static_cast<double>(nanos) / 1e3;
        span.stats = query_stats;
        sobs->spans.push_back(std::move(span));
        MergeQueryStats(query_stats, stats);
      } else {
        const uint64_t work_before = stats->ObjectsExamined();
        const bool exhausted_before = stats->budget_exhausted;
        WallTimer query_timer;
        (*rows)[i] =
            index_->Query(queries[i].region, queries[i].keywords, stats);
        RecordQuery(query_timer.ElapsedNanos(),
                    stats->ObjectsExamined() - work_before, sobs);
        if (stats->budget_exhausted && !exhausted_before) {
          ++sobs->budget_exhaustions;
        }
      }
    }
    sobs->wall_micros = shard_timer.ElapsedMicros();
  }

  static void RecordQuery(int64_t nanos, uint64_t work, ShardObs* sobs) {
    sobs->latency.Record(nanos <= 0 ? 0 : static_cast<uint64_t>(nanos));
    sobs->work.Record(work);
  }

  const Index* index_;
  int num_threads_;
  bool trace_enabled_;
  obs::MetricsRegistry* registry_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_QUERY_ENGINE_H_
