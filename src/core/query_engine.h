// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Batched query execution (the throughput layer).
//
// Every index in this library is immutable after construction — the contract
// tests/concurrency_test.cc exercises — so concurrent Query calls need no
// synchronization at all. This engine exploits that: a batch of (region,
// keywords) queries is cut into contiguous shards, one per thread, and each
// shard runs on its own thread with its own QueryStats. Results land in
// pre-sized slots of the output vector (no two shards touch the same slot),
// and per-shard stats are merged in shard order afterwards, so the outcome —
// result vectors, their order, and the aggregate counters — is identical to
// issuing the queries one by one on a single thread.

#ifndef KWSC_CORE_QUERY_ENGINE_H_
#define KWSC_CORE_QUERY_ENGINE_H_

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/framework.h"
#include "text/document.h"

namespace kwsc {

/// One batch entry: a query region (Box for the kd-tree and
/// dimension-reduction indexes, a data rectangle for RR-KW, ConvexQuery for
/// the partition substrates) plus its k query keywords.
template <typename Region>
struct BatchQuery {
  Region region;
  std::vector<KeywordId> keywords;
};

/// Shards query batches across a thread pool.
///
/// `Index` needs only the uniform Query(region, keywords, stats) entry point
/// every index here exposes. `Region` defaults to Index::BoxType; pass it
/// explicitly for indexes whose region type has another name (e.g.
/// ConvexQuery for SpKwHsIndex).
template <typename Index, typename Region = typename Index::BoxType>
class QueryEngine {
 public:
  struct BatchResult {
    /// One result vector per query, in input order, each exactly what
    /// Index::Query would have returned.
    std::vector<std::vector<ObjectId>> rows;
    /// Aggregate over the whole batch.
    QueryStats stats;
    double wall_micros = 0.0;
  };

  /// `index` must outlive the engine. `num_threads` follows
  /// FrameworkOptions::num_threads semantics: 0 = one per hardware thread,
  /// 1 = run the batch on the calling thread.
  QueryEngine(const Index* index, int num_threads)
      : index_(index), num_threads_(ResolveNumThreads(num_threads)) {
    KWSC_CHECK(index != nullptr);
    if (num_threads_ > 1) {
      pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
    }
  }

  int num_threads() const { return num_threads_; }

  BatchResult Run(std::span<const BatchQuery<Region>> queries) const {
    BatchResult out;
    out.rows.resize(queries.size());
    if (queries.empty()) return out;
    WallTimer timer;
    const size_t shards =
        std::min(static_cast<size_t>(num_threads_), queries.size());
    std::vector<QueryStats> shard_stats(shards);
    {
      TaskGroup group(pool_.get());
      for (size_t s = 1; s < shards; ++s) {
        group.Run([this, queries, &out, &shard_stats, s, shards] {
          RunShard(queries, s, shards, &out.rows, &shard_stats[s]);
        });
      }
      // Shard 0 runs on the calling thread; the group destructor joins the
      // rest (helping with stragglers still queued).
      RunShard(queries, 0, shards, &out.rows, &shard_stats[0]);
    }
    for (const QueryStats& s : shard_stats) MergeQueryStats(s, &out.stats);
    out.wall_micros = timer.ElapsedMicros();
    return out;
  }

 private:
  void RunShard(std::span<const BatchQuery<Region>> queries, size_t shard,
                size_t shards, std::vector<std::vector<ObjectId>>* rows,
                QueryStats* stats) const {
    // Contiguous blocks: shard s owns [s*n/shards, (s+1)*n/shards).
    const size_t n = queries.size();
    const size_t begin = shard * n / shards;
    const size_t end = (shard + 1) * n / shards;
    for (size_t i = begin; i < end; ++i) {
      (*rows)[i] = index_->Query(queries[i].region, queries[i].keywords, stats);
    }
  }

  const Index* index_;
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_QUERY_ENGINE_H_
