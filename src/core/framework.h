// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Shared pieces of the index transformation framework (Section 3).
//
// Every transformed index in this library follows the paper's four steps:
//   1. a space-partitioning tree is built on the *verbose set* (each object
//      weighted by its document size);
//   2. each node u carries an active set D_u^act and a pivot set D_u^pvt,
//      plus a secondary structure T_u (NodeDirectory) recording which
//      keywords are large at u, which k-tuples of large keywords have a
//      non-empty intersection inside each child, and the materialized lists
//      D_u^act(w) for keywords that just turned small;
//   3. queries descend while all k keywords stay large, stop at the first
//      node where one turns small (scanning its materialized list), and
//      prune children by tuple emptiness and cell/query disjointness;
//   4. degeneracies are removed by rank space (kd path) or deterministic
//      tie-breaking (partition-tree path).
// This header holds the options, statistics, and keyword-validation helpers
// common to all of them.

#ifndef KWSC_CORE_FRAMEWORK_H_
#define KWSC_CORE_FRAMEWORK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/abi.h"
#include "common/macros.h"
#include "common/ops_budget.h"
#include "common/serialize.h"
#include "text/document.h"

namespace kwsc {

/// Construction options shared by the framework indexes.
struct FrameworkOptions {
  /// Number of keywords every query must supply (the paper fixes k >= 2 at
  /// construction time).
  int k = 2;

  /// Large/small threshold exponent: keyword w is large at node u when
  /// |D_u^act(w)| >= N_u^alpha. The paper's choice is alpha = 1 - 1/k;
  /// bench_ablation_threshold sweeps this.
  /// A non-positive value means "use 1 - 1/k".
  double alpha = -1.0;

  /// Nodes whose active set has at most this many objects become leaves
  /// (their active set is their pivot set). The paper recurses to single
  /// objects; a small constant keeps the same asymptotics with fewer nodes.
  int leaf_objects = 4;

  /// Disables the per-child k-tuple emptiness pruning (ablation A2).
  bool enable_tuple_pruning = true;

  /// Disables materialized lists: queries hitting a small keyword fall back
  /// to scanning the whole active subtree (ablation A2).
  bool enable_materialized_lists = true;

  /// Box-substrate partition indexes only: decide cell-vs-polytope
  /// disjointness exactly with a small LP (geom/lp.h) instead of the
  /// conservative per-halfspace corner tests. Exact tests prune more cells
  /// per node at a higher per-node cost; results are identical either way.
  bool exact_cell_tests = false;

  /// Threads used to build the index (and, via core/query_engine.h, to shard
  /// query batches): 0 = one per hardware thread, 1 = fully sequential.
  /// Every setting produces the same index — parallel builds are
  /// byte-identical under Save — so this is purely a wall-clock knob. It is
  /// an execution property, not an index property, and is therefore excluded
  /// from serialization (see PersistedFrameworkOptions).
  int num_threads = 1;

  /// Records a per-query trace (phase spans + a QueryStats snapshot per
  /// query, see obs/trace.h) when batches run through core/query_engine.h.
  /// Off by default: tracing copies a QueryStats per query, and the hot path
  /// must not pay for observability nobody asked for. Like num_threads this
  /// is an execution property, not an index property, and is excluded from
  /// serialization (see PersistedFrameworkOptions).
  bool enable_tracing = false;

  double EffectiveAlpha() const {
    return alpha > 0 ? alpha : 1.0 - 1.0 / static_cast<double>(k);
  }
};

/// The on-disk image of FrameworkOptions: exactly the fields that determine
/// index structure, in the seed archive layout. Keeping this mirror (instead
/// of dumping FrameworkOptions raw) pins the serialization format while
/// FrameworkOptions grows execution-only knobs like num_threads.
struct PersistedFrameworkOptions {
  int32_t k;
  double alpha;
  int32_t leaf_objects;
  bool enable_tuple_pruning;
  bool enable_materialized_lists;
  bool exact_cell_tests;
};
static_assert(sizeof(PersistedFrameworkOptions) == 24,
              "archive layout of FrameworkOptions must not change");
// PADDED: 4 bytes of alignment gap after `k` and 1 tail byte, zeroed by the
// memset in SaveFrameworkOptions so archived images stay byte-deterministic.
KWSC_ABI_STRUCT_PADDED_AS(PersistedFrameworkOptions,
                          PersistedFrameworkOptions);

inline void SaveFrameworkOptions(OutputArchive* ar,
                                 const FrameworkOptions& options) {
  PersistedFrameworkOptions persisted;
  // Zero first so padding bytes are deterministic — Save streams are
  // compared byte-for-byte by the determinism tests and fingerprints.
  std::memset(static_cast<void*>(&persisted), 0, sizeof(persisted));
  persisted.k = options.k;
  persisted.alpha = options.alpha;
  persisted.leaf_objects = options.leaf_objects;
  persisted.enable_tuple_pruning = options.enable_tuple_pruning;
  persisted.enable_materialized_lists = options.enable_materialized_lists;
  persisted.exact_cell_tests = options.exact_cell_tests;
  ar->Pod(persisted);
}

inline FrameworkOptions LoadFrameworkOptions(InputArchive* ar) {
  const auto persisted = ar->Pod<PersistedFrameworkOptions>();
  FrameworkOptions options;
  options.k = persisted.k;
  options.alpha = persisted.alpha;
  options.leaf_objects = persisted.leaf_objects;
  options.enable_tuple_pruning = persisted.enable_tuple_pruning;
  options.enable_materialized_lists = persisted.enable_materialized_lists;
  options.exact_cell_tests = persisted.exact_cell_tests;
  return options;  // num_threads keeps its default; loading is sequential.
}

/// Index of the weighted median of `n` elements under the prefix rule shared
/// by every tree builder: the smallest m with 2 * prefix_weight(m) >= total.
/// The returned element becomes the pivot; elements before it go left, after
/// it go right.
///
/// Degenerate guard: when one element dominates the total weight the prefix
/// rule lands on position 0 or n-1, producing an empty child whose sibling
/// keeps everything else — chains of such splits peel one pivot per level
/// and depth degrades to O(N). Falling back to the cardinality median keeps
/// both children non-empty (for n >= 3); the dominant element then becomes a
/// pivot within O(1) further levels, so every level halves either the weight
/// or the cardinality and depth stays O(log N + log W).
template <typename WeightFn>
size_t WeightedMedianIndex(size_t n, WeightFn&& weight_of) {
  KWSC_CHECK(n > 0);
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += weight_of(i);
  size_t median = n - 1;
  uint64_t prefix = 0;
  for (size_t i = 0; i < n; ++i) {
    prefix += weight_of(i);
    if (2 * prefix >= total) {
      median = i;
      break;
    }
  }
  if (n >= 3 && (median == 0 || median == n - 1)) median = n / 2;
  return median;
}

/// Per-query instrumentation. All counters are optional to maintain: query
/// entry points accept a nullptr Stats.
struct QueryStats {
  uint64_t nodes_visited = 0;
  uint64_t covered_nodes = 0;    // Cell fully inside the query region.
  uint64_t crossing_nodes = 0;   // Cell intersecting the query boundary.
  uint64_t pivot_checks = 0;     // Objects examined from pivot sets.
  uint64_t list_scanned = 0;     // Objects examined from materialized lists.
  uint64_t results = 0;
  uint64_t tuple_pruned = 0;     // Children skipped by tuple emptiness.
  uint64_t geom_pruned = 0;      // Children skipped by cell/query tests.
  // Objects examined at covered vs. crossing nodes — the split the analysis
  // of Section 3.3 makes (Lemma 9 vs. the crossing-sensitivity bound (7)).
  uint64_t covered_work = 0;
  uint64_t crossing_work = 0;
  // Dimension-reduction queries (Section 4): nodes whose x-range lies inside
  // the query's x-interval (type 1, delegated to the secondary index) vs.
  // nodes whose range straddles a boundary (type 2, pivot scans). The paper
  // proves at most two type-2 nodes exist per level (Figure 2).
  uint64_t type1_nodes = 0;
  uint64_t type2_nodes = 0;
  std::vector<uint32_t> type2_per_level;
  bool budget_exhausted = false;

  uint64_t ObjectsExamined() const { return pivot_checks + list_scanned; }
};

/// Accumulates `from` into `into`. Used by the batched query engine to merge
/// per-shard statistics; merging shard stats in shard order yields the same
/// totals as threading one QueryStats through every query sequentially.
inline void MergeQueryStats(const QueryStats& from, QueryStats* into) {
  into->nodes_visited += from.nodes_visited;
  into->covered_nodes += from.covered_nodes;
  into->crossing_nodes += from.crossing_nodes;
  into->pivot_checks += from.pivot_checks;
  into->list_scanned += from.list_scanned;
  into->results += from.results;
  into->tuple_pruned += from.tuple_pruned;
  into->geom_pruned += from.geom_pruned;
  into->covered_work += from.covered_work;
  into->crossing_work += from.crossing_work;
  into->type1_nodes += from.type1_nodes;
  into->type2_nodes += from.type2_nodes;
  if (from.type2_per_level.size() > into->type2_per_level.size()) {
    into->type2_per_level.resize(from.type2_per_level.size(), 0);
  }
  for (size_t i = 0; i < from.type2_per_level.size(); ++i) {
    into->type2_per_level[i] += from.type2_per_level[i];
  }
  into->budget_exhausted |= from.budget_exhausted;
}

/// Validates a query keyword set against the construction-time k: exactly k
/// keywords, pairwise distinct. Returns them sorted (the canonical order the
/// tuple registries use).
inline std::vector<KeywordId> CanonicalizeQueryKeywords(
    std::span<const KeywordId> keywords, int k) {
  KWSC_CHECK_MSG(static_cast<int>(keywords.size()) == k,
                 "query must supply exactly k=%d keywords, got %zu", k,
                 keywords.size());
  std::vector<KeywordId> sorted(keywords.begin(), keywords.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    KWSC_CHECK_MSG(sorted[i] != sorted[i - 1],
                   "query keywords must be distinct (duplicate %u)", sorted[i]);
  }
  return sorted;
}

/// The large/small cutoff at a node of weight `node_weight`:
/// max(1, node_weight^alpha). Clamping at 1 keeps "large" meaningful at tiny
/// nodes (a keyword with zero occurrences is never large).
inline double LargeThreshold(uint64_t node_weight, double alpha) {
  if (node_weight == 0) return 1.0;
  return std::max(1.0, std::pow(static_cast<double>(node_weight), alpha));
}

/// Default operation budget for "detect whether at least t results exist"
/// queries (Corollaries 4 and 7): C * N^{1-1/k} * t^{1/k} + C, with C chosen
/// generously so the guarantee of the underlying reporting index is the only
/// binding constraint.
inline uint64_t ThresholdQueryBudget(uint64_t n, int k, uint64_t t,
                                     double constant = 64.0) {
  const double exponent = 1.0 - 1.0 / static_cast<double>(k);
  const double bound = constant * (std::pow(static_cast<double>(n), exponent) *
                                       std::pow(static_cast<double>(t),
                                                1.0 / static_cast<double>(k)) +
                                   1.0);
  return static_cast<uint64_t>(bound);
}

}  // namespace kwsc

#endif  // KWSC_CORE_FRAMEWORK_H_
