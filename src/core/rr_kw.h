// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// RR-KW: rectangle intersection reporting with keywords (Corollary 3).
//
// A d-rectangle [a1,b1] x ... x [ad,bd] intersects the query rectangle
// [x1,y1] x ... x [xd,yd] iff the 2d-dimensional point (a1,b1,...,ad,bd)
// lies in (-inf,y1] x [x1,inf) x ... x (-inf,yd] x [xd,inf) — the classic
// interval-overlap-as-dominance trick the proof of Corollary 3 applies. The
// index therefore embeds each data rectangle as a 2d-dimensional point and
// delegates to ORP-KW: the kd-tree index for d = 1 (two lifted dimensions)
// and the dimension-reduction index for d >= 2.
//
// d = 1 is keyword search on temporal documents (lifespan intervals [7]);
// d = 2 covers minimum-bounding-rectangle geographic entities [34].

#ifndef KWSC_CORE_RR_KW_H_
#define KWSC_CORE_RR_KW_H_

#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/flat_arena.h"
#include "core/dim_reduction.h"
#include "core/orp_kw.h"
#include "geom/box.h"
#include "text/corpus.h"

namespace kwsc {

namespace audit {
struct AuditAccess;
}  // namespace audit

template <int D, typename Scalar = double>
class RrKwIndex {
 public:
  static constexpr int kLiftedDim = 2 * D;
  using RectType = Box<D, Scalar>;
  // The query-region type under the name the batched engine
  // (core/query_engine.h) defaults to.
  using BoxType = RectType;
  using Engine =
      std::conditional_t<kLiftedDim <= 2, OrpKwIndex<kLiftedDim, Scalar>,
                         DimRedOrpKwIndex<kLiftedDim, Scalar>>;

  // Batch-dynamic surface (DynamizableFamily, core/contracts.h): built from
  // data rectangles, queried with rectangles; the dynamization buffer scan
  // runs the overlap test the lifted dominance query encodes.
  using DynamicGeomType = RectType;
  using DynamicRegionType = RectType;
  static bool MatchesRegion(const RectType& q, const RectType& r) {
    return q.Intersects(r);
  }

  /// Builds over one rectangle per corpus object.
  RrKwIndex(std::span<const RectType> rects, const Corpus* corpus,
            FrameworkOptions options) {
    std::vector<Point<kLiftedDim, Scalar>> lifted(rects.size());
    for (size_t i = 0; i < rects.size(); ++i) {
      for (int dim = 0; dim < D; ++dim) {
        KWSC_CHECK_MSG(rects[i].lo[dim] <= rects[i].hi[dim],
                       "data rectangle %zu inverted in dim %d", i, dim);
        lifted[i][2 * dim] = rects[i].lo[dim];
        lifted[i][2 * dim + 1] = rects[i].hi[dim];
      }
    }
    engine_.emplace(std::span<const Point<kLiftedDim, Scalar>>(lifted), corpus,
                    options);
  }

  int k() const { return engine_->k(); }

  /// Reports every data rectangle in D(w1,...,wk) intersecting `q`.
  std::vector<ObjectId> Query(const RectType& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats = nullptr,
                              OpsBudget* budget = nullptr) const {
    return engine_->Query(LiftQuery(q), keywords, stats, budget);
  }

  template <typename Emit>
  void QueryEmit(const RectType& q, std::span<const KeywordId> keywords,
                 Emit&& emit, QueryStats* stats = nullptr,
                 OpsBudget* budget = nullptr) const {
    engine_->QueryEmit(LiftQuery(q), keywords, std::forward<Emit>(emit),
                       stats, budget);
  }

  size_t MemoryBytes() const { return engine_->MemoryBytes(); }

  // ---- v2 flat layout (d = 1 only, where the lifted engine is the
  // persistable OrpKwIndex<2>): the wrapper adds no state of its own, so its
  // container is the engine's container under the wrapper's family tag. ----

  static constexpr uint32_t kFlatFamilyTag = FlatFamilyTag('K', 'W', 'R', '2');

  void SaveFlat(std::ostream* out, uint32_t family_tag = kFlatFamilyTag) const
    requires(kLiftedDim <= 2)
  {
    engine_->SaveFlat(out, family_tag);
  }

  static RrKwIndex LoadFlat(std::shared_ptr<const MmapFile> file,
                            const Corpus* corpus, uint64_t offset = 0,
                            uint32_t expected_tag = kFlatFamilyTag)
    requires(kLiftedDim <= 2)
  {
    RrKwIndex index;
    index.engine_.emplace(
        Engine::LoadFlat(std::move(file), corpus, offset, expected_tag));
    return index;
  }

  static bool ValidateFlat(const MmapFile& file, uint64_t offset,
                           uint32_t expected_tag, const FlatErrorSink& sink)
    requires(kLiftedDim <= 2)
  {
    return Engine::ValidateFlat(file, offset, expected_tag, sink);
  }

  /// The 2d-dimensional dominance box equivalent to rectangle intersection.
  static Box<kLiftedDim, Scalar> LiftQuery(const RectType& q) {
    Box<kLiftedDim, Scalar> lifted;
    for (int dim = 0; dim < D; ++dim) {
      lifted.lo[2 * dim] = std::numeric_limits<Scalar>::lowest();
      lifted.hi[2 * dim] = q.hi[dim];      // a_dim <= y_dim
      lifted.lo[2 * dim + 1] = q.lo[dim];  // b_dim >= x_dim
      lifted.hi[2 * dim + 1] = std::numeric_limits<Scalar>::max();
    }
    return lifted;
  }

 private:
  // The invariant auditor audits the lifted engine; see audit/audit_access.h.
  friend struct audit::AuditAccess;

  // Shell constructor used by LoadFlat.
  RrKwIndex() = default;

  // Deferred construction (the lifted points must be computed first).
  std::optional<Engine> engine_;
};

}  // namespace kwsc

#endif  // KWSC_CORE_RR_KW_H_
