// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "core/node_directory.h"

#include <algorithm>

#include "common/memory.h"

namespace kwsc {

namespace {

/// Invokes `fn` on every k-combination of `sorted_lids` (ascending order is
/// preserved inside each combination). Combinations are emitted via a scratch
/// buffer to avoid per-combination allocation.
template <typename Fn>
void ForEachCombination(std::span<const uint32_t> sorted_lids, int k, Fn&& fn) {
  const int n = static_cast<int>(sorted_lids.size());
  if (n < k) return;
  std::vector<uint32_t> combo(k);
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    for (int i = 0; i < k; ++i) combo[i] = sorted_lids[idx[i]];
    fn(std::span<const uint32_t>(combo));
    // Advance to the next combination in lexicographic order.
    int pos = k - 1;
    while (pos >= 0 && idx[pos] == n - k + pos) --pos;
    if (pos < 0) break;
    ++idx[pos];
    for (int i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
  }
}

/// The large table's flat image is keyword-sorted, so the lid lookup is a
/// binary search instead of a hash probe.
const FlatLargeEntry* FindLargeEntry(std::span<const FlatLargeEntry> large,
                                     KeywordId w) {
  const auto it = std::lower_bound(
      large.begin(), large.end(), w,
      [](const FlatLargeEntry& e, KeywordId key) { return e.keyword < key; });
  if (it == large.end() || it->keyword != w) return nullptr;
  return &*it;
}

}  // namespace

uint64_t NodeDirectory::EncodeTuple(std::span<const uint32_t> lids) {
  const int k = static_cast<int>(lids.size());
  const int bits = 64 / k;
  uint64_t key = 0;
  for (uint32_t lid : lids) {
    KWSC_DCHECK(bits >= 64 ||
                static_cast<uint64_t>(lid) < (uint64_t{1} << bits));
    key = (key << bits) | lid;
  }
  return key;
}

int64_t NodeDirectory::LargeId(KeywordId w) const {
  if (flat_mode_) {
    const FlatLargeEntry* entry = FindLargeEntry(flat_.large, w);
    return entry == nullptr ? -1 : static_cast<int64_t>(entry->lid);
  }
  const uint32_t* id = large_.Find(w);
  return id == nullptr ? -1 : static_cast<int64_t>(*id);
}

bool NodeDirectory::ResolveLarge(std::span<const KeywordId> sorted_keywords,
                                 uint32_t* lids,
                                 KeywordId* small_keyword) const {
  if (flat_mode_) {
    for (size_t i = 0; i < sorted_keywords.size(); ++i) {
      const FlatLargeEntry* entry =
          FindLargeEntry(flat_.large, sorted_keywords[i]);
      if (entry == nullptr) {
        *small_keyword = sorted_keywords[i];
        return false;
      }
      lids[i] = entry->lid;
    }
    return true;
  }
  for (size_t i = 0; i < sorted_keywords.size(); ++i) {
    const uint32_t* id = large_.Find(sorted_keywords[i]);
    if (id == nullptr) {
      *small_keyword = sorted_keywords[i];
      return false;
    }
    lids[i] = *id;
  }
  return true;
}

bool NodeDirectory::ChildTupleContainsKey(size_t c, uint64_t key) const {
  if (flat_mode_) {
    const std::span<const uint64_t> keys = flat_.child_tuples[c];
    return std::binary_search(keys.begin(), keys.end(), key);
  }
  return child_tuples_[c].Contains(key);
}

std::optional<std::span<const ObjectId>> NodeDirectory::MaterializedList(
    KeywordId w) const {
  if (flat_mode_) {
    const auto it = std::lower_bound(
        flat_.materialized.begin(), flat_.materialized.end(), w,
        [](const FlatMatEntry& e, KeywordId key) { return e.keyword < key; });
    if (it == flat_.materialized.end() || it->keyword != w) return std::nullopt;
    return flat_.mat_pool.subspan(it->begin, it->count);
  }
  const std::vector<ObjectId>* list = materialized_.Find(w);
  if (list == nullptr) return std::nullopt;
  return std::span<const ObjectId>(*list);
}

std::vector<FlatLargeEntry> NodeDirectory::LargeEntriesSorted() const {
  if (flat_mode_) {
    return std::vector<FlatLargeEntry>(flat_.large.begin(), flat_.large.end());
  }
  std::vector<FlatLargeEntry> entries;
  entries.reserve(large_.size());
  large_.ForEach(
      [&](KeywordId w, uint32_t lid) { entries.push_back({w, lid}); });
  // Deterministic archives: canonicalize the hash-table dump order.
  std::sort(entries.begin(), entries.end(),
            [](const FlatLargeEntry& a, const FlatLargeEntry& b) {
              return a.keyword < b.keyword;
            });
  return entries;
}

std::vector<uint64_t> NodeDirectory::ChildTupleKeysSorted(size_t c) const {
  if (flat_mode_) {
    const std::span<const uint64_t> span = flat_.child_tuples[c];
    return std::vector<uint64_t>(span.begin(), span.end());
  }
  std::vector<uint64_t> keys;
  keys.reserve(child_tuples_[c].size());
  child_tuples_[c].ForEach([&keys](uint64_t key) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<KeywordId> NodeDirectory::OwnedMaterializedKeywordsSorted() const {
  std::vector<KeywordId> keywords;
  keywords.reserve(materialized_.size());
  materialized_.ForEach(
      [&keywords](KeywordId w, const std::vector<ObjectId>&) {
        keywords.push_back(w);
      });
  std::sort(keywords.begin(), keywords.end());
  return keywords;
}

void NodeDirectory::AttachFlat(const FlatDirView& view) {
  KWSC_CHECK(view.num_children <= FlatDirView::kMaxChildren);
  pivots_ = std::vector<ObjectId>();
  large_ = FlatHashMap<KeywordId, uint32_t>();
  child_tuples_ = std::vector<FlatHashSet<uint64_t>>();
  materialized_ = FlatHashMap<KeywordId, std::vector<ObjectId>>();
  weight_ = 0;
  flat_mode_ = true;
  flat_ = view;
}

size_t NodeDirectory::MemoryBytes() const {
  if (flat_mode_) return 0;  // contents live in the mapping, not the heap
  size_t total = VectorBytes(pivots_) + large_.MemoryBytes();
  total += child_tuples_.capacity() * sizeof(FlatHashSet<uint64_t>);
  for (const auto& set : child_tuples_) total += set.MemoryBytes();
  total += materialized_.MemoryBytes();
  materialized_.ForEach(
      [&total](KeywordId, const std::vector<ObjectId>& list) {
        total += VectorBytes(list);
      });
  return total;
}

void NodeDirectory::Save(OutputArchive* ar) const {
  // All containers go through the canonical sorted getters, so owned and
  // flat directories emit byte-identical archives.
  ar->Vec(pivots());
  ar->Pod(weight());

  ar->Vec(LargeEntriesSorted());

  ar->Pod<uint32_t>(static_cast<uint32_t>(num_children()));
  for (size_t c = 0; c < num_children(); ++c) {
    ar->Vec(ChildTupleKeysSorted(c));
  }

  ar->Pod<uint32_t>(static_cast<uint32_t>(num_materialized()));
  ForEachMaterializedSorted([ar](KeywordId w, std::span<const ObjectId> list) {
    ar->Pod(w);
    ar->Vec(list);
  });
}

void NodeDirectory::Load(InputArchive* ar) {
  flat_mode_ = false;
  flat_ = FlatDirView();

  pivots_ = ar->Vec<ObjectId>();
  weight_ = ar->Pod<uint64_t>();

  const auto large_entries = ar->Vec<FlatLargeEntry>();
  large_ = FlatHashMap<KeywordId, uint32_t>();
  large_.Reserve(large_entries.size());
  for (const auto& entry : large_entries) large_[entry.keyword] = entry.lid;

  const uint32_t num_children = ar->Pod<uint32_t>();
  child_tuples_.assign(num_children, FlatHashSet<uint64_t>());
  for (uint32_t c = 0; c < num_children; ++c) {
    const auto keys = ar->Vec<uint64_t>();
    child_tuples_[c].Reserve(keys.size());
    for (uint64_t key : keys) child_tuples_[c].Insert(key);
  }

  const uint32_t num_lists = ar->Pod<uint32_t>();
  materialized_ = FlatHashMap<KeywordId, std::vector<ObjectId>>();
  materialized_.Reserve(num_lists);
  for (uint32_t i = 0; i < num_lists; ++i) {
    const KeywordId w = ar->Pod<KeywordId>();
    materialized_[w] = ar->Vec<ObjectId>();
  }
}

uint64_t DirectoryBuilder::WeightOf(std::span<const ObjectId> objects) const {
  uint64_t weight = 0;
  for (ObjectId e : objects) weight += corpus_->doc(e).size();
  return weight;
}

void DirectoryBuilder::BuildLeaf(std::span<const ObjectId> active,
                                 NodeDirectory* dir) {
  dir->pivots_.assign(active.begin(), active.end());
  dir->weight_ = WeightOf(active);
}

void DirectoryBuilder::Build(
    std::span<const ObjectId> active,
    std::span<const std::vector<ObjectId>> child_active,
    const std::vector<KeywordId>* inherited, std::vector<ObjectId> pivots,
    NodeDirectory* dir, std::vector<KeywordId>* next_inherited) {
  dir->pivots_ = std::move(pivots);
  dir->weight_ = WeightOf(active);

  const bool all_inherited = inherited == nullptr;
  auto is_inherited = [&](KeywordId w) {
    return all_inherited ||
           std::binary_search(inherited->begin(), inherited->end(), w);
  };

  // Pass 1: occurrence counts of inherited keywords over the active set.
  counts_.Clear();
  for (ObjectId e : active) {
    for (KeywordId w : corpus_->doc(e)) {
      if (is_inherited(w)) ++counts_[w];
    }
  }

  // Classify: w is large iff count >= max(1, N_u^alpha) (Section 3.2).
  const double threshold =
      LargeThreshold(dir->weight_, options_.EffectiveAlpha());
  std::vector<KeywordId> larges;
  counts_.ForEach([&](KeywordId w, uint32_t count) {
    if (static_cast<double>(count) >= threshold) larges.push_back(w);
  });
  std::sort(larges.begin(), larges.end());
  dir->large_.Reserve(larges.size());
  for (uint32_t lid = 0; lid < larges.size(); ++lid) {
    dir->large_[larges[lid]] = lid;
  }
  if (next_inherited != nullptr) *next_inherited = larges;

  // Pass 2: materialized lists D_u^act(w) for keywords small at u but
  // inherited (large at all proper ancestors). Objects are appended in
  // active-set order, giving deterministic lists. The node's own pivots are
  // excluded: the query algorithm scans the pivot set unconditionally on
  // every visit, so listing a pivot again would report it twice (the paper's
  // D_u^act(w) contains D_u^pvt, where the duplication is harmless only
  // because it reports sets).
  if (options_.enable_materialized_lists) {
    for (ObjectId e : active) {
      if (std::find(dir->pivots_.begin(), dir->pivots_.end(), e) !=
          dir->pivots_.end()) {
        continue;
      }
      for (KeywordId w : corpus_->doc(e)) {
        const uint32_t* count = counts_.Find(w);
        if (count != nullptr && static_cast<double>(*count) < threshold) {
          dir->materialized_[w].push_back(e);
        }
      }
    }
  }

  // Pass 3: per-child registry of realized non-empty k-tuples. A tuple of
  // large keywords has a non-empty intersection inside child c iff some
  // object in the child's active set carries all k of them, so enumerating
  // k-combinations of each object's large keywords generates exactly the
  // non-empty cells of the paper's bit array.
  dir->child_tuples_.assign(child_active.size(), FlatHashSet<uint64_t>());
  if (options_.enable_tuple_pruning) {
    std::vector<uint32_t> doc_lids;
    for (size_t c = 0; c < child_active.size(); ++c) {
      FlatHashSet<uint64_t>& tuples = dir->child_tuples_[c];
      for (ObjectId e : child_active[c]) {
        doc_lids.clear();
        // doc is keyword-sorted and lids increase with keyword, so doc_lids
        // is sorted ascending.
        for (KeywordId w : corpus_->doc(e)) {
          const uint32_t* lid = dir->large_.Find(w);
          if (lid != nullptr) doc_lids.push_back(*lid);
        }
        ForEachCombination(doc_lids, options_.k,
                           [&tuples](std::span<const uint32_t> combo) {
                             tuples.Insert(NodeDirectory::EncodeTuple(combo));
                           });
      }
    }
  }
}

}  // namespace kwsc
