// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Shared v2 flat-container schema for the framework tree families.
//
// A flat container (common/flat_arena.h) for a tree index stores one
// FlatNodeRec per node plus five shared pools the per-node records index
// into: the pivot pool, the large-keyword table pool, the tuple-key pool,
// and the materialized entry/object pools. Node records keep the same DFS
// preorder as the in-memory arena — the auditor's tree-structure check and
// the v1 archive both pin that order, so flat and pointer-built indexes stay
// byte-comparable. (ISSUE 6 floats a BFS/van-Emde-Boas order; DESIGN.md "On-
// disk layout v2" records why preorder is kept.)
//
// FlatDirPoolWriter flattens NodeDirectory contents through the canonical
// sorted getters; FlatDirPoolReader re-points directories at the mapped
// pools via NodeDirectory::AttachFlat. Validation is split to keep mmap
// loads cheap: the *shallow* pass (run on every load) touches only the node
// slab — offsets, bounds, child indices, preorder — while the *deep* pass
// (run by the auditor) additionally scans pool contents for sortedness and
// object-id ranges, which would fault in every page.

#ifndef KWSC_CORE_FLAT_FORMAT_H_
#define KWSC_CORE_FLAT_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/abi.h"
#include "common/flat_arena.h"
#include "core/node_directory.h"
#include "text/document.h"

namespace kwsc {

/// One tree node in the flat layout. `cell` is the node's bounding cell in
/// the family's native geometry (rank-space box for ORP-KW, scalar box for
/// SP-KW). Pool fields are element offsets into the shared directory pools.
/// Writers memset records before filling them so any padding introduced by
/// an unusual CellT stays deterministic.
template <typename CellT>
struct FlatNodeRec {
  CellT cell;
  int32_t child[2];
  int16_t level;
  uint16_t num_children;
  uint32_t pivot_count;
  uint64_t weight;
  uint64_t pivot_begin;
  uint64_t large_begin;
  uint64_t tuple_begin[2];
  uint64_t mat_begin;
  uint32_t large_count;
  uint32_t tuple_count[2];
  uint32_t mat_count;
};

/// SlabRefs for the five shared directory pools; embedded in family roots.
struct FlatDirPools {
  SlabRef pivot_pool;      // ObjectId
  SlabRef large_pool;      // FlatLargeEntry
  SlabRef tuple_pool;      // uint64_t
  SlabRef mat_entry_pool;  // FlatMatEntry
  SlabRef mat_obj_pool;    // ObjectId
};
KWSC_ABI_STRUCT(FlatDirPools);

/// Accumulates directory contents across nodes during SaveFlat. Append one
/// node at a time (in arena order), then emit the pools as slabs.
class FlatDirPoolWriter {
 public:
  /// Flattens `dir` and fills the pool fields of `rec` (the caller fills
  /// cell/child/level). Contents come from the canonical sorted getters, so
  /// owned- and flat-mode directories flatten identically.
  template <typename CellT>
  void Append(const NodeDirectory& dir, FlatNodeRec<CellT>* rec) {
    rec->num_children = static_cast<uint16_t>(dir.num_children());
    rec->weight = dir.weight();

    const std::span<const ObjectId> pivots = dir.pivots();
    rec->pivot_begin = pivot_pool_.size();
    rec->pivot_count = static_cast<uint32_t>(pivots.size());
    pivot_pool_.insert(pivot_pool_.end(), pivots.begin(), pivots.end());

    const std::vector<FlatLargeEntry> large = dir.LargeEntriesSorted();
    rec->large_begin = large_pool_.size();
    rec->large_count = static_cast<uint32_t>(large.size());
    large_pool_.insert(large_pool_.end(), large.begin(), large.end());

    for (size_t c = 0; c < dir.num_children(); ++c) {
      const std::vector<uint64_t> keys = dir.ChildTupleKeysSorted(c);
      rec->tuple_begin[c] = tuple_pool_.size();
      rec->tuple_count[c] = static_cast<uint32_t>(keys.size());
      tuple_pool_.insert(tuple_pool_.end(), keys.begin(), keys.end());
    }

    rec->mat_begin = mat_entry_pool_.size();
    rec->mat_count = static_cast<uint32_t>(dir.num_materialized());
    dir.ForEachMaterializedSorted(
        [this](KeywordId w, std::span<const ObjectId> list) {
          mat_entry_pool_.push_back(
              {w, static_cast<uint32_t>(list.size()), mat_obj_pool_.size()});
          mat_obj_pool_.insert(mat_obj_pool_.end(), list.begin(), list.end());
        });
  }

  FlatDirPools WriteSlabs(FlatArenaWriter* writer) const {
    FlatDirPools pools;
    pools.pivot_pool = writer->Slab<ObjectId>(pivot_pool_);
    pools.large_pool = writer->Slab<FlatLargeEntry>(large_pool_);
    pools.tuple_pool = writer->Slab<uint64_t>(tuple_pool_);
    pools.mat_entry_pool = writer->Slab<FlatMatEntry>(mat_entry_pool_);
    pools.mat_obj_pool = writer->Slab<ObjectId>(mat_obj_pool_);
    return pools;
  }

 private:
  std::vector<ObjectId> pivot_pool_;
  std::vector<FlatLargeEntry> large_pool_;
  std::vector<uint64_t> tuple_pool_;
  std::vector<FlatMatEntry> mat_entry_pool_;
  std::vector<ObjectId> mat_obj_pool_;
};

/// Resolves the shared pools of a mapped container and builds per-node
/// FlatDirViews with range checks. All errors go through the sink; callers
/// on the load path pass AbortingFlatErrorSink().
class FlatDirPoolReader {
 public:
  /// Resolves the pool slabs. Returns false (after sinking a message) when
  /// any slab reference is out of bounds or misaligned.
  bool Init(const FlatArenaReader& reader, const FlatDirPools& pools,
            const FlatErrorSink& sink) {
    bool ok = true;
    auto take = [&](auto tag, SlabRef ref, const char* name, auto* out) {
      using T = decltype(tag);
      if (!reader.SlabOk<T>(ref)) {
        sink(std::string(name) + " pool slab out of bounds");
        ok = false;
        return;
      }
      *out = reader.Slab<T>(ref);
    };
    take(ObjectId{}, pools.pivot_pool, "pivot", &pivot_pool_);
    take(FlatLargeEntry{}, pools.large_pool, "large", &large_pool_);
    take(uint64_t{}, pools.tuple_pool, "tuple", &tuple_pool_);
    take(FlatMatEntry{}, pools.mat_entry_pool, "mat-entry", &mat_entry_pool_);
    take(ObjectId{}, pools.mat_obj_pool, "mat-object", &mat_obj_pool_);
    return ok;
  }

  /// Builds the directory view for one node record, checking every pool
  /// range (including each materialized entry's object range — the query
  /// path dereferences those unchecked). Returns false after sinking.
  template <typename CellT>
  bool MakeView(const FlatNodeRec<CellT>& rec, int64_t node,
                FlatDirView* view, const FlatErrorSink& sink) const {
    auto bad = [&](const char* what) {
      sink("node " + std::to_string(node) + ": flat " + what +
           " range out of pool bounds");
      return false;
    };
    if (rec.num_children > FlatDirView::kMaxChildren) {
      sink("node " + std::to_string(node) + ": flat num_children " +
           std::to_string(rec.num_children) + " exceeds fanout limit");
      return false;
    }
    if (!RangeOk(pivot_pool_, rec.pivot_begin, rec.pivot_count))
      return bad("pivot");
    if (!RangeOk(large_pool_, rec.large_begin, rec.large_count))
      return bad("large");
    for (size_t c = 0; c < rec.num_children; ++c) {
      if (!RangeOk(tuple_pool_, rec.tuple_begin[c], rec.tuple_count[c]))
        return bad("tuple");
    }
    if (!RangeOk(mat_entry_pool_, rec.mat_begin, rec.mat_count))
      return bad("materialized-entry");

    view->pivots = pivot_pool_.subspan(rec.pivot_begin, rec.pivot_count);
    view->large = large_pool_.subspan(rec.large_begin, rec.large_count);
    view->num_children = rec.num_children;
    for (size_t c = 0; c < rec.num_children; ++c) {
      view->child_tuples[c] =
          tuple_pool_.subspan(rec.tuple_begin[c], rec.tuple_count[c]);
    }
    view->materialized =
        mat_entry_pool_.subspan(rec.mat_begin, rec.mat_count);
    for (const FlatMatEntry& entry : view->materialized) {
      if (!RangeOk(mat_obj_pool_, entry.begin, entry.count))
        return bad("materialized-object");
    }
    view->mat_pool = mat_obj_pool_;
    view->weight = rec.weight;
    return true;
  }

  std::span<const ObjectId> mat_obj_pool() const { return mat_obj_pool_; }

 private:
  template <typename T>
  static bool RangeOk(std::span<const T> pool, uint64_t begin,
                      uint64_t count) {
    return begin <= pool.size() && count <= pool.size() - begin;
  }

  std::span<const ObjectId> pivot_pool_;
  std::span<const FlatLargeEntry> large_pool_;
  std::span<const uint64_t> tuple_pool_;
  std::span<const FlatMatEntry> mat_entry_pool_;
  std::span<const ObjectId> mat_obj_pool_;
};

/// Shallow structural validation over the node slab only (run on every
/// load): child indices in range and in DFS preorder, levels increase by
/// one, directory ranges inside the pools. Never dereferences pool contents,
/// so an mmap load faults in just the node records.
template <typename CellT>
bool ValidateFlatTreeShallow(std::span<const FlatNodeRec<CellT>> nodes,
                             const FlatDirPoolReader& pools,
                             const FlatErrorSink& sink) {
  bool ok = true;
  // An empty node slab is legal: an index over an empty corpus has no tree.
  const int64_t n = static_cast<int64_t>(nodes.size());
  for (int64_t i = 0; i < n; ++i) {
    const FlatNodeRec<CellT>& rec = nodes[static_cast<size_t>(i)];
    for (int c = 0; c < 2; ++c) {
      const int32_t child = rec.child[c];
      if (child == -1) continue;
      if (child <= i || child >= n) {
        sink("node " + std::to_string(i) + ": flat child index " +
             std::to_string(child) + " out of range");
        ok = false;
        continue;
      }
      if (c == 0 && child != i + 1) {
        sink("node " + std::to_string(i) + ": flat first child " +
             std::to_string(child) + " breaks DFS preorder");
        ok = false;
      }
      if (nodes[static_cast<size_t>(child)].level != rec.level + 1) {
        sink("node " + std::to_string(i) + ": flat child level skew");
        ok = false;
      }
    }
    FlatDirView view;
    if (!pools.MakeView(rec, i, &view, sink)) ok = false;
  }
  return ok;
}

/// Deep content validation (auditor only): canonical sort orders inside
/// every directory range plus object-id bounds. Scans every pool byte, so
/// keep it off the load path.
template <typename CellT>
bool ValidateFlatTreeDeep(std::span<const FlatNodeRec<CellT>> nodes,
                          const FlatDirPoolReader& pools,
                          uint64_t num_objects, const FlatErrorSink& sink) {
  bool ok = true;
  for (int64_t i = 0; i < static_cast<int64_t>(nodes.size()); ++i) {
    const FlatNodeRec<CellT>& rec = nodes[static_cast<size_t>(i)];
    FlatDirView view;
    if (!pools.MakeView(rec, i, &view, sink)) {
      ok = false;
      continue;
    }
    auto complain = [&](const std::string& what) {
      sink("node " + std::to_string(i) + ": " + what);
      ok = false;
    };
    for (ObjectId e : view.pivots) {
      if (static_cast<uint64_t>(e) >= num_objects) {
        complain("flat pivot object id out of range");
        break;
      }
    }
    for (size_t j = 0; j < view.large.size(); ++j) {
      // lids are assigned in increasing keyword order, so in sorted order
      // the lid sequence is exactly 0, 1, 2, ...
      if (j > 0 && view.large[j].keyword <= view.large[j - 1].keyword) {
        complain("flat large table not strictly keyword-sorted");
        break;
      }
      if (view.large[j].lid != j) {
        complain("flat large table lid not canonical");
        break;
      }
    }
    for (size_t c = 0; c < view.num_children; ++c) {
      const std::span<const uint64_t> keys = view.child_tuples[c];
      for (size_t j = 1; j < keys.size(); ++j) {
        if (keys[j] <= keys[j - 1]) {
          complain("flat tuple keys not strictly sorted");
          break;
        }
      }
    }
    for (size_t j = 0; j < view.materialized.size(); ++j) {
      const FlatMatEntry& entry = view.materialized[j];
      if (j > 0 && entry.keyword <= view.materialized[j - 1].keyword) {
        complain("flat materialized entries not strictly keyword-sorted");
        break;
      }
      if (entry.count == 0) {
        complain("flat materialized entry empty");
        break;
      }
      bool id_ok = true;
      for (ObjectId e : view.mat_pool.subspan(entry.begin, entry.count)) {
        if (static_cast<uint64_t>(e) >= num_objects) {
          complain("flat materialized object id out of range");
          id_ok = false;
          break;
        }
      }
      if (!id_ok) break;
    }
  }
  return ok;
}

}  // namespace kwsc

#endif  // KWSC_CORE_FLAT_FORMAT_H_
