// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "workload/generator.h"

#include <cmath>

#include "common/flat_hash.h"
#include "common/macros.h"

namespace kwsc {

Corpus GenerateCorpus(const CorpusSpec& spec, Rng* rng) {
  KWSC_CHECK(spec.num_objects > 0);
  KWSC_CHECK(spec.vocab_size > 0);
  KWSC_CHECK(spec.min_doc_len >= 1);
  KWSC_CHECK(spec.min_doc_len <= spec.max_doc_len);
  KWSC_CHECK_MSG(spec.max_doc_len <= spec.vocab_size,
                 "documents cannot exceed the vocabulary");
  ZipfSampler zipf(spec.vocab_size, spec.zipf_skew);
  std::vector<Document> docs;
  docs.reserve(spec.num_objects);
  std::vector<KeywordId> scratch;
  for (uint32_t i = 0; i < spec.num_objects; ++i) {
    const uint32_t len = static_cast<uint32_t>(
        rng->UniformInt(spec.min_doc_len, spec.max_doc_len));
    scratch.clear();
    FlatHashSet<KeywordId> seen;
    // Rejection sampling for distinct keywords; bounded because
    // len <= vocab_size.
    while (scratch.size() < len) {
      const KeywordId w = static_cast<KeywordId>(zipf.Sample(rng));
      if (seen.Insert(w)) scratch.push_back(w);
    }
    docs.emplace_back(scratch);
  }
  return Corpus(std::move(docs));
}

std::vector<KeywordId> PickQueryKeywords(const Corpus& corpus, int k,
                                         KeywordPick pick, Rng* rng,
                                         uint32_t frequent_pool) {
  KWSC_CHECK(k >= 1);
  const uint32_t vocab = corpus.vocab_size();
  KWSC_CHECK(static_cast<uint32_t>(k) <= vocab);
  std::vector<KeywordId> chosen;
  FlatHashSet<KeywordId> seen;

  switch (pick) {
    case KeywordPick::kFrequent: {
      // Zipf generators assign low ids the highest popularity, so the top
      // `frequent_pool` ids are the frequent window.
      const uint32_t pool = std::max<uint32_t>(frequent_pool, k);
      while (chosen.size() < static_cast<size_t>(k)) {
        const KeywordId w =
            static_cast<KeywordId>(rng->NextBounded(std::min(pool, vocab)));
        if (seen.Insert(w)) chosen.push_back(w);
      }
      break;
    }
    case KeywordPick::kUniform: {
      while (chosen.size() < static_cast<size_t>(k)) {
        const KeywordId w = static_cast<KeywordId>(rng->NextBounded(vocab));
        if (seen.Insert(w)) chosen.push_back(w);
      }
      break;
    }
    case KeywordPick::kCooccurring: {
      // Draw documents until one has >= k keywords; take a random k-subset.
      for (int attempt = 0; attempt < 4096; ++attempt) {
        const ObjectId e =
            static_cast<ObjectId>(rng->NextBounded(corpus.num_objects()));
        const Document& doc = corpus.doc(e);
        if (doc.size() < static_cast<size_t>(k)) continue;
        std::vector<KeywordId> shuffled(doc.begin(), doc.end());
        for (size_t i = shuffled.size(); i > 1; --i) {
          std::swap(shuffled[i - 1], shuffled[rng->NextBounded(i)]);
        }
        chosen.assign(shuffled.begin(), shuffled.begin() + k);
        break;
      }
      // Fallback (no document long enough): uniform distinct.
      while (chosen.size() < static_cast<size_t>(k)) {
        const KeywordId w = static_cast<KeywordId>(rng->NextBounded(vocab));
        if (seen.Insert(w) &&
            std::find(chosen.begin(), chosen.end(), w) == chosen.end()) {
          chosen.push_back(w);
        }
      }
      break;
    }
  }
  return chosen;
}

std::vector<std::vector<int64_t>> GenerateKsiSets(size_t m, size_t universe,
                                                  double avg_set_size,
                                                  Rng* rng) {
  KWSC_CHECK(m >= 2);
  KWSC_CHECK(universe >= 1);
  // Set sizes ~ Zipf over ranks, scaled so the mean is avg_set_size.
  std::vector<double> raw(m);
  double total = 0;
  for (size_t i = 0; i < m; ++i) {
    raw[i] = 1.0 / static_cast<double>(i + 1);
    total += raw[i];
  }
  const double scale = avg_set_size * static_cast<double>(m) / total;
  std::vector<std::vector<int64_t>> sets(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t size = std::max<size_t>(
        1, std::min(universe, static_cast<size_t>(raw[i] * scale)));
    FlatHashSet<uint64_t> seen;
    while (sets[i].size() < size) {
      const int64_t v = static_cast<int64_t>(rng->NextBounded(universe));
      if (seen.Insert(static_cast<uint64_t>(v))) sets[i].push_back(v);
    }
  }
  return sets;
}

}  // namespace kwsc
