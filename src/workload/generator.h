// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Synthetic workload generation for tests and benchmarks.
//
// The paper has no empirical section, so EXPERIMENTS.md defines the
// workloads: Zipf-distributed keyword documents (the skew that makes the
// large/small classification bite), uniform and clustered point clouds, and
// query generators with controllable selectivity and controllable expected
// output size. Everything is deterministic given the Rng seed.

#ifndef KWSC_WORKLOAD_GENERATOR_H_
#define KWSC_WORKLOAD_GENERATOR_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/point.h"
#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

/// Parameters for the document side of a dataset.
struct CorpusSpec {
  uint32_t num_objects = 1000;
  uint32_t vocab_size = 200;
  double zipf_skew = 1.0;   // 0 = uniform keyword popularity.
  uint32_t min_doc_len = 2;
  uint32_t max_doc_len = 8;
};

/// Samples one document per object: length uniform in [min,max], keywords
/// Zipf(vocab, skew) without replacement.
Corpus GenerateCorpus(const CorpusSpec& spec, Rng* rng);

enum class PointDistribution {
  kUniform,    // i.i.d. uniform over the unit cube.
  kClustered,  // Gaussian blobs around sqrt(n) uniform centers.
  kDiagonal,   // Correlated: spread along the main diagonal.
};

/// How query keywords are chosen.
enum class KeywordPick {
  kFrequent,     // Among the most popular keywords: large posting lists.
  kUniform,      // Uniform over the vocabulary: usually small lists.
  kCooccurring,  // k keywords from one object's document: OUT >= 1 and
                 // realistic co-occurrence structure.
};

/// k distinct query keywords according to `pick`. `frequent_pool` bounds the
/// popularity window for kFrequent (top `frequent_pool` keywords by rank).
std::vector<KeywordId> PickQueryKeywords(const Corpus& corpus, int k,
                                         KeywordPick pick, Rng* rng,
                                         uint32_t frequent_pool = 16);

template <int D, typename Scalar = double>
std::vector<Point<D, Scalar>> GeneratePoints(size_t n, PointDistribution dist,
                                             Rng* rng, double lo = 0.0,
                                             double hi = 1.0) {
  std::vector<Point<D, Scalar>> points(n);
  const double span = hi - lo;
  switch (dist) {
    case PointDistribution::kUniform:
      for (auto& p : points) {
        for (int dim = 0; dim < D; ++dim) {
          p[dim] = static_cast<Scalar>(rng->UniformDouble(lo, hi));
        }
      }
      break;
    case PointDistribution::kClustered: {
      const size_t num_clusters =
          std::max<size_t>(1, static_cast<size_t>(std::sqrt(double(n))));
      std::vector<Point<D, double>> centers(num_clusters);
      for (auto& c : centers) {
        for (int dim = 0; dim < D; ++dim) c[dim] = rng->UniformDouble(lo, hi);
      }
      const double sigma = 0.02 * span;
      for (auto& p : points) {
        const auto& c = centers[rng->NextBounded(num_clusters)];
        for (int dim = 0; dim < D; ++dim) {
          double v = c[dim] + sigma * rng->NextGaussian();
          v = std::clamp(v, lo, hi);
          p[dim] = static_cast<Scalar>(v);
        }
      }
      break;
    }
    case PointDistribution::kDiagonal: {
      const double sigma = 0.05 * span;
      for (auto& p : points) {
        const double base = rng->UniformDouble(lo, hi);
        for (int dim = 0; dim < D; ++dim) {
          double v = base + sigma * rng->NextGaussian();
          v = std::clamp(v, lo, hi);
          p[dim] = static_cast<Scalar>(v);
        }
      }
      break;
    }
  }
  return points;
}

/// Integer-grid points for L2NN-KW (Corollary 7's N^d universe).
template <int D>
std::vector<IntPoint<D>> GenerateIntPoints(size_t n, PointDistribution dist,
                                           Rng* rng, int64_t max_coord) {
  auto reals = GeneratePoints<D, double>(n, dist, rng, 0.0, 1.0);
  std::vector<IntPoint<D>> points(n);
  for (size_t i = 0; i < n; ++i) {
    for (int dim = 0; dim < D; ++dim) {
      points[i][dim] = static_cast<int64_t>(reals[i][dim] *
                                            static_cast<double>(max_coord));
    }
  }
  return points;
}

/// A query box centered on a random data point whose side is chosen so the
/// expected fraction of points covered is `selectivity` (exact for uniform
/// data over [lo, hi]^D).
template <int D, typename Scalar>
Box<D, Scalar> GenerateBoxQuery(std::span<const Point<D, Scalar>> points,
                                double selectivity, Rng* rng, double lo = 0.0,
                                double hi = 1.0) {
  const auto& center = points[rng->NextBounded(points.size())];
  const double side = (hi - lo) * std::pow(selectivity, 1.0 / D);
  Box<D, Scalar> box;
  for (int dim = 0; dim < D; ++dim) {
    box.lo[dim] = static_cast<Scalar>(static_cast<double>(center[dim]) -
                                      side / 2);
    box.hi[dim] = static_cast<Scalar>(static_cast<double>(center[dim]) +
                                      side / 2);
  }
  return box;
}

/// A halfspace in a uniformly random direction whose offset is the exact
/// `selectivity` quantile of the data projections, so it admits that
/// fraction of the points.
template <int D, typename Scalar>
Halfspace<D, Scalar> GenerateHalfspaceQuery(
    std::span<const Point<D, Scalar>> points, double selectivity, Rng* rng) {
  Halfspace<D, Scalar> h;
  double norm = 0.0;
  for (int dim = 0; dim < D; ++dim) {
    h.coeffs[dim] = rng->NextGaussian();
    norm += h.coeffs[dim] * h.coeffs[dim];
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (int dim = 0; dim < D; ++dim) h.coeffs[dim] /= norm;
  std::vector<double> projections;
  projections.reserve(points.size());
  for (const auto& p : points) projections.push_back(h.Eval(p));
  const size_t rank = static_cast<size_t>(
      std::clamp(selectivity, 0.0, 1.0) *
      static_cast<double>(points.size() - 1));
  std::nth_element(projections.begin(), projections.begin() + rank,
                   projections.end());
  h.rhs = projections[rank];
  return h;
}

/// A ball around a random data point whose squared radius is the exact
/// `selectivity` quantile of distances from that center.
template <int D, typename Scalar>
std::pair<Point<D, Scalar>, double> GenerateBallQuery(
    std::span<const Point<D, Scalar>> points, double selectivity, Rng* rng) {
  const auto& center = points[rng->NextBounded(points.size())];
  std::vector<double> dists;
  dists.reserve(points.size());
  for (const auto& p : points) {
    dists.push_back(static_cast<double>(L2DistanceSquared(p, center)));
  }
  const size_t rank = static_cast<size_t>(
      std::clamp(selectivity, 0.0, 1.0) *
      static_cast<double>(points.size() - 1));
  std::nth_element(dists.begin(), dists.begin() + rank, dists.end());
  return {center, dists[rank]};
}

/// Random data rectangles for RR-KW: centers by `dist`, extents exponential
/// with mean `mean_extent` per side.
template <int D, typename Scalar = double>
std::vector<Box<D, Scalar>> GenerateRects(size_t n, PointDistribution dist,
                                          double mean_extent, Rng* rng) {
  auto centers = GeneratePoints<D, Scalar>(n, dist, rng);
  std::vector<Box<D, Scalar>> rects(n);
  for (size_t i = 0; i < n; ++i) {
    for (int dim = 0; dim < D; ++dim) {
      const double extent =
          -mean_extent * std::log(std::max(rng->NextDouble(), 1e-12));
      rects[i].lo[dim] = static_cast<Scalar>(
          static_cast<double>(centers[i][dim]) - extent / 2);
      rects[i].hi[dim] = static_cast<Scalar>(
          static_cast<double>(centers[i][dim]) + extent / 2);
    }
  }
  return rects;
}

/// k-SI instance: m sets over a universe of `universe` integers, set sizes
/// Zipf-ish (a few large, many small), with a planted overlap fraction so
/// reporting queries have tunable OUT.
std::vector<std::vector<int64_t>> GenerateKsiSets(size_t m, size_t universe,
                                                  double avg_set_size,
                                                  Rng* rng);

}  // namespace kwsc

#endif  // KWSC_WORKLOAD_GENERATOR_H_
