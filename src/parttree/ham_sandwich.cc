// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "parttree/ham_sandwich.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace kwsc {

namespace {

/// Weighted median of `values` with `weights`: the smallest value v such
/// that the weight of entries <= v reaches half the total.
double WeightedMedian(std::vector<std::pair<double, uint64_t>>* entries) {
  std::sort(entries->begin(), entries->end());
  uint64_t total = 0;
  for (const auto& [value, weight] : *entries) total += weight;
  uint64_t prefix = 0;
  for (const auto& [value, weight] : *entries) {
    prefix += weight;
    if (2 * prefix >= total) return value;
  }
  return entries->back().first;
}

/// Weighted median of the projections of a subset of points onto direction
/// (cos theta, sin theta).
double ProjectedMedian(std::span<const Point<2>> points,
                       std::span<const uint64_t> weights,
                       std::span<const uint32_t> subset, double nx, double ny,
                       std::vector<std::pair<double, uint64_t>>* scratch) {
  scratch->clear();
  for (uint32_t i : subset) {
    scratch->push_back({nx * points[i][0] + ny * points[i][1], weights[i]});
  }
  return WeightedMedian(scratch);
}

}  // namespace

HamSandwichCut FindHamSandwichCut(std::span<const Point<2>> points,
                                  std::span<const uint64_t> weights) {
  KWSC_CHECK(!points.empty());
  KWSC_CHECK(points.size() == weights.size());

  HamSandwichCut cut;

  // Line 1: vertical cut at the weighted x-median.
  std::vector<std::pair<double, uint64_t>> scratch;
  scratch.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    scratch.push_back({points[i][0], weights[i]});
  }
  const double x_med = WeightedMedian(&scratch);
  cut.line1 = {{{1.0, 0.0}}, x_med};

  // Split indices by side of line 1 (points on the line will be pivots in
  // the index; either side works for locating line 2).
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;
  for (uint32_t i = 0; i < points.size(); ++i) {
    (points[i][0] <= x_med ? left : right).push_back(i);
  }
  if (left.empty() || right.empty()) {
    // Degenerate split (all x equal): fall back to a horizontal bisector of
    // everything, which still makes progress because equal-x points land on
    // line 1 and become pivots.
    std::vector<uint32_t> all(points.size());
    std::iota(all.begin(), all.end(), 0);
    const double y_med =
        ProjectedMedian(points, weights, all, 0.0, 1.0, &scratch);
    cut.line2 = {{{0.0, 1.0}}, y_med};
    return cut;
  }

  // Line 2: rotate the direction theta over (0, pi) and bisect on
  // g(theta) = median_left(theta) - median_right(theta). Because
  // g(theta + pi) = -g(theta), a sign change exists inside the interval.
  auto g = [&](double theta, double* c_mid) {
    const double nx = std::cos(theta);
    const double ny = std::sin(theta);
    const double ca = ProjectedMedian(points, weights, left, nx, ny, &scratch);
    const double cb = ProjectedMedian(points, weights, right, nx, ny, &scratch);
    if (c_mid != nullptr) *c_mid = 0.5 * (ca + cb);
    return ca - cb;
  };

  // theta = pi/2 is the horizontal-normal direction; avoid theta near 0/pi
  // where line 2 degenerates to another vertical line.
  double lo = 0.02 * M_PI;
  double hi = 0.98 * M_PI;
  double g_lo = g(lo, nullptr);
  double g_hi = g(hi, nullptr);
  double theta = 0.5 * M_PI;
  if (g_lo == 0.0) {
    theta = lo;
  } else if (g_hi == 0.0) {
    theta = hi;
  } else if ((g_lo < 0) != (g_hi < 0)) {
    for (int iter = 0; iter < 48; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double g_mid = g(mid, nullptr);
      if (g_mid == 0.0) {
        lo = hi = mid;
        break;
      }
      if ((g_mid < 0) == (g_lo < 0)) {
        lo = mid;
        g_lo = g_mid;
      } else {
        hi = mid;
      }
    }
    theta = 0.5 * (lo + hi);
  }
  // else: no sign change inside the clipped interval (the zero hides in the
  // excluded near-vertical band). theta = pi/2 then bisects each side only
  // approximately; the index tolerates unbalanced cuts (see sp_kw.h).

  double c_mid = 0.0;
  (void)g(theta, &c_mid);
  cut.line2 = {{{std::cos(theta), std::sin(theta)}}, c_mid};
  return cut;
}

}  // namespace kwsc
