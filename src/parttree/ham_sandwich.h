// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Weighted ham-sandwich cuts in the plane.
//
// The 2-D partition-tree substrate (DESIGN.md, substitution 1) partitions a
// node's points into four cells using two lines: a vertical line through the
// weighted x-median, and a second line that simultaneously bisects (by
// weight) the two halves. The ham-sandwich theorem guarantees such a line
// exists; we locate it numerically by rotating the direction and bisecting
// on the difference of the two weighted medians, which flips sign across a
// half-turn. Any query line can cross at most 3 of the resulting 4 cells —
// the Willard-style crossing bound the partition-tree index relies on.

#ifndef KWSC_PARTTREE_HAM_SANDWICH_H_
#define KWSC_PARTTREE_HAM_SANDWICH_H_

#include <cstdint>
#include <span>

#include "geom/halfspace.h"
#include "geom/point.h"

namespace kwsc {

/// Two cut lines; each is represented by its halfspace form a.x <= rhs, with
/// the boundary a.x = rhs being the line itself.
struct HamSandwichCut {
  Halfspace<2> line1;  // Vertical weighted-median cut.
  Halfspace<2> line2;  // Simultaneous bisector of both sides.
};

/// Computes the cut for `points` with the given per-point weights (documents
/// sizes, in the framework's verbose-set reading). `points` must be
/// non-empty and weights positive.
HamSandwichCut FindHamSandwichCut(std::span<const Point<2>> points,
                                  std::span<const uint64_t> weights);

}  // namespace kwsc

#endif  // KWSC_PARTTREE_HAM_SANDWICH_H_
