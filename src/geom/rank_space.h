// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Rank-space reduction (Section 3.4 of the paper).
//
// The kd-tree conversion assumes general position: no two objects share an
// x- or y-coordinate. The paper removes the assumption by sorting the objects
// on each dimension, breaking ties by object id, and working with ranks. A
// query rectangle converts to a rank rectangle in O(log N) per dimension
// (binary search on the sorted coordinates) without changing its result set.
//
// Storage is OwnedSpan-backed: the tables are owned vectors when built or
// v1-loaded, and zero-copy views into a mapped v2 flat container after
// AttachFlat (the owning index keeps the mapping alive).

#ifndef KWSC_GEOM_RANK_SPACE_H_
#define KWSC_GEOM_RANK_SPACE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/abi.h"
#include "common/flat_arena.h"
#include "common/macros.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "geom/box.h"
#include "geom/point.h"

namespace kwsc {

/// Maps D-dimensional points with arbitrary (possibly duplicated) coordinates
/// to distinct integer ranks per dimension, and original-space query boxes to
/// rank-space boxes with identical result sets.
template <int D, typename Scalar = double>
class RankSpace {
 public:
  using RankPoint = Point<D, int64_t>;
  using RankBox = Box<D, int64_t>;

  /// Slab references of one rank table inside a flat container.
  struct FlatImage {
    SlabRef sorted_coords[D];
    SlabRef ranks[D];
  };

  RankSpace() = default;

  /// Builds rank tables over `points`; point i belongs to object id i.
  explicit RankSpace(std::span<const Point<D, Scalar>> points) {
    const size_t n = points.size();
    std::vector<uint32_t> order(n);
    for (int dim = 0; dim < D; ++dim) {
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (points[a][dim] != points[b][dim]) {
          return points[a][dim] < points[b][dim];
        }
        return a < b;  // Ties broken by object id (Section 3.4).
      });
      std::vector<Scalar> sorted(n);
      std::vector<int64_t> ranks(n);
      for (size_t pos = 0; pos < n; ++pos) {
        sorted[pos] = points[order[pos]][dim];
        ranks[order[pos]] = static_cast<int64_t>(pos);
      }
      sorted_coords_[dim].Assign(std::move(sorted));
      ranks_[dim].Assign(std::move(ranks));
    }
    num_points_ = n;
  }

  size_t num_points() const { return num_points_; }

  /// The rank-space image of object `id`.
  RankPoint ToRank(uint32_t id) const {
    RankPoint p;
    for (int dim = 0; dim < D; ++dim) p[dim] = ranks_[dim][id];
    return p;
  }

  /// Converts an original-space closed box to rank space. The result may be
  /// inverted (lo > hi) in a dimension when no coordinate falls inside, which
  /// callers must treat as an empty query.
  RankBox ToRankBox(const Box<D, Scalar>& box) const {
    RankBox r;
    for (int dim = 0; dim < D; ++dim) {
      const auto& coords = sorted_coords_[dim];
      // First rank whose coordinate is >= box.lo[dim].
      r.lo[dim] = static_cast<int64_t>(
          std::lower_bound(coords.begin(), coords.end(), box.lo[dim]) -
          coords.begin());
      // Last rank whose coordinate is <= box.hi[dim].
      r.hi[dim] = static_cast<int64_t>(
                      std::upper_bound(coords.begin(), coords.end(),
                                       box.hi[dim]) -
                      coords.begin()) -
                  1;
    }
    return r;
  }

  size_t MemoryBytes() const {
    size_t total = 0;
    for (int dim = 0; dim < D; ++dim) {
      total += sorted_coords_[dim].MemoryBytes() + ranks_[dim].MemoryBytes();
    }
    return total;
  }

  void Save(OutputArchive* ar) const {
    ar->Pod<uint64_t>(num_points_);
    for (int dim = 0; dim < D; ++dim) {
      ar->Vec(sorted_coords_[dim].view());
      ar->Vec(ranks_[dim].view());
    }
  }

  void Load(InputArchive* ar) {
    num_points_ = ar->Pod<uint64_t>();
    for (int dim = 0; dim < D; ++dim) {
      sorted_coords_[dim].Assign(ar->Vec<Scalar>());
      ranks_[dim].Assign(ar->Vec<int64_t>());
    }
  }

  /// Writes both tables as flat slabs and returns their references.
  FlatImage SaveFlatSlabs(FlatArenaWriter* writer) const {
    FlatImage image;
    for (int dim = 0; dim < D; ++dim) {
      image.sorted_coords[dim] = writer->Slab(sorted_coords_[dim].view());
      image.ranks[dim] = writer->Slab(ranks_[dim].view());
    }
    return image;
  }

  /// Re-points the tables at mapped slabs. Returns false (after sinking a
  /// message) on a bounds or cardinality mismatch.
  bool AttachFlat(const FlatArenaReader& reader, const FlatImage& image,
                  uint64_t num_points, const FlatErrorSink& sink) {
    for (int dim = 0; dim < D; ++dim) {
      if (!reader.SlabOk<Scalar>(image.sorted_coords[dim]) ||
          !reader.SlabOk<int64_t>(image.ranks[dim]) ||
          image.sorted_coords[dim].count != num_points ||
          image.ranks[dim].count != num_points) {
        sink("flat rank-space slab out of bounds or cardinality mismatch");
        return false;
      }
      sorted_coords_[dim].Attach(reader.Slab<Scalar>(image.sorted_coords[dim]));
      ranks_[dim].Attach(reader.Slab<int64_t>(image.ranks[dim]));
    }
    num_points_ = num_points;
    return true;
  }

 private:
  std::array<OwnedSpan<Scalar>, D> sorted_coords_;
  std::array<OwnedSpan<int64_t>, D> ranks_;  // ranks_[dim][object id].
  size_t num_points_ = 0;
};

// The rank-table image embedded in flat family roots (d=2 persists).
KWSC_ABI_STRUCT_AS(RankSpaceFlatImage2, RankSpace<2>::FlatImage);

}  // namespace kwsc

#endif  // KWSC_GEOM_RANK_SPACE_H_
