// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Rank-space reduction (Section 3.4 of the paper).
//
// The kd-tree conversion assumes general position: no two objects share an
// x- or y-coordinate. The paper removes the assumption by sorting the objects
// on each dimension, breaking ties by object id, and working with ranks. A
// query rectangle converts to a rank rectangle in O(log N) per dimension
// (binary search on the sorted coordinates) without changing its result set.

#ifndef KWSC_GEOM_RANK_SPACE_H_
#define KWSC_GEOM_RANK_SPACE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "geom/box.h"
#include "geom/point.h"

namespace kwsc {

/// Maps D-dimensional points with arbitrary (possibly duplicated) coordinates
/// to distinct integer ranks per dimension, and original-space query boxes to
/// rank-space boxes with identical result sets.
template <int D, typename Scalar = double>
class RankSpace {
 public:
  using RankPoint = Point<D, int64_t>;
  using RankBox = Box<D, int64_t>;

  RankSpace() = default;

  /// Builds rank tables over `points`; point i belongs to object id i.
  explicit RankSpace(std::span<const Point<D, Scalar>> points) {
    const size_t n = points.size();
    std::vector<uint32_t> order(n);
    for (int dim = 0; dim < D; ++dim) {
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (points[a][dim] != points[b][dim]) {
          return points[a][dim] < points[b][dim];
        }
        return a < b;  // Ties broken by object id (Section 3.4).
      });
      sorted_coords_[dim].resize(n);
      ranks_[dim].resize(n);
      for (size_t pos = 0; pos < n; ++pos) {
        sorted_coords_[dim][pos] = points[order[pos]][dim];
        ranks_[dim][order[pos]] = static_cast<int64_t>(pos);
      }
    }
    num_points_ = n;
  }

  size_t num_points() const { return num_points_; }

  /// The rank-space image of object `id`.
  RankPoint ToRank(uint32_t id) const {
    RankPoint p;
    for (int dim = 0; dim < D; ++dim) p[dim] = ranks_[dim][id];
    return p;
  }

  /// Converts an original-space closed box to rank space. The result may be
  /// inverted (lo > hi) in a dimension when no coordinate falls inside, which
  /// callers must treat as an empty query.
  RankBox ToRankBox(const Box<D, Scalar>& box) const {
    RankBox r;
    for (int dim = 0; dim < D; ++dim) {
      const auto& coords = sorted_coords_[dim];
      // First rank whose coordinate is >= box.lo[dim].
      r.lo[dim] = static_cast<int64_t>(
          std::lower_bound(coords.begin(), coords.end(), box.lo[dim]) -
          coords.begin());
      // Last rank whose coordinate is <= box.hi[dim].
      r.hi[dim] = static_cast<int64_t>(
                      std::upper_bound(coords.begin(), coords.end(),
                                       box.hi[dim]) -
                      coords.begin()) -
                  1;
    }
    return r;
  }

  size_t MemoryBytes() const {
    size_t total = 0;
    for (int dim = 0; dim < D; ++dim) {
      total += VectorBytes(sorted_coords_[dim]) + VectorBytes(ranks_[dim]);
    }
    return total;
  }

  void Save(OutputArchive* ar) const {
    ar->Pod<uint64_t>(num_points_);
    for (int dim = 0; dim < D; ++dim) {
      ar->Vec(sorted_coords_[dim]);
      ar->Vec(ranks_[dim]);
    }
  }

  void Load(InputArchive* ar) {
    num_points_ = ar->Pod<uint64_t>();
    for (int dim = 0; dim < D; ++dim) {
      sorted_coords_[dim] = ar->Vec<Scalar>();
      ranks_[dim] = ar->Vec<int64_t>();
    }
  }

 private:
  std::array<std::vector<Scalar>, D> sorted_coords_;
  std::array<std::vector<int64_t>, D> ranks_;  // ranks_[dim][object id].
  size_t num_points_ = 0;
};

}  // namespace kwsc

#endif  // KWSC_GEOM_RANK_SPACE_H_
