// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "geom/lp.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace kwsc {

namespace {

constexpr double kEps = 1e-9;
// Box bounds are clamped to this magnitude so "whole space" cells stay
// solvable; callers' data coordinates are assumed well inside it.
constexpr double kBigBound = 1e12;

double Tolerance(double b) { return kEps * (1.0 + std::fabs(b)); }

struct Problem {
  int dim;
  std::vector<LpConstraint> cons;
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<double> c;  // Objective (minimized); any vector works for
                          // feasibility, graded entries reduce ties.
};

std::optional<std::vector<double>> Solve(const Problem& p);

std::optional<std::vector<double>> SolveBase(const Problem& p) {
  double lo = p.lo[0];
  double hi = p.hi[0];
  for (const LpConstraint& con : p.cons) {
    const double a = con.a[0];
    if (a > kEps) {
      hi = std::min(hi, con.b / a);
    } else if (a < -kEps) {
      lo = std::max(lo, con.b / a);
    } else if (con.b < -Tolerance(con.b)) {
      return std::nullopt;  // 0 <= b with b < 0: contradiction.
    }
  }
  if (lo > hi + kEps * (1.0 + std::fabs(lo) + std::fabs(hi))) {
    return std::nullopt;
  }
  hi = std::max(hi, lo);  // Collapse tolerance slack.
  return std::vector<double>{p.c[0] >= 0 ? lo : hi};
}

std::optional<std::vector<double>> Solve(const Problem& p) {
  if (p.dim == 1) return SolveBase(p);

  // Start at the box corner minimizing the objective.
  std::vector<double> x(p.dim);
  for (int j = 0; j < p.dim; ++j) x[j] = p.c[j] >= 0 ? p.lo[j] : p.hi[j];

  for (size_t i = 0; i < p.cons.size(); ++i) {
    const LpConstraint& con = p.cons[i];
    double value = 0;
    for (int j = 0; j < p.dim; ++j) value += con.a[j] * x[j];
    if (value <= con.b + Tolerance(con.b)) continue;  // Still optimal.

    // The optimum of the first i+1 constraints lies on this boundary.
    // Eliminate the variable with the largest coefficient.
    int k = 0;
    for (int j = 1; j < p.dim; ++j) {
      if (std::fabs(con.a[j]) > std::fabs(con.a[k])) k = j;
    }
    const double ak = con.a[k];
    if (std::fabs(ak) <= kEps) {
      // 0 <= b - value ... a vanishing constraint that is violated.
      return std::nullopt;
    }

    Problem sub;
    sub.dim = p.dim - 1;
    auto drop = [&](const std::vector<double>& v) {
      std::vector<double> out;
      out.reserve(p.dim - 1);
      for (int j = 0; j < p.dim; ++j) {
        if (j != k) out.push_back(v[j]);
      }
      return out;
    };
    sub.lo = drop(p.lo);
    sub.hi = drop(p.hi);
    // Substituted objective: c_m - c_k a_m / a_k.
    sub.c.resize(p.dim - 1);
    {
      int idx = 0;
      for (int j = 0; j < p.dim; ++j) {
        if (j == k) continue;
        sub.c[idx++] = p.c[j] - p.c[k] * con.a[j] / ak;
      }
    }
    // Prior constraints with x_k substituted out.
    for (size_t m = 0; m < i; ++m) {
      const LpConstraint& prior = p.cons[m];
      LpConstraint reduced;
      reduced.a.resize(p.dim - 1);
      int idx = 0;
      for (int j = 0; j < p.dim; ++j) {
        if (j == k) continue;
        reduced.a[idx++] = prior.a[j] - prior.a[k] * con.a[j] / ak;
      }
      reduced.b = prior.b - prior.a[k] * con.b / ak;
      sub.cons.push_back(std::move(reduced));
    }
    // The box bounds of the eliminated variable become two general
    // constraints on the rest: x_k = (b - sum_m a_m x_m) / a_k.
    for (int bound = 0; bound < 2; ++bound) {
      const bool upper = bound == 0;  // x_k <= hi_k, then x_k >= lo_k.
      const double limit = upper ? p.hi[k] : p.lo[k];
      LpConstraint bc;
      bc.a.resize(p.dim - 1);
      const bool flip = upper == (ak > 0);
      int idx = 0;
      for (int j = 0; j < p.dim; ++j) {
        if (j == k) continue;
        bc.a[idx++] = flip ? -con.a[j] : con.a[j];
      }
      bc.b = flip ? limit * ak - con.b : con.b - limit * ak;
      sub.cons.push_back(std::move(bc));
    }

    auto reduced = Solve(sub);
    if (!reduced.has_value()) return std::nullopt;
    // Reconstruct the full point.
    {
      int idx = 0;
      double s = 0;
      for (int j = 0; j < p.dim; ++j) {
        if (j == k) continue;
        x[j] = (*reduced)[idx++];
        s += con.a[j] * x[j];
      }
      x[k] = (con.b - s) / ak;
      x[k] = std::clamp(x[k], p.lo[k], p.hi[k]);
    }
  }
  return x;
}

}  // namespace

std::optional<std::vector<double>> LpFeasiblePoint(
    const std::vector<LpConstraint>& constraints, std::vector<double> lo,
    std::vector<double> hi) {
  KWSC_CHECK(!lo.empty());
  KWSC_CHECK(lo.size() == hi.size());
  Problem p;
  p.dim = static_cast<int>(lo.size());
  for (const LpConstraint& con : constraints) {
    KWSC_CHECK(static_cast<int>(con.a.size()) == p.dim);
  }
  p.cons = constraints;
  p.lo = std::move(lo);
  p.hi = std::move(hi);
  for (int j = 0; j < p.dim; ++j) {
    if (p.lo[j] > p.hi[j]) return std::nullopt;  // Empty box.
    p.lo[j] = std::max(p.lo[j], -kBigBound);
    p.hi[j] = std::min(p.hi[j], kBigBound);
  }
  // Graded objective to break degeneracy ties deterministically.
  p.c.resize(p.dim);
  double weight = 1.0;
  for (int j = 0; j < p.dim; ++j, weight *= 0.125) p.c[j] = weight;
  return Solve(p);
}

}  // namespace kwsc
