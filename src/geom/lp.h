// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Low-dimensional linear-programming feasibility (Seidel-style incremental
// solver).
//
// The partition-substrate indexes prune a child when its cell misses the
// query polytope. The default test is conservative — each halfspace is
// tested against the box separately — which can keep visiting cells that
// intersect every constraint individually but not their conjunction. This
// solver decides the conjunction exactly: is
//     { x : a_i . x <= b_i  for all i }  ∩  [lo, hi]
// non-empty? It runs Seidel's incremental scheme with variable elimination
// (recursing on dimension), which is O(n) expected for constant dimension —
// and the inputs here are tiny (s + O(1) constraints, d <= 7).
//
// Arithmetic is floating point with a relative tolerance; answers within
// the tolerance band lean "feasible", keeping the index's pruning
// conservative (never drops a true result).

#ifndef KWSC_GEOM_LP_H_
#define KWSC_GEOM_LP_H_

#include <optional>
#include <vector>

#include "geom/box.h"
#include "geom/halfspace.h"

namespace kwsc {

/// A linear constraint sum_j a[j] x[j] <= b over `dim` variables.
struct LpConstraint {
  std::vector<double> a;
  double b = 0;
};

/// Decides feasibility of the constraint system intersected with the box
/// [lo, hi] (both inclusive). `lo[j] <= hi[j]` is required. Returns a
/// witness point when feasible.
std::optional<std::vector<double>> LpFeasiblePoint(
    const std::vector<LpConstraint>& constraints, std::vector<double> lo,
    std::vector<double> hi);

/// Convenience wrapper over the library's geometric types: does the query
/// polytope intersect the cell box?
template <int D, typename Scalar>
bool PolytopeIntersectsBox(const ConvexQuery<D, Scalar>& query,
                           const Box<D, Scalar>& cell) {
  std::vector<LpConstraint> constraints;
  constraints.reserve(query.constraints.size());
  for (const auto& h : query.constraints) {
    LpConstraint c;
    c.a.assign(h.coeffs.begin(), h.coeffs.end());
    c.b = h.rhs;
    constraints.push_back(std::move(c));
  }
  std::vector<double> lo(D);
  std::vector<double> hi(D);
  for (int j = 0; j < D; ++j) {
    lo[j] = static_cast<double>(cell.lo[j]);
    hi[j] = static_cast<double>(cell.hi[j]);
  }
  return LpFeasiblePoint(constraints, std::move(lo), std::move(hi))
      .has_value();
}

}  // namespace kwsc

#endif  // KWSC_GEOM_LP_H_
