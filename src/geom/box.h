// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Axis-parallel d-rectangles (the paper's footnote 1), used both as query
// ranges (ORP-KW, RR-KW) and as kd-tree cells.

#ifndef KWSC_GEOM_BOX_H_
#define KWSC_GEOM_BOX_H_

#include <limits>

#include "common/abi.h"
#include "geom/halfspace.h"
#include "geom/point.h"

namespace kwsc {

/// Closed axis-parallel box [lo[0], hi[0]] x ... x [lo[D-1], hi[D-1]].
template <int D, typename Scalar = double>
struct Box {
  using PointType = Point<D, Scalar>;

  PointType lo;
  PointType hi;

  /// The whole space: every coordinate range is [-inf, +inf] (or the full
  /// integer range for integral scalars).
  static Box Everything() {
    Box b;
    for (int i = 0; i < D; ++i) {
      b.lo[i] = std::numeric_limits<Scalar>::lowest();
      b.hi[i] = std::numeric_limits<Scalar>::max();
    }
    return b;
  }

  /// True iff the box is non-degenerate in every dimension (lo <= hi).
  bool Valid() const {
    for (int i = 0; i < D; ++i) {
      if (lo[i] > hi[i]) return false;
    }
    return true;
  }

  // The three containment predicates accumulate per-dimension verdicts with
  // `&` instead of short-circuiting: D is a small compile-time constant, so
  // the loop fully unrolls into straight-line compares with no unpredictable
  // branch — these run once per tree node on the query descent, where a
  // mispredict costs more than the spared comparisons ever save.

  bool Contains(const PointType& p) const {
    bool inside = true;
    for (int i = 0; i < D; ++i) {
      inside &= (p[i] >= lo[i]) & (p[i] <= hi[i]);
    }
    return inside;
  }

  /// True iff the closed boxes share at least one point.
  bool Intersects(const Box& other) const {
    bool overlaps = true;
    for (int i = 0; i < D; ++i) {
      overlaps &= (other.hi[i] >= lo[i]) & (other.lo[i] <= hi[i]);
    }
    return overlaps;
  }

  /// True iff this box lies entirely inside `other` (covered-node test).
  bool InsideOf(const Box& other) const {
    bool inside = true;
    for (int i = 0; i < D; ++i) {
      inside &= (lo[i] >= other.lo[i]) & (hi[i] <= other.hi[i]);
    }
    return inside;
  }

  /// True iff any point of the box satisfies the halfspace. The minimizing
  /// corner of the linear functional decides.
  bool IntersectsHalfspace(const Halfspace<D, Scalar>& h) const {
    double value = 0;
    for (int i = 0; i < D; ++i) {
      value += h.coeffs[i] * static_cast<double>(h.coeffs[i] >= 0 ? lo[i] : hi[i]);
    }
    return value <= static_cast<double>(h.rhs);
  }

  /// True iff every point of the box satisfies the halfspace (maximizing
  /// corner decides).
  bool InsideHalfspace(const Halfspace<D, Scalar>& h) const {
    double value = 0;
    for (int i = 0; i < D; ++i) {
      value += h.coeffs[i] * static_cast<double>(h.coeffs[i] >= 0 ? hi[i] : lo[i]);
    }
    return value <= static_cast<double>(h.rhs);
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

// Boxes are the cell payload of flat node records (FlatNodeRec<CellT>); the
// d=2 instantiations (double cells and rank-space int64 cells) persist.
KWSC_ABI_STRUCT_AS(BoxD2, Box<2>);
KWSC_ABI_STRUCT_AS(BoxI2, Box<2, int64_t>);

}  // namespace kwsc

#endif  // KWSC_GEOM_BOX_H_
