// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Fixed-dimension points.
//
// The dimensionality d is a compile-time constant in the paper ("where d >= 1
// is a constant"), so points are std::array-backed templates: Point<2> for
// the hotel example, Point<3> for lifted spherical queries, IntPoint<d> for
// the integer grids of L2NN-KW (Corollary 7).

#ifndef KWSC_GEOM_POINT_H_
#define KWSC_GEOM_POINT_H_

#include <array>
#include <cmath>
#include <cstdint>

#include "common/abi.h"

namespace kwsc {

template <int D, typename Scalar = double>
struct Point {
  static_assert(D >= 1, "dimension must be positive");
  using ScalarType = Scalar;
  static constexpr int kDim = D;

  std::array<Scalar, D> coords{};

  Scalar& operator[](int i) { return coords[i]; }
  const Scalar& operator[](int i) const { return coords[i]; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coords == b.coords;
  }
};

template <int D>
using IntPoint = Point<D, int64_t>;

/// L-infinity distance: max over dimensions of |p[i] - q[i]| (footnote 2).
template <int D, typename Scalar>
Scalar LInfDistance(const Point<D, Scalar>& p, const Point<D, Scalar>& q) {
  Scalar best = 0;
  for (int i = 0; i < D; ++i) {
    Scalar diff = p[i] >= q[i] ? p[i] - q[i] : q[i] - p[i];
    if (diff > best) best = diff;
  }
  return best;
}

/// Squared Euclidean distance. For IntPoint the result is exact in int64_t
/// provided coordinates fit in ~31 bits, which the generators enforce.
template <int D, typename Scalar>
Scalar L2DistanceSquared(const Point<D, Scalar>& p, const Point<D, Scalar>& q) {
  Scalar total = 0;
  for (int i = 0; i < D; ++i) {
    Scalar diff = p[i] - q[i];
    total += diff * diff;
  }
  return total;
}

// Points are slab element types in every flat family container (and Pod
// payloads in v1 archives); the d=2 instantiations are the persisted ones.
KWSC_ABI_STRUCT_AS(PointD2, Point<2>);
KWSC_ABI_STRUCT_AS(PointI2, Point<2, int64_t>);

}  // namespace kwsc

#endif  // KWSC_GEOM_POINT_H_
