// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The lifting map (proof of Corollary 6; Aurenhammer [8]).
//
// A point p in R^d lifts to p' = (p, ||p||^2) in R^{d+1}. A ball
// B(c, r) = { x : ||x - c||^2 <= r^2 } maps to the halfspace
//   ||x||^2 - 2 c.x <= r^2 - ||c||^2,
// i.e. in lifted coordinates (x, z):  -2 c.x + z <= r^2 - ||c||^2.
// Spherical range reporting with keywords therefore reduces to LC-KW with a
// single linear constraint in d+1 dimensions.

#ifndef KWSC_GEOM_LIFTING_H_
#define KWSC_GEOM_LIFTING_H_

#include "geom/halfspace.h"
#include "geom/point.h"

namespace kwsc {

/// Lifts p to (p, ||p||^2).
template <int D, typename Scalar>
Point<D + 1, double> LiftPoint(const Point<D, Scalar>& p) {
  Point<D + 1, double> lifted;
  double norm_sq = 0;
  for (int i = 0; i < D; ++i) {
    const double c = static_cast<double>(p[i]);
    lifted[i] = c;
    norm_sq += c * c;
  }
  lifted[D] = norm_sq;
  return lifted;
}

/// The halfspace in R^{d+1} whose intersection with the lifted paraboloid is
/// exactly the ball of squared radius `radius_sq` around `center`.
template <int D, typename Scalar>
Halfspace<D + 1> BallToLiftedHalfspace(const Point<D, Scalar>& center,
                                       double radius_sq) {
  Halfspace<D + 1> h;
  double center_norm_sq = 0;
  for (int i = 0; i < D; ++i) {
    const double c = static_cast<double>(center[i]);
    h.coeffs[i] = -2.0 * c;
    center_norm_sq += c * c;
  }
  h.coeffs[D] = 1.0;
  h.rhs = radius_sq - center_norm_sq;
  return h;
}

}  // namespace kwsc

#endif  // KWSC_GEOM_LIFTING_H_
