// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Convex polygons in the plane — the cells of the 2-D partition-tree
// substrate (Appendix D identifies the substrate's requirements: cells cover
// their points, children partition the parent, and a query region can be
// tested against a cell).
//
// All tests take an epsilon so that pruning is conservative: a cell is only
// skipped when it is clearly disjoint from the query, and only classified as
// covered when it is clearly inside. Misclassifying a crossing cell as
// "maybe intersecting" costs a visit, never a missed result.

#ifndef KWSC_GEOM_POLYGON2D_H_
#define KWSC_GEOM_POLYGON2D_H_

#include <vector>

#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/point.h"

namespace kwsc {

/// A convex polygon with counter-clockwise vertices. Fewer than three
/// vertices means the (possibly clipped-away) polygon is treated as empty.
class ConvexPolygon2D {
 public:
  static constexpr double kEps = 1e-9;

  ConvexPolygon2D() = default;
  explicit ConvexPolygon2D(std::vector<Point<2>> vertices)
      : vertices_(std::move(vertices)) {}

  /// Rectangle as a polygon (used for root cells standing in for R^2).
  static ConvexPolygon2D FromBox(const Box<2>& box);

  bool Empty() const { return vertices_.size() < 3; }
  const std::vector<Point<2>>& vertices() const { return vertices_; }

  /// Sutherland–Hodgman clip against `h` (keeps the side Eval <= rhs).
  ConvexPolygon2D ClipBy(const Halfspace<2>& h) const;

  /// True iff some point of the polygon satisfies `h` (up to slack).
  bool IntersectsHalfplane(const Halfspace<2>& h, double slack = kEps) const;

  /// True iff every vertex of the polygon satisfies `h` (with margin).
  bool InsideHalfplane(const Halfspace<2>& h, double margin = kEps) const;

  /// True iff the polygon intersects the axis box (conservative; exact up to
  /// kEps via mutual separating-halfplane checks).
  bool IntersectsBox(const Box<2>& box) const;

  /// True iff the polygon lies inside the axis box.
  bool InsideBox(const Box<2>& box) const;

  bool Contains(const Point<2>& p, double slack = kEps) const;

  double Area() const;

  size_t MemoryBytes() const {
    return vertices_.capacity() * sizeof(Point<2>);
  }

 private:
  std::vector<Point<2>> vertices_;
};

}  // namespace kwsc

#endif  // KWSC_GEOM_POLYGON2D_H_
