// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Simplex queries (Appendix D's SP-KW problem statement).
//
// A d-simplex is a polyhedron with d+1 facets; SP-KW queries supply one.
// These helpers build the halfspace representation from vertices for d = 2
// (triangles) and d = 3 (tetrahedra), orienting every facet inward so the
// result is a ConvexQuery usable with any partition-substrate index. The
// LC-KW reduction of Theorem 5 (polytope -> O(1) simplices) also goes the
// other way here: any ConvexQuery is already accepted natively, so the
// decomposition is only needed when callers genuinely start from vertices.

#ifndef KWSC_GEOM_SIMPLEX_H_
#define KWSC_GEOM_SIMPLEX_H_

#include <array>

#include "common/macros.h"
#include "geom/halfspace.h"
#include "geom/point.h"

namespace kwsc {

/// Halfspace form of the triangle with the given vertices (any orientation;
/// degenerate triangles — collinear vertices — are rejected).
inline ConvexQuery<2> TriangleQuery(const Point<2>& a, const Point<2>& b,
                                    const Point<2>& c) {
  // Signed area decides the orientation; flip to counter-clockwise.
  const double signed2 =
      (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
  KWSC_CHECK_MSG(signed2 != 0.0, "degenerate (collinear) triangle");
  const Point<2>* v[3] = {&a, &b, &c};
  if (signed2 < 0) std::swap(v[1], v[2]);

  ConvexQuery<2> q;
  for (int i = 0; i < 3; ++i) {
    const Point<2>& u = *v[i];
    const Point<2>& w = *v[(i + 1) % 3];
    // Interior is left of the directed edge u -> w:
    // (w_y - u_y) x - (w_x - u_x) y <= u_x (w_y - u_y) - u_y (w_x - u_x).
    Halfspace<2> h;
    h.coeffs = {w[1] - u[1], -(w[0] - u[0])};
    h.rhs = u[0] * (w[1] - u[1]) - u[1] * (w[0] - u[0]);
    q.constraints.push_back(h);
  }
  return q;
}

/// Halfspace form of the tetrahedron with the given vertices (degenerate —
/// coplanar — inputs are rejected). Each facet plane is oriented toward the
/// opposite vertex.
inline ConvexQuery<3> TetrahedronQuery(const Point<3>& a, const Point<3>& b,
                                       const Point<3>& c, const Point<3>& d) {
  const std::array<const Point<3>*, 4> v = {&a, &b, &c, &d};
  ConvexQuery<3> q;
  for (int opposite = 0; opposite < 4; ++opposite) {
    // The facet spanned by the other three vertices.
    std::array<const Point<3>*, 3> f;
    int idx = 0;
    for (int i = 0; i < 4; ++i) {
      if (i != opposite) f[idx++] = v[i];
    }
    // Plane normal = (f1 - f0) x (f2 - f0).
    double e1[3];
    double e2[3];
    for (int i = 0; i < 3; ++i) {
      e1[i] = (*f[1])[i] - (*f[0])[i];
      e2[i] = (*f[2])[i] - (*f[0])[i];
    }
    double normal[3] = {e1[1] * e2[2] - e1[2] * e2[1],
                        e1[2] * e2[0] - e1[0] * e2[2],
                        e1[0] * e2[1] - e1[1] * e2[0]};
    double offset = 0;
    double at_opposite = 0;
    for (int i = 0; i < 3; ++i) {
      offset += normal[i] * (*f[0])[i];
      at_opposite += normal[i] * (*v[opposite])[i];
    }
    KWSC_CHECK_MSG(at_opposite != offset,
                   "degenerate (coplanar) tetrahedron");
    // Orient so the opposite vertex satisfies the constraint.
    Halfspace<3> h;
    if (at_opposite < offset) {
      h.coeffs = {normal[0], normal[1], normal[2]};
      h.rhs = offset;
    } else {
      h.coeffs = {-normal[0], -normal[1], -normal[2]};
      h.rhs = -offset;
    }
    q.constraints.push_back(h);
  }
  return q;
}

}  // namespace kwsc

#endif  // KWSC_GEOM_SIMPLEX_H_
