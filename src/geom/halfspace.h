// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Linear constraints (halfspaces).
//
// An LC-KW query supplies s = O(1) constraints of the form
//   c_1 x[1] + ... + c_d x[d] <= c_{d+1}
// (Section 1.1). A conjunction of halfspaces is a convex polytope query; the
// paper decomposes it into simplices before querying the partition tree, but
// the substrates in this library test cells against the halfspace conjunction
// directly, which answers the same query without the decomposition step.

#ifndef KWSC_GEOM_HALFSPACE_H_
#define KWSC_GEOM_HALFSPACE_H_

#include <vector>

#include "geom/point.h"

namespace kwsc {

/// The constraint sum_i coeffs[i] * x[i] <= rhs.
template <int D, typename Scalar = double>
struct Halfspace {
  std::array<double, D> coeffs{};
  double rhs = 0;

  double Eval(const Point<D, Scalar>& p) const {
    double v = 0;
    for (int i = 0; i < D; ++i) v += coeffs[i] * static_cast<double>(p[i]);
    return v;
  }

  bool Satisfies(const Point<D, Scalar>& p) const { return Eval(p) <= rhs; }
};

/// A conjunction of halfspaces — the structured predicate of an LC-KW query.
template <int D, typename Scalar = double>
struct ConvexQuery {
  std::vector<Halfspace<D, Scalar>> constraints;

  bool Satisfies(const Point<D, Scalar>& p) const {
    for (const auto& h : constraints) {
      if (!h.Satisfies(p)) return false;
    }
    return true;
  }
};

}  // namespace kwsc

#endif  // KWSC_GEOM_HALFSPACE_H_
