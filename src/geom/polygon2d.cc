// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "geom/polygon2d.h"

#include <cmath>

namespace kwsc {

ConvexPolygon2D ConvexPolygon2D::FromBox(const Box<2>& box) {
  return ConvexPolygon2D({{{box.lo[0], box.lo[1]}},
                          {{box.hi[0], box.lo[1]}},
                          {{box.hi[0], box.hi[1]}},
                          {{box.lo[0], box.hi[1]}}});
}

ConvexPolygon2D ConvexPolygon2D::ClipBy(const Halfspace<2>& h) const {
  std::vector<Point<2>> out;
  const size_t n = vertices_.size();
  if (n == 0) return ConvexPolygon2D();
  out.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    const Point<2>& a = vertices_[i];
    const Point<2>& b = vertices_[(i + 1) % n];
    const double fa = h.Eval(a) - h.rhs;
    const double fb = h.Eval(b) - h.rhs;
    const bool a_in = fa <= kEps;
    const bool b_in = fb <= kEps;
    if (a_in) out.push_back(a);
    if (a_in != b_in) {
      // The edge crosses the boundary; emit the crossing point.
      const double t = fa / (fa - fb);
      out.push_back({{a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1])}});
    }
  }
  return ConvexPolygon2D(std::move(out));
}

bool ConvexPolygon2D::IntersectsHalfplane(const Halfspace<2>& h,
                                          double slack) const {
  // A linear functional over a convex polygon attains its minimum at a
  // vertex, so some point satisfies h iff some vertex does.
  for (const auto& v : vertices_) {
    if (h.Eval(v) <= h.rhs + slack) return true;
  }
  return false;
}

bool ConvexPolygon2D::InsideHalfplane(const Halfspace<2>& h,
                                      double margin) const {
  if (Empty()) return false;
  for (const auto& v : vertices_) {
    if (h.Eval(v) > h.rhs + margin) return false;
  }
  return true;
}

bool ConvexPolygon2D::IntersectsBox(const Box<2>& box) const {
  // Clip by the four box halfplanes; non-empty result means intersection.
  ConvexPolygon2D clipped = *this;
  clipped = clipped.ClipBy({{{1.0, 0.0}}, box.hi[0]});   //  x <= hi.x
  clipped = clipped.ClipBy({{{-1.0, 0.0}}, -box.lo[0]});  // -x <= -lo.x
  clipped = clipped.ClipBy({{{0.0, 1.0}}, box.hi[1]});   //  y <= hi.y
  clipped = clipped.ClipBy({{{0.0, -1.0}}, -box.lo[1]});  // -y <= -lo.y
  return !clipped.Empty();
}

bool ConvexPolygon2D::InsideBox(const Box<2>& box) const {
  if (Empty()) return false;
  for (const auto& v : vertices_) {
    if (v[0] < box.lo[0] - kEps || v[0] > box.hi[0] + kEps ||
        v[1] < box.lo[1] - kEps || v[1] > box.hi[1] + kEps) {
      return false;
    }
  }
  return true;
}

bool ConvexPolygon2D::Contains(const Point<2>& p, double slack) const {
  const size_t n = vertices_.size();
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    const Point<2>& a = vertices_[i];
    const Point<2>& b = vertices_[(i + 1) % n];
    const double cross =
        (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0]);
    if (cross < -slack) return false;  // Right of a CCW edge: outside.
  }
  return true;
}

double ConvexPolygon2D::Area() const {
  const size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point<2>& a = vertices_[i];
    const Point<2>& b = vertices_[(i + 1) % n];
    twice += a[0] * b[1] - b[0] * a[1];
  }
  return std::fabs(twice) / 2.0;
}

}  // namespace kwsc
