// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// A registry of named counters, gauges, and histograms.
//
// The registry is the aggregation point the serving-style surfaces (query
// engine, benches) feed: monotonically increasing uint64 counters (queries
// run, budget exhaustions), point-in-time double gauges (build wall time,
// peak RSS), and log-bucket histograms (per-query latency and work). Names
// are stored in ordered maps so iteration — and therefore every export — is
// deterministic.
//
// Thread safety: every method is safe to call concurrently. One internal
// Mutex guards the three maps (annotated KWSC_GUARDED_BY, so a clang
// -Wthread-safety build proves no accessor slips past the lock), mutators
// lock for the duration of the update, and the read accessors return
// snapshots by value rather than references into guarded state. That makes
// the registry the one obs structure multiple query engines — and the
// upcoming sharded/dynamized serving paths — may share: shards still record
// into shard-local QueryStats/Histogram structures and merge in a fixed
// order (the MergeQueryStats determinism discipline is unchanged), but the
// cross-engine fold into a shared registry no longer needs external
// serialization. Counter totals are exact under concurrency; only the
// *interleaving* of concurrent merges is unordered, which is invisible in
// the commutative fold (counters add, histograms add bucket-wise; gauges
// are last-writer-wins by design).

#ifndef KWSC_OBS_METRICS_H_
#define KWSC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace kwsc {
namespace obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddCounter(const std::string& name, uint64_t delta) KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    counters_[name] += delta;
  }

  /// Value of a counter, 0 if it was never touched.
  uint64_t CounterValue(const std::string& name) const KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void SetGauge(const std::string& name, double value) KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    gauges_[name] = value;
  }

  double GaugeValue(const std::string& name) const KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// Records one sample into the named histogram (created empty on first
  /// use). Replaces the old MutableHistogram accessor, which handed out a
  /// pointer into guarded state — exactly the escape the annotations exist
  /// to prevent. Hot paths should keep recording into a local Histogram and
  /// fold it in with MergeHistogram; this is for one-off samples.
  void RecordHistogram(const std::string& name, uint64_t value)
      KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    histograms_[name].Record(value);
  }

  void MergeHistogram(const std::string& name, const Histogram& h)
      KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    histograms_[name].Merge(h);
  }

  /// The named histogram by value (empty if never touched).
  Histogram HistogramSnapshot(const std::string& name) const
      KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram() : it->second;
  }

  /// Folds every metric of `other` into this registry (counters add, gauges
  /// overwrite, histograms merge exactly). Snapshots `other` first, then
  /// applies under this registry's lock — the two locks are never held
  /// together, so concurrent A.Merge(B) and B.Merge(A) cannot deadlock.
  void Merge(const MetricsRegistry& other) KWSC_EXCLUDES(mu_) {
    const std::map<std::string, uint64_t> counters = other.counters();
    const std::map<std::string, double> gauges = other.gauges();
    const std::map<std::string, Histogram> histograms = other.histograms();
    MutexLock lock(&mu_);
    for (const auto& [name, value] : counters) counters_[name] += value;
    for (const auto& [name, value] : gauges) gauges_[name] = value;
    for (const auto& [name, h] : histograms) histograms_[name].Merge(h);
  }

  // Snapshot accessors: consistent copies taken under the lock. Export-path
  // only (JsonExporter, tests) — the copy cost is irrelevant there, and
  // returning by value is what lets concurrent mutators keep running.
  std::map<std::string, uint64_t> counters() const KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return counters_;
  }
  std::map<std::string, double> gauges() const KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return gauges_;
  }
  std::map<std::string, Histogram> histograms() const KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return histograms_;
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, uint64_t> counters_ KWSC_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ KWSC_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ KWSC_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace kwsc

#endif  // KWSC_OBS_METRICS_H_
