// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// A registry of named counters, gauges, and histograms.
//
// The registry is the aggregation point the serving-style surfaces (query
// engine, benches) feed: monotonically increasing uint64 counters (queries
// run, budget exhaustions), point-in-time double gauges (build wall time,
// peak RSS), and log-bucket histograms (per-query latency and work). Names
// are stored in ordered maps so iteration — and therefore every export — is
// deterministic. Not thread-safe: shards record into local structures and
// the owner merges them in a fixed order (the same discipline as
// MergeQueryStats).

#ifndef KWSC_OBS_METRICS_H_
#define KWSC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/histogram.h"

namespace kwsc {
namespace obs {

class MetricsRegistry {
 public:
  void AddCounter(const std::string& name, uint64_t delta) {
    counters_[name] += delta;
  }

  /// Value of a counter, 0 if it was never touched.
  uint64_t CounterValue(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void SetGauge(const std::string& name, double value) {
    gauges_[name] = value;
  }

  double GaugeValue(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// The named histogram, created empty on first use.
  Histogram* MutableHistogram(const std::string& name) {
    return &histograms_[name];
  }

  void MergeHistogram(const std::string& name, const Histogram& h) {
    histograms_[name].Merge(h);
  }

  /// Folds every metric of `other` into this registry (counters add, gauges
  /// overwrite, histograms merge exactly).
  void Merge(const MetricsRegistry& other) {
    for (const auto& [name, value] : other.counters_) counters_[name] += value;
    for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
    for (const auto& [name, h] : other.histograms_) histograms_[name].Merge(h);
  }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
}  // namespace kwsc

#endif  // KWSC_OBS_METRICS_H_
