// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Deterministic log-bucket latency histogram.
//
// The bucket boundaries are fixed at compile time (they depend on nothing but
// the value being recorded), merging is exact bucket-wise addition, and the
// quantile estimator returns a bucket boundary — so two histograms built from
// the same multiset of values are bit-identical no matter how the recording
// was sharded or in which order partial histograms were merged. This is the
// same determinism contract MergeQueryStats gives the batched query engine:
// shard-local recording + ordered merge == sequential recording.
//
// Bucketing scheme (HdrHistogram-style, base 2): values 0..7 get exact
// buckets; above that each power-of-two octave is split into 8 sub-buckets,
// bounding the relative rounding error of any recorded value by 1/8. Values
// are unsigned "ticks" — the unit (nanoseconds on the query path) is the
// caller's choice and is carried alongside by the exporter, not by the
// histogram.

#ifndef KWSC_OBS_HISTOGRAM_H_
#define KWSC_OBS_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace kwsc {
namespace obs {

class Histogram {
 public:
  /// Sub-buckets per power-of-two octave (8 => <= 12.5% relative error).
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// Exact buckets for 0..kSubBuckets-1 plus kSubBuckets buckets for every
  /// octave [2^m, 2^{m+1}) with m in [kSubBucketBits, 63].
  static constexpr int kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  /// Bucket index of `value`; fixed for all time (the JSON schema depends on
  /// it — bump the exporter's schema version if this ever changes).
  static int BucketIndex(uint64_t value) {
    if (value < static_cast<uint64_t>(kSubBuckets)) {
      return static_cast<int>(value);
    }
    const int msb = 63 - std::countl_zero(value);
    const int sub = static_cast<int>((value >> (msb - kSubBucketBits)) &
                                     (kSubBuckets - 1));
    return (msb - kSubBucketBits) * kSubBuckets + sub + kSubBuckets;
  }

  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index) {
    if (index < kSubBuckets) return static_cast<uint64_t>(index);
    const int j = index - kSubBuckets;
    const int msb = j / kSubBuckets + kSubBucketBits;
    const int sub = j % kSubBuckets;
    return (uint64_t{1} << msb) |
           (static_cast<uint64_t>(sub) << (msb - kSubBucketBits));
  }

  /// Largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(int index) {
    if (index + 1 >= kNumBuckets) {
      return std::numeric_limits<uint64_t>::max();
    }
    return BucketLowerBound(index + 1) - 1;
  }

  void Record(uint64_t value) {
    ++counts_[static_cast<size_t>(BucketIndex(value))];
    ++count_;
    sum_ = SaturatingAdd(sum_, value);
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Convenience for callers timing in (fractional) microseconds: records
  /// the value rounded to whole nanoseconds, clamping negatives to zero.
  void RecordMicros(double micros) {
    const double nanos = micros * 1e3;
    Record(nanos <= 0.0 ? 0 : static_cast<uint64_t>(nanos + 0.5));
  }

  /// Exact merge: afterwards `this` is identical to a histogram that
  /// recorded both input multisets. Commutative and associative.
  void Merge(const Histogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) {
      counts_[static_cast<size_t>(i)] += other.counts_[static_cast<size_t>(i)];
    }
    count_ += other.count_;
    sum_ = SaturatingAdd(sum_, other.sum_);
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the element of rank ceil(q * count) (clamped to the observed max, so
  /// Quantile(1.0) == max()). Deterministic given the recorded multiset;
  /// rounding error is bounded by the bucket width (<= 1/8 relative).
  uint64_t ValueAtQuantile(double q) const {
    if (count_ == 0) return 0;
    double target = std::ceil(q * static_cast<double>(count_));
    if (target < 1.0) target = 1.0;
    uint64_t rank = static_cast<uint64_t>(target);
    if (rank > count_) rank = count_;
    uint64_t cumulative = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      cumulative += counts_[static_cast<size_t>(i)];
      if (cumulative >= rank) {
        const uint64_t upper = BucketUpperBound(i);
        return upper < max_ ? upper : max_;
      }
    }
    return max_;
  }

  uint64_t P50() const { return ValueAtQuantile(0.50); }
  uint64_t P90() const { return ValueAtQuantile(0.90); }
  uint64_t P99() const { return ValueAtQuantile(0.99); }

  uint64_t BucketCount(int index) const {
    return counts_[static_cast<size_t>(index)];
  }

  /// Calls fn(index, lower_bound, upper_bound, count) for every non-empty
  /// bucket, in increasing value order.
  template <typename Fn>
  void ForEachNonEmptyBucket(Fn&& fn) const {
    for (int i = 0; i < kNumBuckets; ++i) {
      if (counts_[static_cast<size_t>(i)] != 0) {
        fn(i, BucketLowerBound(i), BucketUpperBound(i),
           counts_[static_cast<size_t>(i)]);
      }
    }
  }

  bool operator==(const Histogram& other) const {
    return count_ == other.count_ && sum_ == other.sum_ &&
           min() == other.min() && max_ == other.max_ &&
           counts_ == other.counts_;
  }
  bool operator!=(const Histogram& other) const { return !(*this == other); }

  /// Canonical text form — two histograms are byte-identical here iff they
  /// recorded the same multiset. The determinism tests compare these.
  std::string DebugString() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "count=%llu sum=%llu min=%llu max=%llu buckets=",
                  static_cast<unsigned long long>(count_),
                  static_cast<unsigned long long>(sum_),
                  static_cast<unsigned long long>(min()),
                  static_cast<unsigned long long>(max_));
    std::string out = buf;
    ForEachNonEmptyBucket([&](int i, uint64_t, uint64_t, uint64_t c) {
      std::snprintf(buf, sizeof(buf), "[%d:%llu]", i,
                    static_cast<unsigned long long>(c));
      out += buf;
    });
    return out;
  }

 private:
  static uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
    return a > std::numeric_limits<uint64_t>::max() - b
               ? std::numeric_limits<uint64_t>::max()
               : a + b;
  }

  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

}  // namespace obs
}  // namespace kwsc

#endif  // KWSC_OBS_HISTOGRAM_H_
