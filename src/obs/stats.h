// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Small order-statistics helpers shared by the observability layer and the
// benchmark harness.

#ifndef KWSC_OBS_STATS_H_
#define KWSC_OBS_STATS_H_

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace kwsc {
namespace obs {

/// True median of `values` (not the upper-middle element): for an even count
/// the mean of the two middle elements, for an odd count the middle element.
/// Takes its argument by value because it sorts.
inline double Median(std::vector<double> values) {
  KWSC_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

}  // namespace obs
}  // namespace kwsc

#endif  // KWSC_OBS_STATS_H_
