// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Schema-versioned machine-readable perf export.
//
// JsonExporter collects everything a bench (or a test harness) measures —
// sweep points, fitted exponents, counters, gauges, and latency/work
// histograms — and writes a single BENCH_<name>.json the perf-trajectory
// tooling can diff across commits. The schema is versioned
// ("kwsc-bench", schema_version): any change to field meaning, histogram
// bucketing, or units bumps kSchemaVersion. tools/check_bench_json.sh
// validates emitted files against this schema in CI; the field-by-field
// reference lives in EXPERIMENTS.md ("BENCH_*.json schema").
//
// Keys are bench-authored identifiers (no escaping is performed); non-finite
// doubles become JSON null.

#ifndef KWSC_OBS_JSON_EXPORTER_H_
#define KWSC_OBS_JSON_EXPORTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

namespace kwsc {
namespace obs {

class JsonExporter {
 public:
  /// Bump on any breaking change to the emitted layout, units, or to
  /// Histogram's bucket boundaries (bucket indices are part of the schema).
  static constexpr int kSchemaVersion = 1;

  explicit JsonExporter(std::string name) : name_(std::move(name)) {}

  /// One sweep row: ordered (key, value) pairs.
  void AddPoint(const std::vector<std::pair<std::string, double>>& kv) {
    points_.push_back(kv);
  }

  /// One fitted log-log slope with the paper's expected shape.
  void AddExponent(const std::string& label, double measured, double expected) {
    exponents_.push_back({label, measured, expected});
  }

  void AddCounter(const std::string& name, uint64_t delta) {
    registry_.AddCounter(name, delta);
  }

  void SetGauge(const std::string& name, double value) {
    registry_.SetGauge(name, value);
  }

  /// Records a histogram under `name`; `unit` documents the tick unit of
  /// the recorded values ("ns" on the query path). Merging into an existing
  /// name is exact.
  void AddHistogram(const std::string& name, const Histogram& histogram,
                    const std::string& unit = "ns") {
    units_[name] = unit;
    registry_.MergeHistogram(name, histogram);
  }

  /// Folds a whole registry in (histograms default to unit "ns" unless a
  /// unit was already declared for that name).
  void MergeRegistry(const MetricsRegistry& registry) {
    registry_.Merge(registry);
  }

  const std::string& name() const { return name_; }
  const MetricsRegistry& registry() const { return registry_; }
  /// Direct access for helpers that feed a registry (AddQueryStatsCounters).
  MetricsRegistry* mutable_registry() { return &registry_; }

  /// Writes BENCH_<name>.json in the working directory. Returns the path
  /// written, or "" on failure (reported on stderr — a bench should still
  /// finish its stdout protocol).
  std::string Write() const;

  /// Writes to an explicit path ("" on failure).
  std::string WriteTo(const std::string& path) const;

 private:
  struct Exponent {
    std::string label;
    double measured;
    double expected;
  };

  std::string name_;
  std::vector<std::vector<std::pair<std::string, double>>> points_;
  std::vector<Exponent> exponents_;
  MetricsRegistry registry_;
  std::map<std::string, std::string> units_;
};

/// Exports a QueryStats aggregate as "<prefix>." counters — the paper's cost
/// accounting by name: covered vs. crossing nodes and work (Lemma 9 / bound
/// (7)), pruning counts, materialized-list scans, and budgeted terminations
/// (footnote 4).
inline void AddQueryStatsCounters(const QueryStats& stats,
                                  const std::string& prefix,
                                  MetricsRegistry* registry) {
  registry->AddCounter(prefix + ".nodes_visited", stats.nodes_visited);
  registry->AddCounter(prefix + ".covered_nodes", stats.covered_nodes);
  registry->AddCounter(prefix + ".crossing_nodes", stats.crossing_nodes);
  registry->AddCounter(prefix + ".covered_work", stats.covered_work);
  registry->AddCounter(prefix + ".crossing_work", stats.crossing_work);
  registry->AddCounter(prefix + ".pivot_checks", stats.pivot_checks);
  registry->AddCounter(prefix + ".list_scanned", stats.list_scanned);
  registry->AddCounter(prefix + ".results", stats.results);
  registry->AddCounter(prefix + ".tuple_pruned", stats.tuple_pruned);
  registry->AddCounter(prefix + ".geom_pruned", stats.geom_pruned);
  registry->AddCounter(prefix + ".type1_nodes", stats.type1_nodes);
  registry->AddCounter(prefix + ".type2_nodes", stats.type2_nodes);
  registry->AddCounter(prefix + ".budget_exhausted",
                       stats.budget_exhausted ? 1 : 0);
}

}  // namespace obs
}  // namespace kwsc

#endif  // KWSC_OBS_JSON_EXPORTER_H_
