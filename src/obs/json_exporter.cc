// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "obs/json_exporter.h"

#include <cmath>
#include <cstdio>

namespace kwsc {
namespace obs {
namespace {

std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void WriteHistogram(std::FILE* f, const std::string& name,
                    const std::string& unit, const Histogram& h) {
  std::fprintf(f,
               "{\"name\": \"%s\", \"unit\": \"%s\", \"count\": %llu, "
               "\"sum\": %llu, \"min\": %llu, \"max\": %llu, \"mean\": %s, "
               "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, \"buckets\": [",
               name.c_str(), unit.c_str(),
               static_cast<unsigned long long>(h.count()),
               static_cast<unsigned long long>(h.sum()),
               static_cast<unsigned long long>(h.min()),
               static_cast<unsigned long long>(h.max()),
               Num(h.Mean()).c_str(),
               static_cast<unsigned long long>(h.P50()),
               static_cast<unsigned long long>(h.P90()),
               static_cast<unsigned long long>(h.P99()));
  bool first = true;
  h.ForEachNonEmptyBucket([&](int index, uint64_t lo, uint64_t hi,
                              uint64_t count) {
    std::fprintf(f, "%s{\"i\": %d, \"lo\": %llu, \"hi\": %llu, \"n\": %llu}",
                 first ? "" : ", ", index,
                 static_cast<unsigned long long>(lo),
                 static_cast<unsigned long long>(hi),
                 static_cast<unsigned long long>(count));
    first = false;
  });
  std::fprintf(f, "]}");
}

}  // namespace

std::string JsonExporter::Write() const {
  return WriteTo("BENCH_" + name_ + ".json");
}

std::string JsonExporter::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonExporter: cannot open %s for writing\n",
                 path.c_str());
    return "";
  }
  std::fprintf(f,
               "{\n  \"schema\": \"kwsc-bench\",\n  \"schema_version\": %d,\n"
               "  \"name\": \"%s\",\n  \"points\": [",
               kSchemaVersion, name_.c_str());
  for (size_t i = 0; i < points_.size(); ++i) {
    std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
    for (size_t j = 0; j < points_[i].size(); ++j) {
      std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                   points_[i][j].first.c_str(),
                   Num(points_[i][j].second).c_str());
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ],\n  \"exponents\": [");
  for (size_t i = 0; i < exponents_.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"label\": \"%s\", \"measured\": %s, "
                 "\"expected\": %s}",
                 i == 0 ? "" : ",", exponents_[i].label.c_str(),
                 Num(exponents_[i].measured).c_str(),
                 Num(exponents_[i].expected).c_str());
  }
  std::fprintf(f, "\n  ],\n  \"counters\": {");
  {
    bool first = true;
    for (const auto& [name, value] : registry_.counters()) {
      std::fprintf(f, "%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                   static_cast<unsigned long long>(value));
      first = false;
    }
  }
  std::fprintf(f, "\n  },\n  \"gauges\": {");
  {
    bool first = true;
    for (const auto& [name, value] : registry_.gauges()) {
      std::fprintf(f, "%s\n    \"%s\": %s", first ? "" : ",", name.c_str(),
                   Num(value).c_str());
      first = false;
    }
  }
  std::fprintf(f, "\n  },\n  \"histograms\": [");
  {
    bool first = true;
    for (const auto& [name, histogram] : registry_.histograms()) {
      const auto unit_it = units_.find(name);
      const std::string unit =
          unit_it == units_.end() ? "ns" : unit_it->second;
      std::fprintf(f, "%s\n    ", first ? "" : ",");
      WriteHistogram(f, name, unit, histogram);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return path;
}

}  // namespace obs
}  // namespace kwsc
