// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Lightweight per-batch trace recording for the query path.
//
// A QueryTrace captures, for one QueryEngine::Run, the batch-level phase
// spans (shard execution, stats merge) and one span per query: where it ran
// (shard), when it started relative to batch start, how long it took, and the
// QueryStats snapshot of exactly that query — the paper's cost accounting
// (covered vs. crossing work, pruning counts, budget exhaustion) at
// single-query granularity. Recording is off by default
// (FrameworkOptions::enable_tracing) because snapshotting per-query stats
// costs a QueryStats copy per query; with it off the engine never touches
// these structures beyond an empty-vector move.

#ifndef KWSC_OBS_TRACE_H_
#define KWSC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/framework.h"

namespace kwsc {
namespace obs {

/// One batch-level phase (setup / execute / merge), timed relative to
/// QueryEngine::Run entry.
struct TraceSpan {
  std::string name;
  double start_micros = 0.0;
  double duration_micros = 0.0;
};

/// One query's execution record.
struct QuerySpan {
  uint32_t query_index = 0;   // Position in the input batch.
  uint32_t shard = 0;         // Which shard ran it.
  double start_micros = 0.0;  // Relative to QueryEngine::Run entry.
  double duration_micros = 0.0;
  QueryStats stats;           // This query's counters alone (not cumulative).
};

struct QueryTrace {
  /// True when the engine that produced this trace had tracing enabled;
  /// false traces are empty.
  bool enabled = false;
  std::vector<TraceSpan> phases;
  /// Query spans in shard order then batch order within a shard — which,
  /// with contiguous sharding, is exactly input batch order.
  std::vector<QuerySpan> queries;
};

}  // namespace obs
}  // namespace kwsc

#endif  // KWSC_OBS_TRACE_H_
