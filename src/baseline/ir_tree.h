// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// A simplified IR-tree: the system community's standard spatial-keyword
// index (Li et al. [42]; surveyed in [18, 20, 22]), included as the
// "empirically efficient, no theoretical guarantee" competitor the paper's
// related-work section contrasts itself against.
//
// Structure: an STR-bulk-loaded R-tree whose every node stores a summary of
// the keywords appearing in its subtree (the practical equivalent of the
// per-node inverted files of the original IR-tree). A query descends into a
// child only if its MBR intersects the query region AND its summary contains
// every query keyword. This prunes beautifully on skew-free data and rare
// keywords, but offers no worst-case bound: frequent keywords appear in
// every node's summary, degenerating the search to a pure R-tree scan of
// the region — the blow-up Theorem 1's index provably avoids.

#ifndef KWSC_BASELINE_IR_TREE_H_
#define KWSC_BASELINE_IR_TREE_H_

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "baseline/structured_only.h"  // BaselineStats.
#include "common/flat_hash.h"
#include "common/memory.h"
#include "geom/box.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {

template <int D, typename Scalar = double>
class IrTree {
 public:
  using PointType = Point<D, Scalar>;
  using BoxType = Box<D, Scalar>;

  /// Builds over one point per corpus object. `corpus` must outlive the
  /// tree. `leaf_capacity` is both the leaf size and the internal fanout.
  IrTree(std::span<const PointType> points, const Corpus* corpus,
         int leaf_capacity = 32)
      : corpus_(corpus), points_(points.begin(), points.end()),
        capacity_(std::max(2, leaf_capacity)) {
    KWSC_CHECK(corpus != nullptr);
    KWSC_CHECK(points.size() == corpus->num_objects());
    if (points_.empty()) return;
    // STR bulk load: recursively tile the id array by coordinate slabs.
    std::vector<uint32_t> ids(points_.size());
    std::iota(ids.begin(), ids.end(), 0);
    std::vector<uint32_t> leaves = BuildLeaves(&ids);
    // Build internal levels bottom-up until one root remains.
    while (leaves.size() > 1) {
      leaves = BuildInternalLevel(std::move(leaves));
    }
    root_ = leaves.front();
  }

  /// Reports every object in `q` whose document has all query keywords.
  std::vector<ObjectId> Query(const BoxType& q,
                              std::span<const KeywordId> keywords,
                              BaselineStats* stats = nullptr) const {
    std::vector<ObjectId> out;
    if (!points_.empty()) Visit(root_, q, keywords, stats, &out);
    return out;
  }

  size_t MemoryBytes() const {
    size_t total = VectorBytes(points_) + VectorBytes(nodes_) +
                   VectorBytes(children_) + VectorBytes(leaf_objects_);
    for (const Node& node : nodes_) total += node.summary.MemoryBytes();
    return total;
  }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    BoxType mbr;
    FlatHashSet<KeywordId> summary;  // Keywords anywhere in the subtree.
    uint32_t begin = 0;   // Range into children_ (internal) or
    uint32_t end = 0;     // leaf_objects_ (leaf).
    bool is_leaf = false;
  };

  // Tiles `ids` into leaves of <= capacity_ objects via STR: sort by the
  // current dimension, cut into ceil(n / target)^(1/remaining_dims) slabs,
  // recurse with the next dimension.
  std::vector<uint32_t> BuildLeaves(std::vector<uint32_t>* ids) {
    std::vector<uint32_t> leaves;
    StrTile(ids->data(), ids->size(), 0, &leaves);
    return leaves;
  }

  void StrTile(uint32_t* ids, size_t count, int dim,
               std::vector<uint32_t>* leaves) {
    if (count <= static_cast<size_t>(capacity_) || dim == D) {
      leaves->push_back(MakeLeaf(ids, count));
      return;
    }
    std::sort(ids, ids + count, [&](uint32_t a, uint32_t b) {
      if (points_[a][dim] != points_[b][dim]) {
        return points_[a][dim] < points_[b][dim];
      }
      return a < b;
    });
    const size_t num_leaves =
        (count + capacity_ - 1) / static_cast<size_t>(capacity_);
    const size_t slabs = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(std::pow(static_cast<double>(num_leaves),
                                  1.0 / (D - dim)))));
    const size_t per_slab = (count + slabs - 1) / slabs;
    for (size_t begin = 0; begin < count; begin += per_slab) {
      const size_t len = std::min(per_slab, count - begin);
      StrTile(ids + begin, len, dim + 1, leaves);
    }
  }

  uint32_t MakeLeaf(const uint32_t* ids, size_t count) {
    const uint32_t index = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    Node& node = nodes_.back();
    node.is_leaf = true;
    node.begin = static_cast<uint32_t>(leaf_objects_.size());
    for (size_t i = 0; i < count; ++i) leaf_objects_.push_back(ids[i]);
    node.end = static_cast<uint32_t>(leaf_objects_.size());
    node.mbr.lo = points_[ids[0]];
    node.mbr.hi = points_[ids[0]];
    for (size_t i = 0; i < count; ++i) {
      const PointType& p = points_[ids[i]];
      for (int dim = 0; dim < D; ++dim) {
        node.mbr.lo[dim] = std::min(node.mbr.lo[dim], p[dim]);
        node.mbr.hi[dim] = std::max(node.mbr.hi[dim], p[dim]);
      }
      for (KeywordId w : corpus_->doc(ids[i])) node.summary.Insert(w);
    }
    return index;
  }

  std::vector<uint32_t> BuildInternalLevel(std::vector<uint32_t> level) {
    // Pack `capacity_` consecutive nodes (they are spatially coherent by
    // STR order) under each parent.
    std::vector<uint32_t> parents;
    for (size_t begin = 0; begin < level.size();
         begin += static_cast<size_t>(capacity_)) {
      const size_t len =
          std::min(static_cast<size_t>(capacity_), level.size() - begin);
      const uint32_t index = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
      Node& node = nodes_.back();
      node.is_leaf = false;
      node.begin = static_cast<uint32_t>(children_.size());
      for (size_t i = 0; i < len; ++i) children_.push_back(level[begin + i]);
      node.end = static_cast<uint32_t>(children_.size());
      node.mbr = nodes_[level[begin]].mbr;
      for (size_t i = 0; i < len; ++i) {
        const Node& child = nodes_[level[begin + i]];
        for (int dim = 0; dim < D; ++dim) {
          node.mbr.lo[dim] = std::min(node.mbr.lo[dim], child.mbr.lo[dim]);
          node.mbr.hi[dim] = std::max(node.mbr.hi[dim], child.mbr.hi[dim]);
        }
        child.summary.ForEach(
            [&node](KeywordId w) { node.summary.Insert(w); });
      }
      parents.push_back(index);
    }
    return parents;
  }

  void Visit(uint32_t node_index, const BoxType& q,
             std::span<const KeywordId> keywords, BaselineStats* stats,
             std::vector<ObjectId>* out) const {
    const Node& node = nodes_[node_index];
    if (!node.mbr.Intersects(q)) return;
    for (KeywordId w : keywords) {
      if (!node.summary.Contains(w)) return;  // IR-tree keyword pruning.
    }
    if (node.is_leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const ObjectId e = leaf_objects_[i];
        if (stats != nullptr) ++stats->candidates;
        if (q.Contains(points_[e]) && corpus_->ContainsAll(e, keywords)) {
          if (stats != nullptr) ++stats->results;
          out->push_back(e);
        }
      }
      return;
    }
    for (uint32_t i = node.begin; i < node.end; ++i) {
      Visit(children_[i], q, keywords, stats, out);
    }
  }

  const Corpus* corpus_;
  std::vector<PointType> points_;
  int capacity_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> children_;
  std::vector<ObjectId> leaf_objects_;
  uint32_t root_ = 0;
};

}  // namespace kwsc

#endif  // KWSC_BASELINE_IR_TREE_H_
