// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The "keywords only" naive baseline (Section 1): compute D(w1,...,wk) with
// an inverted index, then discard the objects failing the structured
// predicate. Symmetric weakness to the structured-only baseline: the
// intersection may be huge even when the joint answer is empty.

#ifndef KWSC_BASELINE_KEYWORDS_ONLY_H_
#define KWSC_BASELINE_KEYWORDS_ONLY_H_

#include <algorithm>
#include <span>
#include <vector>

#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/point.h"
#include "baseline/structured_only.h"  // BaselineStats.
#include "text/corpus.h"
#include "text/inverted_index.h"

namespace kwsc {

template <int D, typename Scalar = double>
class KeywordsOnlyBaseline {
 public:
  using PointType = Point<D, Scalar>;

  KeywordsOnlyBaseline(std::span<const PointType> points, const Corpus* corpus)
      : corpus_(corpus), points_(points.begin(), points.end()),
        postings_(*corpus) {}

  std::vector<ObjectId> QueryBox(const Box<D, Scalar>& q,
                                 std::span<const KeywordId> keywords,
                                 BaselineStats* stats = nullptr) const {
    return Filter(keywords, stats,
                  [&](ObjectId e) { return q.Contains(points_[e]); });
  }

  std::vector<ObjectId> QueryConvex(const ConvexQuery<D, Scalar>& q,
                                    std::span<const KeywordId> keywords,
                                    BaselineStats* stats = nullptr) const {
    return Filter(keywords, stats,
                  [&](ObjectId e) { return q.Satisfies(points_[e]); });
  }

  std::vector<ObjectId> QueryBall(const PointType& center, double radius_sq,
                                  std::span<const KeywordId> keywords,
                                  BaselineStats* stats = nullptr) const {
    return Filter(keywords, stats, [&](ObjectId e) {
      return static_cast<double>(L2DistanceSquared(points_[e], center)) <=
             radius_sq;
    });
  }

  /// t nearest matches under `metric` ("linf" semantics via functor): the
  /// intersection is fully materialized, then partially sorted by distance.
  template <typename DistanceFn>
  std::vector<ObjectId> QueryNearest(const PointType& q, uint64_t t,
                                     std::span<const KeywordId> keywords,
                                     DistanceFn&& distance,
                                     BaselineStats* stats = nullptr) const {
    std::vector<ObjectId> matches = postings_.Intersect(keywords);
    if (stats != nullptr) stats->candidates += matches.size();
    const size_t keep = std::min<size_t>(t, matches.size());
    std::partial_sort(matches.begin(), matches.begin() + keep, matches.end(),
                      [&](ObjectId a, ObjectId b) {
                        const double da = distance(points_[a], q);
                        const double db = distance(points_[b], q);
                        if (da != db) return da < db;
                        return a < b;
                      });
    matches.resize(keep);
    if (stats != nullptr) stats->results += matches.size();
    return matches;
  }

  std::vector<ObjectId> QueryNearestLinf(const PointType& q, uint64_t t,
                                         std::span<const KeywordId> keywords,
                                         BaselineStats* stats = nullptr) const {
    return QueryNearest(q, t, keywords,
                        [](const PointType& a, const PointType& b) {
                          return static_cast<double>(LInfDistance(a, b));
                        },
                        stats);
  }

  std::vector<ObjectId> QueryNearestL2(const PointType& q, uint64_t t,
                                       std::span<const KeywordId> keywords,
                                       BaselineStats* stats = nullptr) const {
    return QueryNearest(q, t, keywords,
                        [](const PointType& a, const PointType& b) {
                          return static_cast<double>(L2DistanceSquared(a, b));
                        },
                        stats);
  }

  size_t MemoryBytes() const {
    return postings_.MemoryBytes() + VectorBytes(points_);
  }

 private:
  template <typename Pred>
  std::vector<ObjectId> Filter(std::span<const KeywordId> keywords,
                               BaselineStats* stats, Pred&& pred) const {
    std::vector<ObjectId> out;
    for (ObjectId e : postings_.Intersect(keywords)) {
      if (stats != nullptr) ++stats->candidates;
      if (pred(e)) {
        if (stats != nullptr) ++stats->results;
        out.push_back(e);
      }
    }
    return out;
  }

  const Corpus* corpus_;
  std::vector<PointType> points_;
  InvertedIndex postings_;
};

/// Keywords-only baseline for RR-KW: the intersection is filtered by
/// rectangle overlap instead of point containment.
template <int D, typename Scalar = double>
class KeywordsOnlyRectBaseline {
 public:
  using RectType = Box<D, Scalar>;

  KeywordsOnlyRectBaseline(std::span<const RectType> rects,
                           const Corpus* corpus)
      : rects_(rects.begin(), rects.end()), postings_(*corpus) {}

  std::vector<ObjectId> Query(const RectType& q,
                              std::span<const KeywordId> keywords,
                              BaselineStats* stats = nullptr) const {
    std::vector<ObjectId> out;
    for (ObjectId e : postings_.Intersect(keywords)) {
      if (stats != nullptr) ++stats->candidates;
      if (rects_[e].Intersects(q)) {
        if (stats != nullptr) ++stats->results;
        out.push_back(e);
      }
    }
    return out;
  }

  size_t MemoryBytes() const {
    return postings_.MemoryBytes() + VectorBytes(rects_);
  }

 private:
  std::vector<RectType> rects_;
  InvertedIndex postings_;
};

}  // namespace kwsc

#endif  // KWSC_BASELINE_KEYWORDS_ONLY_H_
