// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The "structured only" naive baseline (Section 1): retrieve every object
// satisfying the structured predicate with a pure-geometry index, then
// discard those whose documents miss a keyword. Its weakness — examining all
// geometric candidates even when the joint answer is empty — is the paper's
// opening motivation, and the benchmarks reproduce exactly that blow-up.

#ifndef KWSC_BASELINE_STRUCTURED_ONLY_H_
#define KWSC_BASELINE_STRUCTURED_ONLY_H_

#include <algorithm>
#include <span>
#include <vector>

#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/point.h"
#include "kdtree/kd_tree.h"
#include "text/corpus.h"

namespace kwsc {

/// Candidate/result accounting for the naive baselines, so benches can show
/// the candidate blow-up next to wall-clock time.
struct BaselineStats {
  uint64_t candidates = 0;  // Objects passing the first-stage filter.
  uint64_t results = 0;
};

template <int D, typename Scalar = double>
class StructuredOnlyBaseline {
 public:
  using PointType = Point<D, Scalar>;

  StructuredOnlyBaseline(std::span<const PointType> points,
                         const Corpus* corpus)
      : corpus_(corpus), points_(points.begin(), points.end()),
        tree_(std::span<const PointType>(points_)) {}

  /// ORP-KW: kd-tree range query, then keyword filter.
  std::vector<ObjectId> QueryBox(const Box<D, Scalar>& q,
                                 std::span<const KeywordId> keywords,
                                 BaselineStats* stats = nullptr) const {
    std::vector<ObjectId> out;
    tree_.RangeReport(q, [&](uint32_t e) {
      if (stats != nullptr) ++stats->candidates;
      if (corpus_->ContainsAll(e, keywords)) {
        if (stats != nullptr) ++stats->results;
        out.push_back(e);
      }
      return true;
    });
    return out;
  }

  /// LC-KW / SP-KW: kd-tree halfspace-conjunction query, then filter.
  std::vector<ObjectId> QueryConvex(const ConvexQuery<D, Scalar>& q,
                                    std::span<const KeywordId> keywords,
                                    BaselineStats* stats = nullptr) const {
    std::vector<ObjectId> out;
    tree_.ConvexReport(q, [&](uint32_t e) {
      if (stats != nullptr) ++stats->candidates;
      if (corpus_->ContainsAll(e, keywords)) {
        if (stats != nullptr) ++stats->results;
        out.push_back(e);
      }
      return true;
    });
    return out;
  }

  /// SRP-KW: bounding-box prefilter, exact ball test, keyword filter.
  std::vector<ObjectId> QueryBall(const PointType& center, double radius_sq,
                                  std::span<const KeywordId> keywords,
                                  BaselineStats* stats = nullptr) const {
    Box<D, Scalar> bounds;
    const double r = std::sqrt(radius_sq);
    for (int dim = 0; dim < D; ++dim) {
      bounds.lo[dim] = static_cast<Scalar>(static_cast<double>(center[dim]) - r);
      bounds.hi[dim] = static_cast<Scalar>(static_cast<double>(center[dim]) + r);
    }
    std::vector<ObjectId> out;
    tree_.RangeReport(bounds, [&](uint32_t e) {
      if (stats != nullptr) ++stats->candidates;
      if (static_cast<double>(L2DistanceSquared(points_[e], center)) <=
              radius_sq &&
          corpus_->ContainsAll(e, keywords)) {
        if (stats != nullptr) ++stats->results;
        out.push_back(e);
      }
      return true;
    });
    return out;
  }

  /// L∞NN-KW / L2NN-KW: best-first traversal by distance, filtering each
  /// candidate by keywords until t survivors are found. Distance order makes
  /// the output the true t nearest matches.
  template <typename DistanceFns>
  std::vector<ObjectId> QueryNearest(const PointType& q, uint64_t t,
                                     std::span<const KeywordId> keywords,
                                     const DistanceFns& dist,
                                     BaselineStats* stats = nullptr) const {
    std::vector<ObjectId> out;
    tree_.NearestFirst(q, dist, [&](uint32_t e, double) {
      if (stats != nullptr) ++stats->candidates;
      if (corpus_->ContainsAll(e, keywords)) {
        if (stats != nullptr) ++stats->results;
        out.push_back(e);
        if (out.size() >= t) return false;
      }
      return true;
    });
    return out;
  }

  std::vector<ObjectId> QueryNearestLinf(const PointType& q, uint64_t t,
                                         std::span<const KeywordId> keywords,
                                         BaselineStats* stats = nullptr) const {
    return QueryNearest(q, t, keywords, LInfDistanceFns<D, Scalar>{}, stats);
  }

  std::vector<ObjectId> QueryNearestL2(const PointType& q, uint64_t t,
                                       std::span<const KeywordId> keywords,
                                       BaselineStats* stats = nullptr) const {
    return QueryNearest(q, t, keywords, L2SquaredDistanceFns<D, Scalar>{},
                        stats);
  }

  size_t MemoryBytes() const {
    return tree_.MemoryBytes() + VectorBytes(points_);
  }

 private:
  const Corpus* corpus_;
  std::vector<PointType> points_;
  KdTree<D, Scalar> tree_;
};

}  // namespace kwsc

#endif  // KWSC_BASELINE_STRUCTURED_ONLY_H_
