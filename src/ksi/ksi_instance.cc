// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "ksi/ksi_instance.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace kwsc {

KsiInstance KsiInstance::FromSets(
    const std::vector<std::vector<int64_t>>& sets) {
  KWSC_CHECK(sets.size() >= 2);
  // Element value -> the ids of the sets containing it. std::map keeps the
  // object numbering deterministic (sorted by value).
  std::map<int64_t, std::vector<KeywordId>> membership;
  for (KeywordId set_id = 0; set_id < sets.size(); ++set_id) {
    for (int64_t value : sets[set_id]) {
      std::vector<KeywordId>& ids = membership[value];
      if (ids.empty() || ids.back() != set_id) ids.push_back(set_id);
    }
  }

  KsiInstance instance;
  instance.num_sets = sets.size();
  instance.values.reserve(membership.size());
  std::vector<Document> docs;
  docs.reserve(membership.size());
  for (auto& [value, ids] : membership) {
    instance.values.push_back(value);
    docs.emplace_back(std::move(ids));
  }
  instance.corpus = Corpus(std::move(docs));
  return instance;
}

}  // namespace kwsc
