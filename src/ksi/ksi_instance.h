// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// k-Set Intersection instances (Section 1.2).
//
// A k-SI input is m sets S_1..S_m of integers; a reporting query picks k
// distinct set ids and returns their intersection. The paper shows k-SI and
// "pure" keyword search are the same problem: treat each set id as a keyword
// and give every element e the document { i : e ∈ S_i }. This type performs
// that translation once so every index in the library can run on k-SI data.

#ifndef KWSC_KSI_KSI_INSTANCE_H_
#define KWSC_KSI_KSI_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "text/document.h"

namespace kwsc {

struct KsiInstance {
  /// values[e] is the original integer of object e (elements are
  /// deduplicated across sets).
  std::vector<int64_t> values;

  /// doc(e) = sorted ids of the sets containing values[e]; the instance's
  /// input size N = corpus.total_weight() = sum of |S_i| (Section 1.2).
  Corpus corpus;

  size_t num_sets = 0;

  /// Builds the keyword-search view of `sets` (the inverted-index idea of
  /// Section 1.2). Duplicate values within one set are collapsed.
  static KsiInstance FromSets(const std::vector<std::vector<int64_t>>& sets);
};

}  // namespace kwsc

#endif  // KWSC_KSI_KSI_INSTANCE_H_
