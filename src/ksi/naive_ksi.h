// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The naive k-SI index (Section 2's baseline): an inverted index over the
// instance, with galloping list intersection. Query time is Theta(N) in the
// worst case — the bound every transformed index in this library is designed
// to beat when OUT is small.

#ifndef KWSC_KSI_NAIVE_KSI_H_
#define KWSC_KSI_NAIVE_KSI_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ksi/ksi_instance.h"
#include "text/inverted_index.h"

namespace kwsc {

class NaiveKsi {
 public:
  /// `instance` must outlive the index.
  explicit NaiveKsi(const KsiInstance* instance);

  /// Reporting query: the values in the intersection of the chosen sets,
  /// ascending.
  std::vector<int64_t> Report(std::span<const KeywordId> set_ids) const;

  /// Emptiness query with first-witness early exit.
  bool Empty(std::span<const KeywordId> set_ids) const;

  size_t MemoryBytes() const { return postings_.MemoryBytes(); }

 private:
  const KsiInstance* instance_;
  InvertedIndex postings_;
};

}  // namespace kwsc

#endif  // KWSC_KSI_NAIVE_KSI_H_
