// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "ksi/naive_ksi.h"

#include "common/macros.h"

namespace kwsc {

NaiveKsi::NaiveKsi(const KsiInstance* instance)
    : instance_(instance), postings_(instance->corpus) {
  KWSC_CHECK(instance != nullptr);
}

std::vector<int64_t> NaiveKsi::Report(std::span<const KeywordId> set_ids) const {
  std::vector<ObjectId> ids = postings_.Intersect(set_ids);
  std::vector<int64_t> values;
  values.reserve(ids.size());
  for (ObjectId e : ids) values.push_back(instance_->values[e]);
  return values;  // Object ids ascend with value, so values are sorted.
}

bool NaiveKsi::Empty(std::span<const KeywordId> set_ids) const {
  return postings_.IntersectionEmpty(set_ids);
}

}  // namespace kwsc
