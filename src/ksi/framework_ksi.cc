// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include "ksi/framework_ksi.h"

#include <cmath>

#include "common/macros.h"
#include "common/ops_budget.h"

namespace kwsc {

FrameworkKsi::FrameworkKsi(const KsiInstance* instance,
                           FrameworkOptions options)
    : instance_(instance) {
  KWSC_CHECK(instance != nullptr);
  points_.resize(instance->corpus.num_objects());
  for (uint32_t e = 0; e < points_.size(); ++e) {
    points_[e][0] = static_cast<double>(e);  // Arbitrary distinct embedding.
  }
  engine_ = std::make_unique<OrpKwIndex<1, double>>(
      std::span<const Point<1, double>>(points_), &instance->corpus, options);
}

int FrameworkKsi::k() const { return engine_->k(); }

std::vector<int64_t> FrameworkKsi::Report(std::span<const KeywordId> set_ids,
                                          QueryStats* stats) const {
  std::vector<int64_t> values;
  engine_->QueryEmit(Box<1, double>::Everything(), set_ids,
                     [&](ObjectId e) {
                       values.push_back(instance_->values[e]);
                       return true;
                     },
                     stats);
  return values;
}

bool FrameworkKsi::Empty(std::span<const KeywordId> set_ids,
                         QueryStats* stats) const {
  const double n = static_cast<double>(instance_->corpus.total_weight());
  const double exponent = 1.0 - 1.0 / static_cast<double>(k());
  OpsBudget budget(static_cast<uint64_t>(64.0 * (std::pow(n, exponent) + 1)));
  bool witness = false;
  engine_->QueryEmit(Box<1, double>::Everything(), set_ids,
                     [&witness](ObjectId) {
                       witness = true;
                       return false;  // One witness settles emptiness.
                     },
                     stats, &budget);
  // Budget exhaustion without a witness certifies non-emptiness (footnote 4:
  // the reporting query would have terminated within its OUT=0 bound).
  return !witness && !budget.Exhausted();
}

size_t FrameworkKsi::MemoryBytes() const {
  return engine_->MemoryBytes() + points_.capacity() * sizeof(Point<1, double>);
}

void FrameworkKsi::SaveFlat(std::ostream* out) const {
  engine_->SaveFlat(out, kFlatFamilyTag);
}

FrameworkKsi FrameworkKsi::LoadFlat(std::shared_ptr<const MmapFile> file,
                                    const KsiInstance* instance,
                                    uint64_t offset) {
  KWSC_CHECK(instance != nullptr);
  FrameworkKsi index(instance);
  index.engine_ = std::make_unique<OrpKwIndex<1, double>>(
      OrpKwIndex<1, double>::LoadFlat(std::move(file), &instance->corpus,
                                      offset, kFlatFamilyTag));
  return index;
}

bool FrameworkKsi::ValidateFlat(const MmapFile& file, uint64_t offset,
                                const FlatErrorSink& sink) {
  return OrpKwIndex<1, double>::ValidateFlat(file, offset, kFlatFamilyTag,
                                             sink);
}

}  // namespace kwsc
