// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The framework k-SI index: O(N) space, O(N^{1-1/k} (1 + OUT^{1/k})) query.
//
// k-SI is pure keyword search (Section 1.2), and pure keyword search is
// ORP-KW with the trivial query rectangle R^d (the reduction used in the
// paper's hardness discussion: "map each object to an arbitrary point").
// The index therefore wraps the 1-dimensional kd-tree transformation of
// Theorem 1, assigning object e the coordinate e. For k = 2 this specializes
// to the Cohen–Porat structure [23] the framework generalizes (Section 3.5):
// the large/small classification, hash tables, and bit arrays are theirs;
// the tree descent is the framework's.

#ifndef KWSC_KSI_FRAMEWORK_KSI_H_
#define KWSC_KSI_FRAMEWORK_KSI_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "common/flat_arena.h"
#include "core/framework.h"
#include "core/orp_kw.h"
#include "ksi/ksi_instance.h"

namespace kwsc {

class FrameworkKsi {
 public:
  /// `instance` must outlive the index. `k` is the (fixed) number of sets
  /// every query intersects.
  FrameworkKsi(const KsiInstance* instance, FrameworkOptions options);

  int k() const;

  /// Reporting query: values of the intersection of the chosen sets.
  std::vector<int64_t> Report(std::span<const KeywordId> set_ids,
                              QueryStats* stats = nullptr) const;

  /// Emptiness query in O(N^{1-1/k}) via the budget device of footnote 4:
  /// run a reporting query; if it neither finishes nor outputs within the
  /// budget, the intersection must be non-empty.
  bool Empty(std::span<const KeywordId> set_ids,
             QueryStats* stats = nullptr) const;

  size_t MemoryBytes() const;

  // ---- v2 flat layout: the embedding coordinates are the object ids, so
  // the wrapper persists nothing of its own — its container is the 1-d
  // ORP-KW engine's container under the k-SI family tag. ----

  static constexpr uint32_t kFlatFamilyTag = FlatFamilyTag('K', 'W', 'K', '2');

  void SaveFlat(std::ostream* out) const;

  /// `instance` must match the one the saved index was built over (the
  /// engine validates object count and total weight against its corpus).
  static FrameworkKsi LoadFlat(std::shared_ptr<const MmapFile> file,
                               const KsiInstance* instance,
                               uint64_t offset = 0);

  static bool ValidateFlat(const MmapFile& file, uint64_t offset,
                           const FlatErrorSink& sink);

 private:
  // Shell constructor used by LoadFlat.
  explicit FrameworkKsi(const KsiInstance* instance) : instance_(instance) {}

  const KsiInstance* instance_;
  std::unique_ptr<OrpKwIndex<1, double>> engine_;
  std::vector<Point<1, double>> points_;
};

}  // namespace kwsc

#endif  // KWSC_KSI_FRAMEWORK_KSI_H_
