// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment L — load path: v1 stream deserialization vs v2 mmap flat
// layout (DESIGN.md, "On-disk layout v2").
//
// For each corpus size the bench builds an OrpKwIndex<2>, persists it in
// both formats, and measures
//   * load wall time (median) for the stream Load and the mmap LoadFlat,
//   * the RSS delta of each load (sampled before AND after — the flat path
//     should charge almost nothing up front, faulting pages in on demand),
//   * file sizes (the space axis of the space<->latency curve),
//   * query latency on the pointer-built vs the flat-loaded index (the
//     latency axis), and
//   * full query-result equivalence across built / stream-loaded /
//     flat-loaded indexes, plus scalar-vs-AVX2 posting-list intersection
//     equivalence. Any mismatch hard-fails the bench.
//
// Emits BENCH_load.json (schema-checked by tools/check_bench_json.sh) with
// gauges flat.bytes_mapped, flat.load_micros, flat.used_mmap and
// load_speedup — the acceptance bar is mmap load >= 2x faster than stream
// deserialization at the default size.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flat_arena.h"
#include "common/memory.h"
#include "common/random.h"
#include "common/simd_intersect.h"
#include "common/timer.h"
#include "core/orp_kw.h"
#include "text/inverted_index.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr uint32_t kDefaultObjects = 65536;

struct LoadSample {
  double stream_ms = 0;
  double mmap_ms = 0;
  double stream_rss_bytes = 0;
  double mmap_rss_bytes = 0;
  double v1_bytes = 0;
  double flat_bytes = 0;
  double built_query_us = 0;
  double flat_query_us = 0;
};

/// One query batch; results compared across index incarnations.
std::vector<std::vector<ObjectId>> RunBatch(
    const OrpKwIndex<2>& index,
    const std::vector<std::pair<Box<2>, std::vector<KeywordId>>>& batch) {
  std::vector<std::vector<ObjectId>> results;
  results.reserve(batch.size());
  for (const auto& [box, kws] : batch) results.push_back(index.Query(box, kws));
  return results;
}

/// Scalar vs AVX2 posting-list intersection must agree exactly (the flat
/// query path runs whichever kernel kAuto resolves to).
void CheckIntersectKernels(const Corpus& corpus, Rng* rng) {
  InvertedIndex inv(corpus);
  for (int trial = 0; trial < 64; ++trial) {
    const auto kws =
        PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, rng);
    std::vector<std::span<const ObjectId>> lists;
    for (KeywordId w : kws) lists.push_back(inv.Postings(w));
    const auto scalar = IntersectSortedLists(lists, IntersectKernel::kScalar);
    const auto simd = IntersectSortedLists(lists, IntersectKernel::kAvx2);
    if (scalar != simd) {
      std::fprintf(stderr,
                   "FATAL: scalar/AVX2 intersection disagree "
                   "(%zu vs %zu results)\n",
                   scalar.size(), simd.size());
      std::exit(1);
    }
  }
}

LoadSample MeasureOne(uint32_t n_objects, bench::JsonReport* report,
                      bool is_default) {
  Rng rng(n_objects * 7 + 3);
  CorpusSpec spec;
  spec.num_objects = n_objects;
  spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n_objects, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  const OrpKwIndex<2> built(pts, &corpus, opt);

  const std::string v1_path =
      "/tmp/kwsc_bench_load_" + std::to_string(n_objects) + ".v1";
  const std::string flat_path =
      "/tmp/kwsc_bench_load_" + std::to_string(n_objects) + ".v2";
  {
    std::ofstream v1_out(v1_path, std::ios::binary);
    built.Save(&v1_out);
    std::ofstream flat_out(flat_path, std::ios::binary);
    built.SaveFlat(&flat_out);
  }

  LoadSample sample;

  // RSS of the first (cold for this process) load of each format.
  {
    const bench::RssDeltaProbe rss;
    std::ifstream in(v1_path, std::ios::binary);
    const OrpKwIndex<2> loaded = OrpKwIndex<2>::Load(&in, &corpus);
    sample.stream_rss_bytes = static_cast<double>(rss.DeltaBytes());
    sample.v1_bytes = static_cast<double>(loaded.MemoryBytes());
  }
  std::shared_ptr<const MmapFile> first_file;
  {
    const bench::RssDeltaProbe rss;
    first_file = MmapFile::Open(flat_path);
    const OrpKwIndex<2> loaded = OrpKwIndex<2>::LoadFlat(first_file, &corpus);
    sample.mmap_rss_bytes = static_cast<double>(rss.DeltaBytes());
    sample.flat_bytes = static_cast<double>(first_file->size());
  }

  sample.stream_ms =
      bench::MedianMicros([&] {
        std::ifstream in(v1_path, std::ios::binary);
        const OrpKwIndex<2> loaded = OrpKwIndex<2>::Load(&in, &corpus);
        (void)loaded;
      }) /
      1e3;
  sample.mmap_ms =
      bench::MedianMicros([&] {
        const auto file = MmapFile::Open(flat_path);
        const OrpKwIndex<2> loaded = OrpKwIndex<2>::LoadFlat(file, &corpus);
        (void)loaded;
      }) /
      1e3;

  // Equivalence: built, stream-loaded, and flat-loaded must answer every
  // query identically. A mismatch is a correctness bug, not a data point.
  std::vector<std::pair<Box<2>, std::vector<KeywordId>>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.emplace_back(
        GenerateBoxQuery(std::span<const Point<2>>(pts),
                         i % 2 == 0 ? 0.01 : 0.1, &rng),
        PickQueryKeywords(corpus, 2,
                          i % 2 == 0 ? KeywordPick::kFrequent
                                     : KeywordPick::kCooccurring,
                          &rng));
  }
  std::ifstream v1_in(v1_path, std::ios::binary);
  const OrpKwIndex<2> stream_loaded = OrpKwIndex<2>::Load(&v1_in, &corpus);
  const auto file = MmapFile::Open(flat_path);
  const OrpKwIndex<2> flat_loaded = OrpKwIndex<2>::LoadFlat(file, &corpus);
  const auto expect = RunBatch(built, batch);
  if (RunBatch(stream_loaded, batch) != expect) {
    std::fprintf(stderr, "FATAL: stream-loaded index answers differ (N=%u)\n",
                 n_objects);
    std::exit(1);
  }
  if (RunBatch(flat_loaded, batch) != expect) {
    std::fprintf(stderr, "FATAL: flat-loaded index answers differ (N=%u)\n",
                 n_objects);
    std::exit(1);
  }
  CheckIntersectKernels(corpus, &rng);

  // The latency axis of the space<->latency curve: the same batch on the
  // pointer-built and the mmap-backed index.
  sample.built_query_us = bench::MedianMicros([&] { RunBatch(built, batch); });
  sample.flat_query_us =
      bench::MedianMicros([&] { RunBatch(flat_loaded, batch); });

  if (is_default) {
    report->SetGauge("flat.bytes_mapped", sample.flat_bytes);
    report->SetGauge("flat.load_micros", sample.mmap_ms * 1e3);
    report->SetGauge("flat.used_mmap", file->used_mmap() ? 1.0 : 0.0);
    report->SetGauge("load_speedup", sample.stream_ms / sample.mmap_ms);
  }

  std::remove(v1_path.c_str());
  std::remove(flat_path.c_str());
  return sample;
}

}  // namespace
}  // namespace kwsc

int main(int argc, char** argv) {
  using namespace kwsc;
  bench::PrintHeader(
      "L load path: stream deserialization vs mmap flat layout",
      "the v2 flat container loads by mapping + pointer fixup only, so load "
      "time and up-front RSS drop while query answers stay identical");
  bench::JsonReport report("load");

  // Optional sweep cap for CI smoke runs: `bench_load [max_objects]`. The
  // largest size kept becomes the one the acceptance gauges are stamped at.
  uint32_t max_objects = kDefaultObjects;
  if (argc > 1) {
    max_objects = static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  std::vector<uint32_t> sweep;
  for (uint32_t n : {8192u, 16384u, 32768u, kDefaultObjects}) {
    if (n <= max_objects) sweep.push_back(n);
  }
  if (sweep.empty()) sweep.push_back(max_objects);
  const uint32_t default_n = sweep.back();

  std::printf("%10s %12s %12s %9s %14s %14s %12s %12s\n", "N", "stream(ms)",
              "mmap(ms)", "speedup", "streamRSS", "mmapRSS", "built q(us)",
              "flat q(us)");
  double default_speedup = 0;
  for (uint32_t n : sweep) {
    const bool is_default = n == default_n;
    const LoadSample s = MeasureOne(n, &report, is_default);
    const double speedup = s.stream_ms / s.mmap_ms;
    if (is_default) default_speedup = speedup;
    std::printf("%10u %12.2f %12.2f %8.1fx %14s %14s %12.1f %12.1f\n", n,
                s.stream_ms, s.mmap_ms, speedup,
                FormatBytes(static_cast<size_t>(s.stream_rss_bytes)).c_str(),
                FormatBytes(static_cast<size_t>(s.mmap_rss_bytes)).c_str(),
                s.built_query_us, s.flat_query_us);
    bench::PrintCsv("L",
                    {{"N", static_cast<double>(n)},
                     {"stream_load_ms", s.stream_ms},
                     {"mmap_load_ms", s.mmap_ms},
                     {"speedup", speedup},
                     {"stream_rss_bytes", s.stream_rss_bytes},
                     {"mmap_rss_bytes", s.mmap_rss_bytes},
                     {"flat_file_bytes", s.flat_bytes},
                     {"built_query_us", s.built_query_us},
                     {"flat_query_us", s.flat_query_us}},
                    &report);
  }
  std::printf("\nquery equivalence: built == stream-loaded == flat-loaded, "
              "scalar == AVX2 (hard-checked)\n");
  std::printf("load speedup at N=%u: %.1fx (acceptance: >= 2x)\n", default_n,
              default_speedup);
  bench::EmitJson(&report);
  return 0;
}
