// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment T1.5 — Table 1 row "L∞-nearest neighbor with keywords"
// (Corollary 4): time ~ N^{1-1/k} * t^{1/k} * log N. The t-sweep checks the
// t^{1/k} factor; the N-sweep checks sublinearity; baselines are the
// best-first kd-tree filter and the keywords-only sort.

#include <cstdio>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/nn_linf.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 16;

void SweepT() {
  std::printf("\n-- t sweep at N~2^18, k=2 --\n");
  std::printf("%8s %14s %14s %14s\n", "t", "index(us)", "struct(us)",
              "kwonly(us)");
  const uint32_t n_objects = 32768;
  Rng rng(4242);
  CorpusSpec spec;
  spec.num_objects = n_objects;
  spec.vocab_size = 2048;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n_objects, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> index(pts, &corpus, opt);
  StructuredOnlyBaseline<2> structured(pts, &corpus);
  KeywordsOnlyBaseline<2> keywords(pts, &corpus);

  std::vector<Point<2>> queries;
  std::vector<std::vector<KeywordId>> kws;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back({{rng.NextDouble(), rng.NextDouble()}});
    kws.push_back(PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                    /*frequent_pool=*/8));
  }

  std::vector<double> ts;
  std::vector<double> times;
  for (uint64_t t : {1u, 4u, 16u, 64u, 256u}) {
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(queries[i], t, kws[i]);
    }, /*reps=*/3) / kQueries;
    const double t_struct = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        structured.QueryNearestLinf(queries[i], t, kws[i]);
      }
    }, /*reps=*/3) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        keywords.QueryNearestLinf(queries[i], t, kws[i]);
      }
    }, /*reps=*/3) / kQueries;
    std::printf("%8llu %14.2f %14.2f %14.2f\n",
                static_cast<unsigned long long>(t), t_index, t_struct, t_kw);
    bench::PrintCsv("T1.5", {{"t", double(t)},
                             {"N", double(corpus.total_weight())},
                             {"index_us", t_index},
                             {"structured_us", t_struct},
                             {"keywords_us", t_kw}});
    ts.push_back(static_cast<double>(t));
    times.push_back(t_index);
  }
  bench::PrintExponent("T1.5 time vs t (k=2)",
                       bench::FitLogLogSlope(ts, times), 1.0 / 2);
}

void SweepN() {
  std::printf("\n-- N sweep at t=8, k=2 --\n");
  std::printf("%10s %14s %14s\n", "N", "index(us)", "kwonly(us)");
  std::vector<double> ns;
  std::vector<double> times;
  for (uint32_t n_objects : {8192u, 16384u, 32768u, 65536u}) {
    Rng rng(n_objects + 5);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts =
        GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);
    FrameworkOptions opt;
    opt.k = 2;
    LinfNnIndex<2> index(pts, &corpus, opt);
    KeywordsOnlyBaseline<2> keywords(pts, &corpus);
    std::vector<Point<2>> queries;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      queries.push_back({{rng.NextDouble(), rng.NextDouble()}});
      kws.push_back(PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                      /*frequent_pool=*/8));
    }
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(queries[i], 8, kws[i]);
    }, /*reps=*/3) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        keywords.QueryNearestLinf(queries[i], 8, kws[i]);
      }
    }, /*reps=*/3) / kQueries;
    const double n_weight = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %14.2f %14.2f\n", n_weight, t_index, t_kw);
    bench::PrintCsv("T1.5", {{"t", 8},
                             {"N", n_weight},
                             {"index_us", t_index},
                             {"keywords_us", t_kw}});
    ns.push_back(n_weight);
    times.push_back(t_index);
  }
  // The keywords-only baseline is Theta(N); the index should scale clearly
  // slower than linearly.
  bench::PrintExponent("T1.5 time vs N (t=8, k=2)",
                       bench::FitLogLogSlope(ns, times), 0.5);
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.5 L∞NN-KW (Corollary 4)",
      "time ~ N^{1-1/k} * t^{1/k} * log N via O(log N) budgeted threshold "
      "queries over candidate radii");
  kwsc::SweepT();
  kwsc::SweepN();
  return 0;
}
