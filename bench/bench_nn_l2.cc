// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment T1.8 — Table 1 row "L2-nearest neighbor with keywords"
// (Corollary 7): integer grids, O(log N) binary-search steps over the
// squared radius, each a budgeted SRP-KW threshold test.

#include <cstdio>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/nn_l2.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 12;
constexpr int64_t kMaxCoord = 1 << 20;  // O(log N)-bit coordinates.

void SweepT() {
  std::printf("\n-- t sweep at N~2^17, k=2 --\n");
  std::printf("%8s %14s %14s %14s\n", "t", "index(us)", "struct(us)",
              "kwonly(us)");
  const uint32_t n_objects = 16384;
  Rng rng(777);
  CorpusSpec spec;
  spec.num_objects = n_objects;
  spec.vocab_size = 1024;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GenerateIntPoints<2>(n_objects, PointDistribution::kClustered,
                                  &rng, kMaxCoord);
  FrameworkOptions opt;
  opt.k = 2;
  L2NnIndex<2> index(pts, &corpus, opt);
  StructuredOnlyBaseline<2, int64_t> structured(pts, &corpus);
  KeywordsOnlyBaseline<2, int64_t> keywords(pts, &corpus);

  std::vector<IntPoint<2>> queries;
  std::vector<std::vector<KeywordId>> kws;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back(
        {{rng.UniformInt(0, kMaxCoord), rng.UniformInt(0, kMaxCoord)}});
    kws.push_back(PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                    /*frequent_pool=*/8));
  }

  std::vector<double> ts;
  std::vector<double> times;
  for (uint64_t t : {1u, 4u, 16u, 64u}) {
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(queries[i], t, kws[i]);
    }, /*reps=*/3) / kQueries;
    const double t_struct = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        structured.QueryNearestL2(queries[i], t, kws[i]);
      }
    }, /*reps=*/3) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        keywords.QueryNearestL2(queries[i], t, kws[i]);
      }
    }, /*reps=*/3) / kQueries;
    std::printf("%8llu %14.2f %14.2f %14.2f\n",
                static_cast<unsigned long long>(t), t_index, t_struct, t_kw);
    bench::PrintCsv("T1.8", {{"t", double(t)},
                             {"N", double(corpus.total_weight())},
                             {"index_us", t_index},
                             {"structured_us", t_struct},
                             {"keywords_us", t_kw}});
    ts.push_back(static_cast<double>(t));
    times.push_back(t_index);
  }
  bench::PrintExponent("T1.8 time vs t (k=2)",
                       bench::FitLogLogSlope(ts, times), 1.0 / 2);
}

void SweepN() {
  std::printf("\n-- N sweep at t=4, k=2 --\n");
  std::printf("%10s %14s %14s\n", "N", "index(us)", "kwonly(us)");
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u}) {
    Rng rng(n_objects + 9);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts = GenerateIntPoints<2>(n_objects, PointDistribution::kUniform,
                                    &rng, kMaxCoord);
    FrameworkOptions opt;
    opt.k = 2;
    L2NnIndex<2> index(pts, &corpus, opt);
    KeywordsOnlyBaseline<2, int64_t> keywords(pts, &corpus);
    std::vector<IntPoint<2>> queries;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      queries.push_back(
          {{rng.UniformInt(0, kMaxCoord), rng.UniformInt(0, kMaxCoord)}});
      kws.push_back(PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                      /*frequent_pool=*/8));
    }
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(queries[i], 4, kws[i]);
    }, /*reps=*/3) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        keywords.QueryNearestL2(queries[i], 4, kws[i]);
      }
    }, /*reps=*/3) / kQueries;
    std::printf("%10llu %14.2f %14.2f\n",
                static_cast<unsigned long long>(corpus.total_weight()),
                t_index, t_kw);
    bench::PrintCsv("T1.8", {{"t", 4},
                             {"N", double(corpus.total_weight())},
                             {"index_us", t_index},
                             {"keywords_us", t_kw}});
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.8 L2NN-KW (Corollary 7)",
      "d=2 > k-1=1 regime: time ~ log N * (N^{1-1/(d+1)} + N^{1-1/k} "
      "t^{1/k}) on O(log N)-bit integer grids");
  kwsc::SweepT();
  kwsc::SweepN();
  return 0;
}
