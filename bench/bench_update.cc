// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment U — the update path (core/dynamic_index.h, DESIGN.md §7).
// Three machine-trackable claims:
//   * throughput: sustained mixed insert/delete/query traffic through the
//     batch-dynamic layer beats the rebuild-from-scratch baseline (rebuild
//     the static index after every update batch) on the same stream — the
//     O(log N) amortized-carry advantage of the logarithmic method.
//   * concurrency: with carries on a background merge pool, queries keep
//     running against epoch snapshots while levels rebuild; the p99 query
//     latency during merges stays within a bounded ratio of the quiescent
//     p99 (latency histograms for both regimes ship in the JSON report).
//   * exactness: dynamic answers are identical to the freshly rebuilt
//     static index over the live set at every batch — the bench hard-fails
//     on divergence, mirroring bench_shard's determinism gate.
//
// Usage: bench_update [num_objects] [batch_size] [queries_per_batch]
// (defaults 32768 / 1024 / 4; CI runs a tiny size as a schema smoke test).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dynamic_orp_kw.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

struct UpdateStream {
  std::vector<Point<2>> points;            // Arrival order, global id = index.
  std::vector<Document> docs;              // Parallel to points.
  std::vector<std::vector<ObjectId>> deletes;  // Per batch, after its inserts.
  std::vector<std::vector<BatchQuery<Box<2>>>> queries;  // Per batch.
};

/// Pre-generates the whole mixed stream so the dynamic path and the rebuild
/// baseline replay byte-identical traffic: per batch, `batch` inserts, then
/// ~batch/8 deletes of random still-live ids, then `queries_per_batch`
/// cooccurring-keyword box queries.
UpdateStream MakeStream(uint32_t num_objects, uint32_t batch,
                        int queries_per_batch, Rng* rng) {
  UpdateStream stream;
  CorpusSpec spec;
  spec.num_objects = num_objects;
  spec.vocab_size = 128;
  spec.zipf_skew = 1.0;
  const Corpus corpus = GenerateCorpus(spec, rng);
  stream.points =
      GeneratePoints<2>(num_objects, PointDistribution::kUniform, rng);
  stream.docs.reserve(num_objects);
  for (ObjectId e = 0; e < num_objects; ++e) {
    stream.docs.push_back(corpus.doc(e));
  }
  std::vector<ObjectId> live;
  const uint32_t num_batches = (num_objects + batch - 1) / batch;
  for (uint32_t b = 0; b < num_batches; ++b) {
    const uint32_t begin = b * batch;
    const uint32_t end = std::min(num_objects, begin + batch);
    for (ObjectId e = begin; e < end; ++e) live.push_back(e);
    std::vector<ObjectId> doomed;
    for (uint32_t i = 0; i < (end - begin) / 8 && !live.empty(); ++i) {
      const size_t pick = rng->NextBounded(live.size());
      doomed.push_back(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    std::sort(doomed.begin(), doomed.end());
    stream.deletes.push_back(std::move(doomed));
    std::vector<BatchQuery<Box<2>>> qs;
    for (int q = 0; q < queries_per_batch; ++q) {
      qs.push_back({GenerateBoxQuery(std::span<const Point<2>>(stream.points),
                                     rng->UniformDouble(0.1, 0.5), rng),
                    PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring,
                                      rng)});
    }
    stream.queries.push_back(std::move(qs));
  }
  return stream;
}

std::vector<ObjectId> SortedRow(std::vector<ObjectId> row) {
  std::sort(row.begin(), row.end());
  return row;
}

void Run(uint32_t num_objects, uint32_t batch, int queries_per_batch) {
  bench::JsonReport report("update");
  obs::MetricsRegistry registry;
  Rng rng(num_objects * 7 + 13);
  const UpdateStream stream =
      MakeStream(num_objects, batch, queries_per_batch, &rng);
  const size_t num_batches = stream.deletes.size();
  FrameworkOptions opt;
  opt.k = 2;

  uint64_t total_inserts = 0;
  uint64_t total_deletes = 0;
  uint64_t total_queries = 0;

  // ---- Dynamic path: one index absorbs the whole stream. Synchronous
  // carries (no pool) so every carry's cost lands inside the measured wall.
  std::vector<std::vector<ObjectId>> dynamic_rows;
  WallTimer dynamic_timer;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/256);
  for (size_t b = 0; b < num_batches; ++b) {
    const uint32_t begin = static_cast<uint32_t>(b * batch);
    const uint32_t end =
        std::min(num_objects, static_cast<uint32_t>(begin + batch));
    dynamic.InsertBatch(
        std::span<const Point<2>>(stream.points).subspan(begin, end - begin),
        {stream.docs.begin() + begin, stream.docs.begin() + end});
    dynamic.DeleteBatch(stream.deletes[b]);
    total_inserts += end - begin;
    total_deletes += stream.deletes[b].size();
    for (const auto& q : stream.queries[b]) {
      dynamic_rows.push_back(SortedRow(dynamic.Query(q.region, q.keywords)));
      ++total_queries;
    }
  }
  const double dynamic_us = dynamic_timer.ElapsedMicros();

  // ---- Rebuild baseline: after every batch, build a fresh static index
  // over the live set and answer the same queries (ids translated back to
  // global so the rows are comparable). This is what "just rebuild" costs.
  std::vector<bool> live(num_objects, false);
  size_t checked = 0;
  bool identical = true;
  WallTimer rebuild_timer;
  for (size_t b = 0; b < num_batches; ++b) {
    const uint32_t begin = static_cast<uint32_t>(b * batch);
    const uint32_t end =
        std::min(num_objects, static_cast<uint32_t>(begin + batch));
    for (ObjectId e = begin; e < end; ++e) live[e] = true;
    for (ObjectId e : stream.deletes[b]) live[e] = false;
    std::vector<Point<2>> live_points;
    std::vector<Document> live_docs;
    std::vector<ObjectId> live_ids;
    for (ObjectId e = 0; e < num_objects; ++e) {
      if (!live[e]) continue;
      live_points.push_back(stream.points[e]);
      live_docs.push_back(stream.docs[e]);
      live_ids.push_back(e);
    }
    const Corpus corpus(std::move(live_docs));
    const OrpKwIndex<2> fresh(live_points, &corpus, opt);
    for (const auto& q : stream.queries[b]) {
      std::vector<ObjectId> row = fresh.Query(q.region, q.keywords);
      for (ObjectId& id : row) id = live_ids[id];
      identical = identical && SortedRow(std::move(row)) ==
                                   dynamic_rows[checked];
      ++checked;
    }
  }
  const double rebuild_us = rebuild_timer.ElapsedMicros();

  const double total_ops =
      static_cast<double>(total_inserts + total_deletes + total_queries);
  const double dynamic_ops_per_s = total_ops / (dynamic_us / 1e6);
  const double rebuild_ops_per_s = total_ops / (rebuild_us / 1e6);
  const double speedup = rebuild_us / dynamic_us;

  std::printf("\n-- mixed stream: %llu inserts, %llu deletes, %llu queries "
              "in %zu batches --\n",
              static_cast<unsigned long long>(total_inserts),
              static_cast<unsigned long long>(total_deletes),
              static_cast<unsigned long long>(total_queries), num_batches);
  std::printf("%12s %14s %14s %10s %10s\n", "path", "wall(us)", "ops/s",
              "speedup", "identical");
  std::printf("%12s %14.0f %14.0f %10s %10s\n", "dynamic", dynamic_us,
              dynamic_ops_per_s, "-", identical ? "yes" : "NO");
  std::printf("%12s %14.0f %14.0f %10.2f %10s\n", "rebuild", rebuild_us,
              rebuild_ops_per_s, speedup, "-");
  bench::PrintCsv("U-throughput",
                  {{"N", double(num_objects)},
                   {"batch", double(batch)},
                   {"inserts", double(total_inserts)},
                   {"deletes", double(total_deletes)},
                   {"queries", double(total_queries)},
                   {"dynamic_us", dynamic_us},
                   {"rebuild_us", rebuild_us},
                   {"dynamic_ops_per_s", dynamic_ops_per_s},
                   {"rebuild_ops_per_s", rebuild_ops_per_s},
                   {"speedup_vs_rebuild", speedup},
                   {"identical", identical ? 1.0 : 0.0}},
                  &report);
  if (!identical) {
    std::fprintf(stderr, "FATAL: dynamic rows diverged from the "
                         "rebuild-from-scratch baseline\n");
    std::exit(1);
  }
  if (speedup <= 1.0) {
    std::fprintf(stderr,
                 "FATAL: dynamic path (%.0f us) did not beat the rebuild "
                 "baseline (%.0f us)\n",
                 dynamic_us, rebuild_us);
    std::exit(1);
  }
  registry.AddCounter("update.inserts", total_inserts);
  registry.AddCounter("update.deletes", total_deletes);
  registry.AddCounter("update.queries", total_queries);

  // ---- Background merges: quiescent vs during-merge query latency. The
  // same index state, carries kicked onto a pool; queries run against epoch
  // snapshots the whole time, and the bench records a latency histogram for
  // each regime.
  ThreadPool pool(2);
  DynamicOrpKwIndex<2> concurrent(opt, /*buffer_capacity=*/batch, &pool);
  concurrent.InsertBatch(stream.points, stream.docs);
  concurrent.WaitQuiescent();

  // One query pool, reused round-robin in both regimes.
  std::vector<BatchQuery<Box<2>>> probes;
  for (const auto& qs : stream.queries) {
    probes.insert(probes.end(), qs.begin(), qs.end());
  }
  obs::Histogram quiescent;
  constexpr size_t kSamples = 400;
  for (size_t i = 0; i < kSamples; ++i) {
    const auto& q = probes[i % probes.size()];
    WallTimer timer;
    const auto row = concurrent.Query(q.region, q.keywords);
    quiescent.RecordMicros(timer.ElapsedMicros());
    if (row.size() > stream.points.size()) std::abort();  // Keep `row` live.
  }

  obs::Histogram during_merge;
  size_t merge_samples = 0;
  size_t kicks = 0;
  Rng merge_rng(num_objects * 11 + 7);
  while (merge_samples < kSamples && kicks < 64) {
    // Kick a carry chain: a full buffer of fresh objects.
    std::vector<Point<2>> extra_points;
    std::vector<Document> extra_docs;
    for (uint32_t i = 0; i < batch; ++i) {
      extra_points.push_back(
          {{merge_rng.NextDouble(), merge_rng.NextDouble()}});
      extra_docs.push_back(
          stream.docs[merge_rng.NextBounded(stream.docs.size())]);
    }
    concurrent.InsertBatch(extra_points, std::move(extra_docs));
    ++kicks;
    while (concurrent.MergeInFlight() && merge_samples < kSamples) {
      const auto& q = probes[merge_samples % probes.size()];
      WallTimer timer;
      const auto row = concurrent.Query(q.region, q.keywords);
      const double us = timer.ElapsedMicros();
      // Only count the sample if the merge was still running when the
      // query finished — otherwise part of it ran quiescent.
      if (concurrent.MergeInFlight()) {
        during_merge.RecordMicros(us);
        ++merge_samples;
      }
      if (row.size() > stream.points.size() + batch * kicks) std::abort();
    }
    concurrent.WaitQuiescent();
  }
  if (merge_samples == 0) {
    std::fprintf(stderr,
                 "FATAL: no query completed while a merge was in flight — "
                 "queries are not proceeding during background carries\n");
    std::exit(1);
  }
  const double p99_quiescent_us = quiescent.P99() / 1e3;
  const double p99_merge_us = during_merge.P99() / 1e3;
  const double p99_ratio =
      p99_merge_us / std::max(p99_quiescent_us, 1e-3);
  std::printf("\n-- query latency, quiescent vs during background merge "
              "(%zu + %zu samples, %zu carry kicks) --\n",
              kSamples, merge_samples, kicks);
  std::printf("%12s %12s %12s %12s\n", "regime", "p50(us)", "p99(us)",
              "ratio");
  std::printf("%12s %12.1f %12.1f %12s\n", "quiescent", quiescent.P50() / 1e3,
              p99_quiescent_us, "-");
  std::printf("%12s %12.1f %12.1f %12.2f\n", "during-merge",
              during_merge.P50() / 1e3, p99_merge_us, p99_ratio);
  bench::PrintCsv("U-merge-latency",
                  {{"N", double(num_objects)},
                   {"merge_samples", double(merge_samples)},
                   {"p99_quiescent_us", p99_quiescent_us},
                   {"p99_merge_us", p99_merge_us},
                   {"p99_ratio", p99_ratio}},
                  &report);
  report.AddHistogram("update.query.quiescent", quiescent);
  report.AddHistogram("update.query.during_merge", during_merge);
  report.SetGauge("speedup_vs_rebuild", speedup);
  report.SetGauge("p99_merge_ratio", p99_ratio);
  report.MergeRegistry(registry);
  bench::EmitJson(&report);
}

}  // namespace
}  // namespace kwsc

int main(int argc, char** argv) {
  uint32_t num_objects = 32768;
  uint32_t batch = 1024;
  int queries_per_batch = 4;
  if (argc > 1) num_objects = static_cast<uint32_t>(std::atoi(argv[1]));
  if (argc > 2) batch = static_cast<uint32_t>(std::atoi(argv[2]));
  if (argc > 3) queries_per_batch = std::atoi(argv[3]);
  if (num_objects < 512 || batch < 16 || batch > num_objects ||
      queries_per_batch < 1) {
    std::fprintf(stderr,
                 "usage: bench_update [num_objects >= 512] "
                 "[16 <= batch <= num_objects] [queries_per_batch >= 1]\n");
    return 2;
  }
  kwsc::bench::PrintHeader(
      "U update path: batch-dynamic vs rebuild-from-scratch",
      "mixed insert/delete/query throughput beats rebuilding the static "
      "index per batch; queries keep running during background merges with "
      "bounded p99 inflation; dynamic answers identical to a fresh build");
  kwsc::Run(num_objects, batch, queries_per_batch);
  return 0;
}
