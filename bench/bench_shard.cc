// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment S — shared-nothing shard scaling (src/serve/, DESIGN.md §6).
// Three machine-trackable claims:
//   * scaling: batch throughput grows near-linearly with the shard count S.
//     Replicas are process-simulated on one host, so the scaling number is
//     the shared-nothing model wall — max over per-shard execution walls
//     (each shard would run on its own machine) plus the coordinator's
//     merge — measured with a strictly sequential fan-out so shard walls
//     are not inflated by host-core contention. The co-scheduled wall on
//     this host is also reported; on a machine with >= S cores the two
//     converge, on a single-core container only the model wall can scale.
//   * bytes: for top-t queries the threshold-selection merge ships strictly
//     fewer bytes than the naive full-candidate gather (serve/merge.h wire
//     cost model, also accumulated as serve.* counters in the registry).
//   * determinism: canonical coordinator rows are byte-identical to the
//     sorted unsharded engine rows — the bench hard-fails on divergence.
//
// Usage: bench_shard [num_objects] [num_queries] [top_t]
// (defaults 32768 / 256 / 8; CI runs a tiny size as a schema smoke test).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "serve/coordinator.h"
#include "serve/merge.h"
#include "serve/shard_router.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr uint32_t kShardSweep[] = {1, 2, 4, 8};

using Batch = std::vector<BatchQuery<Box<2>>>;
using ServeCoordinator = Coordinator<OrpKwIndex<2>>;

/// Canonical form of the unsharded engine's answer: ascending ids.
std::vector<std::vector<ObjectId>> UnshardedReference(
    const OrpKwIndex<2>& index, const Batch& batch) {
  QueryEngine<OrpKwIndex<2>> engine(&index, 1);
  auto result = engine.Run(batch);
  for (auto& row : result.rows) std::sort(row.begin(), row.end());
  return result.rows;
}

/// Median over reps of the shared-nothing model wall: the slowest shard's
/// local execution wall plus the coordinator merge. Shards run sequentially
/// inside Run (parallel_fanout off), so each shard wall is clean even when
/// the host has fewer cores than shards.
double MedianModelWallMicros(ServeCoordinator* coordinator,
                             const Batch& batch, int reps = 5) {
  coordinator->Run(batch);  // Warm-up.
  std::vector<double> walls;
  walls.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    const auto result = coordinator->Run(batch);
    double max_shard = 0.0;
    for (double w : result.shard_wall_micros) max_shard = std::max(max_shard, w);
    walls.push_back(max_shard + result.merge_micros);
  }
  return obs::Median(std::move(walls));
}

void Run(uint32_t num_objects, int num_queries, uint64_t top_t) {
  bench::JsonReport report("shard");
  obs::MetricsRegistry registry;
  Rng rng(num_objects * 5 + 11);
  CorpusSpec spec;
  spec.num_objects = num_objects;
  spec.vocab_size = 128;
  spec.zipf_skew = 1.0;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(num_objects, PointDistribution::kUniform, &rng);
  std::vector<double> axis_keys;
  axis_keys.reserve(num_objects);
  for (const auto& p : pts) axis_keys.push_back(p[0]);
  const double n_weight = static_cast<double>(corpus.total_weight());

  // Broad boxes over the two hottest keywords: candidate sets of hundreds
  // of ids per query — work that scales with the slice each shard owns (the
  // regime shard scale-out exists for) and enough candidate volume for the
  // selection-vs-naive bytes comparison to be meaningful.
  Batch batch;
  for (int i = 0; i < num_queries; ++i) {
    batch.push_back({GenerateBoxQuery(std::span<const Point<2>>(pts),
                                      rng.UniformDouble(0.3, 0.8), &rng),
                     PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                       /*frequent_pool=*/4)});
  }

  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> unsharded(pts, &corpus, opt);
  const auto reference = UnshardedReference(unsharded, batch);

  std::printf("\n-- shard scaling, N=%.0f, %d queries, top_t=%llu --\n",
              n_weight, num_queries,
              static_cast<unsigned long long>(top_t));
  std::printf("%4s %14s %12s %10s %12s %14s %14s %10s\n", "S", "model(us)",
              "QPS(model)", "speedup", "host(us)", "naive(B)", "select(B)",
              "identical");

  std::vector<double> shard_counts;
  std::vector<double> model_qps;
  double base_model_us = 0.0;
  double speedup_s4 = 0.0;
  for (uint32_t num_shards : kShardSweep) {
    ShardRouter router(ShardStrategy::kSpacePartitioned, num_shards);
    const ShardPlan plan = router.Plan(corpus, axis_keys);

    // Full-report coordinator, sequential fan-out: determinism + scaling.
    ServeOptions full;
    full.parallel_fanout = false;
    ServeCoordinator coordinator(plan, pts, corpus, opt, full);
    const auto probe = coordinator.Run(batch);
    bool identical = probe.rows.size() == reference.size();
    for (size_t i = 0; identical && i < reference.size(); ++i) {
      identical = probe.rows[i] == reference[i];
    }
    const double model_us = MedianModelWallMicros(&coordinator, batch);
    if (num_shards == 1) base_model_us = model_us;
    const double qps = model_us > 0 ? num_queries / (model_us / 1e6) : 0.0;
    const double speedup = model_us > 0 ? base_model_us / model_us : 0.0;
    if (num_shards == 4) speedup_s4 = speedup;

    // Co-scheduled wall on this host (pool fan-out), for reference.
    ServeOptions parallel = full;
    parallel.parallel_fanout = true;
    ServeCoordinator host_coordinator(plan, pts, corpus, opt, parallel);
    const double host_us =
        bench::MedianMicros([&] { host_coordinator.Run(batch); });

    // Top-t merge: selection protocol vs naive gather, bytes accounted by
    // the serve/merge.h wire model and the serve.* registry counters.
    ServeOptions select_opt = full;
    select_opt.top_t = top_t;
    select_opt.selection_merge = true;
    ServeCoordinator selective(plan, pts, corpus, opt, select_opt, &registry);
    const auto selected = selective.Run(batch);
    ServeOptions naive_opt = select_opt;
    naive_opt.selection_merge = false;
    ServeCoordinator gather(plan, pts, corpus, opt, naive_opt);
    const auto gathered = gather.Run(batch);
    bool top_identical = true;
    for (size_t i = 0; i < batch.size(); ++i) {
      std::vector<ObjectId> expected = reference[i];
      if (expected.size() > top_t) expected.resize(top_t);
      top_identical = top_identical && selected.rows[i] == expected &&
                      gathered.rows[i] == expected;
    }
    const double naive_bytes = static_cast<double>(selected.bytes.naive);
    const double selection_bytes =
        static_cast<double>(selected.bytes.selection);

    std::printf("%4u %14.0f %12.0f %10.2f %12.0f %14.0f %14.0f %10s\n",
                num_shards, model_us, qps, speedup, host_us, naive_bytes,
                selection_bytes, identical && top_identical ? "yes" : "NO");
    bench::PrintCsv("S-scaling",
                    {{"N", n_weight},
                     {"S", double(num_shards)},
                     {"model_us", model_us},
                     {"qps_model", qps},
                     {"speedup_model", speedup},
                     {"host_us", host_us},
                     {"top_t", double(top_t)},
                     {"bytes_naive", naive_bytes},
                     {"bytes_selection", selection_bytes},
                     {"identical", identical && top_identical ? 1.0 : 0.0}},
                    &report);
    if (!identical || !top_identical) {
      std::fprintf(stderr,
                   "FATAL: S=%u sharded rows diverged from the unsharded "
                   "engine (full=%d top%llu=%d)\n",
                   num_shards, int(identical),
                   static_cast<unsigned long long>(top_t),
                   int(top_identical));
      std::exit(1);
    }
    shard_counts.push_back(double(num_shards));
    model_qps.push_back(qps);
  }
  bench::PrintExponent("qps_model vs S",
                       bench::FitLogLogSlope(shard_counts, model_qps), 1.0,
                       &report);
  report.SetGauge("speedup_s4", speedup_s4);

  // Strategy comparison at S=4: the keyword partition trades the space
  // partition's weight balance for hot-keyword locality; the skew shows up
  // in the per-shard candidate counters (CAS-style robustness measurement).
  {
    std::printf("\n-- partition strategies at S=4 --\n");
    std::printf("%10s %14s %14s %12s\n", "strategy", "max/avg weight",
                "max/avg cand", "identical");
    for (ShardStrategy strategy : {ShardStrategy::kSpacePartitioned,
                                   ShardStrategy::kKeywordPartitioned}) {
      const bool space = strategy == ShardStrategy::kSpacePartitioned;
      ShardRouter router(strategy, 4);
      const ShardPlan plan = router.Plan(corpus, axis_keys);
      ServeOptions full;
      full.parallel_fanout = false;
      obs::MetricsRegistry strategy_registry;
      ServeCoordinator coordinator(plan, pts, corpus, opt, full,
                                   &strategy_registry);
      const auto result = coordinator.Run(batch);
      bool identical = true;
      for (size_t i = 0; i < batch.size(); ++i) {
        identical = identical && result.rows[i] == reference[i];
      }
      uint64_t max_weight = 0;
      for (uint64_t w : plan.shard_weight) max_weight = std::max(max_weight, w);
      const double weight_skew =
          4.0 * double(max_weight) / double(corpus.total_weight());
      uint64_t max_cand = 0;
      uint64_t total_cand = 0;
      for (uint32_t s = 0; s < 4; ++s) {
        const uint64_t c = strategy_registry.CounterValue(
            "serve.shard" + std::to_string(s) + ".candidates");
        max_cand = std::max(max_cand, c);
        total_cand += c;
      }
      const double cand_skew =
          total_cand > 0 ? 4.0 * double(max_cand) / double(total_cand) : 0.0;
      std::printf("%10s %14.2f %14.2f %12s\n", space ? "space" : "keyword",
                  weight_skew, cand_skew, identical ? "yes" : "NO");
      bench::PrintCsv("S-strategy",
                      {{"S", 4.0},
                       {"space", space ? 1.0 : 0.0},
                       {"weight_skew", weight_skew},
                       {"candidate_skew", cand_skew},
                       {"identical", identical ? 1.0 : 0.0}},
                      &report);
      if (!identical) {
        std::fprintf(stderr, "FATAL: %s strategy diverged from unsharded\n",
                     space ? "space" : "keyword");
        std::exit(1);
      }
    }
  }

  // Budgeted scatter-gather at S=4: a per-shard, per-query ops cap bounds
  // tail work at the price of exactness (footnote-4 semantics, surfaced via
  // serve.budget_exhausted).
  {
    ShardRouter router(ShardStrategy::kSpacePartitioned, 4);
    const ShardPlan plan = router.Plan(corpus, axis_keys);
    ServeOptions budgeted;
    budgeted.parallel_fanout = false;
    budgeted.per_shard_query_ops = std::max<uint64_t>(64, num_objects / 64);
    obs::MetricsRegistry budget_registry;
    ServeCoordinator coordinator(plan, pts, corpus, opt, budgeted,
                                 &budget_registry);
    const auto result = coordinator.Run(batch);
    const double budget_us = MedianModelWallMicros(&coordinator, batch);
    std::printf("\n-- budgeted fan-out at S=4, %llu ops/shard/query: "
                "%llu exhaustions, model %.0f us --\n",
                static_cast<unsigned long long>(budgeted.per_shard_query_ops),
                static_cast<unsigned long long>(result.budget_exhaustions),
                budget_us);
    bench::PrintCsv(
        "S-budget",
        {{"S", 4.0},
         {"ops_budget", double(budgeted.per_shard_query_ops)},
         {"budget_exhausted", double(result.budget_exhaustions)},
         {"model_us", budget_us}},
        &report);
  }

  report.MergeRegistry(registry);
  bench::EmitJson(&report);
}

}  // namespace
}  // namespace kwsc

int main(int argc, char** argv) {
  uint32_t num_objects = 32768;
  int num_queries = 256;
  uint64_t top_t = 8;
  if (argc > 1) num_objects = static_cast<uint32_t>(std::atoi(argv[1]));
  if (argc > 2) num_queries = std::atoi(argv[2]);
  if (argc > 3) top_t = static_cast<uint64_t>(std::atoll(argv[3]));
  if (num_objects < 256 || num_queries < 8 || top_t < 1) {
    std::fprintf(stderr,
                 "usage: bench_shard [num_objects >= 256] [num_queries >= 8] "
                 "[top_t >= 1]\n");
    return 2;
  }
  kwsc::bench::PrintHeader(
      "S shared-nothing shard scaling + merge bytes",
      "throughput scales near-linearly with shard count under the "
      "shared-nothing model; threshold-selection merge ships fewer bytes "
      "than naive gather; sharded results byte-identical to unsharded");
  kwsc::Run(num_objects, num_queries, top_t);
  return 0;
}
