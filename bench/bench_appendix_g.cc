// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment G — the Appendix-G reduction made runnable: answering a k-SI
// reporting query through an L∞NN-KW index by doubling t. The claim to
// reproduce: the algorithm terminates with t = Theta(1 + OUT), i.e.
// ceil(log2(OUT)) + O(1) nearest-neighbour rounds, and its total cost is
// dominated by the final round.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/appendix_g.h"
#include "core/nn_linf.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

void Run() {
  const uint32_t n = 32768;
  Rng rng(271828);
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 512;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> nn(pts, &corpus, opt);

  std::printf("%10s %10s %14s %18s\n", "OUT", "rounds", "time(us)",
              "log2(OUT)+2 bound");
  for (int trial = 0; trial < 24; ++trial) {
    auto kws = PickQueryKeywords(
        corpus, 2,
        trial % 3 == 0 ? KeywordPick::kFrequent
                       : (trial % 3 == 1 ? KeywordPick::kUniform
                                         : KeywordPick::kCooccurring),
        &rng, /*frequent_pool=*/8);
    int rounds = 0;
    const Point<2> anchor{{0.5, 0.5}};
    auto result = ReportViaNnDoubling(nn, anchor, kws, &rounds);
    const double t = bench::MedianMicros(
        [&] { ReportViaNnDoubling(nn, anchor, kws); }, /*reps=*/3);
    const double bound =
        std::log2(std::max<double>(1.0, double(result.size()))) + 2;
    std::printf("%10zu %10d %14.2f %18.1f\n", result.size(), rounds, t,
                bound);
    bench::PrintCsv("G", {{"OUT", double(result.size())},
                          {"rounds", double(rounds)},
                          {"time_us", t},
                          {"round_bound", bound}});
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "G k-SI reporting via NN doubling (Appendix G)",
      "rounds = Theta(log(1 + OUT)); the reduction that transfers the "
      "set-intersection lower bounds onto L∞NN-KW");
  kwsc::Run();
  return 0;
}
