// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment T1.2 — Table 1 row "ORP-KW, d >= 3" (Theorem 2 / Section 4):
// the dimension-reduction index answers 3- and 4-dimensional box queries in
// the same N^{1-1/k}(1+OUT^{1/k}) shape, paying O(log log N) space per extra
// dimension. Query time vs. N and space blow-up per dimension are reported.

#include <cstdio>

#include "baseline/keywords_only.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/dim_reduction.h"
#include "core/orp_kw.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 24;

template <typename Index, int D>
void RunDim(const char* label) {
  std::printf("\n-- %s, k=2 --\n", label);
  std::printf("%10s %12s %14s %14s %16s\n", "N", "OUT(avg)", "index(us)",
              "kwonly(us)", "bytes/N");
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    Rng rng(n_objects * 29 + D);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts = GeneratePoints<D>(n_objects, PointDistribution::kUniform, &rng);
    FrameworkOptions opt;
    opt.k = 2;
    Index index(pts, &corpus, opt);
    KeywordsOnlyBaseline<D> keywords(pts, &corpus);

    std::vector<Box<D>> boxes;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      boxes.push_back(
          GenerateBoxQuery(std::span<const Point<D>>(pts), 0.05, &rng));
      kws.push_back(PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                      /*frequent_pool=*/6));
    }
    uint64_t out_total = 0;
    for (int i = 0; i < kQueries; ++i) {
      out_total += index.Query(boxes[i], kws[i]).size();
    }
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(boxes[i], kws[i]);
    }, /*reps=*/3) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) keywords.QueryBox(boxes[i], kws[i]);
    }, /*reps=*/3) / kQueries;
    const double n_weight = static_cast<double>(corpus.total_weight());
    const double bytes_per_n = index.MemoryBytes() / n_weight;
    std::printf("%10.0f %12.1f %14.2f %14.2f %16.1f\n", n_weight,
                static_cast<double>(out_total) / kQueries, t_index, t_kw,
                bytes_per_n);
    bench::PrintCsv("T1.2",
                    {{"d", double(D)},
                     {"N", n_weight},
                     {"OUT", static_cast<double>(out_total) / kQueries},
                     {"index_us", t_index},
                     {"keywords_us", t_kw},
                     {"bytes_per_N", bytes_per_n}});
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.2 ORP-KW d>=3 (Theorem 2, Section 4)",
      "time ~ N^{1-1/k}(1+OUT^{1/k}); space O(N (loglog N)^{d-2}): bytes/N "
      "should grow by roughly a loglog factor per extra dimension");
  kwsc::RunDim<kwsc::OrpKwIndex<2>, 2>("d=2 (kd baseline for space ratio)");
  kwsc::RunDim<kwsc::DimRedOrpKwIndex<3>, 3>("d=3 (one reduction level)");
  kwsc::RunDim<kwsc::DimRedOrpKwIndex<4>, 4>("d=4 (two reduction levels)");
  // Section 3.5's remark: the kd transformation also runs for d >= 3 but
  // with the weaker N^{1-1/max(k,d)} crossing bound; contrast it with the
  // dimension-reduction index above on identical workloads.
  kwsc::RunDim<kwsc::OrpKwIndex<3>, 3>("d=3 via plain kd (Section 3.5)");
  return 0;
}
