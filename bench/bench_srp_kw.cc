// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment T1.7 — Table 1 row "spherical range reporting with keywords"
// (Corollary 6): ball queries through the lifting map, vs. the two naive
// baselines, across selectivity and N.

#include <cstdio>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/srp_kw.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 24;

void Run(double ball_selectivity) {
  std::printf("\n-- ball selectivity %.3f, k=2 --\n", ball_selectivity);
  std::printf("%10s %12s %14s %14s %14s\n", "N", "OUT(avg)", "index(us)",
              "struct(us)", "kwonly(us)");
  std::vector<double> ns;
  std::vector<double> work;
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    Rng rng(n_objects * 3 + 1);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts = GeneratePoints<2>(n_objects, PointDistribution::kClustered,
                                 &rng);
    FrameworkOptions opt;
    opt.k = 2;
    SrpKwIndex<2> index(pts, &corpus, opt);
    StructuredOnlyBaseline<2> structured(pts, &corpus);
    KeywordsOnlyBaseline<2> keywords(pts, &corpus);

    std::vector<std::pair<Point<2>, double>> balls;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      balls.push_back(GenerateBallQuery(std::span<const Point<2>>(pts),
                                        ball_selectivity, &rng));
      kws.push_back(PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                      /*frequent_pool=*/6));
    }

    uint64_t out_total = 0;
    uint64_t examined_total = 0;
    for (int i = 0; i < kQueries; ++i) {
      QueryStats stats;
      out_total +=
          index.Query(balls[i].first, balls[i].second, kws[i], &stats).size();
      examined_total += stats.ObjectsExamined();
    }
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        index.Query(balls[i].first, balls[i].second, kws[i]);
      }
    }) / kQueries;
    const double t_struct = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        structured.QueryBall(balls[i].first, balls[i].second, kws[i]);
      }
    }) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        keywords.QueryBall(balls[i].first, balls[i].second, kws[i]);
      }
    }) / kQueries;

    const double n_weight = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %12.1f %14.2f %14.2f %14.2f\n", n_weight,
                static_cast<double>(out_total) / kQueries, t_index, t_struct,
                t_kw);
    bench::PrintCsv("T1.7",
                    {{"sel", ball_selectivity},
                     {"N", n_weight},
                     {"OUT", static_cast<double>(out_total) / kQueries},
                     {"index_us", t_index},
                     {"structured_us", t_struct},
                     {"keywords_us", t_kw}});
    ns.push_back(n_weight);
    work.push_back(
        std::max(static_cast<double>(examined_total) / kQueries, 1.0));
  }
  bench::PrintExponent("T1.7 work vs N (k=2)",
                       bench::FitLogLogSlope(ns, work),
                       1.0 - 1.0 / (2 + 1));  // d > k - 1 regime: 1-1/(d+1).
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.7 SRP-KW (Corollary 6)",
      "d=2 > k-1=1 regime: O(N) space, time ~ N^{1-1/(d+1)} + N^{1-1/k} "
      "OUT^{1/k}; ball -> lifted halfspace in d+1 dims");
  kwsc::Run(/*ball_selectivity=*/0.001);
  kwsc::Run(/*ball_selectivity=*/0.05);
  return 0;
}
