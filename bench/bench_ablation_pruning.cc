// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment A2 — ablation of the two query-time devices of Section 3.2/3.3:
//   * the per-child k-tuple emptiness registry (prunes fruitless descents);
//   * the materialized lists (cap the cost at the node where a keyword turns
//     small).
// Removing either must leave answers unchanged (tests assert that) but push
// work toward the naive baselines — the motivation the paper tells in
// Section 3.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/orp_kw.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 32;

struct Config {
  const char* name;
  bool tuples;
  bool lists;
};

void Run() {
  const uint32_t n_objects = 65536;
  Rng rng(456);
  CorpusSpec spec;
  spec.num_objects = n_objects;
  spec.vocab_size = 4096;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);

  struct NamedWorkload {
    const char* name;
    double selectivity;
    KeywordPick pick;
  };
  const NamedWorkload workloads[] = {
      {"W1 frequent+tiny-box", 0.001, KeywordPick::kFrequent},
      {"W2 cooccur+big-box", 0.6, KeywordPick::kCooccurring},
  };
  const Config configs[] = {
      {"full framework", true, true},
      {"no tuple pruning", false, true},
      {"no materialized lists", true, false},
      {"neither (tree only)", false, false},
  };

  // W3: planted-disjoint frequent pair. Keywords kA/kB are each in half the
  // documents but never together, so the answer is always empty; only the
  // tuple registry can prove that at the root instead of descending.
  const KeywordId kA = 4100;
  const KeywordId kB = 4101;
  {
    std::vector<Document> docs;
    docs.reserve(n_objects);
    for (uint32_t i = 0; i < n_objects; ++i) {
      std::vector<KeywordId> kws_i(corpus.doc(i).begin(),
                                   corpus.doc(i).end());
      kws_i.push_back(i % 2 == 0 ? kA : kB);
      docs.emplace_back(std::move(kws_i));
    }
    corpus = Corpus(std::move(docs));
  }
  {
    std::printf("\n-- W3 planted-disjoint frequent pair (OUT = 0) --\n");
    std::printf("%-24s %14s %14s\n", "config", "query(us)", "examined");
    std::vector<KeywordId> q_kws = {kA, kB};
    auto box = Box<2>::Everything();
    for (const Config& c : configs) {
      FrameworkOptions opt;
      opt.k = 2;
      opt.enable_tuple_pruning = c.tuples;
      opt.enable_materialized_lists = c.lists;
      OrpKwIndex<2> index(pts, &corpus, opt);
      QueryStats stats;
      index.Query(box, q_kws, &stats);
      const double t = bench::MedianMicros(
          [&] { index.Query(box, q_kws); }, /*reps=*/3);
      std::printf("%-24s %14.2f %14llu\n", c.name, t,
                  static_cast<unsigned long long>(stats.ObjectsExamined()));
      bench::PrintCsv("A2", {{"workload", 2},
                             {"tuples", double(c.tuples)},
                             {"lists", double(c.lists)},
                             {"query_us", t},
                             {"examined", double(stats.ObjectsExamined())}});
    }
  }

  for (const auto& w : workloads) {
    std::vector<Box<2>> boxes;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      boxes.push_back(GenerateBoxQuery(std::span<const Point<2>>(pts),
                                       w.selectivity, &rng));
      kws.push_back(PickQueryKeywords(corpus, 2, w.pick, &rng,
                                      /*frequent_pool=*/6));
    }
    std::printf("\n-- %s --\n", w.name);
    std::printf("%-24s %14s %14s\n", "config", "query(us)", "examined");
    for (const Config& c : configs) {
      FrameworkOptions opt;
      opt.k = 2;
      opt.enable_tuple_pruning = c.tuples;
      opt.enable_materialized_lists = c.lists;
      OrpKwIndex<2> index(pts, &corpus, opt);
      uint64_t examined = 0;
      for (int i = 0; i < kQueries; ++i) {
        QueryStats stats;
        index.Query(boxes[i], kws[i], &stats);
        examined += stats.ObjectsExamined();
      }
      const double t = bench::MedianMicros([&] {
        for (int i = 0; i < kQueries; ++i) index.Query(boxes[i], kws[i]);
      }, /*reps=*/3) / kQueries;
      std::printf("%-24s %14.2f %14.1f\n", c.name, t,
                  double(examined) / kQueries);
      bench::PrintCsv("A2", {{"workload", double(&w - workloads)},
                             {"tuples", double(c.tuples)},
                             {"lists", double(c.lists)},
                             {"query_us", t},
                             {"examined", double(examined) / kQueries}});
    }
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "A2 pruning-device ablation (Sections 3.2-3.3)",
      "tuple registry and materialized lists are both load-bearing: without "
      "them work drifts toward the naive baselines");
  kwsc::Run();
  return 0;
}
