// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment T1.1 — Table 1, row "orthogonal range reporting with keywords,
// d <= 2": query time O(N^{1-1/k} (1 + OUT^{1/k})) with O(N) space, vs. the
// two naive baselines of Section 1.
//
// Three workloads isolate the three regimes:
//   W1 selective-box:      frequent keywords + tiny box. OUT ~ 0; the
//                          keywords-only baseline must walk its whole
//                          intersection, the index must stay ~ N^{1-1/k}.
//   W2 selective-keywords: co-occurring (rare) keywords + huge box. The
//                          structured-only baseline walks the box, the index
//                          stays near the materialized-list bound.
//   W3 selective-neither:  frequent keywords + large box. OUT is large and
//                          everyone pays OUT; the index must not lose by
//                          more than a constant.
// The fitted exponent of W1 against N is the headline number: the paper's
// shape is 1 - 1/k (0.5 for k = 2, 0.667 for k = 3).

#include <cstdio>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

struct Workload {
  const char* name;
  KeywordPick pick;
  double selectivity;
  uint32_t frequent_pool;
};

void RunForK(int k, bench::JsonReport* report) {
  const Workload workloads[] = {
      {"W1-selective-box", KeywordPick::kFrequent, 0.0005, 4},
      {"W2-selective-keywords", KeywordPick::kCooccurring, 0.9, 16},
      {"W3-selective-neither", KeywordPick::kFrequent, 0.3, 4},
  };
  constexpr int kQueries = 32;

  for (const Workload& w : workloads) {
    std::printf(
        "\n-- k=%d %s --\n"
        "%10s %12s %14s %14s %14s %14s %10s\n",
        k, w.name, "N", "OUT(avg)", "index(us)", "batch(us)", "struct(us)",
        "kwonly(us)", "examined");
    std::vector<double> ns;
    std::vector<double> index_times;
    for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u,
                               131072u}) {
      Rng rng(n_objects * 13 + k);
      CorpusSpec spec;
      spec.num_objects = n_objects;
      spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
      spec.zipf_skew = 1.0;
      Corpus corpus = GenerateCorpus(spec, &rng);
      auto pts =
          GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);
      FrameworkOptions opt;
      opt.k = k;
      OrpKwIndex<2> index(pts, &corpus, opt);
      StructuredOnlyBaseline<2> structured(pts, &corpus);
      KeywordsOnlyBaseline<2> keywords(pts, &corpus);

      // Pre-generate a query batch shared by all contenders.
      std::vector<Box<2>> boxes;
      std::vector<std::vector<KeywordId>> kws;
      std::vector<BatchQuery<Box<2>>> batch;
      for (int i = 0; i < kQueries; ++i) {
        boxes.push_back(GenerateBoxQuery(std::span<const Point<2>>(pts),
                                         w.selectivity, &rng));
        kws.push_back(
            PickQueryKeywords(corpus, k, w.pick, &rng, w.frequent_pool));
        batch.push_back({boxes.back(), kws.back()});
      }
      // The same batch through the sharded engine, at hardware concurrency.
      QueryEngine<OrpKwIndex<2>> engine(&index, /*num_threads=*/0);

      uint64_t out_total = 0;
      uint64_t examined_total = 0;
      for (int i = 0; i < kQueries; ++i) {
        QueryStats stats;
        out_total += index.Query(boxes[i], kws[i], &stats).size();
        examined_total += stats.ObjectsExamined();
      }

      const double t_index = bench::MedianMicros([&] {
        for (int i = 0; i < kQueries; ++i) index.Query(boxes[i], kws[i]);
      }) / kQueries;
      const double t_struct = bench::MedianMicros([&] {
        for (int i = 0; i < kQueries; ++i) {
          structured.QueryBox(boxes[i], kws[i]);
        }
      }) / kQueries;
      const double t_kw = bench::MedianMicros([&] {
        for (int i = 0; i < kQueries; ++i) keywords.QueryBox(boxes[i], kws[i]);
      }) / kQueries;
      const double t_batch = bench::MedianMicros([&] {
        engine.Run(batch);
      }) / kQueries;

      const double n_weight = static_cast<double>(corpus.total_weight());
      const double out_avg = static_cast<double>(out_total) / kQueries;
      const double examined_avg =
          static_cast<double>(examined_total) / kQueries;
      std::printf("%10.0f %12.1f %14.2f %14.2f %14.2f %14.2f %10.1f\n",
                  n_weight, out_avg, t_index, t_batch, t_struct, t_kw,
                  examined_avg);
      bench::PrintCsv("T1.1",
                      {{"k", double(k)},
                       {"workload", double(&w - workloads)},
                       {"N", n_weight},
                       {"OUT", out_avg},
                       {"index_us", t_index},
                       {"batch_us", t_batch},
                       {"structured_us", t_struct},
                       {"keywords_us", t_kw},
                       {"examined", examined_avg}},
                      report);
      if (n_objects == 131072u) {
        // Largest N only: per-query latency + work histograms per workload,
        // so the JSON record carries tails (p99), not just the medians the
        // table shows.
        const auto probe = engine.Run(batch);
        const std::string suffix = "_k" + std::to_string(k) + "_w" +
                                   std::to_string(int(&w - workloads));
        report->AddHistogram("query_latency_ns" + suffix, probe.latency,
                             "ns");
        report->AddHistogram("query_work_objects" + suffix, probe.work,
                             "objects");
      }
      ns.push_back(n_weight);
      // Exponent fit uses *work* (objects examined), which is deterministic,
      // rather than wall-clock, which has per-query overhead at small N.
      index_times.push_back(std::max(examined_avg, 1.0));
    }
    if (w.pick == KeywordPick::kFrequent && w.selectivity < 0.01) {
      bench::PrintExponent("T1.1 W1 work vs N, k=" + std::to_string(k),
                           bench::FitLogLogSlope(ns, index_times),
                           1.0 - 1.0 / k, report);
    }
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.1 ORP-KW d=2 (Theorem 1)",
      "time ~ N^{1-1/k} (1 + OUT^{1/k}), space O(N); beats both naive "
      "baselines when either predicate is selective");
  kwsc::bench::JsonReport report("orp_kw");
  kwsc::RunForK(2, &report);
  kwsc::RunForK(3, &report);
  kwsc::bench::EmitJson(&report);
  return 0;
}
