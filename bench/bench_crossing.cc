// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment F1 — Figure 1 / Lemma 10 (Section 3.3): crossing sensitivity.
//
// The analysis splits query cost into covered-node work (charged to OUT via
// Lemma 9) and crossing-node work, and proves any vertical line — hence any
// rectangle boundary — has crossing sensitivity O(N^{1-1/k}) on the kd-tree.
// This bench issues degenerate "line" rectangles and full rectangles,
// measures the two work classes separately via QueryStats, and fits the
// crossing-work exponent. It also contrasts the ham-sandwich substrate on
// halfplane boundaries (DESIGN.md substitution 1: expected exponent
// log_4(3) ~ 0.79 instead of Chan's 1 - 1/d).

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/orp_kw.h"
#include "core/sp_kw_hs.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 32;

void KdLineAndRect(int k) {
  std::printf("\n-- kd substrate: vertical lines and rectangles, k=%d --\n",
              k);
  std::printf("%10s %16s %16s %16s\n", "N", "line cross-work",
              "rect cross-work", "rect covered");
  std::vector<double> ns;
  std::vector<double> line_work;
  std::vector<double> rect_work;
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u,
                             131072u}) {
    Rng rng(n_objects * 37 + k);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts = GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);
    FrameworkOptions opt;
    opt.k = k;
    OrpKwIndex<2> index(pts, &corpus, opt);

    uint64_t line_cross = 0;
    uint64_t rect_cross = 0;
    uint64_t rect_covered = 0;
    for (int i = 0; i < kQueries; ++i) {
      auto kws = PickQueryKeywords(corpus, k, KeywordPick::kFrequent, &rng,
                                   /*frequent_pool=*/4);
      // Degenerate rectangle = vertical line through a data x-coordinate.
      const double x = pts[rng.NextBounded(pts.size())][0];
      Box<2> line{{{x, -1e30}}, {{x, 1e30}}};
      QueryStats line_stats;
      index.Query(line, kws, &line_stats);
      line_cross += line_stats.crossing_work + line_stats.crossing_nodes;

      auto rect = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.2, &rng);
      QueryStats rect_stats;
      index.Query(rect, kws, &rect_stats);
      rect_cross += rect_stats.crossing_work + rect_stats.crossing_nodes;
      rect_covered += rect_stats.covered_work;
    }
    const double n_weight = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %16.1f %16.1f %16.1f\n", n_weight,
                double(line_cross) / kQueries, double(rect_cross) / kQueries,
                double(rect_covered) / kQueries);
    bench::PrintCsv("F1", {{"k", double(k)},
                           {"N", n_weight},
                           {"line_crossing_work", double(line_cross) / kQueries},
                           {"rect_crossing_work", double(rect_cross) / kQueries},
                           {"rect_covered_work",
                            double(rect_covered) / kQueries}});
    ns.push_back(n_weight);
    line_work.push_back(std::max(double(line_cross) / kQueries, 1.0));
    rect_work.push_back(std::max(double(rect_cross) / kQueries, 1.0));
  }
  bench::PrintExponent("F1 kd line crossing work, k=" + std::to_string(k),
                       bench::FitLogLogSlope(ns, line_work), 1.0 - 1.0 / k);
  bench::PrintExponent("F1 kd rect crossing work, k=" + std::to_string(k),
                       bench::FitLogLogSlope(ns, rect_work), 1.0 - 1.0 / k);
}

void HsHalfplane() {
  std::printf("\n-- ham-sandwich substrate: halfplane boundaries, k=2 --\n");
  std::printf("%10s %16s %16s\n", "N", "crossing nodes", "crossing work");
  std::vector<double> ns;
  std::vector<double> cross_nodes;
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    Rng rng(n_objects * 41);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts = GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);
    FrameworkOptions opt;
    opt.k = 2;
    SpKwHsIndex index(pts, &corpus, opt);

    uint64_t nodes = 0;
    uint64_t work = 0;
    for (int i = 0; i < kQueries; ++i) {
      auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                   /*frequent_pool=*/4);
      ConvexQuery<2> q;
      q.constraints.push_back(GenerateHalfspaceQuery(
          std::span<const Point<2>>(pts), rng.UniformDouble(0.3, 0.7), &rng));
      QueryStats stats;
      index.Query(q, kws, &stats);
      nodes += stats.crossing_nodes;
      work += stats.crossing_work + stats.crossing_nodes;
    }
    const double n_weight = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %16.1f %16.1f\n", n_weight, double(nodes) / kQueries,
                double(work) / kQueries);
    bench::PrintCsv("F1", {{"substrate", 1},
                           {"N", n_weight},
                           {"crossing_nodes", double(nodes) / kQueries},
                           {"crossing_work", double(work) / kQueries}});
    ns.push_back(n_weight);
    cross_nodes.push_back(std::max(double(nodes) / kQueries, 1.0));
  }
  bench::PrintExponent("F1 hs halfplane crossing nodes",
                       bench::FitLogLogSlope(ns, cross_nodes),
                       std::log(3.0) / std::log(4.0));
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "F1 crossing sensitivity (Section 3.3, Lemma 10; Figure 1)",
      "any vertical line / rectangle has kd crossing sensitivity "
      "O(N^{1-1/k}); ham-sandwich halfplane crossing ~ N^{log4 3} "
      "(substitution 1)");
  kwsc::KdLineAndRect(2);
  kwsc::KdLineAndRect(3);
  kwsc::HsHalfplane();
  return 0;
}
