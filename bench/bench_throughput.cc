// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment THR — multi-core scaling. The paper's bounds are per-query;
// build-time and batch-throughput scaling across threads are implementation
// properties this bench makes machine-trackable:
//   * build: wall-clock of OrpKwIndex construction at 1/2/4/8 threads, with
//     a byte-identity check of the Save stream against the 1-thread build
//     (the determinism contract of the arena-splice parallel build);
//   * query: QPS of the batched engine (core/query_engine.h) over a fixed
//     mixed batch at 1/2/4/8 threads.
// Speedups are relative to the 1-thread run; on a machine with fewer cores
// than threads the extra threads cannot help — the `identical` flag must
// hold regardless.

#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr uint32_t kObjects = 65536;
constexpr int kQueries = 1024;
constexpr int kThreadSweep[] = {1, 2, 4, 8};

std::string SaveBytes(const OrpKwIndex<2>& index) {
  std::stringstream stream;
  index.Save(&stream);
  return stream.str();
}

void Run() {
  bench::JsonReport report("throughput");
  Rng rng(kObjects * 3 + 7);
  CorpusSpec spec;
  spec.num_objects = kObjects;
  spec.vocab_size = std::max<uint32_t>(64, kObjects / 16);
  spec.zipf_skew = 1.0;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(kObjects, PointDistribution::kUniform, &rng);
  const double n_weight = static_cast<double>(corpus.total_weight());

  // --- Build scaling ------------------------------------------------------
  {
    // Untimed warm-up: the first build pays allocator and page-cache
    // warm-up that would otherwise be billed to whichever thread count
    // happens to run first.
    FrameworkOptions opt;
    opt.k = 2;
    OrpKwIndex<2> warmup(pts, &corpus, opt);
  }
  std::printf("\n-- build, N=%.0f --\n", n_weight);
  std::printf("%8s %12s %10s %10s\n", "threads", "build(ms)", "speedup",
              "identical");
  std::string sequential_bytes;
  double sequential_ms = 0.0;
  std::optional<OrpKwIndex<2>> query_index;
  for (int threads : kThreadSweep) {
    FrameworkOptions opt;
    opt.k = 2;
    opt.num_threads = threads;
    WallTimer timer;
    OrpKwIndex<2> index(pts, &corpus, opt);
    const double ms = timer.ElapsedMillis();
    const std::string bytes = SaveBytes(index);
    if (threads == 1) {
      sequential_bytes = bytes;
      sequential_ms = ms;
      query_index.emplace(std::move(index));
    }
    const bool identical = bytes == sequential_bytes;
    const double speedup = ms > 0 ? sequential_ms / ms : 0.0;
    std::printf("%8d %12.2f %10.2f %10s\n", threads, ms, speedup,
                identical ? "yes" : "NO");
    bench::PrintCsv("THR-build",
                    {{"N", n_weight},
                     {"threads", double(threads)},
                     {"build_ms", ms},
                     {"speedup", speedup},
                     {"identical", identical ? 1.0 : 0.0}},
                    &report);
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: %d-thread build diverged from sequential build\n",
                   threads);
      std::exit(1);
    }
  }

  // --- Batched query scaling ---------------------------------------------
  // Mixed batch: half selective boxes with frequent keywords, half broad
  // boxes with co-occurring keywords (the W1/W2 regimes of bench_orp_kw).
  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < kQueries; ++i) {
    const bool selective = i % 2 == 0;
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts),
                          selective ? 0.001 : 0.2, &rng),
         PickQueryKeywords(corpus, 2,
                           selective ? KeywordPick::kFrequent
                                     : KeywordPick::kCooccurring,
                           &rng)});
  }

  std::printf("\n-- batched queries, %d per batch --\n", kQueries);
  std::printf("%8s %12s %12s %10s %12s\n", "threads", "batch(us)", "QPS",
              "speedup", "results");
  double single_thread_us = 0.0;
  for (int threads : kThreadSweep) {
    QueryEngine<OrpKwIndex<2>> engine(&*query_index, threads);
    const auto stats_probe = engine.Run(batch);
    const double us = bench::MedianMicros([&] { engine.Run(batch); });
    if (threads == 1) single_thread_us = us;
    const double qps = us > 0 ? kQueries / (us / 1e6) : 0.0;
    const double speedup = us > 0 ? single_thread_us / us : 0.0;
    std::printf("%8d %12.0f %12.0f %10.2f %12llu\n", threads, us, qps,
                speedup,
                static_cast<unsigned long long>(stats_probe.stats.results));
    bench::PrintCsv("THR-query",
                    {{"N", n_weight},
                     {"threads", double(threads)},
                     {"batch_us", us},
                     {"qps", qps},
                     {"speedup", speedup},
                     {"results", double(stats_probe.stats.results)}},
                    &report);
  }

  const std::string path = report.Write();
  if (!path.empty()) std::printf("\njson report: %s\n", path.c_str());
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "THR build + batched-query thread scaling",
      "parallel build is byte-identical to sequential and faster on "
      "multi-core; batched QPS scales with threads (per-query bounds are "
      "untouched)");
  kwsc::Run();
  return 0;
}
