// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment THR — multi-core scaling. The paper's bounds are per-query;
// build-time and batch-throughput scaling across threads are implementation
// properties this bench makes machine-trackable:
//   * build: wall-clock of OrpKwIndex construction at 1/2/4/8 threads, with
//     a byte-identity check of the Save stream against the 1-thread build
//     (the determinism contract of the arena-splice parallel build);
//   * query: QPS of the batched engine (core/query_engine.h) over a fixed
//     mixed batch at 1/2/4/8 threads, with per-query latency histograms
//     (p50/p90/p99) and the QueryStats cost accounting exported to
//     BENCH_throughput.json.
// Speedups are relative to the 1-thread run; on a machine with fewer cores
// than threads the extra threads cannot help — the `identical` flag must
// hold regardless.
//
// Usage: bench_throughput [num_objects] [num_queries]
// (defaults 65536 / 1024; CI runs a tiny size as a schema smoke test).

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kThreadSweep[] = {1, 2, 4, 8};

std::string SaveBytes(const OrpKwIndex<2>& index) {
  std::stringstream stream;
  index.Save(&stream);
  return stream.str();
}

void Run(uint32_t num_objects, int num_queries) {
  bench::JsonReport report("throughput");
  obs::MetricsRegistry registry;
  Rng rng(num_objects * 3 + 7);
  CorpusSpec spec;
  spec.num_objects = num_objects;
  spec.vocab_size = std::max<uint32_t>(64, num_objects / 16);
  spec.zipf_skew = 1.0;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts =
      GeneratePoints<2>(num_objects, PointDistribution::kUniform, &rng);
  const double n_weight = static_cast<double>(corpus.total_weight());

  // --- Build scaling ------------------------------------------------------
  {
    // Untimed warm-up: the first build pays allocator and page-cache
    // warm-up that would otherwise be billed to whichever thread count
    // happens to run first.
    FrameworkOptions opt;
    opt.k = 2;
    OrpKwIndex<2> warmup(pts, &corpus, opt);
  }
  std::printf("\n-- build, N=%.0f --\n", n_weight);
  std::printf("%8s %12s %10s %10s\n", "threads", "build(ms)", "speedup",
              "identical");
  std::string sequential_bytes;
  double sequential_ms = 0.0;
  std::optional<OrpKwIndex<2>> query_index;
  for (int threads : kThreadSweep) {
    FrameworkOptions opt;
    opt.k = 2;
    opt.num_threads = threads;
    WallTimer timer;
    OrpKwIndex<2> index(pts, &corpus, opt);
    const double ms = timer.ElapsedMillis();
    const std::string bytes = SaveBytes(index);
    if (threads == 1) {
      sequential_bytes = bytes;
      sequential_ms = ms;
      query_index.emplace(std::move(index));
    }
    const bool identical = bytes == sequential_bytes;
    const double speedup = ms > 0 ? sequential_ms / ms : 0.0;
    std::printf("%8d %12.2f %10.2f %10s\n", threads, ms, speedup,
                identical ? "yes" : "NO");
    bench::PrintCsv("THR-build",
                    {{"N", n_weight},
                     {"threads", double(threads)},
                     {"build_ms", ms},
                     {"speedup", speedup},
                     {"identical", identical ? 1.0 : 0.0}},
                    &report);
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: %d-thread build diverged from sequential build\n",
                   threads);
      std::exit(1);
    }
  }
  registry.SetGauge("build_wall_ms", sequential_ms);

  // --- Batched query scaling ---------------------------------------------
  // Mixed batch: half selective boxes with frequent keywords, half broad
  // boxes with co-occurring keywords (the W1/W2 regimes of bench_orp_kw).
  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < num_queries; ++i) {
    const bool selective = i % 2 == 0;
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts),
                          selective ? 0.001 : 0.2, &rng),
         PickQueryKeywords(corpus, 2,
                           selective ? KeywordPick::kFrequent
                                     : KeywordPick::kCooccurring,
                           &rng)});
  }

  std::printf("\n-- batched queries, %d per batch --\n", num_queries);
  std::printf("%8s %12s %12s %10s %12s %10s %10s\n", "threads", "batch(us)",
              "QPS", "speedup", "results", "p50(us)", "p99(us)");
  double single_thread_us = 0.0;
  for (int threads : kThreadSweep) {
    FrameworkOptions engine_opt;
    engine_opt.num_threads = threads;
    QueryEngine<OrpKwIndex<2>> engine(&*query_index, engine_opt, &registry);
    const auto stats_probe = engine.Run(batch);
    const double us = bench::MedianMicros([&] { engine.Run(batch); });
    if (threads == 1) single_thread_us = us;
    const double qps = us > 0 ? num_queries / (us / 1e6) : 0.0;
    const double speedup = us > 0 ? single_thread_us / us : 0.0;
    const double p50_us =
        static_cast<double>(stats_probe.latency.P50()) / 1e3;
    const double p90_us =
        static_cast<double>(stats_probe.latency.P90()) / 1e3;
    const double p99_us =
        static_cast<double>(stats_probe.latency.P99()) / 1e3;
    std::printf("%8d %12.0f %12.0f %10.2f %12llu %10.1f %10.1f\n", threads,
                us, qps, speedup,
                static_cast<unsigned long long>(stats_probe.stats.results),
                p50_us, p99_us);
    bench::PrintCsv("THR-query",
                    {{"N", n_weight},
                     {"threads", double(threads)},
                     {"batch_us", us},
                     {"qps", qps},
                     {"speedup", speedup},
                     {"results", double(stats_probe.stats.results)},
                     {"p50_us", p50_us},
                     {"p90_us", p90_us},
                     {"p99_us", p99_us}},
                    &report);
    report.AddHistogram("query_latency_ns_t" + std::to_string(threads),
                        stats_probe.latency, "ns");
    if (threads == 1) {
      // The cost accounting is thread-count invariant (the engine's
      // determinism contract); export the 1-thread aggregate once.
      report.AddHistogram("query_work_objects", stats_probe.work, "objects");
      obs::AddQueryStatsCounters(stats_probe.stats, "batch_stats",
                                 report.mutable_registry());
    }
  }

  report.MergeRegistry(registry);
  bench::EmitJson(&report);
}

}  // namespace
}  // namespace kwsc

int main(int argc, char** argv) {
  uint32_t num_objects = 65536;
  int num_queries = 1024;
  if (argc > 1) num_objects = static_cast<uint32_t>(std::atoi(argv[1]));
  if (argc > 2) num_queries = std::atoi(argv[2]);
  if (num_objects < 256 || num_queries < 8) {
    std::fprintf(stderr,
                 "usage: bench_throughput [num_objects >= 256] "
                 "[num_queries >= 8]\n");
    return 2;
  }
  kwsc::bench::PrintHeader(
      "THR build + batched-query thread scaling",
      "parallel build is byte-identical to sequential and faster on "
      "multi-core; batched QPS scales with threads (per-query bounds are "
      "untouched)");
  kwsc::Run(num_objects, num_queries);
  return 0;
}
