// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment T1.4 — Table 1 row "rectangle reporting with keywords"
// (Corollary 3): d = 1 temporal intervals and d = 2 MBRs through the
// dominance lift, vs. the keywords-only baseline (the standard approach for
// temporal keyword search) and a full scan.

#include <cstdio>

#include "baseline/keywords_only.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/rr_kw.h"
#include "kdtree/interval_tree.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 24;

template <int D>
void Run(const char* label, double mean_extent, double query_half_width,
         bench::JsonReport* report) {
  std::printf("\n-- %s (k=2) --\n", label);
  std::printf("%10s %12s %14s %14s %14s %14s\n", "N", "OUT(avg)",
              "index(us)", "kwonly(us)", "scan(us)", "itree(us)");
  std::vector<double> ns;
  std::vector<double> work;
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    Rng rng(n_objects * 17 + D);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto rects =
        GenerateRects<D>(n_objects, PointDistribution::kUniform, mean_extent,
                         &rng);
    FrameworkOptions opt;
    opt.k = 2;
    RrKwIndex<D> index(rects, &corpus, opt);
    KeywordsOnlyRectBaseline<D> keywords(rects, &corpus);

    std::vector<Box<D>> queries;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      Box<D> q;
      for (int dim = 0; dim < D; ++dim) {
        const double c = rng.NextDouble();
        q.lo[dim] = c - query_half_width;
        q.hi[dim] = c + query_half_width;
      }
      queries.push_back(q);
      kws.push_back(PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng,
                                      /*frequent_pool=*/6));
    }

    uint64_t out_total = 0;
    uint64_t examined_total = 0;
    for (int i = 0; i < kQueries; ++i) {
      QueryStats stats;
      out_total += index.Query(queries[i], kws[i], &stats).size();
      examined_total += stats.ObjectsExamined();
    }
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(queries[i], kws[i]);
    }) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) keywords.Query(queries[i], kws[i]);
    }) / kQueries;
    // Full-scan strawman: test every rectangle + document.
    const double t_scan = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        size_t hits = 0;
        for (ObjectId e = 0; e < rects.size(); ++e) {
          if (rects[e].Intersects(queries[i]) &&
              corpus.ContainsAll(e, kws[i])) {
            ++hits;
          }
        }
        (void)hits;
      }
    }) / kQueries;
    // d = 1 only: the structured-only interval-tree baseline (overlap
    // query, then keyword filter).
    double t_itree = 0;
    if constexpr (D == 1) {
      IntervalTree<double> itree{std::span<const Box<1>>(rects)};
      t_itree = bench::MedianMicros([&] {
        for (int i = 0; i < kQueries; ++i) {
          size_t hits = 0;
          itree.Overlapping(queries[i].lo[0], queries[i].hi[0],
                            [&](uint32_t e) {
                              hits += corpus.ContainsAll(e, kws[i]);
                              return true;
                            });
          (void)hits;
        }
      }) / kQueries;
    }

    const double n_weight = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %12.1f %14.2f %14.2f %14.2f %14.2f\n", n_weight,
                static_cast<double>(out_total) / kQueries, t_index, t_kw,
                t_scan, t_itree);
    bench::PrintCsv("T1.4",
                    {{"d", double(D)},
                     {"N", n_weight},
                     {"OUT", static_cast<double>(out_total) / kQueries},
                     {"index_us", t_index},
                     {"keywords_us", t_kw},
                     {"scan_us", t_scan},
                     {"itree_us", t_itree}},
                    report);
    ns.push_back(n_weight);
    work.push_back(
        std::max(static_cast<double>(examined_total) / kQueries, 1.0));
  }
  bench::PrintExponent(std::string("T1.4 ") + label + " work vs N",
                       bench::FitLogLogSlope(ns, work), 0.5, report);
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.4 RR-KW (Corollary 3)",
      "space O(N (loglog N)^{2d-2}), time ~ N^{1-1/k} (1 + OUT^{1/k}); "
      "rectangle intersection = dominance in 2d dims");
  kwsc::bench::JsonReport report("rr_kw");
  kwsc::Run<1>("d=1 temporal intervals", /*mean_extent=*/0.02,
               /*query_half_width=*/0.01, &report);
  kwsc::Run<2>("d=2 geographic MBRs", /*mean_extent=*/0.01,
               /*query_half_width=*/0.02, &report);
  kwsc::bench::EmitJson(&report);
  return 0;
}
