// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Microbenchmarks of the hot substrate operations, on google-benchmark:
// hash-table probes (the O(1) operations of T_u), posting-list intersection
// (the naive baseline's inner loop), kd-tree range reporting, and the
// framework query itself at a fixed size.

#include <benchmark/benchmark.h>

#include "common/flat_hash.h"
#include "common/random.h"
#include "core/orp_kw.h"
#include "kdtree/kd_tree.h"
#include "text/inverted_index.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

void BM_FlatHashMapFind(benchmark::State& state) {
  const size_t n = state.range(0);
  FlatHashMap<uint64_t, uint32_t> map;
  map.Reserve(n);
  Rng rng(1);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.Next();
    map[keys[i]] = static_cast<uint32_t>(i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(keys[i]));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_FlatHashMapFind)->Range(1 << 8, 1 << 16);

void BM_TupleSetContains(benchmark::State& state) {
  FlatHashSet<uint64_t> set;
  Rng rng(2);
  std::vector<uint64_t> keys(4096);
  for (auto& k : keys) {
    k = rng.Next();
    set.Insert(k);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Contains(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_TupleSetContains);

void BM_InvertedIntersect(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 64;
  Corpus corpus = GenerateCorpus(spec, &rng);
  InvertedIndex index(corpus);
  std::vector<KeywordId> q = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Intersect(q));
  }
  state.SetItemsProcessed(state.iterations() * corpus.total_weight());
}
BENCHMARK(BM_InvertedIntersect)->Range(1 << 10, 1 << 16);

void BM_KdTreeRange(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(4);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.01, &rng);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    tree.RangeReport(q, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_KdTreeRange)->Range(1 << 10, 1 << 17);

void BM_OrpKwQuery(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(5);
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = std::max<uint32_t>(64, n / 16);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.01, &rng);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(q, kws));
  }
}
BENCHMARK(BM_OrpKwQuery)->Range(1 << 10, 1 << 17);

void BM_OrpKwBuild(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(6);
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = std::max<uint32_t>(64, n / 16);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  for (auto _ : state) {
    OrpKwIndex<2> index(pts, &corpus, opt);
    benchmark::DoNotOptimize(index.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * corpus.total_weight());
}
BENCHMARK(BM_OrpKwBuild)->Range(1 << 10, 1 << 14)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kwsc

BENCHMARK_MAIN();
