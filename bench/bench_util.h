// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Shared harness for the experiment binaries (see DESIGN.md section 4 and
// EXPERIMENTS.md). Each bench prints
//   * a human-readable table of the sweep,
//   * machine-readable "CSV," lines for downstream plotting, and
//   * fitted log-log slopes ("measured exponents") so the scaling claims of
//     Table 1 are checked numerically, not by eyeball.
// Benches that track their perf trajectory additionally emit a
// schema-versioned BENCH_<name>.json (obs::JsonExporter) via EmitJson —
// sweep points, exponents, counters/gauges (peak RSS, build wall time), and
// latency/work histograms, validated in CI by tools/check_bench_json.sh.

#ifndef KWSC_BENCH_BENCH_UTIL_H_
#define KWSC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/memory.h"
#include "common/timer.h"
#include "obs/json_exporter.h"
#include "obs/stats.h"

namespace kwsc {
namespace bench {

/// Median wall-clock microseconds of `fn` over `reps` runs (after one
/// warm-up run). `fn` should execute one full query batch. Uses the true
/// median (mean of the two middle elements for even `reps`), not the
/// upper-middle element.
inline double MedianMicros(const std::function<void()>& fn, int reps = 5) {
  fn();  // Warm-up.
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedMicros());
  }
  return obs::Median(std::move(times));
}

/// Least-squares slope of log(y) against log(x): the measured scaling
/// exponent. Points with non-positive coordinates are skipped.
inline double FitLogLogSlope(const std::vector<double>& x,
                             const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

/// Section header for a bench's output.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
}

/// A machine-readable row: "CSV,<experiment>,<k1>=<v1>,...".
inline void PrintCsv(const std::string& experiment,
                     const std::vector<std::pair<std::string, double>>& kv) {
  std::printf("CSV,%s", experiment.c_str());
  for (const auto& [key, value] : kv) {
    std::printf(",%s=%.6g", key.c_str(), value);
  }
  std::printf("\n");
}

inline void PrintExponent(const std::string& label, double measured,
                          double expected) {
  std::printf("measured exponent [%s]: %.3f (paper shape: %.3f)\n",
              label.c_str(), measured, expected);
}

/// The machine-trackable bench report. Historically a bench-local JSON
/// writer; now the observability layer's schema-versioned exporter
/// (src/obs/json_exporter.h) used directly.
using JsonReport = obs::JsonExporter;

/// PrintCsv that also records the row into a report (nullptr = print only).
inline void PrintCsv(const std::string& experiment,
                     const std::vector<std::pair<std::string, double>>& kv,
                     JsonReport* report) {
  if (report != nullptr) report->AddPoint(kv);
  PrintCsv(experiment, kv);
}

/// PrintExponent that also records into a report (nullptr = print only).
inline void PrintExponent(const std::string& label, double measured,
                          double expected, JsonReport* report) {
  if (report != nullptr) report->AddExponent(label, measured, expected);
  PrintExponent(label, measured, expected);
}

/// Resident-set growth attributable to one phase: CurrentRssBytes sampled at
/// construction (immediately before the phase) and again in DeltaBytes()
/// (immediately after). The peak-RSS gauge alone charges every phase with
/// the process high-water mark — corpus generation, earlier sweeps, the
/// allocator's retained pages — so per-phase memory claims must come from a
/// before/after pair, not from the peak.
class RssDeltaProbe {
 public:
  RssDeltaProbe() : before_(CurrentRssBytes()) {}

  size_t before_bytes() const { return before_; }

  /// RSS growth since construction (0 if the platform offers no probe or
  /// the allocator returned pages in between).
  size_t DeltaBytes() const {
    const size_t after = CurrentRssBytes();
    return after > before_ ? after - before_ : 0;
  }

 private:
  size_t before_;
};

/// The one EmitJson path every bench ends with: stamps process-wide gauges
/// (peak and current RSS), writes BENCH_<name>.json, and announces the path
/// on stdout. Returns the path written ("" on failure).
inline std::string EmitJson(JsonReport* report) {
  report->SetGauge("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
  report->SetGauge("current_rss_bytes",
                   static_cast<double>(CurrentRssBytes()));
  const std::string path = report->Write();
  if (!path.empty()) std::printf("\njson report: %s\n", path.c_str());
  return path;
}

}  // namespace bench
}  // namespace kwsc

#endif  // KWSC_BENCH_BENCH_UTIL_H_
