// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Shared harness for the experiment binaries (see DESIGN.md section 4 and
// EXPERIMENTS.md). Each bench prints
//   * a human-readable table of the sweep,
//   * machine-readable "CSV," lines for downstream plotting, and
//   * fitted log-log slopes ("measured exponents") so the scaling claims of
//     Table 1 are checked numerically, not by eyeball.

#ifndef KWSC_BENCH_BENCH_UTIL_H_
#define KWSC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"

namespace kwsc {
namespace bench {

/// Median wall-clock microseconds of `fn` over `reps` runs (after one
/// warm-up run). `fn` should execute one full query batch.
inline double MedianMicros(const std::function<void()>& fn, int reps = 5) {
  fn();  // Warm-up.
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedMicros());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Least-squares slope of log(y) against log(x): the measured scaling
/// exponent. Points with non-positive coordinates are skipped.
inline double FitLogLogSlope(const std::vector<double>& x,
                             const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

/// Section header for a bench's output.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
}

/// A machine-readable row: "CSV,<experiment>,<k1>=<v1>,...".
inline void PrintCsv(const std::string& experiment,
                     const std::vector<std::pair<std::string, double>>& kv) {
  std::printf("CSV,%s", experiment.c_str());
  for (const auto& [key, value] : kv) {
    std::printf(",%s=%.6g", key.c_str(), value);
  }
  std::printf("\n");
}

inline void PrintExponent(const std::string& label, double measured,
                          double expected) {
  std::printf("measured exponent [%s]: %.3f (paper shape: %.3f)\n",
              label.c_str(), measured, expected);
}

/// Machine-trackable bench output: collects the sweep points and fitted
/// exponents a bench prints and writes them as BENCH_<name>.json in the
/// working directory, so successive runs can be diffed by tooling instead of
/// by scraping stdout. Keys are bench-authored identifiers (no escaping);
/// non-finite values become JSON null.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void AddPoint(const std::vector<std::pair<std::string, double>>& kv) {
    points_.push_back(kv);
  }

  void AddExponent(const std::string& label, double measured,
                   double expected) {
    exponents_.push_back({label, measured, expected});
  }

  /// Returns the path written, or "" on failure (reported on stderr — a
  /// bench should still finish its stdout protocol).
  std::string Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s for writing\n",
                   path.c_str());
      return "";
    }
    std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"points\": [", name_.c_str());
    for (size_t i = 0; i < points_.size(); ++i) {
      std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
      for (size_t j = 0; j < points_[i].size(); ++j) {
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     points_[i][j].first.c_str(),
                     Num(points_[i][j].second).c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ],\n  \"exponents\": [");
    for (size_t i = 0; i < exponents_.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"label\": \"%s\", \"measured\": %s, "
                   "\"expected\": %s}",
                   i == 0 ? "" : ",", exponents_[i].label.c_str(),
                   Num(exponents_[i].measured).c_str(),
                   Num(exponents_[i].expected).c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return path;
  }

 private:
  struct Exponent {
    std::string label;
    double measured;
    double expected;
  };

  static std::string Num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, double>>> points_;
  std::vector<Exponent> exponents_;
};

/// PrintCsv that also records the row into a report (nullptr = print only).
inline void PrintCsv(const std::string& experiment,
                     const std::vector<std::pair<std::string, double>>& kv,
                     JsonReport* report) {
  if (report != nullptr) report->AddPoint(kv);
  PrintCsv(experiment, kv);
}

/// PrintExponent that also records into a report (nullptr = print only).
inline void PrintExponent(const std::string& label, double measured,
                          double expected, JsonReport* report) {
  if (report != nullptr) report->AddExponent(label, measured, expected);
  PrintExponent(label, measured, expected);
}

}  // namespace bench
}  // namespace kwsc

#endif  // KWSC_BENCH_BENCH_UTIL_H_
