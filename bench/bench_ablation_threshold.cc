// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment A1 — ablation of the large/small threshold exponent alpha
// (Section 3.2 picks alpha = 1 - 1/k). Smaller alpha declares more keywords
// large (bigger tuple registries, deeper descents); larger alpha
// materializes longer lists. The paper's choice should sit at or near the
// measured optimum on a mixed workload.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/orp_kw.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 48;

void Run(int k) {
  const uint32_t n_objects = 65536;
  Rng rng(123 + k);
  CorpusSpec spec;
  spec.num_objects = n_objects;
  spec.vocab_size = 4096;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);

  // Mixed workload: half W1-style (frequent keywords, tiny boxes), half
  // W2-style (co-occurring keywords, large boxes).
  std::vector<Box<2>> boxes;
  std::vector<std::vector<KeywordId>> kws;
  for (int i = 0; i < kQueries; ++i) {
    const bool w1 = i % 2 == 0;
    boxes.push_back(GenerateBoxQuery(std::span<const Point<2>>(pts),
                                     w1 ? 0.001 : 0.6, &rng));
    kws.push_back(PickQueryKeywords(
        corpus, k, w1 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng, /*frequent_pool=*/6));
  }

  const double paper_alpha = 1.0 - 1.0 / k;
  std::printf("\n-- k=%d (paper alpha = %.3f) --\n", k, paper_alpha);
  std::printf("%8s %14s %14s %16s\n", "alpha", "query(us)", "examined",
              "index bytes/N");
  for (double alpha : {0.15, 0.3, paper_alpha - 0.1, paper_alpha,
                       paper_alpha + 0.1, 0.9, 0.99}) {
    if (alpha <= 0 || alpha >= 1) continue;
    FrameworkOptions opt;
    opt.k = k;
    opt.alpha = alpha;
    OrpKwIndex<2> index(pts, &corpus, opt);
    uint64_t examined = 0;
    for (int i = 0; i < kQueries; ++i) {
      QueryStats stats;
      index.Query(boxes[i], kws[i], &stats);
      examined += stats.ObjectsExamined();
    }
    const double t = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(boxes[i], kws[i]);
    }, /*reps=*/3) / kQueries;
    const double bytes_per_n =
        index.MemoryBytes() / static_cast<double>(corpus.total_weight());
    std::printf("%8.3f %14.2f %14.1f %16.1f\n", alpha, t,
                double(examined) / kQueries, bytes_per_n);
    bench::PrintCsv("A1", {{"k", double(k)},
                           {"alpha", alpha},
                           {"query_us", t},
                           {"examined", double(examined) / kQueries},
                           {"bytes_per_N", bytes_per_n}});
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "A1 large/small threshold ablation (Section 3.2)",
      "the N_u^{1-1/k} cutoff balances tuple-registry descent against "
      "materialized-list scans; extreme alphas should degrade time or space");
  kwsc::Run(2);
  kwsc::Run(3);
  return 0;
}
