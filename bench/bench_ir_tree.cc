// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment RW — the related-work contrast (Section 2): the paper observes
// that the spatial-keyword indexes of the systems literature "perform well
// on real data" but "do not have interesting theoretical guarantees". This
// bench stages that contrast: a simplified IR-tree (baseline/ir_tree.h) vs.
// the Theorem-1 index on two workloads —
//   * "friendly": rare/co-occurring keywords, where the IR-tree's summary
//     pruning shines and both indexes are fast;
//   * "adversarial": two frequent keywords that never co-occur inside the
//     query region, where the IR-tree degenerates to an R-tree region scan
//     while the transformed index keeps its N^{1-1/k} guarantee.

#include <cstdio>

#include "baseline/ir_tree.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/orp_kw.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 32;

void Friendly() {
  std::printf("\n-- friendly workload: co-occurring keywords, 5%% boxes --\n");
  std::printf("%10s %12s %14s %14s\n", "N", "OUT(avg)", "kwsc(us)",
              "ir-tree(us)");
  for (uint32_t n_objects : {8192u, 32768u, 131072u}) {
    Rng rng(n_objects + 77);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts =
        GeneratePoints<2>(n_objects, PointDistribution::kClustered, &rng);
    FrameworkOptions opt;
    opt.k = 2;
    OrpKwIndex<2> orp(pts, &corpus, opt);
    IrTree<2> ir(pts, &corpus);

    std::vector<Box<2>> boxes;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      boxes.push_back(
          GenerateBoxQuery(std::span<const Point<2>>(pts), 0.05, &rng));
      kws.push_back(
          PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng));
    }
    uint64_t out_total = 0;
    for (int i = 0; i < kQueries; ++i) {
      out_total += orp.Query(boxes[i], kws[i]).size();
    }
    const double t_orp = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) orp.Query(boxes[i], kws[i]);
    }) / kQueries;
    const double t_ir = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) ir.Query(boxes[i], kws[i]);
    }) / kQueries;
    const double n = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %12.1f %14.2f %14.2f\n", n,
                static_cast<double>(out_total) / kQueries, t_orp, t_ir);
    bench::PrintCsv("RW", {{"friendly", 1},
                           {"N", n},
                           {"OUT", static_cast<double>(out_total) / kQueries},
                           {"kwsc_us", t_orp},
                           {"irtree_us", t_ir}});
  }
}

void Adversarial() {
  std::printf(
      "\n-- adversarial workload: frequent disjoint pair, whole space, "
      "OUT = 0 --\n");
  std::printf("%10s %14s %14s %16s %16s\n", "N", "kwsc(us)", "ir-tree(us)",
              "kwsc examined", "ir candidates");
  std::vector<double> ns;
  std::vector<double> ir_cands;
  for (uint32_t n_objects : {8192u, 32768u, 131072u}) {
    Rng rng(n_objects + 78);
    std::vector<Document> docs;
    std::vector<Point<2>> pts;
    for (uint32_t i = 0; i < n_objects; ++i) {
      // Keywords 0 and 1 each cover half the data, never together; plus
      // background tags so documents look realistic.
      docs.push_back(Document{static_cast<KeywordId>(i % 2),
                              static_cast<KeywordId>(2 + i % 64),
                              static_cast<KeywordId>(66 + i % 512)});
      pts.push_back({{rng.NextDouble(), rng.NextDouble()}});
    }
    Corpus corpus(std::move(docs));
    FrameworkOptions opt;
    opt.k = 2;
    OrpKwIndex<2> orp(pts, &corpus, opt);
    IrTree<2> ir(pts, &corpus);
    std::vector<KeywordId> kws = {0, 1};
    const auto everything = Box<2>::Everything();

    QueryStats orp_stats;
    orp.Query(everything, kws, &orp_stats);
    BaselineStats ir_stats;
    ir.Query(everything, kws, &ir_stats);
    const double t_orp =
        bench::MedianMicros([&] { orp.Query(everything, kws); });
    const double t_ir =
        bench::MedianMicros([&] { ir.Query(everything, kws); });
    const double n = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %14.2f %14.2f %16llu %16llu\n", n, t_orp, t_ir,
                static_cast<unsigned long long>(orp_stats.ObjectsExamined()),
                static_cast<unsigned long long>(ir_stats.candidates));
    bench::PrintCsv("RW", {{"friendly", 0},
                           {"N", n},
                           {"kwsc_us", t_orp},
                           {"irtree_us", t_ir},
                           {"kwsc_examined",
                            double(orp_stats.ObjectsExamined())},
                           {"ir_candidates", double(ir_stats.candidates)}});
    ns.push_back(n);
    ir_cands.push_back(std::max(double(ir_stats.candidates), 1.0));
  }
  bench::PrintExponent("RW ir-tree candidates vs N (adversarial)",
                       bench::FitLogLogSlope(ns, ir_cands), 1.0);
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "RW theory vs. empirical spatial-keyword indexing (Section 2)",
      "the IR-tree prunes well on friendly keyword distributions but has no "
      "worst-case guarantee; the Theorem-1 index stays sublinear on the "
      "adversarial frequent-disjoint workload");
  kwsc::Friendly();
  kwsc::Adversarial();
  return 0;
}
