// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment F2 — Figure 2 and Propositions 1-3 (Section 4): the structure
// of the dimension-reduction tree.
//   * Proposition 1: O(log log N) levels — levels grow by at most one when N
//     quadruples.
//   * Proposition 3: f_u = O(N^{1-1/k}) — max fanout per level reported.
//   * Figure 2: a query meets at most two type-2 nodes per level — verified
//     over a query batch.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/dim_reduction.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

void Run(uint32_t n_objects) {
  Rng rng(n_objects);
  CorpusSpec spec;
  spec.num_objects = n_objects;
  spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n_objects, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  const auto shape = index.Shape();

  std::printf("\nN=%llu (objects %u): levels=%d\n",
              static_cast<unsigned long long>(corpus.total_weight()),
              n_objects, shape.levels);
  std::printf("%8s %12s %14s %14s\n", "level", "nodes", "max fanout",
              "f bound(2N^.5)");
  const double fanout_bound =
      2.0 * std::pow(static_cast<double>(corpus.total_weight()), 0.5);
  for (int level = 0; level < shape.levels; ++level) {
    std::printf("%8d %12u %14llu %14.0f\n", level,
                shape.nodes_per_level[level],
                static_cast<unsigned long long>(
                    shape.max_fanout_per_level[level]),
                fanout_bound);
  }

  // Query batch: max type-2 nodes per level over 64 queries.
  uint32_t max_type2 = 0;
  uint64_t total_type1 = 0;
  uint64_t total_type2 = 0;
  for (int trial = 0; trial < 64; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<3>>(pts),
                              rng.UniformDouble(0.01, 0.9), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    QueryStats stats;
    index.Query(q, kws, &stats);
    total_type1 += stats.type1_nodes;
    total_type2 += stats.type2_nodes;
    for (uint32_t c : stats.type2_per_level) max_type2 = std::max(max_type2, c);
  }
  std::printf("queries: avg type-1 nodes %.1f, avg type-2 nodes %.1f, "
              "max type-2 per level %u (Figure 2 bound: 2)\n",
              total_type1 / 64.0, total_type2 / 64.0, max_type2);
  bench::PrintCsv("F2", {{"N", double(corpus.total_weight())},
                         {"levels", double(shape.levels)},
                         {"max_type2_per_level", double(max_type2)},
                         {"avg_type1", total_type1 / 64.0},
                         {"avg_type2", total_type2 / 64.0}});
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "F2 dimension-reduction tree shape (Figure 2, Propositions 1-3)",
      "O(loglog N) levels; f_u = 2*2^{k^level} capped at O(N^{1-1/k}); "
      "at most two type-2 nodes per level per query");
  for (uint32_t n : {4096u, 16384u, 65536u, 262144u}) kwsc::Run(n);
  return 0;
}
