// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiments T1.3 + T1.6 — Table 1 rows "linear conjunction with keywords"
// (Theorem 5) and the d <= k ORP-via-LC remark: s = O(1) halfspace
// constraints plus k keywords, on both partition substrates (ham-sandwich
// cells for d = 2, box cells for d = 3), vs. the naive baselines.

#include <cstdio>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "bench_util.h"
#include "common/random.h"
#include "core/lc_kw.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kQueries = 24;

void Run2D(int k, int num_constraints) {
  std::printf("\n-- d=2 (ham-sandwich substrate), k=%d, s=%d --\n", k,
              num_constraints);
  std::printf("%10s %12s %14s %14s %14s\n", "N", "OUT(avg)", "index(us)",
              "struct(us)", "kwonly(us)");
  std::vector<double> ns;
  std::vector<double> work;
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    Rng rng(n_objects * 7 + k + num_constraints);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts = GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);
    FrameworkOptions opt;
    opt.k = k;
    LcKwIndex<2> index(pts, &corpus, opt);
    StructuredOnlyBaseline<2> structured(pts, &corpus);
    KeywordsOnlyBaseline<2> keywords(pts, &corpus);

    std::vector<ConvexQuery<2>> queries;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      ConvexQuery<2> q;
      for (int c = 0; c < num_constraints; ++c) {
        // Moderately selective constraints; their conjunction is narrow.
        q.constraints.push_back(GenerateHalfspaceQuery(
            std::span<const Point<2>>(pts), rng.UniformDouble(0.1, 0.4),
            &rng));
      }
      queries.push_back(std::move(q));
      kws.push_back(PickQueryKeywords(corpus, k, KeywordPick::kFrequent, &rng,
                                      /*frequent_pool=*/6));
    }

    uint64_t out_total = 0;
    uint64_t examined_total = 0;
    for (int i = 0; i < kQueries; ++i) {
      QueryStats stats;
      out_total += index.Query(queries[i], kws[i], &stats).size();
      examined_total += stats.ObjectsExamined();
    }
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(queries[i], kws[i]);
    }) / kQueries;
    const double t_struct = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        structured.QueryConvex(queries[i], kws[i]);
      }
    }) / kQueries;
    const double t_kw = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        keywords.QueryConvex(queries[i], kws[i]);
      }
    }) / kQueries;

    const double n_weight = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %12.1f %14.2f %14.2f %14.2f\n", n_weight,
                static_cast<double>(out_total) / kQueries, t_index, t_struct,
                t_kw);
    bench::PrintCsv("T1.6",
                    {{"d", 2},
                     {"k", double(k)},
                     {"s", double(num_constraints)},
                     {"N", n_weight},
                     {"OUT", static_cast<double>(out_total) / kQueries},
                     {"index_us", t_index},
                     {"structured_us", t_struct},
                     {"keywords_us", t_kw}});
    ns.push_back(n_weight);
    work.push_back(
        std::max(static_cast<double>(examined_total) / kQueries, 1.0));
  }
  bench::PrintExponent(
      "T1.6 d=2 work vs N, k=" + std::to_string(k) +
          " s=" + std::to_string(num_constraints),
      bench::FitLogLogSlope(ns, work), 1.0 - 1.0 / k);
}

void Run3D(int k) {
  std::printf("\n-- d=3 (box substrate), k=%d, s=2 --\n", k);
  std::printf("%10s %12s %14s %14s\n", "N", "OUT(avg)", "index(us)",
              "struct(us)");
  for (uint32_t n_objects : {8192u, 32768u, 65536u}) {
    Rng rng(n_objects * 11 + k);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    auto pts = GeneratePoints<3>(n_objects, PointDistribution::kUniform, &rng);
    FrameworkOptions opt;
    opt.k = k;
    LcKwIndex<3> index(pts, &corpus, opt);
    StructuredOnlyBaseline<3> structured(pts, &corpus);

    std::vector<ConvexQuery<3>> queries;
    std::vector<std::vector<KeywordId>> kws;
    for (int i = 0; i < kQueries; ++i) {
      ConvexQuery<3> q;
      q.constraints.push_back(GenerateHalfspaceQuery(
          std::span<const Point<3>>(pts), rng.UniformDouble(0.1, 0.4), &rng));
      q.constraints.push_back(GenerateHalfspaceQuery(
          std::span<const Point<3>>(pts), rng.UniformDouble(0.1, 0.4), &rng));
      queries.push_back(std::move(q));
      kws.push_back(PickQueryKeywords(corpus, k, KeywordPick::kFrequent, &rng,
                                      /*frequent_pool=*/6));
    }
    uint64_t out_total = 0;
    for (int i = 0; i < kQueries; ++i) {
      out_total += index.Query(queries[i], kws[i]).size();
    }
    const double t_index = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) index.Query(queries[i], kws[i]);
    }) / kQueries;
    const double t_struct = bench::MedianMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        structured.QueryConvex(queries[i], kws[i]);
      }
    }) / kQueries;
    const double n_weight = static_cast<double>(corpus.total_weight());
    std::printf("%10.0f %12.1f %14.2f %14.2f\n", n_weight,
                static_cast<double>(out_total) / kQueries, t_index, t_struct);
    bench::PrintCsv("T1.6",
                    {{"d", 3},
                     {"k", double(k)},
                     {"s", 2},
                     {"N", n_weight},
                     {"OUT", static_cast<double>(out_total) / kQueries},
                     {"index_us", t_index},
                     {"structured_us", t_struct}});
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.3/T1.6 LC-KW (Theorem 5 / Theorem 12)",
      "d <= k: O(N) space, time ~ N^{1-1/k} (log N + OUT^{1/k}); d > k adds "
      "an N^{1-1/d} crossing term (substrate crossing exponent documented in "
      "DESIGN.md substitution 1)");
  kwsc::Run2D(/*k=*/2, /*num_constraints=*/1);
  kwsc::Run2D(/*k=*/2, /*num_constraints=*/3);
  kwsc::Run2D(/*k=*/3, /*num_constraints=*/2);
  kwsc::Run3D(/*k=*/2);
  return 0;
}
