// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment T1.9 — k-SI itself (Section 1.2 / Section 2): the framework
// index (generalized Cohen–Porat) vs. the naive inverted-index merge.
// Two sweeps:
//   * OUT sweep at fixed N (two large sets with planted overlap): the
//     index's work should grow ~ OUT^{1/k} while the naive merge is flat at
//     Theta(N);
//   * N sweep at OUT = 0: index work ~ N^{1-1/k}, naive ~ N. The emptiness
//     query (footnote 4's budget device) is timed separately.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/flat_hash.h"
#include "common/random.h"
#include "ksi/framework_ksi.h"
#include "ksi/ksi_instance.h"
#include "ksi/naive_ksi.h"

namespace kwsc {
namespace {

// Two sets of `side` elements each sharing exactly `overlap` values.
std::vector<std::vector<int64_t>> PlantedPair(int64_t side, int64_t overlap) {
  std::vector<std::vector<int64_t>> sets(2);
  for (int64_t v = 0; v < side; ++v) sets[0].push_back(v);
  for (int64_t v = side - overlap; v < 2 * side - overlap; ++v) {
    sets[1].push_back(v);
  }
  return sets;
}

void SweepOut() {
  std::printf("\n-- OUT sweep, N = 2^16, k=2 --\n");
  std::printf("%8s %14s %14s %14s\n", "OUT", "index(us)", "naive(us)",
              "examined");
  const int64_t side = 32768;
  std::vector<double> outs;
  std::vector<double> work;
  for (int64_t overlap : {0, 4, 16, 64, 256, 1024, 4096}) {
    auto sets = PlantedPair(side, overlap);
    auto instance = KsiInstance::FromSets(sets);
    NaiveKsi naive(&instance);
    FrameworkOptions opt;
    opt.k = 2;
    FrameworkKsi framework(&instance, opt);
    std::vector<KeywordId> q = {0, 1};

    QueryStats stats;
    auto result = framework.Report(q, &stats);
    const double t_index =
        bench::MedianMicros([&] { framework.Report(q); });
    const double t_naive = bench::MedianMicros([&] { naive.Report(q); });
    std::printf("%8lld %14.2f %14.2f %14llu\n",
                static_cast<long long>(result.size()), t_index, t_naive,
                static_cast<unsigned long long>(stats.ObjectsExamined()));
    bench::PrintCsv("T1.9",
                    {{"N", double(instance.corpus.total_weight())},
                     {"OUT", double(result.size())},
                     {"index_us", t_index},
                     {"naive_us", t_naive},
                     {"examined", double(stats.ObjectsExamined())}});
    if (overlap > 0) {
      outs.push_back(static_cast<double>(result.size()));
      work.push_back(static_cast<double>(stats.ObjectsExamined()));
    }
  }
  bench::PrintExponent("T1.9 work vs OUT (k=2)",
                       bench::FitLogLogSlope(outs, work), 1.0 / 2);
}

void SweepN() {
  std::printf("\n-- N sweep, OUT = 0, k=2 --\n");
  std::printf("%10s %14s %14s %16s %14s\n", "N", "report(us)", "naive(us)",
              "emptiness(us)", "examined");
  std::vector<double> ns;
  std::vector<double> work;
  for (int64_t side : {4096, 8192, 16384, 32768, 65536, 131072}) {
    auto sets = PlantedPair(side, /*overlap=*/0);
    auto instance = KsiInstance::FromSets(sets);
    NaiveKsi naive(&instance);
    FrameworkOptions opt;
    opt.k = 2;
    FrameworkKsi framework(&instance, opt);
    std::vector<KeywordId> q = {0, 1};
    QueryStats stats;
    framework.Report(q, &stats);
    const double t_index = bench::MedianMicros([&] { framework.Report(q); });
    const double t_naive = bench::MedianMicros([&] { naive.Report(q); });
    const double t_empty = bench::MedianMicros([&] { framework.Empty(q); });
    const double n = static_cast<double>(instance.corpus.total_weight());
    std::printf("%10.0f %14.2f %14.2f %16.2f %14llu\n", n, t_index, t_naive,
                t_empty,
                static_cast<unsigned long long>(stats.ObjectsExamined()));
    bench::PrintCsv("T1.9", {{"N", n},
                             {"OUT", 0},
                             {"index_us", t_index},
                             {"naive_us", t_naive},
                             {"empty_us", t_empty},
                             {"examined", double(stats.ObjectsExamined())}});
    ns.push_back(n);
    work.push_back(std::max(double(stats.ObjectsExamined()), 1.0));
  }
  bench::PrintExponent("T1.9 work vs N at OUT=0 (k=2)",
                       bench::FitLogLogSlope(ns, work), 0.5);
}

void SweepK() {
  std::printf("\n-- k sweep, Zipf instance m=64 sets, N ~ 2^17 --\n");
  std::printf("%4s %6s %10s %14s %14s\n", "k", "mix", "OUT(avg)", "index(us)", "naive(us)");
  Rng rng(31415);
  // One shared instance; k varies per index build.
  std::vector<std::vector<int64_t>> sets(64);
  for (size_t i = 0; i < sets.size(); ++i) {
    const size_t size = 131072 / (2 * (i + 1));
    FlatHashSet<uint64_t> seen;
    while (sets[i].size() < size) {
      const int64_t v = static_cast<int64_t>(rng.NextBounded(262144));
      if (seen.Insert(static_cast<uint64_t>(v))) sets[i].push_back(v);
    }
  }
  auto instance = KsiInstance::FromSets(sets);
  NaiveKsi naive(&instance);
  // Two query mixes: "heavy" intersects the largest sets (OUT-dominated,
  // where the +OUT term makes everyone pay and the merge's constants can
  // win) and "light" intersects random sets (OUT usually tiny — the regime
  // the index is for).
  for (int k : {2, 3, 4}) {
    FrameworkOptions opt;
    opt.k = k;
    FrameworkKsi framework(&instance, opt);
    for (const bool heavy : {true, false}) {
      std::vector<std::vector<KeywordId>> queries;
      for (int i = 0; i < 16; ++i) {
        std::vector<KeywordId> q;
        const uint64_t pool = heavy ? 16 : sets.size();
        while (q.size() < static_cast<size_t>(k)) {
          KeywordId id = static_cast<KeywordId>(rng.NextBounded(pool));
          if (std::find(q.begin(), q.end(), id) == q.end()) q.push_back(id);
        }
        queries.push_back(q);
      }
      uint64_t out_total = 0;
      for (const auto& q : queries) out_total += framework.Report(q).size();
      const double t_index = bench::MedianMicros([&] {
        for (const auto& q : queries) framework.Report(q);
      }) / queries.size();
      const double t_naive = bench::MedianMicros([&] {
        for (const auto& q : queries) naive.Report(q);
      }) / queries.size();
      std::printf("%4d %6s %10.1f %14.2f %14.2f\n", k,
                  heavy ? "heavy" : "light",
                  static_cast<double>(out_total) / queries.size(), t_index,
                  t_naive);
      bench::PrintCsv("T1.9", {{"k", double(k)},
                               {"heavy", double(heavy)},
                               {"OUT", double(out_total) / queries.size()},
                               {"N", double(instance.corpus.total_weight())},
                               {"index_us", t_index},
                               {"naive_us", t_naive}});
    }
  }
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "T1.9 k-SI (Section 1.2; generalized Cohen–Porat [23])",
      "O(N) space, reporting ~ N^{1-1/k} (1 + OUT^{1/k}); emptiness ~ "
      "N^{1-1/k}; naive merge is Theta(N)");
  kwsc::SweepOut();
  kwsc::SweepN();
  kwsc::SweepK();
  return 0;
}
