// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment B — construction cost. The paper, like most PODS indexing
// work, does not analyze preprocessing; a library user needs the numbers.
// Build time and index size vs. N for every major index, with fitted
// exponents: near-linear slopes mean the per-level keyword counting and
// tuple enumeration behave as the design intends (DESIGN.md substitution 2
// bounds construction by sum_e C(|e.Doc|, k) per level).

#include <cstdio>
#include <cstdlib>

#include "audit/audit.h"
#include "audit/index_auditor.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/dim_reduction.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "core/sp_kw_box.h"
#include "core/sp_kw_hs.h"
#include "obs/metrics.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

/// With KWSC_AUDIT on (compile definition or environment), every index this
/// benchmark builds is audited before it is discarded — construction sizes
/// here exceed anything the unit tests build, so this is where invariant
/// drift at scale would surface. The audit runs inside the timed section:
/// KWSC_AUDIT is a correctness mode, not a measurement mode, and the
/// reported timings say so implicitly (do not mix audited and plain runs).
template <typename Index>
void MaybeAudit(const char* name, const Index& index) {
  if (!audit::AuditEnabled()) return;
  const audit::AuditReport report = audit::AuditIndex(index);
  if (!report.ok()) {
    std::fprintf(stderr, "AUDIT FAILED [%s]:\n%s\n", name,
                 report.ToString().c_str());
    std::exit(1);
  }
}

template <typename BuildFn>
void Sweep(const char* name, double index_id, bench::JsonReport* report,
           BuildFn&& build) {
  std::printf("\n-- %s --\n", name);
  std::printf("%10s %14s %14s\n", "N", "build(ms)", "bytes/N");
  std::vector<double> ns;
  std::vector<double> times;
  for (uint32_t n_objects : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    Rng rng(n_objects * 5 + 1);
    CorpusSpec spec;
    spec.num_objects = n_objects;
    spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
    Corpus corpus = GenerateCorpus(spec, &rng);
    const double n = static_cast<double>(corpus.total_weight());
    // RSS sampled before AND after the build: the point-in-time delta is
    // what this index costs, not the process high-water mark.
    const bench::RssDeltaProbe rss;
    WallTimer timer;
    const size_t bytes = build(corpus, &rng);
    const double ms = timer.ElapsedMillis();
    const double rss_delta = static_cast<double>(rss.DeltaBytes());
    std::printf("%10.0f %14.2f %14.1f\n", n, ms, bytes / n);
    bench::PrintCsv("B",
                    {{"index", index_id},
                     {"N", n},
                     {"build_ms", ms},
                     {"bytes_per_N", bytes / n},
                     {"rss_delta_bytes", rss_delta}},
                    report);
    ns.push_back(n);
    times.push_back(ms);
  }
  bench::PrintExponent(std::string("B build time [") + name + "]",
                       bench::FitLogLogSlope(ns, times),
                       1.0,  // Near-linear (polylog factors expected).
                       report);
  // Build wall time at the largest N, as a named gauge the perf trajectory
  // can diff without fishing through the points array.
  report->SetGauge("build_wall_ms_idx" + std::to_string(int(index_id)),
                   times.back());
}

/// A small fixed query batch against the Theorem-1 index: bench_build's
/// JSON carries query latency quantiles too, so a construction-affecting
/// regression that also disturbs the query path shows up in one record.
void QueryLatencyProbe(const FrameworkOptions& base_opt,
                       bench::JsonReport* report) {
  constexpr uint32_t kObjects = 16384;
  constexpr int kQueries = 256;
  Rng rng(kObjects * 5 + 1);
  CorpusSpec spec;
  spec.num_objects = kObjects;
  spec.vocab_size = std::max<uint32_t>(64, kObjects / 16);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(kObjects, PointDistribution::kUniform, &rng);
  OrpKwIndex<2> index(pts, &corpus, base_opt);
  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < kQueries; ++i) {
    batch.push_back({GenerateBoxQuery(std::span<const Point<2>>(pts),
                                      i % 2 == 0 ? 0.001 : 0.1, &rng),
                     PickQueryKeywords(corpus, 2,
                                       i % 2 == 0 ? KeywordPick::kFrequent
                                                  : KeywordPick::kCooccurring,
                                       &rng)});
  }
  obs::MetricsRegistry registry;
  QueryEngine<OrpKwIndex<2>> engine(&index, base_opt, &registry);
  const auto result = engine.Run(batch);
  std::printf("\n-- query latency probe (OrpKwIndex<2>, %d queries) --\n",
              kQueries);
  std::printf("p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
              result.latency.P50() / 1e3, result.latency.P90() / 1e3,
              result.latency.P99() / 1e3, result.latency.max() / 1e3);
  report->AddHistogram("query_latency_ns", result.latency, "ns");
  report->AddHistogram("query_work_objects", result.work, "objects");
  obs::AddQueryStatsCounters(result.stats, "probe_stats",
                             report->mutable_registry());
  report->MergeRegistry(registry);
}

}  // namespace
}  // namespace kwsc

int main() {
  using namespace kwsc;
  bench::PrintHeader(
      "B construction cost (all indexes)",
      "build scales near-linearly (N polylog N); preprocessing is outside "
      "the paper's analysis but inside a user's budget");
  FrameworkOptions opt;
  opt.k = 2;
  bench::JsonReport report("build");

  Sweep("OrpKwIndex<2> (Theorem 1)", 0, &report,
        [&](const Corpus& corpus, Rng* rng) {
          auto pts = GeneratePoints<2>(corpus.num_objects(),
                                       PointDistribution::kUniform, rng);
          OrpKwIndex<2> index(pts, &corpus, opt);
          MaybeAudit("OrpKwIndex<2>", index);
          return index.MemoryBytes();
        });
  Sweep("SpKwHsIndex (partition tree d=2)", 1, &report,
        [&](const Corpus& corpus, Rng* rng) {
          auto pts = GeneratePoints<2>(corpus.num_objects(),
                                       PointDistribution::kUniform, rng);
          SpKwHsIndex index(pts, &corpus, opt);
          return index.MemoryBytes();
        });
  Sweep("SpKwBoxIndex<3>", 2, &report, [&](const Corpus& corpus, Rng* rng) {
    auto pts = GeneratePoints<3>(corpus.num_objects(),
                                 PointDistribution::kUniform, rng);
    SpKwBoxIndex<3> index(pts, &corpus, opt);
    MaybeAudit("SpKwBoxIndex<3>", index);
    return index.MemoryBytes();
  });
  Sweep("DimRedOrpKwIndex<3> (Theorem 2)", 3, &report,
        [&](const Corpus& corpus, Rng* rng) {
          auto pts = GeneratePoints<3>(corpus.num_objects(),
                                       PointDistribution::kUniform, rng);
          DimRedOrpKwIndex<3> index(pts, &corpus, opt);
          MaybeAudit("DimRedOrpKwIndex<3>", index);
          return index.MemoryBytes();
        });
  QueryLatencyProbe(opt, &report);
  bench::EmitJson(&report);
  return 0;
}
