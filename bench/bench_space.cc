// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Experiment SP — the space column of Table 1: bytes per unit of input size
// N for every index, across an N sweep. Linear-space claims (Theorems 1, 5;
// Corollaries 6, 7; k-SI) show as flat bytes/N; the dimension-reduction rows
// show the O((loglog N)^{d-2}) growth.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/dim_reduction.h"
#include "core/nn_linf.h"
#include "core/orp_kw.h"
#include "core/rr_kw.h"
#include "core/sp_kw_box.h"
#include "core/sp_kw_hs.h"
#include "core/srp_kw.h"
#include "ksi/framework_ksi.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

void Run(uint32_t n_objects) {
  Rng rng(n_objects * 3);
  CorpusSpec spec;
  spec.num_objects = n_objects;
  spec.vocab_size = std::max<uint32_t>(64, n_objects / 16);
  Corpus corpus = GenerateCorpus(spec, &rng);
  const double n_weight = static_cast<double>(corpus.total_weight());
  auto pts2 = GeneratePoints<2>(n_objects, PointDistribution::kUniform, &rng);
  auto pts3 = GeneratePoints<3>(n_objects, PointDistribution::kUniform, &rng);
  auto rects1 = GenerateRects<1>(n_objects, PointDistribution::kUniform, 0.02,
                                 &rng);
  FrameworkOptions opt;
  opt.k = 2;

  OrpKwIndex<2> orp(pts2, &corpus, opt);
  SpKwHsIndex hs(pts2, &corpus, opt);
  SpKwBoxIndex<2> sp_box(pts2, &corpus, opt);
  SrpKwIndex<2> srp(pts2, &corpus, opt);
  DimRedOrpKwIndex<3> dimred3(pts3, &corpus, opt);
  RrKwIndex<1> rr1(rects1, &corpus, opt);

  auto sets = GenerateKsiSets(16, n_objects, n_objects / 32.0, &rng);
  auto instance = KsiInstance::FromSets(sets);
  FrameworkKsi ksi(&instance, opt);

  std::printf("%10.0f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
              n_weight, orp.MemoryBytes() / n_weight,
              hs.MemoryBytes() / n_weight, sp_box.MemoryBytes() / n_weight,
              srp.MemoryBytes() / n_weight, dimred3.MemoryBytes() / n_weight,
              rr1.MemoryBytes() / n_weight,
              ksi.MemoryBytes() /
                  static_cast<double>(instance.corpus.total_weight()));
  bench::PrintCsv(
      "SP", {{"N", n_weight},
             {"orp2_bpn", orp.MemoryBytes() / n_weight},
             {"hs2_bpn", hs.MemoryBytes() / n_weight},
             {"spbox2_bpn", sp_box.MemoryBytes() / n_weight},
             {"srp2_bpn", srp.MemoryBytes() / n_weight},
             {"dimred3_bpn", dimred3.MemoryBytes() / n_weight},
             {"rr1_bpn", rr1.MemoryBytes() / n_weight},
             {"ksi_bpn", ksi.MemoryBytes() /
                             double(instance.corpus.total_weight())}});
}

}  // namespace
}  // namespace kwsc

int main() {
  kwsc::bench::PrintHeader(
      "SP space usage (Table 1 space column)",
      "linear-space rows stay flat in bytes/N as N grows; the d=3 "
      "dimension-reduction index grows by a loglog factor");
  std::printf("%10s %10s %10s %10s %10s %10s %10s %10s\n", "N", "orp2",
              "hs2", "spbox2", "srp2", "dimred3", "rr1", "ksi");
  for (uint32_t n : {4096u, 8192u, 16384u, 32768u, 65536u}) kwsc::Run(n);
  return 0;
}
