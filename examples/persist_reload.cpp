// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Persistence: build an ORP-KW index once, save it with the corpus to disk,
// and reload both in a fraction of the build time — the workflow a serving
// system uses (build offline, load on start-up).
//
//   $ ./build/examples/persist_reload

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "common/timer.h"
#include "core/orp_kw.h"
#include "workload/generator.h"

int main() {
  using namespace kwsc;

  const uint32_t n = 100000;
  Rng rng(9);
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 4096;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto points = GeneratePoints<2>(n, PointDistribution::kClustered, &rng);

  FrameworkOptions options;
  options.k = 2;

  WallTimer build_timer;
  OrpKwIndex<2> index(points, &corpus, options);
  const double build_ms = build_timer.ElapsedMillis();

  const char* corpus_path = "/tmp/kwsc_demo.corpus";
  const char* index_path = "/tmp/kwsc_demo.index";
  {
    std::ofstream corpus_out(corpus_path, std::ios::binary);
    corpus.Save(&corpus_out);
    std::ofstream index_out(index_path, std::ios::binary);
    index.Save(&index_out);
  }

  WallTimer load_timer;
  std::ifstream corpus_in(corpus_path, std::ios::binary);
  Corpus loaded_corpus = Corpus::Load(&corpus_in);
  std::ifstream index_in(index_path, std::ios::binary);
  OrpKwIndex<2> loaded = OrpKwIndex<2>::Load(&index_in, &loaded_corpus);
  const double load_ms = load_timer.ElapsedMillis();

  // Same answers from the reloaded index.
  auto q = GenerateBoxQuery(std::span<const Point<2>>(points), 0.05, &rng);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  const auto before = index.Query(q, kws);
  const auto after = loaded.Query(q, kws);

  std::printf("objects: %u (N = %llu)\n", n,
              static_cast<unsigned long long>(corpus.total_weight()));
  std::printf("build: %.1f ms   save+load: %.1f ms (%.1fx faster)\n",
              build_ms, load_ms, build_ms / load_ms);
  std::printf("query results before/after reload: %zu / %zu (%s)\n",
              before.size(), after.size(),
              before == after ? "identical" : "MISMATCH");
  std::remove(corpus_path);
  std::remove(index_path);
  return before == after ? 0 : 1;
}
