// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Temporal keyword search (RR-KW with d = 1; the paper cites Anand et al.
// [7]): every news article has a validity interval [publish, supersede] and
// a set of topic keywords; a query asks for the articles *live at some point
// of a time window* that mention all k topics.
//
//   $ ./build/examples/temporal_news

#include <cstdio>
#include <vector>

#include "baseline/keywords_only.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/rr_kw.h"
#include "text/corpus.h"

namespace {

using namespace kwsc;

// Topic vocabulary (indices into kTopics).
const char* kTopics[] = {"elections", "energy",  "markets", "science",
                         "health",    "climate", "sports",  "courts"};
constexpr int kNumTopics = 8;

struct NewsArchive {
  Corpus corpus;
  std::vector<Box<1>> lifespans;  // [publish day, supersede day].
};

NewsArchive MakeArchive(uint32_t n_articles, double horizon_days) {
  Rng rng(1848);
  std::vector<Document> docs;
  std::vector<Box<1>> spans;
  for (uint32_t i = 0; i < n_articles; ++i) {
    std::vector<KeywordId> topics;
    // 2-4 topics per article, skewed toward the first few.
    const int count = 2 + static_cast<int>(rng.NextBounded(3));
    while (static_cast<int>(topics.size()) < count) {
      KeywordId t = static_cast<KeywordId>(
          rng.NextBounded(rng.NextBool(0.6) ? 3 : kNumTopics));
      if (std::find(topics.begin(), topics.end(), t) == topics.end()) {
        topics.push_back(t);
      }
    }
    docs.emplace_back(std::move(topics));
    const double publish = rng.UniformDouble(0, horizon_days);
    const double lifetime = 1 + rng.UniformDouble(0, 30);  // Days live.
    spans.push_back({{{publish}}, {{publish + lifetime}}});
  }
  return {Corpus(std::move(docs)), std::move(spans)};
}

}  // namespace

int main() {
  const uint32_t n = 100000;
  const double horizon = 3650;  // Ten years of articles.
  NewsArchive archive = MakeArchive(n, horizon);

  FrameworkOptions opt;
  opt.k = 2;
  RrKwIndex<1> index(archive.lifespans, &archive.corpus, opt);
  KeywordsOnlyRectBaseline<1> baseline(archive.lifespans, &archive.corpus);

  std::printf("archive: %u articles over %.0f days, N = %llu\n", n, horizon,
              static_cast<unsigned long long>(
                  archive.corpus.total_weight()));

  struct Scenario {
    const char* description;
    Box<1> window;
    std::vector<KeywordId> topics;
  };
  const Scenario scenarios[] = {
      {"one week, elections+markets", {{{1000}}, {{1007}}}, {0, 2}},
      {"one day, energy+climate", {{{2500}}, {{2501}}}, {1, 5}},
      {"one year, science+health", {{{365}}, {{730}}}, {3, 4}},
  };

  for (const Scenario& s : scenarios) {
    QueryStats stats;
    WallTimer timer;
    auto hits = index.Query(s.window, s.topics, &stats);
    const double t_index = timer.ElapsedMicros();
    BaselineStats b_stats;
    timer.Restart();
    auto base_hits = baseline.Query(s.window, s.topics, &b_stats);
    const double t_base = timer.ElapsedMicros();

    std::printf("\nquery: %s (days %.0f-%.0f)\n", s.description,
                s.window.lo[0], s.window.hi[0]);
    std::printf("  topics: %s + %s\n", kTopics[s.topics[0]],
                kTopics[s.topics[1]]);
    std::printf("  live matching articles: %zu (baseline agrees: %s)\n",
                hits.size(), hits.size() == base_hits.size() ? "yes" : "NO");
    std::printf("  kwsc RR-KW index: %8.1f us (%llu objects examined)\n",
                t_index,
                static_cast<unsigned long long>(stats.ObjectsExamined()));
    std::printf("  keywords-only:    %8.1f us (%llu candidates)\n", t_base,
                static_cast<unsigned long long>(b_stats.candidates));
  }
  return 0;
}
