// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Quickstart: index a handful of objects and run one keyword + range query.
//
//   $ ./build/examples/quickstart
//
// The public API in three steps:
//   1. build a Corpus (one keyword set per object) and a matching point
//      array (ObjectId i owns points[i]);
//   2. construct an index for a fixed keyword count k;
//   3. query with a rectangle plus exactly k distinct keywords.

#include <cstdio>
#include <vector>

#include "core/orp_kw.h"
#include "text/corpus.h"

int main() {
  using namespace kwsc;

  // Keywords (integers in the library; map your own vocabulary on top).
  constexpr KeywordId kPool = 0;
  constexpr KeywordId kParking = 1;
  constexpr KeywordId kPets = 2;

  // Five hotels: (price, rating) plus amenity tags.
  std::vector<Document> docs = {
      Document{kPool, kParking},         // 0: cheap, average
      Document{kPool, kPets},            // 1: pricey, great
      Document{kPool, kParking, kPets},  // 2: mid, good
      Document{kParking},                // 3: cheap, poor
      Document{kPool, kParking, kPets},  // 4: luxury, great
  };
  std::vector<Point<2>> points = {
      {{80, 6.5}}, {{240, 9.1}}, {{150, 8.2}}, {{60, 4.0}}, {{390, 9.8}},
  };
  Corpus corpus(std::move(docs));

  FrameworkOptions options;
  options.k = 2;  // Every query supplies exactly two keywords.
  OrpKwIndex<2> index(points, &corpus, options);

  // "price in [100, 200] and rating >= 8, with pool and pet-friendly" —
  // condition C1 of the paper's introduction.
  Box<2> range{{{100, 8.0}}, {{200, 10.0}}};
  std::vector<KeywordId> keywords = {kPool, kPets};
  std::vector<ObjectId> hits = index.Query(range, keywords);

  std::printf("hotels with pool + pets, price 100-200, rating >= 8:\n");
  for (ObjectId e : hits) {
    std::printf("  hotel %u  (price %.0f, rating %.1f)\n", e, points[e][0],
                points[e][1]);
  }
  std::printf("index memory: %zu bytes for N = %llu\n", index.MemoryBytes(),
              static_cast<unsigned long long>(corpus.total_weight()));
  return 0;
}
