// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Geographic point-of-interest search: the two query forms of the
// spatial-keyword literature the paper derives in Corollaries 6 and 7.
//   * "all cafes with wifi within 500 m of here"  — SRP-KW (boolean range
//     query with keywords [22]);
//   * "the 5 nearest pharmacies that are open-late" — L2NN-KW on an integer
//     grid (city coordinates in meters).
//
//   $ ./build/examples/geo_poi

#include <cstdio>
#include <vector>

#include "baseline/keywords_only.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/nn_l2.h"
#include "core/srp_kw.h"
#include "text/corpus.h"

namespace {

using namespace kwsc;

// Category/amenity vocabulary.
constexpr KeywordId kCafe = 0;
constexpr KeywordId kPharmacy = 1;
constexpr KeywordId kRestaurant = 2;
constexpr KeywordId kWifi = 3;
constexpr KeywordId kOpenLate = 4;
constexpr KeywordId kTakeaway = 5;
const char* kNames[] = {"cafe", "pharmacy", "restaurant",
                        "wifi", "open-late", "takeaway"};

struct City {
  Corpus corpus;
  std::vector<IntPoint<2>> locations;  // Meters on a 50 km x 50 km grid.
};

City MakeCity(uint32_t n_pois) {
  Rng rng(60611);
  std::vector<Document> docs;
  std::vector<IntPoint<2>> locations;
  for (uint32_t i = 0; i < n_pois; ++i) {
    std::vector<KeywordId> tags;
    tags.push_back(static_cast<KeywordId>(rng.NextBounded(3)));  // Category.
    if (rng.NextBool(0.5)) tags.push_back(kWifi);
    if (rng.NextBool(0.2)) tags.push_back(kOpenLate);
    if (rng.NextBool(0.3)) tags.push_back(kTakeaway);
    tags.push_back(static_cast<KeywordId>(6 + rng.NextBounded(300)));  // Name.
    docs.emplace_back(std::move(tags));
    // Clustered around a few districts.
    const int64_t cx = 5000 + 10000 * static_cast<int64_t>(rng.NextBounded(5));
    const int64_t cy = 5000 + 10000 * static_cast<int64_t>(rng.NextBounded(5));
    locations.push_back(
        {{cx + static_cast<int64_t>(rng.NextGaussian() * 2000),
          cy + static_cast<int64_t>(rng.NextGaussian() * 2000)}});
  }
  return {Corpus(std::move(docs)), std::move(locations)};
}

}  // namespace

int main() {
  const uint32_t n = 150000;
  City city = MakeCity(n);
  std::printf("city: %u POIs, N = %llu tag occurrences\n", n,
              static_cast<unsigned long long>(city.corpus.total_weight()));

  // Double-typed view of the same locations for the SRP index.
  std::vector<Point<2>> locations_d(city.locations.size());
  for (size_t i = 0; i < city.locations.size(); ++i) {
    locations_d[i] = {{static_cast<double>(city.locations[i][0]),
                       static_cast<double>(city.locations[i][1])}};
  }

  FrameworkOptions opt;
  opt.k = 2;
  SrpKwIndex<2> within(locations_d, &city.corpus, opt);
  L2NnIndex<2> nearest(city.locations, &city.corpus, opt);
  KeywordsOnlyBaseline<2> baseline(locations_d, &city.corpus);

  const Point<2> here{{25000.0, 25000.0}};
  const IntPoint<2> here_int{{25000, 25000}};

  // --- within-radius query --------------------------------------------
  const double radius_m = 3000.0;
  std::vector<KeywordId> cafe_wifi = {kCafe, kWifi};
  QueryStats stats;
  WallTimer timer;
  auto in_range = within.Query(here, radius_m * radius_m, cafe_wifi, &stats);
  const double t_srp = timer.ElapsedMicros();
  timer.Restart();
  auto base_hits = baseline.QueryBall(here, radius_m * radius_m, cafe_wifi);
  const double t_base = timer.ElapsedMicros();
  std::printf("\n%ss with %s within %.0f m: %zu (baseline agrees: %s)\n",
              kNames[kCafe], kNames[kWifi], radius_m, in_range.size(),
              in_range.size() == base_hits.size() ? "yes" : "NO");
  std::printf("  kwsc SRP-KW:   %8.1f us (%llu objects examined)\n", t_srp,
              static_cast<unsigned long long>(stats.ObjectsExamined()));
  std::printf("  keywords-only: %8.1f us\n", t_base);

  // --- t-nearest query -------------------------------------------------
  std::vector<KeywordId> late_pharmacy = {kPharmacy, kOpenLate};
  timer.Restart();
  auto top5 = nearest.Query(here_int, 5, late_pharmacy);
  const double t_nn = timer.ElapsedMicros();
  std::printf("\n5 nearest %s %ss (%.1f us):\n", kNames[kOpenLate],
              kNames[kPharmacy], t_nn);
  for (ObjectId e : top5) {
    const double d = std::sqrt(static_cast<double>(
        L2DistanceSquared(city.locations[e], here_int)));
    std::printf("  poi %6u at (%lld, %lld), %.0f m away\n", e,
                static_cast<long long>(city.locations[e][0]),
                static_cast<long long>(city.locations[e][1]), d);
  }

  std::printf("\nindex sizes: srp %zu B, l2nn %zu B\n", within.MemoryBytes(),
              nearest.MemoryBytes());
  return 0;
}
