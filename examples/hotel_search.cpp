// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The full hotel scenario of the paper's introduction, at realistic scale:
// Hotel(price, rating, Doc) with 200k hotels, querying
//   C1  price in [100, 200] and rating >= 8           (ORP-KW, Theorem 1)
//   C2  c1*price + c2*(10 - rating) <= c3             (LC-KW, Theorem 5)
//   NN  the t best-value hotels near a target point   (L∞NN-KW, Corollary 4)
// each with keywords {pool, free-parking, pet-friendly}, against both naive
// baselines, with per-query work statistics — a miniature of the candidate
// blow-up argument that motivates the paper.
//
//   $ ./build/examples/hotel_search

#include <cstdio>
#include <vector>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/lc_kw.h"
#include "core/nn_linf.h"
#include "core/orp_kw.h"
#include "text/corpus.h"

namespace {

using namespace kwsc;

constexpr KeywordId kPool = 0;
constexpr KeywordId kFreeParking = 1;
constexpr KeywordId kPetFriendly = 2;

struct Hotels {
  Corpus corpus;
  std::vector<Point<2>> points;  // (price, rating).
};

Hotels MakeHotels(uint32_t n) {
  Rng rng(2023);
  std::vector<Document> docs;
  std::vector<Point<2>> points;
  docs.reserve(n);
  points.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<KeywordId> tags;
    if (rng.NextBool(0.55)) tags.push_back(kPool);
    if (rng.NextBool(0.45)) tags.push_back(kFreeParking);
    if (rng.NextBool(0.30)) tags.push_back(kPetFriendly);
    // Brand / neighbourhood / style tags with a long tail.
    tags.push_back(static_cast<KeywordId>(3 + rng.NextBounded(500)));
    tags.push_back(static_cast<KeywordId>(503 + rng.NextBounded(2000)));
    docs.emplace_back(std::move(tags));
    points.push_back({{rng.UniformDouble(30, 500),
                       std::min(10.0, 2.0 + 8.0 * rng.NextDouble() +
                                          rng.NextGaussian() * 0.5)}});
  }
  return {Corpus(std::move(docs)), std::move(points)};
}

template <typename Fn>
double TimeUs(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.ElapsedMicros();
}

}  // namespace

int main() {
  const uint32_t n = 200000;
  Hotels data = MakeHotels(n);
  std::printf("dataset: %u hotels, N = %llu keyword occurrences\n", n,
              static_cast<unsigned long long>(data.corpus.total_weight()));

  FrameworkOptions opt3;
  opt3.k = 3;
  OrpKwIndex<2> orp(data.points, &data.corpus, opt3);
  LcKwIndex<2> lc(data.points, &data.corpus, opt3);
  LinfNnIndex<2> nn(data.points, &data.corpus, opt3);
  StructuredOnlyBaseline<2> structured(data.points, &data.corpus);
  KeywordsOnlyBaseline<2> keywords_only(data.points, &data.corpus);

  std::vector<KeywordId> kws = {kPool, kFreeParking, kPetFriendly};

  // --- C1: range + keywords -------------------------------------------
  Box<2> c1{{{100, 8}}, {{200, 10}}};
  QueryStats stats;
  std::vector<ObjectId> r_index;
  const double t_index = TimeUs([&] { r_index = orp.Query(c1, kws, &stats); });
  BaselineStats s_stats;
  std::vector<ObjectId> r_struct;
  const double t_struct =
      TimeUs([&] { r_struct = structured.QueryBox(c1, kws, &s_stats); });
  BaselineStats k_stats;
  std::vector<ObjectId> r_kw;
  const double t_kw =
      TimeUs([&] { r_kw = keywords_only.QueryBox(c1, kws, &k_stats); });

  std::printf("\nC1: price in [100,200], rating >= 8, pool+parking+pets\n");
  std::printf("  results: %zu (all three methods agree: %s)\n",
              r_index.size(),
              r_index.size() == r_struct.size() &&
                      r_struct.size() == r_kw.size()
                  ? "yes"
                  : "NO");
  std::printf("  kwsc index:      %8.1f us, %llu objects examined\n", t_index,
              static_cast<unsigned long long>(stats.ObjectsExamined()));
  std::printf("  structured-only: %8.1f us, %llu candidates filtered\n",
              t_struct, static_cast<unsigned long long>(s_stats.candidates));
  std::printf("  keywords-only:   %8.1f us, %llu candidates filtered\n", t_kw,
              static_cast<unsigned long long>(k_stats.candidates));

  // --- C2: linear constraint + keywords -------------------------------
  // 1.0 * price + 40 * (10 - rating) <= 300  <=>  price - 40*rating <= -100.
  ConvexQuery<2> c2;
  c2.constraints.push_back({{{1.0, -40.0}}, -100.0});
  std::vector<ObjectId> lc_hits;
  const double t_lc = TimeUs([&] { lc_hits = lc.Query(c2, kws); });
  BaselineStats lc_struct_stats;
  std::vector<ObjectId> lc_struct;
  const double t_lc_struct = TimeUs(
      [&] { lc_struct = structured.QueryConvex(c2, kws, &lc_struct_stats); });
  std::printf("\nC2: price + 40*(10 - rating) <= 300, same keywords\n");
  std::printf("  best-value hotels: %zu (agrees with baseline: %s)\n",
              lc_hits.size(), lc_hits.size() == lc_struct.size() ? "yes" : "NO");
  std::printf("  kwsc LC index:   %8.1f us\n", t_lc);
  std::printf("  structured-only: %8.1f us (%llu candidates)\n", t_lc_struct,
              static_cast<unsigned long long>(lc_struct_stats.candidates));

  // --- NN: t closest hotels in (price, rating) space ------------------
  Point<2> target{{120, 9}};
  std::vector<ObjectId> nearest;
  const double t_nn = TimeUs([&] { nearest = nn.Query(target, 5, kws); });
  std::printf("\nNN: 5 hotels nearest to (price 120, rating 9) with all "
              "amenities (%.1f us):\n", t_nn);
  for (ObjectId e : nearest) {
    std::printf("  hotel %6u: price %6.1f, rating %4.1f, L-inf distance "
                "%.2f\n",
                e, data.points[e][0], data.points[e][1],
                LInfDistance(data.points[e], target));
  }

  std::printf("\nindex sizes: orp %zu B, lc %zu B, nn %zu B (N = %llu)\n",
              orp.MemoryBytes(), lc.MemoryBytes(), nn.MemoryBytes(),
              static_cast<unsigned long long>(data.corpus.total_weight()));
  return 0;
}
