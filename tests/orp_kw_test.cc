// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Correctness and behaviour tests for the Theorem-1 index (kd-tree
// transformation). The central property: for any dataset and any query, the
// index reports exactly q ∩ D(w1,...,wk).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/orp_kw.h"
#include "test_util.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::Sorted;

struct OrpParam {
  uint32_t n;
  int k;
  double zipf;
  PointDistribution dist;
  double selectivity;
  KeywordPick pick;
};

class OrpKwPropertyTest : public ::testing::TestWithParam<OrpParam> {};

TEST_P(OrpKwPropertyTest, MatchesBruteForce) {
  const auto p = GetParam();
  Rng rng(9000 + p.n * 7 + p.k);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(20, p.n / 20);
  spec.zipf_skew = p.zipf;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(p.n, p.dist, &rng);
  FrameworkOptions opt;
  opt.k = p.k;
  OrpKwIndex<2> index(pts, &corpus, opt);
  testing::ExpectAuditClean(index);

  for (int trial = 0; trial < 12; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), p.selectivity,
                              &rng);
    auto kws = PickQueryKeywords(corpus, p.k, p.pick, &rng);
    QueryStats stats;
    auto got = index.Query(q, kws, &stats);
    auto expected = BruteBox(std::span<const Point<2>>(pts), corpus, q, kws);
    ASSERT_EQ(Sorted(got), expected) << "trial " << trial;
    EXPECT_EQ(stats.results, expected.size());
    EXPECT_EQ(stats.covered_nodes + stats.crossing_nodes, stats.nodes_visited);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrpKwPropertyTest,
    ::testing::Values(
        OrpParam{60, 2, 1.0, PointDistribution::kUniform, 0.2,
                 KeywordPick::kFrequent},
        OrpParam{200, 2, 1.0, PointDistribution::kUniform, 0.1,
                 KeywordPick::kCooccurring},
        OrpParam{200, 3, 0.8, PointDistribution::kClustered, 0.3,
                 KeywordPick::kFrequent},
        OrpParam{500, 2, 1.2, PointDistribution::kClustered, 0.05,
                 KeywordPick::kUniform},
        OrpParam{500, 4, 1.0, PointDistribution::kDiagonal, 0.5,
                 KeywordPick::kCooccurring},
        OrpParam{1500, 2, 1.0, PointDistribution::kUniform, 0.02,
                 KeywordPick::kFrequent},
        OrpParam{1500, 3, 1.5, PointDistribution::kClustered, 0.1,
                 KeywordPick::kCooccurring},
        OrpParam{3000, 2, 0.5, PointDistribution::kUniform, 0.01,
                 KeywordPick::kUniform}));

TEST(OrpKw, TiedCoordinatesHandledByRankSpace) {
  // Many objects share coordinates; Section 3.4's rank-space reduction must
  // keep results exact.
  Rng rng(42);
  const uint32_t n = 400;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 7),
                            static_cast<KeywordId>(7 + i % 4)});
    pts.push_back({{std::floor(rng.UniformDouble(0, 5)),
                    std::floor(rng.UniformDouble(0, 5))}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  testing::ExpectAuditClean(index);
  for (int trial = 0; trial < 30; ++trial) {
    Box<2> q;
    for (int dim = 0; dim < 2; ++dim) {
      double a = rng.UniformDouble(-1, 6);
      double b = rng.UniformDouble(-1, 6);
      q.lo[dim] = std::min(a, b);
      q.hi[dim] = std::max(a, b);
    }
    std::vector<KeywordId> kws = {static_cast<KeywordId>(trial % 7),
                                  static_cast<KeywordId>(7 + trial % 4)};
    auto got = index.Query(q, kws);
    auto expected = BruteBox(std::span<const Point<2>>(pts), corpus, q, kws);
    EXPECT_EQ(Sorted(got), expected);
  }
}

TEST(OrpKw, OneDimensional) {
  // d = 1 (pure keyword search over a line) is within Theorem 1's scope.
  std::vector<Document> docs;
  std::vector<Point<1>> pts;
  for (uint32_t i = 0; i < 300; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 5),
                            static_cast<KeywordId>(5 + i % 6)});
    pts.push_back({{static_cast<double>(i)}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<1> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {2, 8};
  Box<1> q{{{50.0}}, {{249.0}}};
  auto got = index.Query(q, kws);
  auto expected = BruteBox(std::span<const Point<1>>(pts), corpus, q, kws);
  EXPECT_EQ(Sorted(got), expected);
  EXPECT_FALSE(expected.empty());
}

TEST(OrpKw, EmptyQueryRegionsReturnNothing) {
  Rng rng(5);
  CorpusSpec spec;
  spec.num_objects = 100;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(100, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  // A box strictly outside the data cube.
  EXPECT_TRUE(index.Query({{{5, 5}}, {{6, 6}}}, kws).empty());
  // An inverted (empty) box.
  EXPECT_TRUE(index.Query({{{0.9, 0.9}}, {{0.1, 0.1}}}, kws).empty());
}

TEST(OrpKw, WholeSpaceQueryEqualsPureKeywordSearch) {
  // The k-SI reduction of Section 1.2: q := R^d.
  Rng rng(6);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    auto got = index.Query(Box<2>::Everything(), kws);
    std::vector<ObjectId> expected;
    for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
      if (corpus.ContainsAll(e, kws)) expected.push_back(e);
    }
    EXPECT_EQ(Sorted(got), expected);
    EXPECT_FALSE(expected.empty());  // kCooccurring plants a witness.
  }
}

TEST(OrpKw, AblationModesPreserveResults) {
  // Disabling tuple pruning and/or materialized lists must not change the
  // answer, only the work (ablation A2's precondition).
  Rng rng(7);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 50;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(400, PointDistribution::kUniform, &rng);

  FrameworkOptions base;
  base.k = 2;
  FrameworkOptions no_tuples = base;
  no_tuples.enable_tuple_pruning = false;
  FrameworkOptions no_lists = base;
  no_lists.enable_materialized_lists = false;

  OrpKwIndex<2> index_base(pts, &corpus, base);
  OrpKwIndex<2> index_nt(pts, &corpus, no_tuples);
  OrpKwIndex<2> index_nl(pts, &corpus, no_lists);

  for (int trial = 0; trial < 15; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.2, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    auto expected = BruteBox(std::span<const Point<2>>(pts), corpus, q, kws);
    EXPECT_EQ(Sorted(index_base.Query(q, kws)), expected);
    EXPECT_EQ(Sorted(index_nt.Query(q, kws)), expected);
    EXPECT_EQ(Sorted(index_nl.Query(q, kws)), expected);
  }
}

TEST(OrpKw, ThresholdExponentSweepPreservesResults) {
  // Ablation A1: any alpha in (0, 1) yields a correct (if slower) index.
  Rng rng(8);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(300, PointDistribution::kUniform, &rng);
  for (double alpha : {0.25, 0.5, 0.75, 0.9}) {
    FrameworkOptions opt;
    opt.k = 2;
    opt.alpha = alpha;
    OrpKwIndex<2> index(pts, &corpus, opt);
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.3, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteBox(std::span<const Point<2>>(pts), corpus, q, kws))
        << "alpha " << alpha;
  }
}

TEST(OrpKw, BudgetExhaustionStopsEarlyAndFlags) {
  Rng rng(9);
  CorpusSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 10;  // Dense keywords: large outputs.
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(2000, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  QueryStats stats;
  OpsBudget budget(50);
  auto got = index.Query(Box<2>::Everything(), kws, &stats, &budget);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LE(budget.spent(), 52u);  // Stops promptly after the cap.
  // An unbudgeted run returns strictly more.
  auto full = index.Query(Box<2>::Everything(), kws);
  EXPECT_GT(full.size(), got.size());
}

TEST(OrpKw, ContainsAtLeastAgreesWithTruth) {
  Rng rng(10);
  CorpusSpec spec;
  spec.num_objects = 1000;
  spec.vocab_size = 25;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(1000, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 20; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts),
                              rng.UniformDouble(0.05, 0.6), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    const size_t truth =
        BruteBox(std::span<const Point<2>>(pts), corpus, q, kws).size();
    for (uint64_t t : {1, 2, 5, 20}) {
      EXPECT_EQ(index.ContainsAtLeast(q, kws, t), truth >= t)
          << "t=" << t << " truth=" << truth;
    }
  }
}

TEST(OrpKw, StreamingEmitStopsOnFalse) {
  Rng rng(11);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 10;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  int emitted = 0;
  index.QueryEmit(Box<2>::Everything(), kws, [&emitted](ObjectId) {
    return ++emitted < 3;
  });
  EXPECT_EQ(emitted, 3);
}

TEST(OrpKw, DepthIsLogarithmic) {
  // The weight-balanced splits guarantee O(log N) height.
  Rng rng(12);
  CorpusSpec spec;
  spec.num_objects = 4096;
  spec.vocab_size = 100;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(4096, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  // N = total weight <= 4096 * 8; depth should be well under 2 * log2(N).
  const double log_n = std::log2(static_cast<double>(corpus.total_weight()));
  EXPECT_LE(index.Depth(), static_cast<int>(2 * log_n) + 2);
}

TEST(OrpKw, MemoryIsReported) {
  Rng rng(13);
  CorpusSpec spec;
  spec.num_objects = 200;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(200, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  EXPECT_GT(index.MemoryBytes(), 0u);
  EXPECT_GT(index.num_nodes(), 10u);
}

TEST(OrpKwDeath, RejectsWrongKeywordCount) {
  Rng rng(14);
  CorpusSpec spec;
  spec.num_objects = 50;
  spec.vocab_size = 10;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(50, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> one = {3};
  EXPECT_DEATH(index.Query(Box<2>::Everything(), one), "exactly k");
  std::vector<KeywordId> dup = {3, 3};
  EXPECT_DEATH(index.Query(Box<2>::Everything(), dup), "distinct");
}

}  // namespace
}  // namespace kwsc
